//! Determinism and protocol guarantees across the workspace: every public
//! entry point must replay bit-for-bit from a `u64` seed, and supervision
//! must help, not hurt.

use sspc::{Sspc, SspcParams, Supervision, ThresholdScheme};
use sspc_baselines::{clarans, doc, proclus};
use sspc_common::rng::derive_seed;
use sspc_common::ClusterId;
use sspc_datagen::supervision::{draw, InputKind};
use sspc_datagen::{generate, generate_multi_grouping, GeneratedData, GeneratorConfig};
use sspc_metrics::{adjusted_rand_index, OutlierPolicy};

fn hard_data() -> GeneratedData {
    // 1% relevant dimensions — the paper's extreme regime, where raw
    // accuracy is clearly imperfect and supervision has headroom to show.
    generate(
        &GeneratorConfig {
            n: 200,
            d: 1000,
            k: 4,
            avg_cluster_dims: 10,
            ..Default::default()
        },
        101,
    )
    .unwrap()
}

fn ari(data: &GeneratedData, produced: &[Option<ClusterId>]) -> f64 {
    adjusted_rand_index(data.truth.assignment(), produced, OutlierPolicy::AsCluster).unwrap()
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let data = hard_data();
        let labels = draw(&data.truth, InputKind::Both, 1.0, 4, 55).unwrap();
        let supervision = Supervision::new(labels.labeled_objects, labels.labeled_dims);
        let params = SspcParams::new(4).with_threshold(ThresholdScheme::MFraction(0.5));
        let result = Sspc::new(params)
            .unwrap()
            .run(&data.dataset, &supervision, 77)
            .unwrap();
        (ari(&data, result.assignment()), result)
    };
    let (score_a, result_a) = run();
    let (score_b, result_b) = run();
    assert_eq!(result_a, result_b);
    assert_eq!(score_a, score_b);
}

#[test]
fn different_seeds_explore_different_solutions() {
    let data = hard_data();
    let params = SspcParams::new(4).with_threshold(ThresholdScheme::MFraction(0.5));
    let sspc = Sspc::new(params).unwrap();
    let objectives: Vec<f64> = (0..6)
        .map(|s| {
            sspc.run(&data.dataset, &Supervision::none(), s)
                .unwrap()
                .objective()
        })
        .collect();
    let distinct = objectives
        .windows(2)
        .filter(|w| (w[0] - w[1]).abs() > 1e-12)
        .count();
    assert!(
        distinct > 0,
        "all seeds produced identical objectives: {objectives:?}"
    );
}

#[test]
fn supervision_improves_median_accuracy_on_hard_data() {
    let data = hard_data();
    let params = SspcParams::new(4).with_threshold(ThresholdScheme::MFraction(0.5));
    let sspc = Sspc::new(params).unwrap();
    let runs = 5;

    let mut raw = Vec::new();
    let mut guided = Vec::new();
    for r in 0..runs {
        let seed = derive_seed(500, r);
        raw.push(ari(
            &data,
            sspc.run(&data.dataset, &Supervision::none(), seed)
                .unwrap()
                .assignment(),
        ));
        let labels = draw(&data.truth, InputKind::Both, 1.0, 5, seed).unwrap();
        let supervision = Supervision::new(labels.labeled_objects, labels.labeled_dims);
        guided.push(ari(
            &data,
            sspc.run(&data.dataset, &supervision, derive_seed(seed, 1))
                .unwrap()
                .assignment(),
        ));
    }
    let med = |v: &[f64]| {
        let mut b = v.to_vec();
        sspc_common::stats::median_in_place(&mut b)
    };
    let (raw_med, guided_med) = (med(&raw), med(&guided));
    assert!(
        guided_med >= raw_med,
        "supervision should not hurt: raw {raw_med}, guided {guided_med}"
    );
}

#[test]
fn supervision_selects_the_requested_grouping() {
    let config = GeneratorConfig {
        n: 120,
        d: 400,
        k: 3,
        avg_cluster_dims: 10,
        ..Default::default()
    };
    let data = generate_multi_grouping(&config, 7).unwrap();
    let params = SspcParams::new(3).with_threshold(ThresholdScheme::MFraction(0.5));
    let sspc = Sspc::new(params).unwrap();

    let labels = draw(&data.truth_b, InputKind::Both, 1.0, 5, 9).unwrap();
    let supervision = Supervision::new(labels.labeled_objects, labels.labeled_dims);
    let result = sspc.run(&data.dataset, &supervision, 10).unwrap();
    let vs_b = adjusted_rand_index(
        data.truth_b.assignment(),
        result.assignment(),
        OutlierPolicy::AsCluster,
    )
    .unwrap();
    let vs_a = adjusted_rand_index(
        data.truth_a.assignment(),
        result.assignment(),
        OutlierPolicy::AsCluster,
    )
    .unwrap();
    assert!(
        vs_b > vs_a,
        "guided by B must match B better: vs_a {vs_a}, vs_b {vs_b}"
    );
}

#[test]
fn baselines_are_deterministic_in_seed() {
    let data = generate(
        &GeneratorConfig {
            n: 150,
            d: 30,
            k: 3,
            avg_cluster_dims: 6,
            ..Default::default()
        },
        3,
    )
    .unwrap();
    let p = proclus::ProclusParams::new(3, 6);
    assert_eq!(
        proclus::run(&data.dataset, &p, 5).unwrap(),
        proclus::run(&data.dataset, &p, 5).unwrap()
    );
    let c = clarans::ClaransParams::new(3);
    assert_eq!(
        clarans::run(&data.dataset, &c, 5).unwrap(),
        clarans::run(&data.dataset, &c, 5).unwrap()
    );
    let dd = doc::DocParams::new(3, 10.0);
    assert_eq!(
        doc::run(&data.dataset, &dd, 5).unwrap(),
        doc::run(&data.dataset, &dd, 5).unwrap()
    );
}

#[test]
fn generators_are_deterministic_and_seed_sensitive() {
    let cfg = GeneratorConfig {
        n: 100,
        d: 20,
        k: 3,
        avg_cluster_dims: 5,
        ..Default::default()
    };
    let a = generate(&cfg, 1).unwrap();
    let b = generate(&cfg, 1).unwrap();
    let c = generate(&cfg, 2).unwrap();
    assert_eq!(a.dataset, b.dataset);
    assert_ne!(a.dataset, c.dataset);
}
