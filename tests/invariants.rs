//! Property-based invariants of the full pipeline: whatever the data and
//! seeds, results must be structurally sound and internally consistent.

use proptest::prelude::*;
use sspc::objective::{total_score, ClusterModel};
use sspc::{Sspc, SspcParams, Supervision, ThresholdScheme, Thresholds};
use sspc_baselines::{clarans, harp, proclus};
use sspc_common::{ClusterId, Dataset};
use sspc_datagen::{generate, GeneratorConfig};

/// A small random generator configuration for fast property checks.
fn small_config(k: usize, d: usize, l: usize) -> GeneratorConfig {
    GeneratorConfig {
        n: 80,
        d,
        k,
        avg_cluster_dims: l,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sspc_results_are_structurally_sound(
        seed in 0u64..10_000,
        k in 2usize..4,
        m in 0.3f64..0.7,
    ) {
        let cfg = small_config(k, 20, 5);
        let data = generate(&cfg, seed).unwrap();
        let params = SspcParams::new(k).with_threshold(ThresholdScheme::MFraction(m));
        let result = Sspc::new(params)
            .unwrap()
            .run(&data.dataset, &Supervision::none(), seed)
            .unwrap();

        // Every object is assigned or an outlier; cluster ids are in range.
        prop_assert_eq!(result.assignment().len(), 80);
        for c in result.assignment().iter().flatten() {
            prop_assert!(c.index() < k);
        }
        prop_assert_eq!(result.n_clusters(), k);

        // Selected dimensions are sorted, unique, in range.
        for c in 0..k {
            let dims = result.selected_dims(ClusterId(c));
            prop_assert!(dims.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(dims.iter().all(|j| j.index() < 20));
        }

        // Members of clusters plus outliers partition the objects.
        let covered: usize = (0..k)
            .map(|c| result.members_of(ClusterId(c)).len())
            .sum::<usize>()
            + result.n_outliers();
        prop_assert_eq!(covered, 80);
    }

    #[test]
    fn sspc_objective_is_recomputable_from_the_result(
        seed in 0u64..10_000,
    ) {
        // The recorded best objective must equal φ recomputed from the
        // returned assignment and dimension sets.
        let cfg = small_config(3, 20, 6);
        let data = generate(&cfg, seed).unwrap();
        let params = SspcParams::new(3).with_threshold(ThresholdScheme::MFraction(0.5));
        let result = Sspc::new(params)
            .unwrap()
            .run(&data.dataset, &Supervision::none(), seed)
            .unwrap();

        let thresholds =
            Thresholds::new(ThresholdScheme::MFraction(0.5), &data.dataset).unwrap();
        let mut scores = Vec::new();
        for c in 0..3 {
            let members = result.members_of(ClusterId(c));
            if members.is_empty() {
                scores.push(0.0);
                continue;
            }
            let model = ClusterModel::fit(&data.dataset, &members).unwrap();
            scores.push(model.cluster_score(result.selected_dims(ClusterId(c)), &thresholds));
        }
        let recomputed = total_score(&scores, 80, 20);
        prop_assert!(
            (recomputed - result.objective()).abs() < 1e-9,
            "recomputed {} vs recorded {}",
            recomputed,
            result.objective()
        );
    }

    #[test]
    fn sspc_selected_dims_satisfy_lemma_1(
        seed in 0u64..10_000,
    ) {
        // Lemma 1: the returned dimension sets are exactly those passing
        // the dispersion-below-threshold test on the returned members.
        let cfg = small_config(2, 15, 5);
        let data = generate(&cfg, seed).unwrap();
        let params = SspcParams::new(2).with_threshold(ThresholdScheme::MFraction(0.5));
        let result = Sspc::new(params)
            .unwrap()
            .run(&data.dataset, &Supervision::none(), seed)
            .unwrap();
        let thresholds =
            Thresholds::new(ThresholdScheme::MFraction(0.5), &data.dataset).unwrap();
        for c in 0..2 {
            let members = result.members_of(ClusterId(c));
            if members.is_empty() {
                continue;
            }
            let model = ClusterModel::fit(&data.dataset, &members).unwrap();
            let expected = model.select_dims(&thresholds);
            prop_assert_eq!(
                result.selected_dims(ClusterId(c)),
                expected.as_slice(),
                "cluster {} dims disagree with SelectDim",
                c
            );
        }
    }

    #[test]
    fn baselines_cover_objects_and_stay_in_range(
        seed in 0u64..10_000,
    ) {
        let cfg = small_config(3, 12, 4);
        let data = generate(&cfg, seed).unwrap();

        let p = proclus::run(&data.dataset, &proclus::ProclusParams::new(3, 4), seed).unwrap();
        prop_assert_eq!(p.assignment().len(), 80);
        for c in p.assignment().iter().flatten() {
            prop_assert!(c.index() < 3);
        }

        let h = harp::run(&data.dataset, &harp::HarpParams::new(3)).unwrap();
        prop_assert_eq!(h.n_clusters(), 3);
        prop_assert!(h.outliers().is_empty());

        let cl = clarans::run(
            &data.dataset,
            &clarans::ClaransParams {
                max_neighbor: Some(30),
                ..clarans::ClaransParams::new(3)
            },
            seed,
        )
        .unwrap();
        prop_assert!(cl.assignment().iter().all(Option::is_some));
    }

    #[test]
    fn supervised_runs_respect_pinning(
        seed in 0u64..10_000,
    ) {
        let cfg = small_config(2, 15, 5);
        let data = generate(&cfg, seed).unwrap();
        let m0 = data.truth.members_of(ClusterId(0));
        let m1 = data.truth.members_of(ClusterId(1));
        prop_assume!(m0.len() >= 2 && m1.len() >= 2);
        let sup = Supervision::none()
            .label_object(m0[0], ClusterId(0))
            .label_object(m0[1], ClusterId(0))
            .label_object(m1[0], ClusterId(1))
            .label_object(m1[1], ClusterId(1));
        let params = SspcParams::new(2).with_threshold(ThresholdScheme::MFraction(0.5));
        let result = Sspc::new(params)
            .unwrap()
            .run(&data.dataset, &sup, seed)
            .unwrap();
        prop_assert_eq!(result.cluster_of(m0[0]), Some(ClusterId(0)));
        prop_assert_eq!(result.cluster_of(m0[1]), Some(ClusterId(0)));
        prop_assert_eq!(result.cluster_of(m1[0]), Some(ClusterId(1)));
        prop_assert_eq!(result.cluster_of(m1[1]), Some(ClusterId(1)));
    }

    #[test]
    fn degenerate_datasets_do_not_panic(
        n in 6usize..30,
        d in 1usize..6,
        value in -100.0f64..100.0,
    ) {
        // Constant datasets: everything equal. SSPC must return something
        // structurally valid (no dimension is selectable).
        let ds = Dataset::from_rows(n, d, vec![value; n * d]).unwrap();
        let params = SspcParams::new(2).with_threshold(ThresholdScheme::MFraction(0.5));
        let result = Sspc::new(params).unwrap().run(&ds, &Supervision::none(), 1);
        if let Ok(result) = result {
            prop_assert_eq!(result.assignment().len(), n);
        }
        // (An Err on pathological input is acceptable; a panic is not.)
    }
}
