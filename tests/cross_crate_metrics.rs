//! Metric-level integration: ARI and dimension metrics evaluated on real
//! generator output and real algorithm output, plus consistency between
//! the paper's ARI (Eq. 5) and the Hubert–Arabie form.

use sspc_common::{ClusterId, DimId, ObjectId};
use sspc_datagen::{generate, GeneratorConfig};
use sspc_metrics::{
    adjusted_rand_index, hubert_arabie_ari, rand_index, ContingencyTable, OutlierPolicy,
};

fn data() -> sspc_datagen::GeneratedData {
    generate(
        &GeneratorConfig {
            n: 300,
            d: 40,
            k: 4,
            avg_cluster_dims: 8,
            outlier_fraction: 0.1,
            ..Default::default()
        },
        77,
    )
    .unwrap()
}

#[test]
fn truth_against_itself_is_perfect_under_both_policies() {
    let data = data();
    let t = data.truth.assignment();
    for policy in [OutlierPolicy::Exclude, OutlierPolicy::AsCluster] {
        assert!((adjusted_rand_index(t, t, policy).unwrap() - 1.0).abs() < 1e-12);
        assert!((rand_index(t, t, policy).unwrap() - 1.0).abs() < 1e-12);
    }
}

#[test]
fn ari_forms_agree_on_real_partitions() {
    // Eq. 5 and Hubert–Arabie coincide on balanced partitions to within a
    // small gap; verify on a realistic perturbed partition.
    let data = data();
    let t = data.truth.assignment();
    let mut v = t.to_vec();
    // Perturb 10% of assignments.
    for i in (0..v.len()).step_by(10) {
        v[i] = Some(ClusterId((i / 10) % 4));
    }
    let eq5 = adjusted_rand_index(t, &v, OutlierPolicy::Exclude).unwrap();
    let ha = hubert_arabie_ari(t, &v, OutlierPolicy::Exclude).unwrap();
    assert!((eq5 - ha).abs() < 0.05, "eq5 {eq5} vs HA {ha}");
    assert!(eq5 < 1.0 && eq5 > 0.4);
}

#[test]
fn contingency_table_totals_match_policy() {
    let data = data();
    let t = data.truth.assignment();
    let n = t.len() as u64;
    let n_out = data.truth.n_outliers() as u64;

    let excl = ContingencyTable::build(t, t, OutlierPolicy::Exclude).unwrap();
    assert_eq!(excl.total(), n - n_out);
    let asc = ContingencyTable::build(t, t, OutlierPolicy::AsCluster).unwrap();
    assert_eq!(asc.total(), n);
    // Outliers occupy exactly one extra row/column under AsCluster.
    assert_eq!(asc.n_rows(), excl.n_rows() + 1);
}

#[test]
fn dim_quality_perfect_on_ground_truth() {
    let data = data();
    let truth_dims: Vec<Vec<DimId>> = (0..4)
        .map(|c| data.truth.relevant_dims(ClusterId(c)).to_vec())
        .collect();
    let q = sspc_metrics::dims::dim_selection_quality(
        data.truth.assignment(),
        &truth_dims,
        data.truth.assignment(),
        &truth_dims,
    )
    .unwrap();
    assert_eq!(q.precision, 1.0);
    assert_eq!(q.recall, 1.0);
    assert_eq!(q.matched_clusters, 4);
}

#[test]
fn outlier_quality_detects_truth_roundtrip() {
    let data = data();
    let q =
        sspc_metrics::outliers::outlier_quality(data.truth.assignment(), data.truth.assignment())
            .unwrap();
    assert_eq!(q.precision, 1.0);
    assert_eq!(q.recall, 1.0);
    assert_eq!(q.true_outliers, 30);
}

#[test]
fn ari_penalizes_shuffled_labels() {
    let data = data();
    let t = data.truth.assignment();
    let mut shuffled = t.to_vec();
    shuffled.rotate_right(t.len() / 3);
    let ari = adjusted_rand_index(t, &shuffled, OutlierPolicy::Exclude).unwrap();
    assert!(ari < 0.5, "rotation should destroy agreement, got {ari}");
}

#[test]
fn members_and_outliers_partition_objects() {
    let data = data();
    let mut seen = vec![false; data.truth.n_objects()];
    for c in 0..data.truth.n_classes() {
        for o in data.truth.members_of(ClusterId(c)) {
            assert!(!seen[o.index()]);
            seen[o.index()] = true;
        }
    }
    for o in data.truth.outliers() {
        assert!(!seen[o.index()]);
        seen[o.index()] = true;
    }
    assert!(seen.iter().all(|&s| s));
    let _ = ObjectId(0);
}
