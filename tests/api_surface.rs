//! The unified-API contract, end to end: every algorithm in the workspace
//! is reachable through `ProjectedClusterer`/`AnyClusterer`, returns a
//! well-formed canonical `Clustering`, and the experiment protocol on top
//! reproduces the paper's comparison shape (best-of-N per algorithm,
//! ARI/NMI/purity against truth).

use sspc_api::registry::{AnyClusterer, ParamMap, ALGORITHMS};
use sspc_api::{best_of, compare_algorithms};
use sspc_common::{ClusterId, ProjectedClusterer, Supervision};
use sspc_datagen::{generate, GeneratedData, GeneratorConfig};

fn small_data(seed: u64) -> GeneratedData {
    generate(
        &GeneratorConfig {
            n: 150,
            d: 16,
            k: 3,
            avg_cluster_dims: 5,
            ..Default::default()
        },
        seed,
    )
    .unwrap()
}

/// All seven registry algorithms run through the one trait and produce a
/// structurally valid `Clustering` on the same dataset.
#[test]
fn every_algorithm_clusters_through_the_unified_api() {
    let data = small_data(11);
    let n = data.dataset.n_objects();
    for name in ALGORITHMS {
        // Keep the heavyweight baselines quick on this small smoke input.
        let params = match name {
            "doc" => ParamMap::default().set("alpha", "0.05"),
            "clique" => ParamMap::default().set("max-dim", "3"),
            _ => ParamMap::default(),
        };
        let clusterer = AnyClusterer::from_spec(name, 3, &params).unwrap();
        let c = clusterer
            .cluster(&data.dataset, &Supervision::none(), 5)
            .unwrap();
        assert_eq!(c.algorithm(), name);
        assert_eq!(c.assignment().len(), n, "{name}: assignment length");
        assert!(c.n_clusters() <= 3, "{name}: cluster count");
        for (o, assigned) in c.assignment().iter().enumerate() {
            if let Some(cl) = assigned {
                assert!(cl.index() < c.n_clusters(), "{name}: object {o} cluster id");
            }
        }
        // Membership and outlier queries partition the objects.
        let from_clusters: usize = (0..c.n_clusters())
            .map(|i| c.members_of(ClusterId(i)).len())
            .sum();
        assert_eq!(from_clusters + c.n_outliers(), n, "{name}: partition");
        assert!(c.seconds() >= 0.0);
        assert!(c.objective().is_finite(), "{name}: objective");
    }
}

/// Seeded restarts through the trait are reproducible, and best-of-N never
/// returns something a single restart beats.
#[test]
fn best_of_is_deterministic_and_optimal_over_restarts() {
    let data = small_data(23);
    for name in ["sspc", "proclus", "doc"] {
        let clusterer = AnyClusterer::from_spec(name, 3, &ParamMap::default()).unwrap();
        let a = best_of(&clusterer, &data.dataset, &Supervision::none(), 3, 17).unwrap();
        let b = best_of(&clusterer, &data.dataset, &Supervision::none(), 3, 17).unwrap();
        assert_eq!(
            a.best.assignment(),
            b.best.assignment(),
            "{name}: restart determinism"
        );
        assert_eq!(
            a.best.objective().to_bits(),
            b.best.objective().to_bits(),
            "{name}: objective determinism"
        );
        assert_eq!(a.runs_executed, 3, "{name}");
    }
}

/// The full Sec. 5 shape: SSPC plus four baselines on one generated
/// dataset, each scored against truth — and SSPC, with dimension-selection
/// built for exactly this planted structure, lands a strong ARI.
#[test]
fn comparison_protocol_reproduces_paper_shape() {
    let data = small_data(31);
    let roster: Vec<AnyClusterer> = ["sspc", "proclus", "clarans", "harp", "doc"]
        .iter()
        .map(|name| {
            let params = match *name {
                "proclus" => ParamMap::default().set("l", "5"),
                _ => ParamMap::default(),
            };
            AnyClusterer::from_spec(name, 3, &params).unwrap()
        })
        .collect();
    let reports = compare_algorithms(
        &roster,
        &data.dataset,
        &Supervision::none(),
        Some(data.truth.assignment()),
        3,
        7,
    )
    .unwrap();
    assert_eq!(reports.len(), 5);
    for r in &reports {
        let e = r.evaluation.expect("truth supplied");
        assert!(
            (-1.0..=1.0).contains(&e.ari) && (0.0..=1.0).contains(&e.nmi),
            "{}: metric ranges (ari {}, nmi {})",
            r.algorithm,
            e.ari,
            e.nmi
        );
        assert!(r.total_seconds >= 0.0);
    }
    assert_eq!(
        reports[3].runs_executed, 1,
        "harp runs once (deterministic)"
    );
    let sspc_ari = reports[0].evaluation.unwrap().ari;
    assert!(sspc_ari > 0.7, "SSPC ARI on planted data: {sspc_ari}");
}
