//! Integration tests of the Sec. 6 extension features working together:
//! noisy labels → validation → clustering, fuzzy labels → hardening →
//! clustering, Gaussian globals with the p-scheme, and dataset I/O.

use sspc::validation::{validate_supervision, ValidationParams, Verdict};
use sspc::{FuzzySupervision, Sspc, SspcParams, Supervision, ThresholdScheme};
use sspc_common::io::{normalize, read_delimited, write_delimited, Normalization};
use sspc_common::rng::derive_seed;
use sspc_common::ClusterId;
use sspc_datagen::supervision::{draw, draw_noisy, InputKind};
use sspc_datagen::{generate, GeneratorConfig, GlobalDistribution};
use sspc_metrics::{adjusted_rand_index, OutlierPolicy};

fn config() -> GeneratorConfig {
    GeneratorConfig {
        n: 160,
        d: 400,
        k: 4,
        avg_cluster_dims: 12,
        ..Default::default()
    }
}

fn ari(truth: &sspc_datagen::GroundTruth, produced: &[Option<ClusterId>]) -> f64 {
    adjusted_rand_index(truth.assignment(), produced, OutlierPolicy::AsCluster).unwrap()
}

#[test]
fn validation_pipeline_recovers_from_heavy_corruption() {
    let data = generate(&config(), 71).unwrap();
    // Half the labels wrong.
    let noisy = draw_noisy(&data.truth, 400, InputKind::Both, 1.0, 6, 0.5, 3).unwrap();
    let supervision = Supervision::new(noisy.labeled_objects, noisy.labeled_dims);
    let report =
        validate_supervision(&data.dataset, &supervision, &ValidationParams::default()).unwrap();
    assert!(
        report.n_rejected() > 0,
        "half-corrupted labels must trigger rejections"
    );
    let cleaned = report.cleaned();
    // Measure the cleaned label error rate: it should be clearly below 50%.
    let wrong = cleaned
        .labeled_objects()
        .iter()
        .filter(|&&(o, c)| data.truth.class_of(o) != Some(c))
        .count();
    let total = cleaned.labeled_objects().len().max(1);
    assert!(
        (wrong as f64 / total as f64) < 0.35,
        "cleaned object labels still {wrong}/{total} wrong"
    );
}

#[test]
fn validation_keeps_clean_labels_intact() {
    let data = generate(&config(), 73).unwrap();
    let clean = draw(&data.truth, InputKind::Both, 1.0, 6, 5).unwrap();
    let supervision = Supervision::new(clean.labeled_objects, clean.labeled_dims);
    let report =
        validate_supervision(&data.dataset, &supervision, &ValidationParams::default()).unwrap();
    let rejected = report.n_rejected();
    let total = supervision.labeled_objects().len() + supervision.labeled_dims().len();
    assert!(
        rejected * 10 <= total,
        "validator rejected {rejected}/{total} correct labels"
    );
    // No correct dimension label may be rejected outright when the class
    // has labeled objects backing it.
    for (j, c, v) in &report.dim_verdicts {
        if *v == Verdict::Rejected {
            assert!(
                !data.truth.is_relevant(*c, *j),
                "correct dim label {j} for class {c} rejected"
            );
        }
    }
}

#[test]
fn fuzzy_hardening_feeds_sspc() {
    let data = generate(&config(), 77).unwrap();
    let clean = draw(&data.truth, InputKind::Both, 1.0, 5, 7).unwrap();
    let mut fuzzy = FuzzySupervision::none();
    for &(o, c) in &clean.labeled_objects {
        fuzzy = fuzzy.label_object(o, c, 0.9).unwrap();
    }
    for &(j, c) in &clean.labeled_dims {
        fuzzy = fuzzy.label_dim(j, c, 0.8).unwrap();
    }
    let hard = fuzzy.harden(0.5);
    let params = SspcParams::new(4).with_threshold(ThresholdScheme::MFraction(0.5));
    let result = Sspc::new(params)
        .unwrap()
        .run(&data.dataset, &hard, 9)
        .unwrap();
    assert!(ari(&data.truth, result.assignment()) > 0.8);
}

#[test]
fn fuzzy_sampling_integrates_over_runs() {
    let data = generate(&config(), 79).unwrap();
    let clean = draw(&data.truth, InputKind::Both, 1.0, 5, 11).unwrap();
    let mut fuzzy = FuzzySupervision::none();
    for &(o, c) in &clean.labeled_objects {
        fuzzy = fuzzy.label_object(o, c, 0.7).unwrap();
    }
    for &(j, c) in &clean.labeled_dims {
        fuzzy = fuzzy.label_dim(j, c, 0.7).unwrap();
    }
    let params = SspcParams::new(4).with_threshold(ThresholdScheme::MFraction(0.5));
    let sspc = Sspc::new(params).unwrap();
    let mut scores = Vec::new();
    for r in 0..3u64 {
        let hard = fuzzy.sample(derive_seed(100, r));
        let result = sspc.run(&data.dataset, &hard, derive_seed(200, r)).unwrap();
        scores.push(ari(&data.truth, result.assignment()));
    }
    let best = scores.iter().cloned().fold(f64::MIN, f64::max);
    assert!(best > 0.6, "sampled-label runs all failed: {scores:?}");
}

#[test]
fn p_scheme_on_gaussian_globals_matches_its_assumption() {
    // Gaussian globals have ~3× less variance than uniform ones over the
    // same box, so the local-to-global contrast shrinks; keep the local
    // spread at the tight end and the dimensionality moderate so the
    // regime isolates the distributional assumption rather than raw
    // difficulty.
    let cfg = GeneratorConfig {
        n: 300,
        d: 100,
        k: 4,
        avg_cluster_dims: 12,
        local_sd_frac_max: 0.04,
        global_distribution: GlobalDistribution::Gaussian,
        ..Default::default()
    };
    let data = generate(&cfg, 83).unwrap();
    let params = SspcParams::new(4).with_threshold(ThresholdScheme::PValue(0.05));
    let sspc = Sspc::new(params).unwrap();
    let best = (0..4)
        .map(|s| sspc.run(&data.dataset, &Supervision::none(), s).unwrap())
        .max_by(|a, b| a.objective().partial_cmp(&b.objective()).unwrap())
        .unwrap();
    assert!(
        ari(&data.truth, best.assignment()) > 0.7,
        "p-scheme should excel under its stated Gaussian assumption"
    );
}

#[test]
fn io_roundtrip_preserves_clustering_behaviour() {
    let data = generate(
        &GeneratorConfig {
            n: 60,
            d: 20,
            k: 3,
            avg_cluster_dims: 6,
            ..Default::default()
        },
        89,
    )
    .unwrap();
    let mut buf = Vec::new();
    write_delimited(&data.dataset, &mut buf, '\t').unwrap();
    let reread = read_delimited(std::io::Cursor::new(buf), '\t').unwrap();
    assert_eq!(data.dataset, reread);

    let params = SspcParams::new(3).with_threshold(ThresholdScheme::MFraction(0.5));
    let sspc = Sspc::new(params).unwrap();
    let a = sspc.run(&data.dataset, &Supervision::none(), 5).unwrap();
    let b = sspc.run(&reread, &Supervision::none(), 5).unwrap();
    assert_eq!(a, b, "identical data + seed must give identical results");
}

#[test]
fn normalization_preserves_projected_structure() {
    // SSPC's threshold normalizes per dimension, so z-scoring must not
    // change what it finds (up to numerical jitter in grid binning).
    let data = generate(
        &GeneratorConfig {
            n: 120,
            d: 30,
            k: 3,
            avg_cluster_dims: 8,
            ..Default::default()
        },
        97,
    )
    .unwrap();
    let normalized = normalize(&data.dataset, Normalization::ZScore).unwrap();
    let params = SspcParams::new(3).with_threshold(ThresholdScheme::MFraction(0.5));
    let sspc = Sspc::new(params).unwrap();
    let raw_best = (0..3)
        .map(|s| sspc.run(&data.dataset, &Supervision::none(), s).unwrap())
        .map(|r| ari(&data.truth, r.assignment()))
        .fold(f64::MIN, f64::max);
    let norm_best = (0..3)
        .map(|s| sspc.run(&normalized, &Supervision::none(), s).unwrap())
        .map(|r| ari(&data.truth, r.assignment()))
        .fold(f64::MIN, f64::max);
    assert!(raw_best > 0.8, "raw {raw_best}");
    assert!(norm_best > 0.8, "normalized {norm_best}");
}
