//! The performance layer's contract: the columnar / parallel fast paths
//! must be **bit-identical** to the row-major serial reference paths, at
//! any thread count.
//!
//! Thread counts are driven through `SSPC_NUM_THREADS` (the env var
//! `sspc_common::parallel::num_threads` resolves first); all runs happen
//! inside one `#[test]` per scenario so the env mutation cannot race a
//! concurrently running test in this binary.

use proptest::prelude::*;
use rand::Rng;
use sspc::objective::{
    assignment_argmax, assignment_gain_row, assignment_gains_transposed, AssignCandidate,
    ClusterModel, FitScratch,
};
use sspc::{Sspc, SspcParams, SspcResult, Supervision, ThresholdScheme, Thresholds};
use sspc_common::rng::seeded_rng;
use sspc_common::{ClusterId, Dataset, DimId, ObjectId};

/// Serializes SSPC_NUM_THREADS mutation across tests in this binary.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn with_thread_count<R>(n: usize, body: impl FnOnce() -> R) -> R {
    std::env::set_var("SSPC_NUM_THREADS", n.to_string());
    let r = body();
    std::env::remove_var("SSPC_NUM_THREADS");
    r
}

/// A planted dataset: `k` clusters of `per` objects, each compact on two
/// of the `d` dimensions, values elsewhere uniform over [0, 100].
fn planted(n: usize, d: usize, k: usize, seed: u64) -> Dataset {
    let mut rng = seeded_rng(seed);
    let mut values = vec![0.0f64; n * d];
    for v in values.iter_mut() {
        *v = rng.gen_range(0.0..100.0);
    }
    let per = n / k;
    for c in 0..k {
        let j0 = (2 * c) % d.saturating_sub(1).max(1);
        let center0 = rng.gen_range(10.0..90.0);
        let center1 = rng.gen_range(10.0..90.0);
        for o in (c * per)..((c + 1) * per) {
            values[o * d + j0] = center0 + rng.gen_range(-1.0..1.0);
            values[o * d + j0 + 1] = center1 + rng.gen_range(-1.0..1.0);
        }
    }
    Dataset::from_rows(n, d, values).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Columnar `fit` equals the row-major naive `fit` to the last ulp on
    /// random datasets and member subsets, and so do the selections and
    /// scores derived from it.
    #[test]
    fn prop_columnar_fit_equals_naive(
        n in 4usize..40,
        d in 1usize..24,
        seed in 0u64..10_000,
    ) {
        let mut rng = seeded_rng(seed);
        let values: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-1e4..1e4)).collect();
        let ds = Dataset::from_rows(n, d, values).unwrap();
        // A random non-empty member subset.
        let members: Vec<ObjectId> = (0..n)
            .filter(|_| rng.gen_range(0.0..1.0) < 0.5)
            .map(ObjectId)
            .collect();
        prop_assume!(!members.is_empty());

        let fast = ClusterModel::fit_with_scratch(&ds, &members, &mut FitScratch::new()).unwrap();
        let naive = ClusterModel::fit_naive(&ds, &members).unwrap();
        for j in ds.dim_ids() {
            let (f, g) = (fast.summary(j), naive.summary(j));
            prop_assert_eq!(f.mean.to_bits(), g.mean.to_bits(), "mean differs at {}", j);
            prop_assert_eq!(f.variance.to_bits(), g.variance.to_bits(), "variance differs at {}", j);
            prop_assert_eq!(f.median.to_bits(), g.median.to_bits(), "median differs at {}", j);
        }
        for scheme in [ThresholdScheme::MFraction(0.5), ThresholdScheme::PValue(0.05)] {
            let th = Thresholds::new(scheme, &ds).unwrap();
            prop_assert_eq!(fast.select_dims(&th), naive.select_dims(&th));
            let dims = fast.select_dims(&th);
            prop_assert_eq!(
                fast.cluster_score(&dims, &th).to_bits(),
                naive.cluster_score(&dims, &th).to_bits()
            );
        }
    }
}

fn assert_results_identical(a: &SspcResult, b: &SspcResult, what: &str) {
    assert_eq!(a, b, "{what}: results differ");
    // `==` on f64 treats -0.0 == 0.0; pin the objective to the exact bits.
    assert_eq!(
        a.objective().to_bits(),
        b.objective().to_bits(),
        "{what}: objective bits differ"
    );
}

/// `Sspc::run` output is identical across thread counts, with and without
/// supervision, for both threshold schemes.
#[test]
fn run_is_reproducible_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ds = planted(120, 16, 3, 42);
    let sup_none = Supervision::none();
    let sup_labeled = Supervision::none()
        .label_object(ObjectId(0), ClusterId(0))
        .label_object(ObjectId(1), ClusterId(0))
        .label_object(ObjectId(40), ClusterId(1))
        .label_object(ObjectId(41), ClusterId(1));
    for scheme in [
        ThresholdScheme::MFraction(0.5),
        ThresholdScheme::PValue(0.05),
    ] {
        for sup in [&sup_none, &sup_labeled] {
            let sspc = Sspc::new(SspcParams::new(3).with_threshold(scheme)).unwrap();
            let reference = with_thread_count(1, || sspc.run(&ds, sup, 7).unwrap());
            for threads in [2, 3, 8] {
                let result = with_thread_count(threads, || sspc.run(&ds, sup, 7).unwrap());
                assert_results_identical(
                    &reference,
                    &result,
                    &format!("{scheme:?} at {threads} threads"),
                );
            }
        }
    }
}

/// The full fast path (columnar + parallel + scratch reuse) reproduces the
/// reference scalar path bit-for-bit.
#[test]
fn run_equals_run_naive_bitwise() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ds = planted(150, 24, 3, 99);
    let sup = Supervision::none()
        .label_object(ObjectId(2), ClusterId(0))
        .label_object(ObjectId(3), ClusterId(0));
    for scheme in [
        ThresholdScheme::MFraction(0.5),
        ThresholdScheme::PValue(0.05),
    ] {
        let sspc = Sspc::new(SspcParams::new(3).with_threshold(scheme)).unwrap();
        for seed in 0..3u64 {
            let naive = sspc.run_naive(&ds, &sup, seed).unwrap();
            for threads in [1, 4] {
                let fast = with_thread_count(threads, || sspc.run(&ds, &sup, seed).unwrap());
                assert_results_identical(
                    &naive,
                    &fast,
                    &format!("{scheme:?} seed {seed} threads {threads}"),
                );
            }
        }
    }
}

/// The rayon-convention env var is honored too: `RAYON_NUM_THREADS=1,2,8`
/// all produce the same output.
#[test]
fn run_is_reproducible_across_rayon_num_threads() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ds = planted(200, 20, 2, 5);
    let sspc =
        Sspc::new(SspcParams::new(2).with_threshold(ThresholdScheme::MFraction(0.5))).unwrap();
    let mut results = Vec::new();
    for threads in [1, 2, 8] {
        std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
        results.push(sspc.run(&ds, &Supervision::none(), 3).unwrap());
        std::env::remove_var("RAYON_NUM_THREADS");
    }
    assert_results_identical(&results[0], &results[1], "RAYON_NUM_THREADS 1 vs 2");
    assert_results_identical(&results[0], &results[2], "RAYON_NUM_THREADS 1 vs 8");
}

/// The delta-driven incremental refit engine (PR 2) must be invisible in
/// the results: `incremental = true` (the default) and `incremental =
/// false` (the PR-1 batch path) produce bit-identical `SspcResult`s, and
/// both match `run_naive`, at 1, 2, and 8 threads.
///
/// The engine's own routing thresholds would send most of this small
/// workload's deltas to batch refits, so the test also runs with the
/// policy overrides forcing *every* changed cluster through the
/// incremental structures (`SSPC_DELTA_CUTOVER_DIV=1`,
/// `SSPC_INCR_STREAK=0`) — exercising the order-statistics maintenance,
/// the moment-drift margins, and the re-canonicalization machinery as
/// hard as possible.
#[test]
fn incremental_equals_batch_and_naive_bitwise() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ds = planted(600, 24, 3, 4242);
    let sup = Supervision::none()
        .label_object(ObjectId(0), ClusterId(0))
        .label_object(ObjectId(1), ClusterId(0))
        .label_object(ObjectId(200), ClusterId(1))
        .label_object(ObjectId(201), ClusterId(1));
    for scheme in [
        ThresholdScheme::MFraction(0.5),
        ThresholdScheme::PValue(0.05),
    ] {
        // Long runs (library-default termination) so the trajectory has a
        // genuine stabilized, delta-dominated phase.
        let params = SspcParams::new(3).with_threshold(scheme);
        let incremental = Sspc::new(params.clone()).unwrap();
        let batch = Sspc::new(params.with_incremental(false)).unwrap();
        for seed in [7u64, 19] {
            let naive = incremental.run_naive(&ds, &sup, seed).unwrap();
            let reference = with_thread_count(1, || batch.run(&ds, &sup, seed).unwrap());
            assert_results_identical(&naive, &reference, &format!("{scheme:?} batch vs naive"));
            for threads in [1usize, 2, 8] {
                let incr = with_thread_count(threads, || incremental.run(&ds, &sup, seed).unwrap());
                assert_results_identical(
                    &naive,
                    &incr,
                    &format!("{scheme:?} seed {seed} incremental at {threads} threads"),
                );
            }
            // Forced-incremental stress run: every changed cluster routes
            // through the delta structures, at several thread counts.
            std::env::set_var("SSPC_DELTA_CUTOVER_DIV", "1");
            std::env::set_var("SSPC_INCR_STREAK", "0");
            for threads in [1usize, 2, 8] {
                let forced =
                    with_thread_count(threads, || incremental.run(&ds, &sup, seed).unwrap());
                assert_results_identical(
                    &naive,
                    &forced,
                    &format!("{scheme:?} seed {seed} forced-incremental at {threads} threads"),
                );
            }
            std::env::remove_var("SSPC_DELTA_CUTOVER_DIV");
            std::env::remove_var("SSPC_INCR_STREAK");
        }
    }
}

/// The unified `ProjectedClusterer` API is a bit-transparent wrapper: the
/// fast path through `cluster()` equals the naive path through
/// `cluster_naive()` at 1, 2, and 8 threads — same guarantee as
/// `run`/`run_naive`, asserted on the canonical `Clustering` (timing
/// excluded: it is the one legitimately run-dependent field).
#[test]
fn trait_cluster_equals_cluster_naive_bitwise() {
    use sspc::ProjectedClusterer;
    let _guard = ENV_LOCK.lock().unwrap();
    let ds = planted(150, 24, 3, 99);
    let sup = Supervision::none()
        .label_object(ObjectId(2), ClusterId(0))
        .label_object(ObjectId(3), ClusterId(0));
    let sspc =
        Sspc::new(SspcParams::new(3).with_threshold(ThresholdScheme::MFraction(0.5))).unwrap();
    for seed in 0..2u64 {
        let naive = sspc.cluster_naive(&ds, &sup, seed).unwrap();
        let direct = sspc.run(&ds, &sup, seed).unwrap();
        for threads in [1usize, 2, 8] {
            let fast = with_thread_count(threads, || sspc.cluster(&ds, &sup, seed).unwrap());
            let what = format!("trait path, seed {seed}, {threads} threads");
            assert_eq!(fast.assignment(), naive.assignment(), "{what}: assignment");
            assert_eq!(
                fast.all_selected_dims(),
                naive.all_selected_dims(),
                "{what}: dims"
            );
            assert_eq!(
                fast.objective().to_bits(),
                naive.objective().to_bits(),
                "{what}: objective bits"
            );
            assert_eq!(fast.iterations(), naive.iterations(), "{what}: iterations");
            // And the trait path reports exactly what `Sspc::run` reports.
            assert_eq!(fast.assignment(), direct.assignment(), "{what}: vs run()");
            assert_eq!(
                fast.objective().to_bits(),
                direct.objective().to_bits(),
                "{what}: objective vs run()"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// The transposed assignment kernel produces bit-identical gains and
    /// identical argmax decisions to the row-wise kernel on random
    /// datasets, candidate shapes (including empty dimension sets), and
    /// block partitions — with threshold rows mixing positive, zero, and
    /// negative entries so the degenerate-dimension branch (whose explicit
    /// `+ 0.0` turns a `-0.0` accumulator positive) is exercised.
    #[test]
    fn prop_transposed_assignment_equals_row_bitwise(
        n in 1usize..260,
        d in 1usize..14,
        k in 1usize..5,
        seed in 0u64..10_000,
    ) {
        let mut rng = seeded_rng(seed);
        let values: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let ds = Dataset::from_rows(n, d, values).unwrap();
        let mut reps: Vec<Vec<f64>> = Vec::new();
        let mut dims_list: Vec<Vec<DimId>> = Vec::new();
        let mut t_rows: Vec<Vec<f64>> = Vec::new();
        for _ in 0..k {
            reps.push((0..d).map(|_| rng.gen_range(-100.0..100.0)).collect());
            dims_list.push(
                (0..d)
                    .filter(|_| rng.gen_range(0.0..1.0) < 0.6)
                    .map(DimId)
                    .collect(),
            );
            t_rows.push(
                (0..d)
                    .map(|_| match rng.gen_range(0u32..4) {
                        0 => 0.0,
                        1 => -1.0,
                        _ => rng.gen_range(0.1..50.0),
                    })
                    .collect(),
            );
        }
        let candidates: Vec<AssignCandidate<'_>> = (0..k)
            .map(|c| AssignCandidate {
                rep: &reps[c],
                dims: &dims_list[c],
                threshold_row: &t_rows[c],
            })
            .collect();
        // A random partition of [0, n) into blocks, like the blocked
        // transposed pass but with arbitrary (not just ASSIGN_BLOCK-sized)
        // block lengths.
        let mut gains = Vec::new();
        let mut start = 0usize;
        while start < n {
            let block_len = rng.gen_range(1..=(n - start));
            assignment_gains_transposed(&ds, start, block_len, &candidates, &mut gains);
            for i in 0..block_len {
                let row = ds.row(ObjectId(start + i));
                let mut best_gain = 0.0f64;
                let mut best = None;
                for (c, cand) in candidates.iter().enumerate() {
                    let g_row =
                        assignment_gain_row(row, cand.rep, cand.dims, cand.threshold_row);
                    prop_assert_eq!(
                        g_row.to_bits(),
                        gains[c * block_len + i].to_bits(),
                        "gain bits diverged: object {}, candidate {}", start + i, c
                    );
                    if g_row > best_gain {
                        best_gain = g_row;
                        best = Some(c);
                    }
                }
                prop_assert_eq!(
                    assignment_argmax(&gains, block_len, i),
                    best,
                    "argmax diverged at object {}", start + i
                );
            }
            start += block_len;
        }
    }
}

/// The assignment-path router (`SSPC_ASSIGN_PATH`) must be invisible in
/// the results: forcing `row` and forcing `transposed` each produce output
/// bit-identical to `run_naive`, at 1, 2, and 8 threads. The workload is
/// large enough (n ≥ the transposed block size) that the forced transposed
/// path genuinely blocks and the auto route would engage it too.
#[test]
fn forced_assign_paths_equal_naive_bitwise() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ds = planted(1500, 24, 3, 2026);
    let sup = Supervision::none()
        .label_object(ObjectId(0), ClusterId(0))
        .label_object(ObjectId(500), ClusterId(1));
    for scheme in [
        ThresholdScheme::MFraction(0.5),
        ThresholdScheme::PValue(0.05),
    ] {
        let sspc = Sspc::new(SspcParams::new(3).with_threshold(scheme)).unwrap();
        let naive = sspc.run_naive(&ds, &sup, 11).unwrap();
        for path in ["row", "transposed"] {
            std::env::set_var("SSPC_ASSIGN_PATH", path);
            for threads in [1usize, 2, 8] {
                let forced = with_thread_count(threads, || sspc.run(&ds, &sup, 11).unwrap());
                assert_results_identical(
                    &naive,
                    &forced,
                    &format!("{scheme:?} forced {path} at {threads} threads"),
                );
            }
            std::env::remove_var("SSPC_ASSIGN_PATH");
        }
    }
}

/// Thread-count independence also holds for larger-than-toy inputs where
/// the parallel chunking actually splits the data.
#[test]
fn chunked_assignment_matches_serial_on_larger_input() {
    let _guard = ENV_LOCK.lock().unwrap();
    let ds = planted(900, 12, 4, 7);
    let sspc = Sspc::new(
        SspcParams::new(4)
            .with_threshold(ThresholdScheme::MFraction(0.5))
            .with_termination(3, 12),
    )
    .unwrap();
    let serial = with_thread_count(1, || sspc.run(&ds, &Supervision::none(), 11).unwrap());
    let parallel = with_thread_count(6, || sspc.run(&ds, &Supervision::none(), 11).unwrap());
    assert_results_identical(&serial, &parallel, "900-object run");
}
