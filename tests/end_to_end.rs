//! Cross-crate integration tests: datagen → algorithms → metrics, asserting
//! the relationships the paper's evaluation is built on.

use sspc::{Sspc, SspcParams, Supervision, ThresholdScheme};
use sspc_baselines::{clarans, harp, proclus};
use sspc_common::rng::derive_seed;
use sspc_common::{ClusterId, Result};
use sspc_datagen::{generate, GeneratedData, GeneratorConfig};
use sspc_metrics::{adjusted_rand_index, OutlierPolicy};

/// A moderately easy projected-clustering dataset: 20% relevant dims.
fn easy() -> GeneratedData {
    generate(
        &GeneratorConfig {
            n: 400,
            d: 50,
            k: 4,
            avg_cluster_dims: 10,
            ..Default::default()
        },
        31,
    )
    .unwrap()
}

/// A hard dataset: 6% relevant dims — full-space methods should fail here.
fn hard() -> GeneratedData {
    generate(
        &GeneratorConfig {
            n: 500,
            d: 100,
            k: 4,
            avg_cluster_dims: 6,
            ..Default::default()
        },
        37,
    )
    .unwrap()
}

fn ari(data: &GeneratedData, produced: &[Option<ClusterId>]) -> f64 {
    adjusted_rand_index(data.truth.assignment(), produced, OutlierPolicy::AsCluster).unwrap()
}

fn best_sspc(data: &GeneratedData, params: SspcParams, runs: usize, seed: u64) -> Result<f64> {
    let sspc = Sspc::new(params)?;
    let mut best: Option<sspc::SspcResult> = None;
    for r in 0..runs {
        let result = sspc.run(
            &data.dataset,
            &Supervision::none(),
            derive_seed(seed, r as u64),
        )?;
        if best
            .as_ref()
            .is_none_or(|b| result.objective() > b.objective())
        {
            best = Some(result);
        }
    }
    Ok(ari(data, best.unwrap().assignment()))
}

#[test]
fn sspc_recovers_easy_planted_clusters() {
    let data = easy();
    let params = SspcParams::new(4).with_threshold(ThresholdScheme::MFraction(0.5));
    let score = best_sspc(&data, params, 5, 1).unwrap();
    assert!(score > 0.9, "SSPC ARI {score} on an easy dataset");
}

#[test]
fn sspc_beats_clarans_on_low_dimensional_clusters() {
    // The paper's core claim: projected beats non-projected when relevant
    // dimensions are few.
    let data = hard();
    let sspc_score = best_sspc(
        &data,
        SspcParams::new(4).with_threshold(ThresholdScheme::MFraction(0.5)),
        5,
        2,
    )
    .unwrap();
    let clarans = clarans::run(&data.dataset, &clarans::ClaransParams::new(4), 2).unwrap();
    let clarans_score = ari(&data, clarans.assignment());
    assert!(
        sspc_score > clarans_score + 0.3,
        "SSPC {sspc_score} should clearly beat CLARANS {clarans_score} at 6% dims"
    );
}

#[test]
fn both_threshold_schemes_work_on_easy_data() {
    let data = easy();
    let m = best_sspc(
        &data,
        SspcParams::new(4).with_threshold(ThresholdScheme::MFraction(0.5)),
        3,
        3,
    )
    .unwrap();
    let p = best_sspc(
        &data,
        SspcParams::new(4).with_threshold(ThresholdScheme::PValue(0.05)),
        3,
        3,
    )
    .unwrap();
    assert!(m > 0.85, "m-scheme ARI {m}");
    assert!(p > 0.85, "p-scheme ARI {p}");
}

#[test]
fn proclus_works_with_correct_l_on_easy_data() {
    let data = easy();
    let result = proclus::run(&data.dataset, &proclus::ProclusParams::new(4, 10), 5).unwrap();
    let score = ari(&data, result.assignment());
    assert!(score > 0.7, "PROCLUS ARI {score} with correct l");
}

#[test]
fn harp_works_at_moderate_dimensionality() {
    let data = easy();
    let result = harp::run(&data.dataset, &harp::HarpParams::new(4)).unwrap();
    let score = ari(&data, result.assignment());
    assert!(score > 0.7, "HARP ARI {score} at 20% dims");
}

#[test]
fn selected_dims_overlap_planted_dims() {
    let data = easy();
    let params = SspcParams::new(4).with_threshold(ThresholdScheme::MFraction(0.5));
    let result = Sspc::new(params)
        .unwrap()
        .run(&data.dataset, &Supervision::none(), 5)
        .unwrap();
    let q = sspc_metrics::dims::dim_selection_quality(
        data.truth.assignment(),
        &(0..4)
            .map(|c| data.truth.relevant_dims(ClusterId(c)).to_vec())
            .collect::<Vec<_>>(),
        result.assignment(),
        result.all_selected_dims(),
    )
    .unwrap();
    assert!(
        q.recall > 0.6,
        "dimension recall {} too low (precision {})",
        q.recall,
        q.precision
    );
}

#[test]
fn all_algorithms_cover_every_object_or_mark_outliers() {
    let data = easy();
    let n = data.dataset.n_objects();

    let s = Sspc::new(SspcParams::new(4))
        .unwrap()
        .run(&data.dataset, &Supervision::none(), 1)
        .unwrap();
    assert_eq!(s.assignment().len(), n);

    let c = clarans::run(&data.dataset, &clarans::ClaransParams::new(4), 1).unwrap();
    assert_eq!(c.assignment().len(), n);
    assert!(c.outliers().is_empty());

    let h = harp::run(&data.dataset, &harp::HarpParams::new(4)).unwrap();
    assert_eq!(h.assignment().len(), n);
    assert!(h.outliers().is_empty());

    let p = proclus::run(&data.dataset, &proclus::ProclusParams::new(4, 10), 1).unwrap();
    assert_eq!(p.assignment().len(), n);
}

#[test]
fn outlier_contaminated_data_is_handled() {
    let data = generate(
        &GeneratorConfig {
            n: 400,
            d: 50,
            k: 4,
            avg_cluster_dims: 10,
            outlier_fraction: 0.15,
            ..Default::default()
        },
        41,
    )
    .unwrap();
    let params = SspcParams::new(4).with_threshold(ThresholdScheme::MFraction(0.5));
    let result = Sspc::new(params)
        .unwrap()
        .run(&data.dataset, &Supervision::none(), 3)
        .unwrap();
    let score = ari(&data, result.assignment());
    assert!(score > 0.6, "ARI {score} under 15% contamination");
    // Reported outliers should be within a factor of ~2 of the truth.
    let q = sspc_metrics::outliers::outlier_quality(data.truth.assignment(), result.assignment())
        .unwrap();
    assert!(
        q.reported_outliers >= q.true_outliers / 2
            && q.reported_outliers <= q.true_outliers * 2 + 20,
        "reported {} vs true {}",
        q.reported_outliers,
        q.true_outliers
    );
}
