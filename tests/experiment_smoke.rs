//! Smoke tests of the experiment harness: the analytical figures run at
//! full fidelity (they are cheap); the clustering experiments are validated
//! on their building blocks so the suite stays fast — the full sweeps run
//! via `cargo run --release -p sspc-bench --bin experiments -- all`.

use sspc::{Sspc, SspcParams, Supervision, ThresholdScheme};
use sspc_baselines::proclus::ProclusParams;
use sspc_bench::experiments;
use sspc_bench::runner;
use sspc_bench::table::Table;
use sspc_datagen::{generate, GeneratorConfig};

#[test]
fn fig1_and_fig2_regenerate() {
    let t1 = experiments::fig1().unwrap();
    let t2 = experiments::fig2().unwrap();
    assert_eq!(t1.len(), 1);
    assert_eq!(t2.len(), 1);
    assert_eq!(t1[0].rows.len(), 10);
    assert_eq!(t2[0].rows.len(), 10);
    // Every probability cell parses as a float in [0, 1] (or is a dash).
    for table in t1.iter().chain(t2.iter()) {
        for row in &table.rows {
            for cell in &row[1..] {
                if cell != "-" {
                    let v: f64 = cell.parse().unwrap();
                    assert!((0.0..=1.0).contains(&v), "{cell}");
                }
            }
        }
    }
}

#[test]
fn tables_render_to_text() {
    let t = experiments::fig2().unwrap().remove(0);
    let s = t.to_string();
    assert!(s.contains("Fig. 2"));
    assert!(s.lines().count() > 10);
}

#[test]
fn runner_protocol_matches_paper_best_of_n() {
    let data = generate(
        &GeneratorConfig {
            n: 200,
            d: 30,
            k: 3,
            avg_cluster_dims: 6,
            ..Default::default()
        },
        9,
    )
    .unwrap();
    let sspc =
        Sspc::new(SspcParams::new(3).with_threshold(ThresholdScheme::MFraction(0.5))).unwrap();
    let t = runner::best_clustering_of(&sspc, &data.dataset, &Supervision::none(), 3, 4).unwrap();
    let ari = runner::ari_vs_truth(&data.truth, t.value.assignment()).unwrap();
    assert!(ari > 0.7, "best-of-3 ARI {ari}");

    let p = runner::best_clustering_of(
        &ProclusParams::new(3, 6).build(),
        &data.dataset,
        &Supervision::none(),
        3,
        4,
    )
    .unwrap();
    let ari = runner::ari_vs_truth(&data.truth, p.value.assignment()).unwrap();
    assert!(ari > 0.5, "PROCLUS best-of-3 ARI {ari}");
}

#[test]
fn table_num_formatting() {
    assert_eq!(Table::num(Some(1.0)), "1.000");
    assert_eq!(Table::num(None), "-");
}
