//! The frontend layer of the SSPC workspace: a dynamic algorithm registry
//! and the paper's experiment protocol, both speaking the unified
//! [`ProjectedClusterer`] contract from `sspc-common`.
//!
//! * [`registry`] — [`AnyClusterer`]: every algorithm in the workspace
//!   (SSPC plus the six baselines) constructed from a **name and string
//!   parameters**, for frontends that pick algorithms at runtime (the CLI,
//!   config files, a future server).
//! * [`experiment`] — the Sec. 5 protocol: N seeded restarts per
//!   algorithm, best-of-N by each algorithm's own objective sense, and
//!   outlier-aware ARI/NMI/purity against optional ground truth.
//!
//! # Registry usage
//!
//! Construct any algorithm from a name and `key=value` overrides:
//!
//! ```
//! use sspc_api::registry::{AnyClusterer, ParamMap};
//! use sspc_common::{Dataset, ProjectedClusterer, Supervision};
//!
//! let dataset = Dataset::from_rows(6, 2, vec![
//!     1.0, 1.1, 1.1, 0.9, 0.9, 1.0,
//!     9.0, 9.1, 9.1, 8.9, 8.9, 9.0,
//! ]).unwrap();
//! let clusterer =
//!     AnyClusterer::from_spec("clarans", 2, &ParamMap::default()).unwrap();
//! let clustering = clusterer
//!     .cluster(&dataset, &Supervision::none(), 7)
//!     .unwrap();
//! assert_eq!(clustering.algorithm(), "clarans");
//! ```
//!
//! # The experiment protocol
//!
//! [`compare_algorithms`] runs the paper's full Sec. 5 loop — a roster of
//! algorithms (built in one call with [`AnyClusterer::roster`]), N seeded
//! restarts each, winner by *internal* objective, external metrics against
//! ground truth:
//!
//! ```
//! use sspc_api::registry::{AnyClusterer, ParamMap};
//! use sspc_api::compare_algorithms;
//! use sspc_common::{ClusterId, Dataset, Supervision};
//!
//! let dataset = Dataset::from_rows(6, 2, vec![
//!     1.0, 1.1, 1.1, 0.9, 0.9, 1.0,
//!     9.0, 9.1, 9.1, 8.9, 8.9, 9.0,
//! ]).unwrap();
//! let truth: Vec<Option<ClusterId>> =
//!     vec![Some(ClusterId(0)), Some(ClusterId(0)), Some(ClusterId(0)),
//!          Some(ClusterId(1)), Some(ClusterId(1)), Some(ClusterId(1))];
//!
//! let scoped = ParamMap::parse_scoped("clarans.num-local=1").unwrap();
//! let roster = AnyClusterer::roster(&["clarans", "harp"], 2, &scoped).unwrap();
//! let reports = compare_algorithms(
//!     &roster, &dataset, &Supervision::none(), Some(&truth),
//!     /* runs */ 3, /* base seed */ 11,
//! ).unwrap();
//!
//! assert_eq!(reports.len(), 2);
//! assert_eq!(reports[1].runs_executed, 1); // HARP is deterministic
//! for report in &reports {
//!     let eval = report.evaluation.expect("truth was supplied");
//!     assert_eq!(eval.ari, 1.0); // two well-separated pairs of triples
//! }
//! ```
//!
//! The batch frontend over this API — JSON job submissions, a bounded
//! worker queue, status/result/health endpoints — lives in `sspc-server`;
//! the CLI's `cluster`/`compare`/`submit` subcommands are thin shells over
//! the same two modules.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiment;
pub mod registry;

pub use experiment::{best_of, compare_algorithms, AlgorithmReport, BestOf};
pub use registry::{AnyClusterer, ParamMap};
pub use sspc_common::{Clustering, ObjectiveSense, ProjectedClusterer, Supervision};
