//! The frontend layer of the SSPC workspace: a dynamic algorithm registry
//! and the paper's experiment protocol, both speaking the unified
//! [`ProjectedClusterer`] contract from `sspc-common`.
//!
//! * [`registry`] — [`AnyClusterer`]: every algorithm in the workspace
//!   (SSPC plus the six baselines) constructed from a **name and string
//!   parameters**, for frontends that pick algorithms at runtime (the CLI,
//!   config files, a future server).
//! * [`experiment`] — the Sec. 5 protocol: N seeded restarts per
//!   algorithm, best-of-N by each algorithm's own objective sense, and
//!   outlier-aware ARI/NMI/purity against optional ground truth.
//!
//! ```
//! use sspc_api::registry::{AnyClusterer, ParamMap};
//! use sspc_common::{Dataset, ProjectedClusterer, Supervision};
//!
//! let dataset = Dataset::from_rows(6, 2, vec![
//!     1.0, 1.1, 1.1, 0.9, 0.9, 1.0,
//!     9.0, 9.1, 9.1, 8.9, 8.9, 9.0,
//! ]).unwrap();
//! let clusterer =
//!     AnyClusterer::from_spec("clarans", 2, &ParamMap::default()).unwrap();
//! let clustering = clusterer
//!     .cluster(&dataset, &Supervision::none(), 7)
//!     .unwrap();
//! assert_eq!(clustering.algorithm(), "clarans");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiment;
pub mod registry;

pub use experiment::{best_of, compare_algorithms, AlgorithmReport, BestOf};
pub use registry::{AnyClusterer, ParamMap};
pub use sspc_common::{Clustering, ObjectiveSense, ProjectedClusterer, Supervision};
