//! Name-and-string-parameters construction of any workspace algorithm.
//!
//! Frontends that choose algorithms at runtime (the CLI's `--algorithm`,
//! a config file, a request payload) go through [`AnyClusterer::from_spec`]:
//! a registry name from [`ALGORITHMS`] plus a [`ParamMap`] of `key=value`
//! overrides. Every algorithm gets workable defaults for everything except
//! `k`; unknown names and unrecognized keys fail with messages that list
//! what *is* available.

use sspc::{Sspc, SspcParams, ThresholdScheme};
use sspc_baselines::clarans::ClaransParams;
use sspc_baselines::clique::CliqueParams;
use sspc_baselines::doc::DocParams;
use sspc_baselines::harp::HarpParams;
use sspc_baselines::orclus::OrclusParams;
use sspc_baselines::proclus::ProclusParams;
use sspc_baselines::{Clarans, Clique, Doc, Harp, Orclus, Proclus};
use sspc_common::{Clustering, Dataset, Error, ProjectedClusterer, Result, Supervision};
use std::collections::BTreeMap;

/// Registry names of every available algorithm, in the order the paper's
/// comparison discusses them.
pub const ALGORITHMS: [&str; 7] = [
    "sspc", "proclus", "clarans", "harp", "doc", "orclus", "clique",
];

/// String parameters for [`AnyClusterer::from_spec`]: a `key=value` map
/// parsed from a comma-separated list (e.g. `"l=6,alpha=0.4"`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParamMap {
    values: BTreeMap<String, String>,
}

impl ParamMap {
    /// Parses a comma-separated `key=value` list. Empty input (or empty
    /// segments from trailing commas) yields an empty map.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] on segments without `=`, empty keys, or
    /// repeated keys.
    pub fn parse(spec: &str) -> Result<Self> {
        let mut values = BTreeMap::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some((key, value)) = part.split_once('=') else {
                return Err(Error::InvalidParameter(format!(
                    "parameter `{part}` is not of the form key=value"
                )));
            };
            let (key, value) = (key.trim(), value.trim());
            if key.is_empty() {
                return Err(Error::InvalidParameter(format!(
                    "parameter `{part}` has an empty key"
                )));
            }
            if values.insert(key.to_string(), value.to_string()).is_some() {
                return Err(Error::InvalidParameter(format!(
                    "parameter `{key}` given twice"
                )));
            }
        }
        Ok(ParamMap { values })
    }

    /// Parses a comma-separated `algorithm.key=value` list into one
    /// [`ParamMap`] per algorithm name — the `compare` frontend's format,
    /// where each override must say which algorithm it belongs to.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] on entries without the `algorithm.`
    /// prefix or malformed `key=value` parts; repeated keys for the same
    /// algorithm.
    pub fn parse_scoped(spec: &str) -> Result<BTreeMap<String, ParamMap>> {
        let mut scoped: BTreeMap<String, ParamMap> = BTreeMap::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some((scope, rest)) = part.split_once('.') else {
                return Err(Error::InvalidParameter(format!(
                    "scoped parameter `{part}` must be algorithm.key=value \
                     (e.g. proclus.l=6)"
                )));
            };
            let Some((key, value)) = rest.split_once('=') else {
                return Err(Error::InvalidParameter(format!(
                    "scoped parameter `{part}` is not of the form algorithm.key=value"
                )));
            };
            let (scope, key, value) = (scope.trim(), key.trim(), value.trim());
            if scope.is_empty() || key.is_empty() {
                return Err(Error::InvalidParameter(format!(
                    "scoped parameter `{part}` has an empty algorithm or key"
                )));
            }
            let map = scoped.entry(scope.to_string()).or_default();
            if map
                .values
                .insert(key.to_string(), value.to_string())
                .is_some()
            {
                return Err(Error::InvalidParameter(format!(
                    "parameter `{scope}.{key}` given twice"
                )));
            }
        }
        Ok(scoped)
    }

    /// Inserts (or replaces) one key, builder-style.
    #[must_use]
    pub fn set(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.values.insert(key.into(), value.into());
        self
    }

    /// Inserts one key, erroring when it is already present — for
    /// frontends merging a dedicated flag into a generic parameter list,
    /// where a silent overwrite would hide a conflicting user input.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] naming the duplicated key.
    pub fn set_new(mut self, key: &str, value: impl Into<String>) -> Result<Self> {
        if self.values.contains_key(key) {
            return Err(Error::InvalidParameter(format!(
                "parameter `{key}` given twice (as a flag and in the parameter list)"
            )));
        }
        self.values.insert(key.to_string(), value.into());
        Ok(self)
    }

    /// True when no parameters are present.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The parameter names, sorted — for frontends reusing the `key=value`
    /// grammar for their own key sets (e.g. the CLI's `--generate` spec)
    /// that need to reject typos themselves.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }

    /// Rejects keys outside `known`, naming the offender and what the
    /// algorithm accepts.
    fn check_known(&self, algorithm: &str, known: &[&str]) -> Result<()> {
        for key in self.values.keys() {
            if !known.contains(&key.as_str()) {
                return Err(Error::InvalidParameter(format!(
                    "algorithm `{algorithm}` does not accept parameter `{key}` \
                     (accepted: {})",
                    if known.is_empty() {
                        "none".to_string()
                    } else {
                        known.join(", ")
                    }
                )));
            }
        }
        Ok(())
    }

    /// A parsed value, when present.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when the value does not parse as `T`.
    pub fn parsed_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>> {
        match self.values.get(key) {
            None => Ok(None),
            Some(raw) => raw.parse().map(Some).map_err(|_| {
                Error::InvalidParameter(format!("parameter `{key}`: cannot parse `{raw}`"))
            }),
        }
    }

    /// A parsed value with a default.
    fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        Ok(self.parsed_opt(key)?.unwrap_or(default))
    }
}

/// Any workspace algorithm behind one concrete type — the dynamic-dispatch
/// face of [`ProjectedClusterer`], for frontends that pick algorithms by
/// name at runtime. Construct with [`AnyClusterer::from_spec`] or wrap a
/// concrete clusterer via the `From` impls.
#[derive(Debug, Clone)]
pub enum AnyClusterer {
    /// Semi-supervised projected clustering (the paper's algorithm).
    Sspc(Sspc),
    /// PROCLUS (Aggarwal et al., SIGMOD 1999).
    Proclus(Proclus),
    /// CLARANS (Ng & Han, VLDB 1994) — the non-projected reference.
    Clarans(Clarans),
    /// HARP (Yip, Cheung & Ng, TKDE 2004).
    Harp(Harp),
    /// DOC/FastDOC (Procopiuc et al., SIGMOD 2002).
    Doc(Doc),
    /// ORCLUS (Aggarwal & Yu, SIGMOD 2000).
    Orclus(Orclus),
    /// CLIQUE (Agrawal et al., SIGMOD 1998).
    Clique(Clique),
}

impl AnyClusterer {
    /// Builds an algorithm from its registry name, the target cluster
    /// count `k`, and string parameter overrides.
    ///
    /// Accepted keys per algorithm (all optional):
    ///
    /// | name      | keys                                                        |
    /// |-----------|-------------------------------------------------------------|
    /// | `sspc`    | `m` (threshold fraction) **xor** `p` (p-value)              |
    /// | `proclus` | `l` (avg dims/cluster, default 4)                           |
    /// | `clarans` | `num-local`, `max-neighbor`                                 |
    /// | `harp`    | `levels`                                                    |
    /// | `doc`     | `w` (half-width, default 4.0 — tuned to the datagen range), `beta`, `alpha` |
    /// | `orclus`  | `l` (subspace dims, default 4), `alpha`, `k0`               |
    /// | `clique`  | `xi`, `tau`, `max-dim`, `max-units`                         |
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] for unknown names (the message lists
    /// [`ALGORITHMS`]), unrecognized keys (the message lists the accepted
    /// keys), unparseable values, or out-of-domain parameters caught by the
    /// algorithm's own validation.
    pub fn from_spec(name: &str, k: usize, params: &ParamMap) -> Result<AnyClusterer> {
        match name {
            "sspc" => {
                params.check_known(name, &["m", "p"])?;
                let m: Option<f64> = params.parsed_opt("m")?;
                let p: Option<f64> = params.parsed_opt("p")?;
                let threshold = match (m, p) {
                    (Some(_), Some(_)) => {
                        return Err(Error::InvalidParameter(
                            "give either m or p, not both".into(),
                        ))
                    }
                    (Some(m), None) => ThresholdScheme::MFraction(m),
                    (None, Some(p)) => ThresholdScheme::PValue(p),
                    (None, None) => ThresholdScheme::MFraction(0.5),
                };
                Ok(AnyClusterer::Sspc(Sspc::new(
                    SspcParams::new(k).with_threshold(threshold),
                )?))
            }
            "proclus" => {
                params.check_known(name, &["l"])?;
                let l = params.parsed_or("l", 4)?;
                Ok(AnyClusterer::Proclus(ProclusParams::new(k, l).build()))
            }
            "clarans" => {
                params.check_known(name, &["num-local", "max-neighbor"])?;
                let mut p = ClaransParams::new(k);
                p.num_local = params.parsed_or("num-local", p.num_local)?;
                p.max_neighbor = params.parsed_opt("max-neighbor")?;
                Ok(AnyClusterer::Clarans(p.build()))
            }
            "harp" => {
                params.check_known(name, &["levels"])?;
                let mut p = HarpParams::new(k);
                p.levels = params.parsed_or("levels", p.levels)?;
                Ok(AnyClusterer::Harp(p.build()))
            }
            "doc" => {
                params.check_known(name, &["w", "beta", "alpha"])?;
                // The default half-width matches what the bench experiments
                // use on sspc-datagen's default [0, 100] value range; real
                // data wants an explicit `w`.
                let w = params.parsed_or("w", 4.0)?;
                let mut p = DocParams::new(k, w);
                p.beta = params.parsed_or("beta", p.beta)?;
                p.alpha = params.parsed_or("alpha", p.alpha)?;
                Ok(AnyClusterer::Doc(p.build()))
            }
            "orclus" => {
                params.check_known(name, &["l", "alpha", "k0"])?;
                let l = params.parsed_or("l", 4)?;
                let mut p = OrclusParams::new(k, l);
                p.alpha = params.parsed_or("alpha", p.alpha)?;
                p.k0_factor = params.parsed_or("k0", p.k0_factor)?;
                Ok(AnyClusterer::Orclus(p.build()))
            }
            "clique" => {
                params.check_known(name, &["xi", "tau", "max-dim", "max-units"])?;
                let mut p = CliqueParams::new(k);
                p.xi = params.parsed_or("xi", p.xi)?;
                p.tau = params.parsed_or("tau", p.tau)?;
                p.max_subspace_dim = params.parsed_or("max-dim", p.max_subspace_dim)?;
                p.max_units = params.parsed_or("max-units", p.max_units)?;
                Ok(AnyClusterer::Clique(p.build()))
            }
            other => Err(Error::InvalidParameter(format!(
                "unknown algorithm `{other}` (available: {})",
                ALGORITHMS.join(", ")
            ))),
        }
    }

    /// Builds the roster every `compare` frontend shares: one clusterer
    /// per registry name, each configured from its entry in `scoped` (the
    /// output of [`ParamMap::parse_scoped`]). A scope naming an algorithm
    /// that is not in `names` is rejected — a parameter silently applying
    /// to nothing is almost certainly a typo.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] for an empty `names`, a stray scope, or
    /// any [`AnyClusterer::from_spec`] failure.
    pub fn roster(
        names: &[&str],
        k: usize,
        scoped: &BTreeMap<String, ParamMap>,
    ) -> Result<Vec<AnyClusterer>> {
        if names.is_empty() {
            return Err(Error::InvalidParameter(
                "the algorithm roster is empty".into(),
            ));
        }
        for scope in scoped.keys() {
            if !names.contains(&scope.as_str()) {
                return Err(Error::InvalidParameter(format!(
                    "parameters name `{scope}`, which is not among the requested \
                     algorithms ({})",
                    names.join(", ")
                )));
            }
        }
        names
            .iter()
            .map(|name| {
                let params = scoped.get(*name).cloned().unwrap_or_default();
                AnyClusterer::from_spec(name, k, &params)
            })
            .collect()
    }

    /// The inner clusterer as a trait object.
    fn inner(&self) -> &dyn ProjectedClusterer {
        match self {
            AnyClusterer::Sspc(c) => c,
            AnyClusterer::Proclus(c) => c,
            AnyClusterer::Clarans(c) => c,
            AnyClusterer::Harp(c) => c,
            AnyClusterer::Doc(c) => c,
            AnyClusterer::Orclus(c) => c,
            AnyClusterer::Clique(c) => c,
        }
    }
}

impl ProjectedClusterer for AnyClusterer {
    fn name(&self) -> &str {
        self.inner().name()
    }

    fn cluster(
        &self,
        dataset: &Dataset,
        supervision: &Supervision,
        seed: u64,
    ) -> Result<Clustering> {
        self.inner().cluster(dataset, supervision, seed)
    }

    fn is_deterministic(&self) -> bool {
        self.inner().is_deterministic()
    }
}

impl From<Sspc> for AnyClusterer {
    fn from(c: Sspc) -> Self {
        AnyClusterer::Sspc(c)
    }
}
impl From<Proclus> for AnyClusterer {
    fn from(c: Proclus) -> Self {
        AnyClusterer::Proclus(c)
    }
}
impl From<Clarans> for AnyClusterer {
    fn from(c: Clarans) -> Self {
        AnyClusterer::Clarans(c)
    }
}
impl From<Harp> for AnyClusterer {
    fn from(c: Harp) -> Self {
        AnyClusterer::Harp(c)
    }
}
impl From<Doc> for AnyClusterer {
    fn from(c: Doc) -> Self {
        AnyClusterer::Doc(c)
    }
}
impl From<Orclus> for AnyClusterer {
    fn from(c: Orclus) -> Self {
        AnyClusterer::Orclus(c)
    }
}
impl From<Clique> for AnyClusterer {
    fn from(c: Clique) -> Self {
        AnyClusterer::Clique(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_map_parses_and_rejects() {
        let m = ParamMap::parse("l=6, alpha=0.4,").unwrap();
        assert_eq!(m.parsed_opt::<usize>("l").unwrap(), Some(6));
        assert_eq!(m.parsed_or("alpha", 0.0).unwrap(), 0.4);
        assert_eq!(m.parsed_or("missing", 7usize).unwrap(), 7);
        assert!(ParamMap::parse("").unwrap().is_empty());

        assert!(ParamMap::parse("novalue").is_err());
        assert!(ParamMap::parse("=3").is_err());
        assert!(ParamMap::parse("a=1,a=2").is_err());
        assert!(m.parsed_opt::<usize>("alpha").is_err());
    }

    #[test]
    fn set_new_rejects_duplicates_set_replaces() {
        let m = ParamMap::parse("m=0.3").unwrap();
        assert!(m.clone().set_new("m", "0.5").is_err());
        let merged = m.clone().set_new("p", "0.05").unwrap();
        assert_eq!(merged.parsed_opt::<f64>("p").unwrap(), Some(0.05));
        assert_eq!(m.set("m", "0.5").parsed_opt::<f64>("m").unwrap(), Some(0.5));
    }

    #[test]
    fn scoped_param_map_splits_per_algorithm() {
        let scoped = ParamMap::parse_scoped("proclus.l=6,doc.w=2.5,doc.beta=0.3").unwrap();
        assert_eq!(scoped.len(), 2);
        assert_eq!(scoped["proclus"].parsed_opt::<usize>("l").unwrap(), Some(6));
        assert_eq!(scoped["doc"].parsed_opt::<f64>("w").unwrap(), Some(2.5));
        assert!(ParamMap::parse_scoped("l=6").is_err());
        assert!(ParamMap::parse_scoped("doc.w=1,doc.w=2").is_err());
        assert!(ParamMap::parse_scoped("").unwrap().is_empty());
    }

    #[test]
    fn every_registry_name_constructs() {
        for name in ALGORITHMS {
            let c = AnyClusterer::from_spec(name, 3, &ParamMap::default()).unwrap();
            assert_eq!(c.name(), name);
        }
    }

    #[test]
    fn unknown_algorithm_lists_available_names() {
        let err = AnyClusterer::from_spec("kmeans", 3, &ParamMap::default()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown algorithm `kmeans`"), "{msg}");
        for name in ALGORITHMS {
            assert!(msg.contains(name), "{msg} missing {name}");
        }
    }

    #[test]
    fn unknown_key_lists_accepted_keys() {
        let params = ParamMap::default().set("w", "3.0");
        let err = AnyClusterer::from_spec("proclus", 3, &params).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("does not accept parameter `w`"), "{msg}");
        assert!(msg.contains('l'), "{msg}");
    }

    #[test]
    fn sspc_threshold_keys_are_exclusive_and_validated() {
        let both = ParamMap::default().set("m", "0.5").set("p", "0.05");
        assert!(AnyClusterer::from_spec("sspc", 3, &both).is_err());
        // Out-of-domain m is caught by SspcParams::validate.
        let bad = ParamMap::default().set("m", "0.0");
        assert!(AnyClusterer::from_spec("sspc", 3, &bad).is_err());
        let p = ParamMap::default().set("p", "0.05");
        AnyClusterer::from_spec("sspc", 3, &p).unwrap();
    }

    #[test]
    fn overrides_reach_the_params() {
        let params = ParamMap::default().set("l", "7");
        let AnyClusterer::Proclus(p) = AnyClusterer::from_spec("proclus", 3, &params).unwrap()
        else {
            panic!("expected proclus");
        };
        assert_eq!(p.params().l, 7);

        let params = ParamMap::default().set("tau", "0.2").set("max-dim", "3");
        let AnyClusterer::Clique(c) = AnyClusterer::from_spec("clique", 2, &params).unwrap() else {
            panic!("expected clique");
        };
        assert_eq!(c.params().tau, 0.2);
        assert_eq!(c.params().max_subspace_dim, 3);
    }

    #[test]
    fn roster_builds_and_rejects_stray_scopes() {
        let scoped = ParamMap::parse_scoped("proclus.l=7,clarans.num-local=1").unwrap();
        let roster = AnyClusterer::roster(&["sspc", "proclus", "clarans"], 3, &scoped).unwrap();
        assert_eq!(roster.len(), 3);
        let AnyClusterer::Proclus(p) = &roster[1] else {
            panic!("expected proclus at index 1");
        };
        assert_eq!(p.params().l, 7);

        // Scopes must refer to algorithms actually in the roster.
        let err = AnyClusterer::roster(&["sspc"], 3, &scoped).unwrap_err();
        assert!(
            err.to_string()
                .contains("not among the requested algorithms"),
            "{err}"
        );
        assert!(AnyClusterer::roster(&[], 3, &Default::default()).is_err());
    }

    #[test]
    fn determinism_flags_survive_dispatch() {
        let harp = AnyClusterer::from_spec("harp", 2, &ParamMap::default()).unwrap();
        let doc = AnyClusterer::from_spec("doc", 2, &ParamMap::default()).unwrap();
        assert!(harp.is_deterministic());
        assert!(!doc.is_deterministic());
    }
}
