//! The paper's Sec. 5 experiment protocol over the unified contract.
//!
//! "We repeated each experiment 10 times, and report only the result that
//! gives the best algorithm-specific objective score" — i.e. restarts are
//! selected by each algorithm's **own** internal score under its own
//! [`ObjectiveSense`](sspc_common::ObjectiveSense), *not* by ARI (which
//! would leak the ground truth). [`best_of`] implements that for any
//! [`ProjectedClusterer`]; [`compare_algorithms`] runs it for a whole
//! roster and scores each winner against optional ground truth with the
//! outlier-aware metric bundle from `sspc-metrics`.

use sspc_common::rng::derive_seed;
use sspc_common::{ClusterId, Clustering, Dataset, ProjectedClusterer, Result, Supervision};
use sspc_metrics::{evaluate_partition, OutlierPolicy, PartitionEvaluation};

/// The winner of a best-of-N restart loop, with the cost of finding it.
#[derive(Debug, Clone)]
pub struct BestOf {
    /// The restart with the best internal objective (per the algorithm's
    /// sense); its `seconds()` is that single run's time.
    pub best: Clustering,
    /// Restarts actually executed — 1 for deterministic algorithms
    /// regardless of the requested count.
    pub runs_executed: usize,
    /// Wall-clock seconds summed over every executed restart (what the
    /// paper's timing figures report).
    pub total_seconds: f64,
}

/// Runs `clusterer` up to `runs` times with seeds derived from `base_seed`
/// and keeps the restart with the best internal objective.
///
/// Deterministic algorithms ([`ProjectedClusterer::is_deterministic`]) run
/// exactly once — the paper's best-of-10 selects identical results for
/// HARP, so the repeats would be pure waste.
///
/// # Errors
///
/// Propagates the first run failure, including
/// [`sspc_common::Error::DeadlineExceeded`] when the caller installed a
/// cooperative deadline (checked once per restart here, and once per
/// iteration inside the core loop).
pub fn best_of<C: ProjectedClusterer + ?Sized>(
    clusterer: &C,
    dataset: &Dataset,
    supervision: &Supervision,
    runs: usize,
    base_seed: u64,
) -> Result<BestOf> {
    let runs = if clusterer.is_deterministic() {
        1
    } else {
        runs.max(1)
    };
    let mut best: Option<Clustering> = None;
    let mut total_seconds = 0.0;
    for r in 0..runs {
        // Cancellation point between restarts: algorithms without an
        // internal check (the baselines) still stop at restart granularity.
        sspc_common::cancel::check()?;
        let result = clusterer.cluster(dataset, supervision, derive_seed(base_seed, r as u64))?;
        total_seconds += result.seconds();
        if best.as_ref().is_none_or(|b| result.is_better_than(b)) {
            best = Some(result);
        }
    }
    Ok(BestOf {
        best: best.expect("runs >= 1"),
        runs_executed: runs,
        total_seconds,
    })
}

/// One algorithm's row in a comparison: its best-of-N solution plus the
/// external metrics when ground truth was supplied.
#[derive(Debug, Clone)]
pub struct AlgorithmReport {
    /// Registry name of the algorithm.
    pub algorithm: String,
    /// The best restart (see [`BestOf::best`]).
    pub best: Clustering,
    /// Restarts executed (see [`BestOf::runs_executed`]).
    pub runs_executed: usize,
    /// Total seconds across restarts (see [`BestOf::total_seconds`]).
    pub total_seconds: f64,
    /// ARI/NMI/purity against the ground truth, when one was given.
    pub evaluation: Option<PartitionEvaluation>,
}

/// Runs the full comparison protocol: for each clusterer, best-of-`runs`
/// restarts (seeds decorrelated per algorithm from `base_seed`), then —
/// when `truth` is present — outlier-aware ARI/NMI/purity of the winner
/// under [`OutlierPolicy::AsCluster`], the consistent treatment across
/// algorithms with and without outlier lists (discarding real members
/// costs accuracy).
///
/// The same `supervision` is handed to every algorithm, mirroring the
/// paper's setup: all competitors receive the labeled inputs, and only
/// SSPC can exploit them.
///
/// # Errors
///
/// Propagates the first run or evaluation failure.
pub fn compare_algorithms<C: ProjectedClusterer>(
    clusterers: &[C],
    dataset: &Dataset,
    supervision: &Supervision,
    truth: Option<&[Option<ClusterId>]>,
    runs: usize,
    base_seed: u64,
) -> Result<Vec<AlgorithmReport>> {
    let mut reports = Vec::with_capacity(clusterers.len());
    for (i, clusterer) in clusterers.iter().enumerate() {
        let outcome = best_of(
            clusterer,
            dataset,
            supervision,
            runs,
            derive_seed(base_seed, i as u64),
        )?;
        let evaluation = match truth {
            Some(t) => Some(evaluate_partition(
                t,
                outcome.best.assignment(),
                OutlierPolicy::AsCluster,
            )?),
            None => None,
        };
        reports.push(AlgorithmReport {
            algorithm: clusterer.name().to_string(),
            best: outcome.best,
            runs_executed: outcome.runs_executed,
            total_seconds: outcome.total_seconds,
            evaluation,
        });
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{AnyClusterer, ParamMap};
    use sspc_common::{DimId, ObjectiveSense};
    use std::cell::Cell;

    /// A clusterer whose objective is a deterministic function of the seed,
    /// so best-of-N selection is fully predictable.
    struct SeedScored {
        sense: ObjectiveSense,
        deterministic: bool,
        calls: Cell<usize>,
    }

    impl ProjectedClusterer for SeedScored {
        fn name(&self) -> &str {
            "seed-scored"
        }
        fn cluster(
            &self,
            dataset: &Dataset,
            _supervision: &Supervision,
            seed: u64,
        ) -> Result<Clustering> {
            self.calls.set(self.calls.get() + 1);
            Ok(Clustering::new(
                self.name(),
                vec![Some(ClusterId(0)); dataset.n_objects()],
                vec![vec![DimId(0)]],
                (seed % 97) as f64,
                self.sense,
            )
            .with_seconds(0.25))
        }
        fn is_deterministic(&self) -> bool {
            self.deterministic
        }
    }

    fn tiny_dataset() -> Dataset {
        Dataset::from_rows(4, 2, vec![1.0, 2.0, 1.1, 2.1, 9.0, 8.0, 9.1, 8.1]).unwrap()
    }

    #[test]
    fn best_of_selects_by_sense_and_sums_seconds() {
        let dataset = tiny_dataset();
        let scored = SeedScored {
            sense: ObjectiveSense::HigherIsBetter,
            deterministic: false,
            calls: Cell::new(0),
        };
        let hi = best_of(&scored, &dataset, &Supervision::none(), 8, 3).unwrap();
        assert_eq!(hi.runs_executed, 8);
        assert_eq!(scored.calls.get(), 8);
        assert!((hi.total_seconds - 8.0 * 0.25).abs() < 1e-12);
        // The winner carries the maximum objective among the 8 derived
        // seeds; re-running any restart can't beat it.
        for r in 0..8 {
            let c = scored
                .cluster(&dataset, &Supervision::none(), derive_seed(3, r))
                .unwrap();
            assert!(!c.is_better_than(&hi.best));
        }

        let scored = SeedScored {
            sense: ObjectiveSense::LowerIsBetter,
            deterministic: false,
            calls: Cell::new(0),
        };
        let lo = best_of(&scored, &dataset, &Supervision::none(), 8, 3).unwrap();
        for r in 0..8 {
            let c = scored
                .cluster(&dataset, &Supervision::none(), derive_seed(3, r))
                .unwrap();
            assert!(!c.is_better_than(&lo.best));
        }
    }

    #[test]
    fn deterministic_algorithms_run_once() {
        let dataset = tiny_dataset();
        let scored = SeedScored {
            sense: ObjectiveSense::HigherIsBetter,
            deterministic: true,
            calls: Cell::new(0),
        };
        let outcome = best_of(&scored, &dataset, &Supervision::none(), 10, 3).unwrap();
        assert_eq!(outcome.runs_executed, 1);
        assert_eq!(scored.calls.get(), 1);
    }

    #[test]
    fn compare_reports_cover_roster_and_truth() {
        let dataset = tiny_dataset();
        let truth: Vec<Option<ClusterId>> = vec![
            Some(ClusterId(0)),
            Some(ClusterId(0)),
            Some(ClusterId(1)),
            Some(ClusterId(1)),
        ];
        let roster = vec![
            AnyClusterer::from_spec("clarans", 2, &ParamMap::default()).unwrap(),
            AnyClusterer::from_spec("harp", 2, &ParamMap::default()).unwrap(),
        ];
        let reports =
            compare_algorithms(&roster, &dataset, &Supervision::none(), Some(&truth), 3, 11)
                .unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].algorithm, "clarans");
        assert_eq!(reports[1].algorithm, "harp");
        assert_eq!(reports[1].runs_executed, 1, "harp is deterministic");
        for r in &reports {
            let e = r.evaluation.expect("truth given");
            assert!(e.ari.is_finite() && e.nmi.is_finite() && e.purity.is_finite());
            assert_eq!(r.best.assignment().len(), 4);
        }
        // Two perfectly separated pairs: k-medoid CLARANS must nail them.
        assert_eq!(reports[0].evaluation.unwrap().ari, 1.0);

        let no_truth =
            compare_algorithms(&roster, &dataset, &Supervision::none(), None, 2, 11).unwrap();
        assert!(no_truth.iter().all(|r| r.evaluation.is_none()));
    }
}
