//! Figure 7 — data with multiple possible groupings (Sec. 5.4).
//!
//! Two independent datasets (`n = 150`, `d = 1500`, `k = 5`,
//! `l_real = 30`) are concatenated dimension-wise into one dataset with two
//! equally valid groupings and an overall 1 % average cluster
//! dimensionality. HARP and PROCLUS (correct `l` supplied) produce a single
//! clustering; SSPC runs three ways — without inputs, guided by grouping-A
//! knowledge, guided by grouping-B knowledge — and every result is scored
//! against **both** ground truths.

use super::fig56::{sspc_params, to_supervision};
use crate::runner::{ari_vs_truth, best_clustering_of, median_score};
use crate::table::Table;
use sspc_baselines::{harp::HarpParams, proclus::ProclusParams};
use sspc_common::rng::derive_seed;
use sspc_common::Result;
use sspc_datagen::supervision::{draw, InputKind};
use sspc_datagen::{generate_multi_grouping, GeneratorConfig, GroundTruth};

const RUNS: usize = 10;
/// Inputs supplied per covered class when guiding SSPC (both kinds).
const INPUT_SIZE: usize = 6;

/// **Figure 7**: ARI of each algorithm against both groupings.
///
/// # Errors
///
/// Propagates generation or clustering failures.
pub fn fig7(seed: u64) -> Result<Vec<Table>> {
    let config = GeneratorConfig {
        n: 150,
        d: 1500,
        k: 5,
        avg_cluster_dims: 30,
        ..Default::default()
    };
    let data = generate_multi_grouping(&config, derive_seed(seed, 700))?;
    let dataset = &data.dataset;

    let mut table = Table::new(
        "Fig. 7 — two possible groupings (combined d=3000, l_real=30 = 1%)",
        &["algorithm", "ARI vs grouping A", "ARI vs grouping B"],
    );

    let score_both = |assignment: &[Option<sspc_common::ClusterId>]| -> Result<(f64, f64)> {
        Ok((
            ari_vs_truth(&data.truth_a, assignment)?,
            ari_vs_truth(&data.truth_b, assignment)?,
        ))
    };

    // HARP (deterministic).
    let harp = best_clustering_of(
        &HarpParams::new(5).build(),
        dataset,
        &sspc::Supervision::none(),
        1,
        derive_seed(seed, 700),
    )?;
    let (a, b) = score_both(harp.value.assignment())?;
    table.push_row(vec![
        "HARP".into(),
        Table::num(Some(a)),
        Table::num(Some(b)),
    ]);

    // PROCLUS with the correct l.
    let proclus = best_clustering_of(
        &ProclusParams::new(5, 30).build(),
        dataset,
        &sspc::Supervision::none(),
        RUNS,
        derive_seed(seed, 701),
    )?;
    let (a, b) = score_both(proclus.value.assignment())?;
    table.push_row(vec![
        "PROCLUS l=30".into(),
        Table::num(Some(a)),
        Table::num(Some(b)),
    ]);

    // SSPC raw: best-of-10 by objective, like Fig. 3.
    let raw = best_clustering_of(
        &sspc::Sspc::new(sspc_params())?,
        dataset,
        &sspc::Supervision::none(),
        RUNS,
        derive_seed(seed, 702),
    )?;
    let (a, b) = score_both(raw.value.assignment())?;
    table.push_row(vec![
        "SSPC (no input)".into(),
        Table::num(Some(a)),
        Table::num(Some(b)),
    ]);

    // SSPC guided by each grouping: median-of-10 with independent draws.
    for (label, truth, stream) in [
        ("SSPC (input A)", &data.truth_a, 703u64),
        ("SSPC (input B)", &data.truth_b, 704u64),
    ] {
        let (a, b) = guided_scores(
            dataset,
            truth,
            &data.truth_a,
            &data.truth_b,
            derive_seed(seed, stream),
        )?;
        table.push_row(vec![label.into(), Table::num(a), Table::num(b)]);
    }

    Ok(vec![table])
}

/// Median-of-10 ARIs (vs both groupings) of SSPC guided by supervision
/// drawn from `guide`.
fn guided_scores(
    dataset: &sspc_common::Dataset,
    guide: &GroundTruth,
    truth_a: &GroundTruth,
    truth_b: &GroundTruth,
    seed: u64,
) -> Result<(Option<f64>, Option<f64>)> {
    let sspc = sspc::Sspc::new(sspc_params())?;
    let mut scores_a = Vec::with_capacity(RUNS);
    let mut scores_b = Vec::with_capacity(RUNS);
    for r in 0..RUNS {
        let run_seed = derive_seed(seed, r as u64);
        let labels = draw(guide, InputKind::Both, 1.0, INPUT_SIZE, run_seed)?;
        let supervision = to_supervision(&labels);
        let result = sspc.run(dataset, &supervision, derive_seed(run_seed, 1))?;
        scores_a.push(crate::runner::ari_excluding_labeled(
            truth_a,
            result.assignment(),
            supervision.labeled_objects(),
        )?);
        scores_b.push(crate::runner::ari_excluding_labeled(
            truth_b,
            result.assignment(),
            supervision.labeled_objects(),
        )?);
    }
    Ok((median_score(&scores_a), median_score(&scores_b)))
}
