//! Extension experiments beyond the paper's evaluation, exercising the
//! Sec. 6 future-work features implemented in this reproduction.

use super::fig56::to_supervision;
use crate::runner::{ari_excluding_labeled, best_clustering_of, median_score};
use crate::table::Table;
use sspc::validation::{validate_supervision, ValidationParams};
use sspc::{Sspc, SspcParams, Supervision, ThresholdScheme};
use sspc_api::compare_algorithms;
use sspc_api::registry::{AnyClusterer, ParamMap};
use sspc_common::rng::derive_seed;
use sspc_common::Result;
use sspc_datagen::supervision::{draw_noisy, InputKind};
use sspc_datagen::{generate, GeneratorConfig, GlobalDistribution};

const RUNS: usize = 10;

/// **Incorrect inputs** (paper Sec. 6): supervision with a fraction of
/// wrong labels, fed to SSPC directly vs. after
/// [`validate_supervision`]-based cleaning. Configuration: the Fig. 5
/// dataset family shrunk to `d = 1000` (still 1 % after accounting for
/// `l_real = 10`... here `l_real = 20` → 2 %) so one table stays fast.
///
/// # Errors
///
/// Propagates generation or clustering failures.
pub fn noisy_inputs(seed: u64) -> Result<Vec<Table>> {
    let config = GeneratorConfig {
        n: 200,
        d: 1000,
        k: 4,
        avg_cluster_dims: 20,
        ..Default::default()
    };
    let data = generate(&config, derive_seed(seed, 1200))?;
    let params = SspcParams::new(4).with_threshold(ThresholdScheme::MFraction(0.5));
    let sspc = Sspc::new(params)?;

    let mut table = Table::new(
        "Extension — incorrect inputs (n=200, d=1000, k=4, l_real=20, both kinds × 5, coverage 1): median-of-10 ARI",
        &["error rate", "no validation", "with validation", "labels rejected (avg)"],
    );
    for (ei, error_rate) in [0.0, 0.2, 0.4].into_iter().enumerate() {
        let mut raw_scores = Vec::with_capacity(RUNS);
        let mut val_scores = Vec::with_capacity(RUNS);
        let mut rejected = 0usize;
        for r in 0..RUNS {
            let run_seed = derive_seed(seed, 1210 + (ei * RUNS + r) as u64);
            let labels = draw_noisy(
                &data.truth,
                config.d,
                InputKind::Both,
                1.0,
                5,
                error_rate,
                run_seed,
            )?;
            let supervision = to_supervision(&labels);

            let result = sspc.run(&data.dataset, &supervision, derive_seed(run_seed, 1))?;
            raw_scores.push(ari_excluding_labeled(
                &data.truth,
                result.assignment(),
                supervision.labeled_objects(),
            )?);

            let report =
                validate_supervision(&data.dataset, &supervision, &ValidationParams::default())?;
            rejected += report.n_rejected();
            let cleaned = report.cleaned();
            let result = sspc.run(&data.dataset, &cleaned, derive_seed(run_seed, 2))?;
            val_scores.push(ari_excluding_labeled(
                &data.truth,
                result.assignment(),
                cleaned.labeled_objects(),
            )?);
        }
        table.push_row(vec![
            format!("{error_rate:.1}"),
            Table::num(median_score(&raw_scores)),
            Table::num(median_score(&val_scores)),
            format!("{:.1}", rejected as f64 / RUNS as f64),
        ]);
    }
    Ok(vec![table])
}

/// **Extended baselines** (related-work algorithms beyond the paper's
/// evaluation): DOC, ORCLUS and CLIQUE against SSPC on a moderate- and a
/// low-dimensionality dataset. ORCLUS runs at a reduced `d` (its
/// covariance eigendecompositions are O(d³)); CLIQUE and DOC run on both.
///
/// The whole roster flows through [`compare_algorithms`] with scoped
/// overrides parsed by the same `alg.key=v` grammar the CLI and the batch
/// server use — one protocol implementation, three frontends.
///
/// # Errors
///
/// Propagates generation or clustering failures.
pub fn extended_baselines(seed: u64) -> Result<Vec<Table>> {
    let mut table = Table::new(
        "Extension — related-work baselines (best-of-5 by own score): ARI",
        &["dataset", "SSPC(m=0.5)", "DOC", "ORCLUS", "CLIQUE"],
    );
    let configs = [
        (
            "n=300, d=30, 20% dims",
            GeneratorConfig {
                n: 300,
                d: 30,
                k: 4,
                avg_cluster_dims: 6,
                local_sd_frac_max: 0.04,
                ..Default::default()
            },
        ),
        (
            "n=300, d=100, 6% dims",
            GeneratorConfig {
                n: 300,
                d: 100,
                k: 4,
                avg_cluster_dims: 6,
                local_sd_frac_max: 0.04,
                ..Default::default()
            },
        ),
    ];
    for (ci, (label, config)) in configs.into_iter().enumerate() {
        let base = derive_seed(seed, 1400 + ci as u64);
        let data = generate(&config, base)?;
        let k = config.k;
        let l = config.avg_cluster_dims;

        // m=0.5 and w=4.0 are the registry defaults; ORCLUS gets the true
        // subspace dimensionality, as the old per-algorithm loops did.
        let scoped = ParamMap::parse_scoped(&format!("orclus.l={l}"))?;
        let roster = AnyClusterer::roster(&["sspc", "doc", "orclus", "clique"], k, &scoped)?;
        let reports = compare_algorithms(
            &roster,
            &data.dataset,
            &Supervision::none(),
            Some(data.truth.assignment()),
            5,
            base,
        )?;

        let mut row = vec![label.to_string()];
        for report in &reports {
            let ari = report.evaluation.expect("truth supplied").ari;
            row.push(Table::num(Some(ari)));
        }
        table.push_row(row);
    }
    Ok(vec![table])
}

/// **Threshold schemes vs global distribution**: the `p`-scheme's
/// derivation assumes Gaussian globals, but the paper's experiments use
/// uniform ones and note the `p`-scheme still performs. This table measures
/// both schemes under both global families.
///
/// # Errors
///
/// Propagates generation or clustering failures.
pub fn threshold_vs_distribution(seed: u64) -> Result<Vec<Table>> {
    let mut table = Table::new(
        "Extension — threshold scheme × global distribution (n=1000, d=100, k=5, l_real=10): best-of-10 ARI",
        &["global distribution", "SSPC(m=0.5)", "SSPC(p=0.05)"],
    );
    for (di, dist) in [GlobalDistribution::Uniform, GlobalDistribution::Gaussian]
        .into_iter()
        .enumerate()
    {
        let config = GeneratorConfig {
            n: 1000,
            d: 100,
            k: 5,
            avg_cluster_dims: 10,
            global_distribution: dist,
            ..Default::default()
        };
        let data = generate(&config, derive_seed(seed, 1300 + di as u64))?;
        let mut row = vec![format!("{dist:?}")];
        for (si, scheme) in [
            ThresholdScheme::MFraction(0.5),
            ThresholdScheme::PValue(0.05),
        ]
        .into_iter()
        .enumerate()
        {
            let sspc = Sspc::new(SspcParams::new(5).with_threshold(scheme))?;
            let run = best_clustering_of(
                &sspc,
                &data.dataset,
                &Supervision::none(),
                RUNS,
                derive_seed(seed, 1310 + (di * 2 + si) as u64),
            )?;
            row.push(Table::num(Some(crate::runner::ari_vs_truth(
                &data.truth,
                run.value.assignment(),
            )?)));
        }
        table.push_row(row);
    }
    Ok(vec![table])
}
