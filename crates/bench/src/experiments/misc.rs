//! Sec. 5.2 (outlier immunity) and the DESIGN.md ablation studies.

use super::fig56::{gene_like_config, sspc_params, to_supervision};
use crate::runner::{ari_excluding_labeled, ari_vs_truth, best_clustering_of, median_score};
use crate::table::Table;
use sspc::{Sspc, SspcParams, Supervision, ThresholdScheme};
use sspc_common::rng::derive_seed;
use sspc_common::Result;
use sspc_datagen::supervision::{draw, InputKind};
use sspc_datagen::{generate, GeneratorConfig};
use sspc_metrics::outliers::outlier_quality;

const RUNS: usize = 10;

/// **Sec. 5.2 — outlier immunity**: datasets with 0 %–25 % uniform-noise
/// outliers (`n = 1000`, `d = 100`, `k = 5`, `l_real = 10`). The paper
/// reports "only moderate accuracy decrease" and that "the amount of
/// objects detected as outliers also highly resembles the actual amount".
///
/// # Errors
///
/// Propagates generation or clustering failures.
pub fn outliers(seed: u64) -> Result<Vec<Table>> {
    let mut table = Table::new(
        "Sec. 5.2 — SSPC outlier immunity (n=1000, d=100, k=5, l_real=10, m=0.5)",
        &[
            "outlier %",
            "ARI",
            "true outliers",
            "reported",
            "precision",
            "recall",
        ],
    );
    for (i, pct) in [0.0, 0.05, 0.10, 0.15, 0.20, 0.25].into_iter().enumerate() {
        let config = GeneratorConfig {
            n: 1000,
            d: 100,
            k: 5,
            avg_cluster_dims: 10,
            outlier_fraction: pct,
            ..Default::default()
        };
        let data = generate(&config, derive_seed(seed, 900 + i as u64))?;
        let sspc = Sspc::new(SspcParams::new(5).with_threshold(ThresholdScheme::MFraction(0.5)))?;
        let run = best_clustering_of(
            &sspc,
            &data.dataset,
            &Supervision::none(),
            RUNS,
            derive_seed(seed, 910 + i as u64),
        )?;
        let ari = ari_vs_truth(&data.truth, run.value.assignment())?;
        let q = outlier_quality(data.truth.assignment(), run.value.assignment())?;
        table.push_row(vec![
            format!("{:.0}", pct * 100.0),
            Table::num(Some(ari)),
            q.true_outliers.to_string(),
            q.reported_outliers.to_string(),
            Table::num(Some(q.precision)),
            Table::num(Some(q.recall)),
        ]);
    }
    Ok(vec![table])
}

/// **Ablations** (DESIGN.md): what the individual design choices buy.
///
/// * median representatives on/off (unsupervised, Fig. 3-style dataset);
/// * hill-climbing on/off and labeled-object pinning on/off
///   (supervised, Fig. 5-style dataset);
/// * m-scheme vs p-scheme under the (violated) Gaussian-global assumption.
///
/// # Errors
///
/// Propagates generation or clustering failures.
pub fn ablations(seed: u64) -> Result<Vec<Table>> {
    // --- Unsupervised ablations in the hard 1% regime, where the design
    // choices actually differentiate (at 10% everything scores 1.0).
    let data = generate(&gene_like_config(), derive_seed(seed, 1000))?;
    let mut unsup = Table::new(
        "Ablation (unsupervised, n=150, d=3000, l_real=30 = 1%) — best-of-10 ARI",
        &["variant", "ARI"],
    );
    let variants: Vec<(&str, SspcParams)> = vec![
        (
            "full algorithm (m=0.5)",
            SspcParams::new(5).with_threshold(ThresholdScheme::MFraction(0.5)),
        ),
        (
            "no median representatives",
            SspcParams::new(5)
                .with_threshold(ThresholdScheme::MFraction(0.5))
                .with_median_representatives(false),
        ),
        (
            "p-scheme (p=0.05) despite non-Gaussian globals",
            SspcParams::new(5).with_threshold(ThresholdScheme::PValue(0.05)),
        ),
    ];
    for (i, (label, params)) in variants.into_iter().enumerate() {
        let run = best_clustering_of(
            &Sspc::new(params)?,
            &data.dataset,
            &Supervision::none(),
            RUNS,
            derive_seed(seed, 1010 + i as u64),
        )?;
        unsup.push_row(vec![
            label.into(),
            Table::num(Some(ari_vs_truth(&data.truth, run.value.assignment())?)),
        ]);
    }

    // --- Supervised ablations with *scarce* inputs (3 labels per kind,
    // covering 60% of classes) so initialization quality matters.
    let data = generate(&gene_like_config(), derive_seed(seed, 1100))?;
    let mut sup = Table::new(
        "Ablation (supervised, n=150, d=3000, l_real=30, inputs: both × 3, coverage 0.6) — median-of-10 ARI",
        &["variant", "ARI"],
    );
    let variants: Vec<(&str, SspcParams)> = vec![
        ("full algorithm", sspc_params()),
        ("no hill-climbing", sspc_params().with_hill_climbing(false)),
        (
            "no labeled-object pinning",
            sspc_params().with_pinning(false),
        ),
    ];
    for (i, (label, params)) in variants.into_iter().enumerate() {
        let sspc = Sspc::new(params)?;
        let mut scores = Vec::with_capacity(RUNS);
        for r in 0..RUNS {
            let run_seed = derive_seed(seed, 1110 + (i * RUNS + r) as u64);
            let labels = draw(&data.truth, InputKind::Both, 0.6, 3, run_seed)?;
            let supervision = to_supervision(&labels);
            let result = sspc.run(&data.dataset, &supervision, derive_seed(run_seed, 1))?;
            scores.push(ari_excluding_labeled(
                &data.truth,
                result.assignment(),
                supervision.labeled_objects(),
            )?);
        }
        sup.push_row(vec![label.into(), Table::num(median_score(&scores))]);
    }

    Ok(vec![unsup, sup])
}
