//! Figures 3 and 4 — raw (unsupervised) accuracy.

use crate::runner::{ari_vs_truth, best_clustering_of};
use crate::table::Table;
use sspc::{Sspc, SspcParams, ThresholdScheme};
use sspc_baselines::{clarans::ClaransParams, harp::HarpParams, proclus::ProclusParams};
use sspc_common::rng::derive_seed;
use sspc_common::{Result, Supervision};
use sspc_datagen::{generate, GeneratedData, GeneratorConfig};

/// The paper's repetition count.
const RUNS: usize = 10;
/// The m values tried for SSPC(m) ("5 different values of m and p").
const M_VALUES: [f64; 5] = [0.3, 0.4, 0.5, 0.6, 0.7];
/// The p values tried for SSPC(p).
const P_VALUES: [f64; 5] = [0.01, 0.05, 0.1, 0.15, 0.2];

fn dataset_config(l_real: usize) -> GeneratorConfig {
    GeneratorConfig {
        n: 1000,
        d: 100,
        k: 5,
        avg_cluster_dims: l_real,
        ..Default::default()
    }
}

/// Best SSPC ARI across a set of threshold values — the paper's Fig. 3
/// protocol ("the best results (the results with the highest ARI values)
/// after trying different parameter values").
fn best_sspc_over<T: Copy>(
    data: &GeneratedData,
    values: &[T],
    make: impl Fn(T) -> ThresholdScheme,
    seed: u64,
) -> Result<f64> {
    let mut best = f64::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        let sspc = Sspc::new(SspcParams::new(5).with_threshold(make(v)))?;
        let run = best_clustering_of(
            &sspc,
            &data.dataset,
            &Supervision::none(),
            RUNS,
            derive_seed(seed, i as u64),
        )?;
        best = best.max(ari_vs_truth(&data.truth, run.value.assignment())?);
    }
    Ok(best)
}

/// Best PROCLUS ARI across 9 values of `l` spread around the true value.
fn best_proclus_over(data: &GeneratedData, l_real: usize, seed: u64) -> Result<f64> {
    let d = data.dataset.n_dims();
    let mut best = f64::NEG_INFINITY;
    for (i, factor) in [0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8]
        .into_iter()
        .enumerate()
    {
        let l = ((l_real as f64 * factor).round() as usize).clamp(2, d);
        let run = best_clustering_of(
            &ProclusParams::new(5, l).build(),
            &data.dataset,
            &Supervision::none(),
            RUNS,
            derive_seed(seed, i as u64),
        )?;
        best = best.max(ari_vs_truth(&data.truth, run.value.assignment())?);
    }
    Ok(best)
}

/// **Figure 3**: the best raw accuracy of CLARANS, HARP, PROCLUS, SSPC(m)
/// and SSPC(p) on datasets with `n = 1000`, `d = 100`, `k = 5` and average
/// cluster dimensionality `l_real ∈ {5, 10, …, 40}` (5 %–40 % of `d`).
///
/// # Errors
///
/// Propagates generation or clustering failures.
pub fn fig3(seed: u64) -> Result<Vec<Table>> {
    let mut table = Table::new(
        "Fig. 3 — best raw ARI vs average cluster dimensionality (n=1000, d=100, k=5)",
        &["l_real", "CLARANS", "HARP", "PROCLUS", "SSPC(m)", "SSPC(p)"],
    );
    for (idx, l_real) in (5..=40).step_by(5).enumerate() {
        let ds_seed = derive_seed(seed, idx as u64);
        let data = generate(&dataset_config(l_real), ds_seed)?;

        let clarans = best_clustering_of(
            &ClaransParams::new(5).build(),
            &data.dataset,
            &Supervision::none(),
            RUNS,
            derive_seed(ds_seed, 1),
        )?;
        let harp = best_clustering_of(
            &HarpParams::new(5).build(),
            &data.dataset,
            &Supervision::none(),
            1,
            derive_seed(ds_seed, 5),
        )?;
        let proclus_ari = best_proclus_over(&data, l_real, derive_seed(ds_seed, 2))?;
        let sspc_m = best_sspc_over(
            &data,
            &M_VALUES,
            ThresholdScheme::MFraction,
            derive_seed(ds_seed, 3),
        )?;
        let sspc_p = best_sspc_over(
            &data,
            &P_VALUES,
            ThresholdScheme::PValue,
            derive_seed(ds_seed, 4),
        )?;

        table.push_row(vec![
            l_real.to_string(),
            Table::num(Some(ari_vs_truth(&data.truth, clarans.value.assignment())?)),
            Table::num(Some(ari_vs_truth(&data.truth, harp.value.assignment())?)),
            Table::num(Some(proclus_ari)),
            Table::num(Some(sspc_m)),
            Table::num(Some(sspc_p)),
        ]);
    }
    Ok(vec![table])
}

/// **Figure 4**: parameter sensitivity at `l_real = 10` — PROCLUS across 9
/// values of `l`, SSPC across 5 values of `m` and of `p`; each cell is the
/// best-of-10 (by the algorithm's own score) ARI at that parameter value.
///
/// # Errors
///
/// Propagates generation or clustering failures.
pub fn fig4(seed: u64) -> Result<Vec<Table>> {
    let data = generate(&dataset_config(10), derive_seed(seed, 100))?;

    let mut proclus_t = Table::new("Fig. 4a — PROCLUS ARI vs l (l_real = 10)", &["l", "ARI"]);
    for (i, l) in (2..=18).step_by(2).enumerate() {
        let run = best_clustering_of(
            &ProclusParams::new(5, l).build(),
            &data.dataset,
            &Supervision::none(),
            RUNS,
            derive_seed(seed, 200 + i as u64),
        )?;
        proclus_t.push_row(vec![
            l.to_string(),
            Table::num(Some(ari_vs_truth(&data.truth, run.value.assignment())?)),
        ]);
    }

    let mut sspc_t = Table::new(
        "Fig. 4b — SSPC ARI vs threshold parameter (l_real = 10)",
        &["scheme", "value", "ARI"],
    );
    for (i, &m) in [0.1, 0.3, 0.5, 0.7, 0.9].iter().enumerate() {
        let sspc = Sspc::new(SspcParams::new(5).with_threshold(ThresholdScheme::MFraction(m)))?;
        let run = best_clustering_of(
            &sspc,
            &data.dataset,
            &Supervision::none(),
            RUNS,
            derive_seed(seed, 300 + i as u64),
        )?;
        sspc_t.push_row(vec![
            "m".into(),
            format!("{m}"),
            Table::num(Some(ari_vs_truth(&data.truth, run.value.assignment())?)),
        ]);
    }
    for (i, &p) in [0.005, 0.01, 0.05, 0.1, 0.2].iter().enumerate() {
        let sspc = Sspc::new(SspcParams::new(5).with_threshold(ThresholdScheme::PValue(p)))?;
        let run = best_clustering_of(
            &sspc,
            &data.dataset,
            &Supervision::none(),
            RUNS,
            derive_seed(seed, 400 + i as u64),
        )?;
        sspc_t.push_row(vec![
            "p".into(),
            format!("{p}"),
            Table::num(Some(ari_vs_truth(&data.truth, run.value.assignment())?)),
        ]);
    }
    Ok(vec![proclus_t, sspc_t])
}
