//! Figures 1 and 2 — the Sec. 4.5 analytical curves.
//!
//! These are closed-form evaluations (no clustering runs): the probability
//! that at least one seed-group grid is built from the right dimensions,
//! as a function of the amount of supervision, for several `dᵢ/d` ratios.
//! Parameters match the paper's: `d = 3000`, `p = 0.01`, `c = 3`, `g = 20`,
//! variance ratio `0.15`, and `k = 5` for Fig. 2.

use crate::table::Table;
use sspc_analysis::{prob_good_grid_labeled_dims, prob_good_grid_labeled_objects, AnalysisConfig};
use sspc_common::Result;

/// The `dᵢ/d` ratios plotted (1 % … 40 %).
const RATIOS: [f64; 5] = [0.01, 0.05, 0.10, 0.20, 0.40];
/// Input sizes on the x-axis.
const SIZES: [usize; 10] = [1, 2, 3, 4, 5, 6, 8, 10, 15, 20];

fn config_for(ratio: f64) -> AnalysisConfig {
    let d = 3000usize;
    AnalysisConfig {
        d,
        d_i: ((ratio * d as f64).round() as usize).max(1),
        ..Default::default()
    }
}

/// **Figure 1**: probability that at least one grid is formed by relevant
/// dimensions only, when only labeled objects are available.
///
/// # Errors
///
/// Propagates analysis failures (cannot occur for the fixed configuration).
pub fn fig1() -> Result<Vec<Table>> {
    let mut table = Table::new(
        "Fig. 1 — P(>=1 all-relevant grid) vs #labeled objects (d=3000, p=0.01, c=3, g=20, var-ratio 0.15)",
        &["|Io|", "di/d=1%", "5%", "10%", "20%", "40%"],
    );
    for &size in &SIZES {
        let mut row = vec![size.to_string()];
        for &ratio in &RATIOS {
            let value = if size >= 2 {
                Some(prob_good_grid_labeled_objects(&config_for(ratio), size)?)
            } else {
                None // the paper requires |Io| >= 2
            };
            row.push(Table::num(value));
        }
        table.push_row(row);
    }
    Ok(vec![table])
}

/// **Figure 2**: probability that at least one grid has all building
/// dimensions relevant to the target cluster only, when only labeled
/// dimensions are available (`k = 5`).
///
/// # Errors
///
/// Propagates analysis failures (cannot occur for the fixed configuration).
pub fn fig2() -> Result<Vec<Table>> {
    let mut table = Table::new(
        "Fig. 2 — P(>=1 exclusively-relevant grid) vs #labeled dimensions (k=5)",
        &["|Iv|", "di/d=1%", "5%", "10%", "20%", "40%"],
    );
    for &size in &SIZES {
        let mut row = vec![size.to_string()];
        for &ratio in &RATIOS {
            let value = prob_good_grid_labeled_dims(&config_for(ratio), size)?;
            row.push(Table::num(Some(value)));
        }
        table.push_row(row);
    }
    Ok(vec![table])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape_matches_paper() {
        let tables = fig1().unwrap();
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.rows.len(), SIZES.len());
        // |Io| = 5, di/d = 5% (column 2) should be near 1 — the paper's
        // highlighted anchor.
        let row5 = t.rows.iter().find(|r| r[0] == "5").unwrap();
        let v: f64 = row5[2].parse().unwrap();
        assert!(v > 0.95, "got {v}");
        // |Io| = 1 rows are dashes.
        let row1 = t.rows.iter().find(|r| r[0] == "1").unwrap();
        assert_eq!(row1[1], "-");
    }

    #[test]
    fn fig2_low_dimensionality_wins() {
        let tables = fig2().unwrap();
        let t = &tables[0];
        // At |Iv| = 3, the 1% column must beat the 40% column.
        let row3 = t.rows.iter().find(|r| r[0] == "3").unwrap();
        let one_pct: f64 = row3[1].parse().unwrap();
        let forty_pct: f64 = row3[5].parse().unwrap();
        assert!(one_pct > forty_pct);
    }
}
