//! Figures 8a and 8b — scalability (Sec. 5.5): "the execution time of 10
//! repeated runs of SSPC with an increasing dataset size (n) and
//! dimensionality (d), using the execution time of PROCLUS as reference."
//! Both algorithms should scale linearly in `n` and in `d`.

use crate::runner::best_clustering_of;
use crate::table::Table;
use sspc::{Sspc, SspcParams, Supervision, ThresholdScheme};
use sspc_baselines::proclus::ProclusParams;
use sspc_common::rng::derive_seed;
use sspc_common::Result;
use sspc_datagen::{generate, GeneratorConfig};

const RUNS: usize = 10;

fn time_pair(config: &GeneratorConfig, l: usize, seed: u64) -> Result<(f64, f64)> {
    let data = generate(config, seed)?;
    let sspc = best_clustering_of(
        &Sspc::new(SspcParams::new(config.k).with_threshold(ThresholdScheme::MFraction(0.5)))?,
        &data.dataset,
        &Supervision::none(),
        RUNS,
        derive_seed(seed, 1),
    )?;
    let proclus = best_clustering_of(
        &ProclusParams::new(config.k, l).build(),
        &data.dataset,
        &Supervision::none(),
        RUNS,
        derive_seed(seed, 2),
    )?;
    Ok((sspc.seconds, proclus.seconds))
}

/// **Figure 8a**: execution time of 10 runs vs dataset size `n`
/// (`d = 100`, `k = 5`, `l_real = 10`).
///
/// # Errors
///
/// Propagates generation or clustering failures.
pub fn fig8a(seed: u64) -> Result<Vec<Table>> {
    let mut table = Table::new(
        "Fig. 8a — execution time of 10 runs vs n (d=100, k=5, l_real=10), seconds",
        &["n", "SSPC", "PROCLUS"],
    );
    for (i, n) in [1000usize, 2000, 4000, 8000].into_iter().enumerate() {
        let config = GeneratorConfig {
            n,
            d: 100,
            k: 5,
            avg_cluster_dims: 10,
            ..Default::default()
        };
        let (s, p) = time_pair(&config, 10, derive_seed(seed, 800 + i as u64))?;
        table.push_row(vec![
            n.to_string(),
            Table::num(Some(s)),
            Table::num(Some(p)),
        ]);
    }
    Ok(vec![table])
}

/// **Figure 8b**: execution time of 10 runs vs dimensionality `d`
/// (`n = 1000`, `k = 5`, `l_real = 10 % of d`).
///
/// # Errors
///
/// Propagates generation or clustering failures.
pub fn fig8b(seed: u64) -> Result<Vec<Table>> {
    let mut table = Table::new(
        "Fig. 8b — execution time of 10 runs vs d (n=1000, k=5, l_real=10% of d), seconds",
        &["d", "SSPC", "PROCLUS"],
    );
    for (i, d) in [500usize, 1000, 2000, 4000].into_iter().enumerate() {
        let l = d / 10;
        let config = GeneratorConfig {
            n: 1000,
            d,
            k: 5,
            avg_cluster_dims: l,
            ..Default::default()
        };
        let (s, p) = time_pair(&config, l, derive_seed(seed, 850 + i as u64))?;
        table.push_row(vec![
            d.to_string(),
            Table::num(Some(s)),
            Table::num(Some(p)),
        ]);
    }
    Ok(vec![table])
}
