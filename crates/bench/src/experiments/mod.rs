//! One regeneration function per table/figure in the paper's evaluation.
//!
//! | Function | Paper artifact | What it sweeps |
//! |----------|----------------|----------------|
//! | [`fig1`] | Fig. 1 | P(good grid), labeled objects × `dᵢ/d` |
//! | [`fig2`] | Fig. 2 | P(good grid), labeled dimensions × `dᵢ/d` |
//! | [`fig3`] | Fig. 3 | best raw ARI vs average cluster dimensionality |
//! | [`fig4`] | Fig. 4 | ARI vs parameter value at `l_real = 10` |
//! | [`outliers`] | Sec. 5.2 | ARI and outlier detection vs outlier % |
//! | [`fig5`] | Fig. 5 | ARI vs input size at coverage 1 |
//! | [`fig6`] | Fig. 6 | ARI vs coverage at input size 6 |
//! | [`fig7`] | Fig. 7 | two possible groupings, guided by inputs |
//! | [`fig8a`] | Fig. 8a | execution time of 10 runs vs `n` |
//! | [`fig8b`] | Fig. 8b | execution time of 10 runs vs `d` |
//! | [`ablations`] | DESIGN.md | design-choice ablations |
//!
//! All functions are deterministic in their `seed` argument and return the
//! tables they print, so integration tests can assert on the numbers.

mod extensions;
mod fig12;
mod fig34;
mod fig56;
mod fig7;
mod fig8;
mod misc;

pub use extensions::{extended_baselines, noisy_inputs, threshold_vs_distribution};
pub use fig12::{fig1, fig2};
pub use fig34::{fig3, fig4};
pub use fig56::{fig5, fig6};
pub use fig7::fig7;
pub use fig8::{fig8a, fig8b};
pub use misc::{ablations, outliers};

use crate::table::Table;
use sspc_common::Result;

/// Runs every experiment in paper order. Slow (several minutes in release
/// mode); each experiment can also be run individually.
///
/// # Errors
///
/// Propagates the first experiment failure.
pub fn all(seed: u64) -> Result<Vec<Table>> {
    let mut tables = Vec::new();
    tables.extend(fig1()?);
    tables.extend(fig2()?);
    tables.extend(fig3(seed)?);
    tables.extend(fig4(seed)?);
    tables.extend(outliers(seed)?);
    tables.extend(fig5(seed)?);
    tables.extend(fig6(seed)?);
    tables.extend(fig7(seed)?);
    tables.extend(fig8a(seed)?);
    tables.extend(fig8b(seed)?);
    tables.extend(ablations(seed)?);
    tables.extend(noisy_inputs(seed)?);
    tables.extend(threshold_vs_distribution(seed)?);
    tables.extend(extended_baselines(seed)?);
    Ok(tables)
}
