//! Figures 5 and 6 — accuracy with input knowledge on the gene-expression-
//! like configuration: `n = 150`, `d = 3000`, `k = 5`, `l_real = 30`
//! (**1 %** of the dimensions), `m = 0.5`.
//!
//! Protocol (Sec. 5.3): inputs are drawn uniformly from the true members /
//! relevant dimensions; each point is the **median ARI of 10 runs with 10
//! independent input sets**, and labeled objects are removed from the
//! clusters before scoring.

use crate::runner::{ari_excluding_labeled, best_clustering_of, median_score};
use crate::table::Table;
use sspc::{Sspc, SspcParams, Supervision, ThresholdScheme};
use sspc_baselines::{harp::HarpParams, proclus::ProclusParams};
use sspc_common::rng::derive_seed;
use sspc_common::Result;
use sspc_datagen::supervision::{draw, InputKind};
use sspc_datagen::{generate, GeneratedData, GeneratorConfig};

const RUNS: usize = 10;

pub(crate) fn gene_like_config() -> GeneratorConfig {
    GeneratorConfig {
        n: 150,
        d: 3000,
        k: 5,
        avg_cluster_dims: 30,
        ..Default::default()
    }
}

pub(crate) fn sspc_params() -> SspcParams {
    SspcParams::new(5).with_threshold(ThresholdScheme::MFraction(0.5))
}

/// Converts a datagen supervision draw into the SSPC input type.
pub(crate) fn to_supervision(draw: &sspc_datagen::supervision::SupervisionDraw) -> Supervision {
    Supervision::new(draw.labeled_objects.clone(), draw.labeled_dims.clone())
}

/// Median-of-10 SSPC ARI for one supervision setting. Each repetition draws
/// an independent input set and runs SSPC once (the paper's Figs. 5–6
/// protocol); labeled objects are excluded from scoring. (Input size 1 with
/// object labels exercises the single-anchor extension; the paper itself
/// requires `|Iᵒᵢ| ≥ 2`.)
pub(crate) fn median_supervised_ari(
    data: &GeneratedData,
    kind: InputKind,
    coverage: f64,
    input_size: usize,
    seed: u64,
) -> Result<Option<f64>> {
    let sspc = Sspc::new(sspc_params())?;
    let mut scores = Vec::with_capacity(RUNS);
    for r in 0..RUNS {
        let run_seed = derive_seed(seed, r as u64);
        let labels = draw(&data.truth, kind, coverage, input_size, run_seed)?;
        let supervision = to_supervision(&labels);
        let result = sspc.run(&data.dataset, &supervision, derive_seed(run_seed, 1))?;
        scores.push(ari_excluding_labeled(
            &data.truth,
            result.assignment(),
            supervision.labeled_objects(),
        )?);
    }
    Ok(median_score(&scores))
}

/// Reference scores quoted alongside Fig. 5: HARP and PROCLUS (with the
/// correct `l` supplied) on the same dataset.
fn reference_rows(data: &GeneratedData, seed: u64) -> Result<Vec<Vec<String>>> {
    let harp = best_clustering_of(
        &HarpParams::new(5).build(),
        &data.dataset,
        &Supervision::none(),
        1,
        derive_seed(seed, 9998),
    )?;
    let harp_ari = crate::runner::ari_vs_truth(&data.truth, harp.value.assignment())?;
    let proclus = best_clustering_of(
        &ProclusParams::new(5, 30).build(),
        &data.dataset,
        &Supervision::none(),
        RUNS,
        derive_seed(seed, 9999),
    )?;
    let proclus_ari = crate::runner::ari_vs_truth(&data.truth, proclus.value.assignment())?;
    Ok(vec![
        vec!["HARP (ref)".into(), Table::num(Some(harp_ari))],
        vec!["PROCLUS l=30 (ref)".into(), Table::num(Some(proclus_ari))],
    ])
}

/// **Figure 5**: ARI vs input size at coverage 1, for the three input
/// categories (`Io` only, `Iv` only, both), with the HARP and PROCLUS
/// reference scores the paper quotes (0.17 and 0.08 on its dataset).
///
/// # Errors
///
/// Propagates generation or clustering failures.
pub fn fig5(seed: u64) -> Result<Vec<Table>> {
    let data = generate(&gene_like_config(), derive_seed(seed, 500))?;
    let mut table = Table::new(
        "Fig. 5 — SSPC ARI vs input size, coverage 1 (n=150, d=3000, k=5, l_real=30 = 1%, m=0.5)",
        &["input size", "objects only", "dims only", "both"],
    );
    for size in 0..=8usize {
        let mut row = vec![size.to_string()];
        if size == 0 {
            let raw =
                median_supervised_ari(&data, InputKind::None, 1.0, 0, derive_seed(seed, 510))?;
            let cell = Table::num(raw);
            row.extend([cell.clone(), cell.clone(), cell]);
        } else {
            for (i, kind) in [InputKind::ObjectsOnly, InputKind::DimsOnly, InputKind::Both]
                .into_iter()
                .enumerate()
            {
                let ari = median_supervised_ari(
                    &data,
                    kind,
                    1.0,
                    size,
                    derive_seed(seed, 520 + (size * 3 + i) as u64),
                )?;
                row.push(Table::num(ari));
            }
        }
        table.push_row(row);
    }
    let mut refs = Table::new("Fig. 5 references", &["algorithm", "ARI"]);
    for row in reference_rows(&data, seed)? {
        refs.push_row(row);
    }
    Ok(vec![table, refs])
}

/// **Figure 6**: ARI vs coverage (fraction of classes receiving inputs) at
/// input size 6, for the three input categories.
///
/// # Errors
///
/// Propagates generation or clustering failures.
pub fn fig6(seed: u64) -> Result<Vec<Table>> {
    let data = generate(&gene_like_config(), derive_seed(seed, 600))?;
    let mut table = Table::new(
        "Fig. 6 — SSPC ARI vs coverage, input size 6 (n=150, d=3000, k=5, l_real=30, m=0.5)",
        &["coverage", "objects only", "dims only", "both"],
    );
    for (ci, coverage) in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0].into_iter().enumerate() {
        let mut row = vec![format!("{coverage:.1}")];
        for (i, kind) in [InputKind::ObjectsOnly, InputKind::DimsOnly, InputKind::Both]
            .into_iter()
            .enumerate()
        {
            let ari = median_supervised_ari(
                &data,
                kind,
                coverage,
                6,
                derive_seed(seed, 620 + (ci * 3 + i) as u64),
            )?;
            row.push(Table::num(ari));
        }
        table.push_row(row);
    }
    Ok(vec![table])
}

// Re-exported pieces used by the misc/ablation experiments and tests.
#[allow(unused_imports)]
pub(crate) use sspc_datagen::supervision::SupervisionDraw;

#[cfg(test)]
mod tests {
    use super::*;
    use sspc_common::{ClusterId, ObjectId};

    #[test]
    fn to_supervision_carries_labels() {
        let d = sspc_datagen::supervision::SupervisionDraw {
            labeled_objects: vec![(ObjectId(1), ClusterId(0))],
            labeled_dims: vec![(sspc_common::DimId(5), ClusterId(2))],
        };
        let s = to_supervision(&d);
        assert_eq!(s.labeled_objects().len(), 1);
        assert_eq!(s.labeled_dims().len(), 1);
    }

    #[test]
    fn objects_only_size_one_uses_single_anchor_extension() {
        let data = generate(
            &GeneratorConfig {
                n: 60,
                d: 30,
                k: 3,
                avg_cluster_dims: 5,
                ..Default::default()
            },
            5,
        )
        .unwrap();
        let r = median_supervised_ari(&data, InputKind::ObjectsOnly, 1.0, 1, 3).unwrap();
        let ari = r.expect("one anchor per class is now feasible");
        assert!((-1.0..=1.0).contains(&ari));
    }
}
