//! Experiment harness for the SSPC reproduction.
//!
//! Every table and figure in the paper's evaluation (Sec. 5) has a
//! regeneration function in [`experiments`]; the `experiments` binary
//! dispatches to them by name:
//!
//! ```text
//! cargo run --release -p sspc-bench --bin experiments -- fig3
//! cargo run --release -p sspc-bench --bin experiments -- all
//! ```
//!
//! [`runner`] holds the protocol helpers shared by all experiments —
//! best-of-N repetition by algorithm-specific score (the paper's protocol),
//! ARI evaluation with the paper's outlier and labeled-object handling, and
//! wall-clock timing. [`table`] renders aligned text tables whose rows
//! mirror the series in the paper's plots.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod runner;
pub mod table;
