//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <name> [seed]
//!
//! names: fig1 fig2 fig3 fig4 outliers fig5 fig6 fig7 fig8a fig8b
//!        ablations all
//! ```

use sspc_bench::experiments;
use sspc_bench::table::Table;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments <name> [seed]\n\
         names: fig1 fig2 fig3 fig4 outliers fig5 fig6 fig7 fig8a fig8b\n\
                ablations noisy-inputs threshold-dist extended-baselines all"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(name) = args.first() else {
        return usage();
    };
    let seed: u64 = match args.get(1).map(|s| s.parse()) {
        None => 20050405, // ICDE 2005, Tokyo — a fixed default seed
        Some(Ok(s)) => s,
        Some(Err(_)) => return usage(),
    };

    let result: sspc_common::Result<Vec<Table>> = match name.as_str() {
        "fig1" => experiments::fig1(),
        "fig2" => experiments::fig2(),
        "fig3" => experiments::fig3(seed),
        "fig4" => experiments::fig4(seed),
        "outliers" => experiments::outliers(seed),
        "fig5" => experiments::fig5(seed),
        "fig6" => experiments::fig6(seed),
        "fig7" => experiments::fig7(seed),
        "fig8a" => experiments::fig8a(seed),
        "fig8b" => experiments::fig8b(seed),
        "ablations" => experiments::ablations(seed),
        "noisy-inputs" => experiments::noisy_inputs(seed),
        "threshold-dist" => experiments::threshold_vs_distribution(seed),
        "extended-baselines" => experiments::extended_baselines(seed),
        "all" => experiments::all(seed),
        _ => return usage(),
    };

    match result {
        Ok(tables) => {
            for t in tables {
                println!("{t}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("experiment failed: {e}");
            ExitCode::FAILURE
        }
    }
}
