//! Shared experiment protocol helpers.
//!
//! The paper's protocol (Sec. 5): "We repeated each experiment 10 times,
//! and report only the result that gives the best **algorithm-specific
//! objective score**" — i.e. repetitions are selected by each algorithm's
//! own internal score, *not* by ARI (which would leak the ground truth).
//! For the semi-supervised plots (Figs. 5–6) each point is instead "the
//! median of 10 repeated runs with 10 independent sets of inputs", with
//! labeled objects removed before computing ARI.

use sspc::{Sspc, SspcParams, SspcResult, Supervision};
use sspc_baselines::{clarans, doc, harp, proclus, BaselineResult};
use sspc_common::rng::derive_seed;
use sspc_common::{ClusterId, Dataset, ObjectId, Result};
use sspc_datagen::GroundTruth;
use sspc_metrics::{adjusted_rand_index, OutlierPolicy};
use std::time::Instant;

/// A value plus the wall-clock seconds spent producing it.
#[derive(Debug, Clone)]
pub struct Timed<T> {
    /// The computed value.
    pub value: T,
    /// Elapsed wall-clock seconds.
    pub seconds: f64,
}

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> Timed<T> {
    let start = Instant::now();
    let value = f();
    Timed {
        value,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Runs SSPC `runs` times (seeds derived from `base_seed`) and returns the
/// run with the **highest objective score** — the paper's best-of-N
/// protocol. Also reports total elapsed seconds across all runs (what
/// Fig. 8 plots).
///
/// # Errors
///
/// Propagates the first run failure.
pub fn best_sspc_of(
    dataset: &Dataset,
    params: &SspcParams,
    supervision: &Supervision,
    runs: usize,
    base_seed: u64,
) -> Result<Timed<SspcResult>> {
    let sspc = Sspc::new(params.clone())?;
    let start = Instant::now();
    let mut best: Option<SspcResult> = None;
    for r in 0..runs.max(1) {
        let result = sspc.run(dataset, supervision, derive_seed(base_seed, r as u64))?;
        if best
            .as_ref()
            .is_none_or(|b| result.objective() > b.objective())
        {
            best = Some(result);
        }
    }
    Ok(Timed {
        value: best.expect("runs >= 1"),
        seconds: start.elapsed().as_secs_f64(),
    })
}

/// Best-of-N PROCLUS by its internal cost (lower is better), with total
/// elapsed seconds.
///
/// # Errors
///
/// Propagates the first run failure.
pub fn best_proclus_of(
    dataset: &Dataset,
    params: &proclus::ProclusParams,
    runs: usize,
    base_seed: u64,
) -> Result<Timed<BaselineResult>> {
    let start = Instant::now();
    let mut best: Option<BaselineResult> = None;
    for r in 0..runs.max(1) {
        let result = proclus::run(dataset, params, derive_seed(base_seed, r as u64))?;
        if best.as_ref().is_none_or(|b| result.cost() < b.cost()) {
            best = Some(result);
        }
    }
    Ok(Timed {
        value: best.expect("runs >= 1"),
        seconds: start.elapsed().as_secs_f64(),
    })
}

/// Best-of-N CLARANS by its internal cost.
///
/// # Errors
///
/// Propagates the first run failure.
pub fn best_clarans_of(
    dataset: &Dataset,
    params: &clarans::ClaransParams,
    runs: usize,
    base_seed: u64,
) -> Result<Timed<BaselineResult>> {
    let start = Instant::now();
    let mut best: Option<BaselineResult> = None;
    for r in 0..runs.max(1) {
        let result = clarans::run(dataset, params, derive_seed(base_seed, r as u64))?;
        if best.as_ref().is_none_or(|b| result.cost() < b.cost()) {
            best = Some(result);
        }
    }
    Ok(Timed {
        value: best.expect("runs >= 1"),
        seconds: start.elapsed().as_secs_f64(),
    })
}

/// HARP, timed (deterministic, so one run suffices — the paper's
/// best-of-10 selects identical results for HARP).
///
/// # Errors
///
/// Propagates run failures.
pub fn harp_once(dataset: &Dataset, params: &harp::HarpParams) -> Result<Timed<BaselineResult>> {
    let start = Instant::now();
    let value = harp::run(dataset, params)?;
    Ok(Timed {
        value,
        seconds: start.elapsed().as_secs_f64(),
    })
}

/// Best-of-N DOC by its internal score.
///
/// # Errors
///
/// Propagates the first run failure.
pub fn best_doc_of(
    dataset: &Dataset,
    params: &doc::DocParams,
    runs: usize,
    base_seed: u64,
) -> Result<Timed<BaselineResult>> {
    let start = Instant::now();
    let mut best: Option<BaselineResult> = None;
    for r in 0..runs.max(1) {
        let result = doc::run(dataset, params, derive_seed(base_seed, r as u64))?;
        if best.as_ref().is_none_or(|b| result.cost() < b.cost()) {
            best = Some(result);
        }
    }
    Ok(Timed {
        value: best.expect("runs >= 1"),
        seconds: start.elapsed().as_secs_f64(),
    })
}

/// ARI of a produced assignment against the ground truth, with produced
/// outliers forming one extra cluster ([`OutlierPolicy::AsCluster`]) so
/// that discarding real members costs accuracy — the consistent treatment
/// across algorithms with and without outlier lists.
///
/// # Errors
///
/// Propagates metric failures (length mismatch).
pub fn ari_vs_truth(truth: &GroundTruth, produced: &[Option<ClusterId>]) -> Result<f64> {
    adjusted_rand_index(truth.assignment(), produced, OutlierPolicy::AsCluster)
}

/// ARI with the labeled objects removed from both partitions first — the
/// paper's semi-supervised protocol ("the labeled objects are removed from
/// the resulting clusters before computing the ARI values in order to
/// eliminate the direct performance gain due to the input objects").
///
/// # Errors
///
/// Propagates metric failures.
pub fn ari_excluding_labeled(
    truth: &GroundTruth,
    produced: &[Option<ClusterId>],
    labeled: &[(ObjectId, ClusterId)],
) -> Result<f64> {
    if labeled.is_empty() {
        return ari_vs_truth(truth, produced);
    }
    let mut t: Vec<Option<ClusterId>> = truth.assignment().to_vec();
    let mut p: Vec<Option<ClusterId>> = produced.to_vec();
    // Shift surviving labels up by one cluster id and park excluded objects
    // in a sentinel "cluster" that is then dropped: simplest is to delete
    // the positions outright.
    let mut excluded = vec![false; t.len()];
    for &(o, _) in labeled {
        excluded[o.index()] = true;
    }
    let mut tt = Vec::with_capacity(t.len());
    let mut pp = Vec::with_capacity(p.len());
    for i in 0..t.len() {
        if !excluded[i] {
            tt.push(t[i]);
            pp.push(p[i]);
        }
    }
    t = tt;
    p = pp;
    adjusted_rand_index(&t, &p, OutlierPolicy::AsCluster)
}

/// The median of a set of scores (used for the Figs. 5–6 protocol).
/// Returns `None` for an empty slice.
pub fn median_score(scores: &[f64]) -> Option<f64> {
    if scores.is_empty() {
        return None;
    }
    let mut buf = scores.to_vec();
    Some(sspc_common::stats::median_in_place(&mut buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sspc::ThresholdScheme;
    use sspc_datagen::{generate, GeneratorConfig};

    fn small_data() -> sspc_datagen::GeneratedData {
        generate(
            &GeneratorConfig {
                n: 120,
                d: 20,
                k: 3,
                avg_cluster_dims: 6,
                ..Default::default()
            },
            42,
        )
        .unwrap()
    }

    #[test]
    fn best_of_selects_highest_objective() {
        let data = small_data();
        let params = SspcParams::new(3).with_threshold(ThresholdScheme::MFraction(0.5));
        let one = best_sspc_of(&data.dataset, &params, &Supervision::none(), 1, 7).unwrap();
        let five = best_sspc_of(&data.dataset, &params, &Supervision::none(), 5, 7).unwrap();
        assert!(five.value.objective() >= one.value.objective());
        assert!(five.seconds > 0.0);
    }

    #[test]
    fn ari_vs_truth_rewards_good_clusterings() {
        let data = small_data();
        let params = SspcParams::new(3).with_threshold(ThresholdScheme::MFraction(0.5));
        let best = best_sspc_of(&data.dataset, &params, &Supervision::none(), 5, 3).unwrap();
        let ari = ari_vs_truth(&data.truth, best.value.assignment()).unwrap();
        assert!(ari > 0.5, "ARI {ari} too low on an easy dataset");
    }

    #[test]
    fn ari_excluding_labeled_drops_pinned_objects() {
        let data = small_data();
        // A perfect "clustering" that is only perfect on the labeled pair
        // would be fully discounted; here check the plumbing: excluding all
        // of one class's objects changes the score.
        let produced: Vec<Option<ClusterId>> = data.truth.assignment().to_vec();
        let full = ari_vs_truth(&data.truth, &produced).unwrap();
        assert!((full - 1.0).abs() < 1e-12);
        let labeled: Vec<(ObjectId, ClusterId)> = data
            .truth
            .members_of(ClusterId(0))
            .into_iter()
            .take(5)
            .map(|o| (o, ClusterId(0)))
            .collect();
        let partial = ari_excluding_labeled(&data.truth, &produced, &labeled).unwrap();
        assert!(
            (partial - 1.0).abs() < 1e-12,
            "still perfect, fewer objects"
        );
    }

    #[test]
    fn median_score_handles_edges() {
        assert_eq!(median_score(&[]), None);
        assert_eq!(median_score(&[0.5]), Some(0.5));
        assert_eq!(median_score(&[0.1, 0.9, 0.5]), Some(0.5));
    }

    #[test]
    fn timing_helper_reports_elapsed() {
        let t = time(|| 2 + 2);
        assert_eq!(t.value, 4);
        assert!(t.seconds >= 0.0);
    }
}
