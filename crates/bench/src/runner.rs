//! Shared experiment protocol helpers.
//!
//! The paper's protocol (Sec. 5): "We repeated each experiment 10 times,
//! and report only the result that gives the best **algorithm-specific
//! objective score**" — i.e. repetitions are selected by each algorithm's
//! own internal score, *not* by ARI (which would leak the ground truth).
//! For the semi-supervised plots (Figs. 5–6) each point is instead "the
//! median of 10 repeated runs with 10 independent sets of inputs", with
//! labeled objects removed before computing ARI.
//!
//! The restart/selection loop itself lives in [`sspc_api::experiment`] —
//! the same `best_of` every frontend (CLI, batch server) uses;
//! [`best_clustering_of`] only adapts its output to the [`Timed`] shape
//! the figure code consumes. This module keeps the *scoring* helpers that
//! are specific to the paper's evaluation: ARI with the paper's outlier
//! and labeled-object handling, and the median-of-runs aggregation.

use sspc_common::{
    ClusterId, Clustering, Dataset, ObjectId, ProjectedClusterer, Result, Supervision,
};
use sspc_datagen::GroundTruth;
use sspc_metrics::{adjusted_rand_index, OutlierPolicy};
use std::time::Instant;

/// A value plus the wall-clock seconds spent producing it.
#[derive(Debug, Clone)]
pub struct Timed<T> {
    /// The computed value.
    pub value: T,
    /// Elapsed wall-clock seconds.
    pub seconds: f64,
}

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> Timed<T> {
    let start = Instant::now();
    let value = f();
    Timed {
        value,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Best-of-N restarts of any [`ProjectedClusterer`], selected by the
/// algorithm's **own** objective under its own sense — a thin adapter over
/// [`sspc_api::best_of`] reporting the total seconds across restarts (what
/// the paper's timing figures plot). Deterministic algorithms (HARP,
/// CLIQUE) run once regardless of `runs`.
///
/// # Errors
///
/// Propagates the first run failure.
pub fn best_clustering_of<C: ProjectedClusterer + ?Sized>(
    clusterer: &C,
    dataset: &Dataset,
    supervision: &Supervision,
    runs: usize,
    base_seed: u64,
) -> Result<Timed<Clustering>> {
    let outcome = sspc_api::best_of(clusterer, dataset, supervision, runs, base_seed)?;
    Ok(Timed {
        value: outcome.best,
        seconds: outcome.total_seconds,
    })
}

/// ARI of a produced assignment against the ground truth, with produced
/// outliers forming one extra cluster ([`OutlierPolicy::AsCluster`]) so
/// that discarding real members costs accuracy — the consistent treatment
/// across algorithms with and without outlier lists.
///
/// # Errors
///
/// Propagates metric failures (length mismatch).
pub fn ari_vs_truth(truth: &GroundTruth, produced: &[Option<ClusterId>]) -> Result<f64> {
    adjusted_rand_index(truth.assignment(), produced, OutlierPolicy::AsCluster)
}

/// ARI with the labeled objects removed from both partitions first — the
/// paper's semi-supervised protocol ("the labeled objects are removed from
/// the resulting clusters before computing the ARI values in order to
/// eliminate the direct performance gain due to the input objects").
///
/// # Errors
///
/// Propagates metric failures.
pub fn ari_excluding_labeled(
    truth: &GroundTruth,
    produced: &[Option<ClusterId>],
    labeled: &[(ObjectId, ClusterId)],
) -> Result<f64> {
    if labeled.is_empty() {
        return ari_vs_truth(truth, produced);
    }
    let mut t: Vec<Option<ClusterId>> = truth.assignment().to_vec();
    let mut p: Vec<Option<ClusterId>> = produced.to_vec();
    // Shift surviving labels up by one cluster id and park excluded objects
    // in a sentinel "cluster" that is then dropped: simplest is to delete
    // the positions outright.
    let mut excluded = vec![false; t.len()];
    for &(o, _) in labeled {
        excluded[o.index()] = true;
    }
    let mut tt = Vec::with_capacity(t.len());
    let mut pp = Vec::with_capacity(p.len());
    for i in 0..t.len() {
        if !excluded[i] {
            tt.push(t[i]);
            pp.push(p[i]);
        }
    }
    t = tt;
    p = pp;
    adjusted_rand_index(&t, &p, OutlierPolicy::AsCluster)
}

/// The median of a set of scores (used for the Figs. 5–6 protocol).
/// Returns `None` for an empty slice.
pub fn median_score(scores: &[f64]) -> Option<f64> {
    if scores.is_empty() {
        return None;
    }
    let mut buf = scores.to_vec();
    Some(sspc_common::stats::median_in_place(&mut buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sspc::{Sspc, SspcParams, ThresholdScheme};
    use sspc_baselines::harp::HarpParams;
    use sspc_common::rng::derive_seed;
    use sspc_datagen::{generate, GeneratorConfig};

    fn small_data() -> sspc_datagen::GeneratedData {
        generate(
            &GeneratorConfig {
                n: 120,
                d: 20,
                k: 3,
                avg_cluster_dims: 6,
                ..Default::default()
            },
            42,
        )
        .unwrap()
    }

    fn sspc_with_m(m: f64) -> Sspc {
        Sspc::new(SspcParams::new(3).with_threshold(ThresholdScheme::MFraction(m))).unwrap()
    }

    #[test]
    fn best_of_selects_highest_objective() {
        let data = small_data();
        let sspc = sspc_with_m(0.5);
        let one = best_clustering_of(&sspc, &data.dataset, &Supervision::none(), 1, 7).unwrap();
        let five = best_clustering_of(&sspc, &data.dataset, &Supervision::none(), 5, 7).unwrap();
        assert!(five.value.objective() >= one.value.objective());
        assert!(five.seconds > 0.0);
        // The adapter reports the paper's "time of N runs", not one run's.
        assert!(five.seconds > five.value.seconds());
    }

    #[test]
    fn best_of_agrees_with_the_api_protocol() {
        let data = small_data();
        let sspc = sspc_with_m(0.5);
        let here = best_clustering_of(&sspc, &data.dataset, &Supervision::none(), 3, 9).unwrap();
        let api = sspc_api::best_of(&sspc, &data.dataset, &Supervision::none(), 3, 9).unwrap();
        // Wall-clock seconds legitimately differ between the two runs;
        // everything the protocol determines must not.
        assert_eq!(here.value.assignment(), api.best.assignment());
        assert_eq!(
            here.value.objective().to_bits(),
            api.best.objective().to_bits()
        );
        assert_eq!(here.value.all_selected_dims(), api.best.all_selected_dims());
    }

    #[test]
    fn deterministic_algorithms_run_once() {
        let data = small_data();
        let harp = HarpParams::new(3).build();
        let run = best_clustering_of(&harp, &data.dataset, &Supervision::none(), 10, 3).unwrap();
        let again = best_clustering_of(&harp, &data.dataset, &Supervision::none(), 1, 99).unwrap();
        assert_eq!(run.value.assignment(), again.value.assignment());
    }

    #[test]
    fn ari_vs_truth_rewards_good_clusterings() {
        let data = small_data();
        let best = best_clustering_of(&sspc_with_m(0.5), &data.dataset, &Supervision::none(), 5, 3)
            .unwrap();
        let ari = ari_vs_truth(&data.truth, best.value.assignment()).unwrap();
        assert!(ari > 0.5, "ARI {ari} too low on an easy dataset");
    }

    #[test]
    fn ari_excluding_labeled_drops_pinned_objects() {
        let data = small_data();
        // A perfect "clustering" that is only perfect on the labeled pair
        // would be fully discounted; here check the plumbing: excluding all
        // of one class's objects changes the score.
        let produced: Vec<Option<ClusterId>> = data.truth.assignment().to_vec();
        let full = ari_vs_truth(&data.truth, &produced).unwrap();
        assert!((full - 1.0).abs() < 1e-12);
        let labeled: Vec<(ObjectId, ClusterId)> = data
            .truth
            .members_of(ClusterId(0))
            .into_iter()
            .take(5)
            .map(|o| (o, ClusterId(0)))
            .collect();
        let partial = ari_excluding_labeled(&data.truth, &produced, &labeled).unwrap();
        assert!(
            (partial - 1.0).abs() < 1e-12,
            "still perfect, fewer objects"
        );
    }

    #[test]
    fn median_score_handles_edges() {
        assert_eq!(median_score(&[]), None);
        assert_eq!(median_score(&[0.5]), Some(0.5));
        assert_eq!(median_score(&[0.1, 0.9, 0.5]), Some(0.5));
    }

    #[test]
    fn timing_helper_reports_elapsed() {
        let t = time(|| 2 + 2);
        assert_eq!(t.value, 4);
        assert!(t.seconds >= 0.0);
    }

    /// The seeds `best_clustering_of` hands each restart are the
    /// `derive_seed(base, r)` stream the old per-algorithm helpers used,
    /// so figure outputs stay comparable across the port.
    #[test]
    fn restart_seeds_match_the_documented_stream() {
        let data = small_data();
        let sspc = sspc_with_m(0.5);
        let best = best_clustering_of(&sspc, &data.dataset, &Supervision::none(), 4, 5).unwrap();
        let mut manual: Option<Clustering> = None;
        for r in 0..4u64 {
            let c = sspc
                .cluster(&data.dataset, &Supervision::none(), derive_seed(5, r))
                .unwrap();
            if manual.as_ref().is_none_or(|b| c.is_better_than(b)) {
                manual = Some(c);
            }
        }
        assert_eq!(best.value.assignment(), manual.unwrap().assignment());
    }
}
