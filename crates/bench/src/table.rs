//! Minimal aligned-text tables for experiment output.

use std::fmt;

/// A titled table with a header row and string cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title, printed above the grid.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; ragged rows are padded with empty cells on display.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of already-formatted cells.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Formats a float at 3 decimals, or `-` for non-finite/absent values.
    pub fn num(v: Option<f64>) -> String {
        match v {
            Some(x) if x.is_finite() => format!("{x:.3}"),
            _ => "-".to_string(),
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        fn cell(row: &[String], c: usize) -> &str {
            row.get(c).map(String::as_str).unwrap_or("")
        }
        for (c, w) in widths.iter_mut().enumerate() {
            *w = cell(&self.headers, c).len();
            for row in &self.rows {
                *w = (*w).max(cell(row, c).len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (c, &width) in widths.iter().enumerate() {
                if c > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:<width$}", cell(row, c), width = width)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["x", "longer"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["100".into(), "2.5".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, rule, two rows.
        assert_eq!(lines.len(), 5);
        // The "longer" header starts at the same offset in every line.
        let off = lines[1].find("longer").unwrap();
        assert_eq!(lines[3].find('2').unwrap(), off);
    }

    #[test]
    fn num_formats_and_handles_missing() {
        assert_eq!(Table::num(Some(0.12345)), "0.123");
        assert_eq!(Table::num(None), "-");
        assert_eq!(Table::num(Some(f64::NAN)), "-");
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new("r", &["a", "b", "c"]);
        t.push_row(vec!["1".into()]);
        let s = t.to_string();
        assert!(s.lines().count() >= 4);
    }
}
