//! Ablation benchmarks: cost of the design choices DESIGN.md calls out.
//! (Their *accuracy* effect is measured by `experiments ablations`; here we
//! measure what they cost in time.)
//!
//! * median-representative replacement on/off;
//! * hill-climbing on/off during initialization;
//! * m-scheme vs p-scheme thresholds (the p-scheme pays for chi-square
//!   quantiles, amortized by memoization);
//! * grids per seed group (initialization effort).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sspc::{Sspc, SspcParams, Supervision, ThresholdScheme};
use sspc_datagen::{generate, GeneratedData, GeneratorConfig};
use std::hint::black_box;

fn workload() -> GeneratedData {
    generate(
        &GeneratorConfig {
            n: 300,
            d: 60,
            k: 4,
            avg_cluster_dims: 8,
            ..Default::default()
        },
        13,
    )
    .unwrap()
}

fn bench_ablations(c: &mut Criterion) {
    let data = workload();
    let mut group = c.benchmark_group("ablations_n300_d60");
    group.sample_size(10);

    let variants: Vec<(&str, SspcParams)> = vec![
        (
            "full_m_scheme",
            SspcParams::new(4).with_threshold(ThresholdScheme::MFraction(0.5)),
        ),
        (
            "p_scheme",
            SspcParams::new(4).with_threshold(ThresholdScheme::PValue(0.05)),
        ),
        (
            "no_median_reps",
            SspcParams::new(4)
                .with_threshold(ThresholdScheme::MFraction(0.5))
                .with_median_representatives(false),
        ),
        (
            "no_hill_climbing",
            SspcParams::new(4)
                .with_threshold(ThresholdScheme::MFraction(0.5))
                .with_hill_climbing(false),
        ),
        (
            "grids_5_per_group",
            SspcParams::new(4)
                .with_threshold(ThresholdScheme::MFraction(0.5))
                .with_grids_per_group(5),
        ),
        (
            "grids_40_per_group",
            SspcParams::new(4)
                .with_threshold(ThresholdScheme::MFraction(0.5))
                .with_grids_per_group(40),
        ),
    ];

    for (name, params) in variants {
        let sspc = Sspc::new(params).unwrap();
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(name), &sspc, |b, sspc| {
            b.iter(|| {
                seed += 1;
                black_box(sspc.run(&data.dataset, &Supervision::none(), seed).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
