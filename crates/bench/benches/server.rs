//! Batch-service throughput benchmark: jobs/sec through the full stack —
//! HTTP submission over a real loopback socket (keep-alive: the driver
//! reuses one connection for submits and another per poller), the
//! consistent-hash router tier, the bounded queue, the worker pool,
//! `sspc_api::experiment` execution, and result polling — router-fronted
//! at 1, 2 and 4 shards (one worker each, so the sweep isolates the
//! *sharding* axis), for **both job stores**: the in-memory map and the
//! fsynced disk journal. The memory-vs-disk delta at equal shards is the
//! measured persistence overhead; the 1-shard point is the single-shard
//! baseline the multi-shard points are judged against. A final
//! **dynamic-membership point** submits the batch to 2 shards and joins
//! a third at runtime (`joined_at_runtime: true` in the record), pricing
//! the spool-backed handoff against the static neighbours.
//!
//! Per-job intra-algorithm parallelism is pinned to one thread
//! (`SSPC_NUM_THREADS=1`); `threads`/`cores` are recorded like
//! `BENCH_hotloop.json` does so multi-core re-baselines stay
//! interpretable — on a single-core box the closed-loop sweep mostly
//! measures router overhead, while the open-loop shard sweep in
//! `loadgen.rs` shows the admission-capacity gain. The record is
//! appended to `BENCH_server.json` in the workspace root.
//!
//! Environment knobs:
//!
//! * `SERVER_BENCH_JOBS` — jobs per sweep point (default 24);
//! * `SERVER_BENCH_N` / `SERVER_BENCH_D` / `SERVER_BENCH_K` — per-job
//!   workload shape (default 200 × 20, k = 3);
//! * `SERVER_SMOKE=1` — 8 jobs of 80 × 10 for CI smoke runs;
//! * `BENCH_SERVER_OUT` — output path for the JSON record.

use sspc_common::json::Value;
use sspc_server::client::Client;
use sspc_server::{Router, RouterConfig, Server, ServerConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Workload {
    jobs: usize,
    n: usize,
    d: usize,
    k: usize,
    dims: usize,
    runs: usize,
    algorithms: &'static str,
}

/// One sweep point: a fresh router over `shards` one-worker shard
/// servers with the given store, `jobs` jobs submitted up front through
/// the router, wall-clock measured to the last completion.
fn measure(shards: usize, state_root: Option<&PathBuf>, w: &Workload) -> (f64, f64) {
    let mut servers = Vec::new();
    let mut roster = Vec::new();
    for shard in 0..shards as u16 {
        let state_dir = state_root.map(|root| root.join(format!("shard-{shard}")));
        if let Some(dir) = &state_dir {
            let _ = std::fs::remove_dir_all(dir); // fresh journal per point
        }
        let server = Server::start(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: w.jobs + 8,
            state_dir,
            shard_id: shard,
            ..Default::default()
        })
        .expect("bind loopback");
        roster.push((shard, server.addr().to_string()));
        servers.push(server);
    }
    let router = Router::start(&RouterConfig {
        addr: "127.0.0.1:0".into(),
        shards: roster,
        ..Default::default()
    })
    .expect("bind router");
    let addr = router.addr().to_string();
    let mut client = Client::new(&addr);

    let started = Instant::now();
    let ids: Vec<u64> = (0..w.jobs)
        .map(|i| {
            let job = Value::object()
                .with("k", w.k as u64)
                .with(
                    "dataset",
                    Value::object().with(
                        "generate",
                        Value::object()
                            .with("n", w.n as u64)
                            .with("d", w.d as u64)
                            .with("dims", w.dims as u64)
                            // A different dataset per job: no accidental
                            // sharing of anything between jobs.
                            .with("seed", i as u64 + 1),
                    ),
                )
                .with("algorithms", w.algorithms)
                .with("runs", w.runs as u64)
                .with("seed", 1u64)
                .with("truth", true);
            client.submit(&job).expect("submit")
        })
        .collect();
    for id in ids {
        let done = client
            .wait_for(id, Duration::from_millis(5), Duration::from_secs(600))
            .expect("job finishes");
        assert_eq!(
            done.get("status").and_then(Value::as_str),
            Some("done"),
            "job {id} failed: {done}"
        );
    }
    let seconds = started.elapsed().as_secs_f64();
    drop(client);
    router.shutdown();
    for server in servers {
        server.shutdown();
    }
    if let Some(root) = state_root {
        let _ = std::fs::remove_dir_all(root);
    }
    (seconds, w.jobs as f64 / seconds)
}

/// The dynamic-membership point: the full batch submitted to a 2-shard
/// router, then a **third shard joined at runtime** while the queues are
/// still deep — the handoff streams the moved pending keys out of the
/// donors' spools before the cutover. Returns the wall-clock measurement
/// plus the join summary (planned/moved counts, `handoff_seconds`).
fn measure_runtime_join(w: &Workload) -> (f64, f64, Value) {
    let spool = std::env::temp_dir().join(format!("sspc_bench_join_spool_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    let mut servers = Vec::new();
    let mut roster = Vec::new();
    for shard in 0..2u16 {
        let server = Server::start(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: w.jobs + 8,
            shard_id: shard,
            spool_dir: Some(spool.clone()),
            ..Default::default()
        })
        .expect("bind loopback");
        roster.push((shard, server.addr().to_string()));
        servers.push(server);
    }
    let router = Router::start(&RouterConfig {
        addr: "127.0.0.1:0".into(),
        shards: roster,
        spool_dir: Some(spool.clone()),
        ..Default::default()
    })
    .expect("bind router");
    let mut client = Client::new(router.addr().to_string());

    let started = Instant::now();
    let ids: Vec<u64> = (0..w.jobs)
        .map(|i| {
            let job = Value::object()
                .with("k", w.k as u64)
                .with(
                    "dataset",
                    Value::object().with(
                        "generate",
                        Value::object()
                            .with("n", w.n as u64)
                            .with("d", w.d as u64)
                            .with("dims", w.dims as u64)
                            .with("seed", i as u64 + 1),
                    ),
                )
                .with("algorithms", w.algorithms)
                .with("runs", w.runs as u64)
                .with("seed", 1u64)
                .with("truth", true);
            client.submit(&job).expect("submit")
        })
        .collect();
    // Join while the batch is still pending: the donors' queues are the
    // handoff's payload.
    let joiner = Server::start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: w.jobs + 8,
        shard_id: 2,
        spool_dir: Some(spool.clone()),
        ..Default::default()
    })
    .expect("bind joiner");
    let join = client
        .add_shard(2, &joiner.addr().to_string())
        .expect("runtime join mid-batch");
    servers.push(joiner);
    for id in ids {
        let done = client
            .wait_for(id, Duration::from_millis(5), Duration::from_secs(600))
            .expect("job finishes");
        assert_eq!(
            done.get("status").and_then(Value::as_str),
            Some("done"),
            "job {id} failed: {done}"
        );
    }
    let seconds = started.elapsed().as_secs_f64();
    drop(client);
    router.shutdown();
    for server in servers {
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&spool);
    (seconds, w.jobs as f64 / seconds, join)
}

fn main() {
    let smoke = std::env::var("SERVER_SMOKE").is_ok_and(|v| v == "1");
    // Pin per-job parallelism so the sweep measures the shard axis.
    std::env::set_var("SSPC_NUM_THREADS", "1");
    let w = if smoke {
        Workload {
            jobs: 8,
            n: 80,
            d: 10,
            k: 2,
            dims: 4,
            runs: 2,
            algorithms: "clarans,harp",
        }
    } else {
        Workload {
            jobs: env_usize("SERVER_BENCH_JOBS", 24),
            n: env_usize("SERVER_BENCH_N", 200),
            d: env_usize("SERVER_BENCH_D", 20),
            k: env_usize("SERVER_BENCH_K", 3),
            dims: 6,
            runs: 2,
            algorithms: "clarans,harp",
        }
    };

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let disk_root = std::env::temp_dir().join(format!("sspc_bench_state_{}", std::process::id()));
    let mut sweep = Vec::new();
    for (store, state_root) in [("memory", None), ("disk", Some(&disk_root))] {
        for shards in [1usize, 2, 4] {
            let (seconds, jobs_per_sec) = measure(shards, state_root, &w);
            println!(
                "server bench: {store:6} store  {shards:2} shards  {} jobs in {seconds:.3}s  \
                 ({jobs_per_sec:.1} jobs/s)",
                w.jobs
            );
            sweep.push(
                Value::object()
                    .with("store", store)
                    .with("shards", shards)
                    .with("workers_per_shard", 1u64)
                    .with("seconds", (seconds * 1e6).round() / 1e6)
                    .with("jobs_per_sec", (jobs_per_sec * 1e3).round() / 1e3),
            );
        }
    }
    // The dynamic-membership point: 2 shards grow to 3 mid-batch through
    // the admin join, so the point prices the spool-backed handoff
    // against the static 2- and 4-shard neighbours.
    {
        let (seconds, jobs_per_sec, join) = measure_runtime_join(&w);
        println!(
            "server bench: memory store  2+1 shards  {} jobs in {seconds:.3}s  \
             ({jobs_per_sec:.1} jobs/s), handoff {:.3}s ({} moved / {} planned)",
            w.jobs,
            join.get("handoff_seconds")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            join.get("moved").and_then(Value::as_u64).unwrap_or(0),
            join.get("planned").and_then(Value::as_u64).unwrap_or(0),
        );
        sweep.push(
            Value::object()
                .with("store", "memory")
                .with("shards", 3u64)
                .with("workers_per_shard", 1u64)
                .with("joined_at_runtime", true)
                .with("join", join)
                .with("seconds", (seconds * 1e6).round() / 1e6)
                .with("jobs_per_sec", (jobs_per_sec * 1e3).round() / 1e3),
        );
    }

    let record = Value::object()
        .with("bench", "server")
        .with("smoke", smoke)
        .with("jobs", w.jobs)
        .with("n", w.n)
        .with("d", w.d)
        .with("k", w.k)
        .with("algorithms", w.algorithms)
        .with("runs_per_algorithm", w.runs)
        // The *resolved* per-job worker count (pinned via SSPC_NUM_THREADS
        // above) — read back from sspc_common::parallel instead of echoed,
        // so the record can never silently disagree with what jobs did.
        .with("threads", sspc_common::parallel::num_threads() as u64)
        .with("cores", cores)
        .with("sweep", sweep);

    let out_path = std::env::var("BENCH_SERVER_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_server.json", env!("CARGO_MANIFEST_DIR")));
    // Checked serialization: the trajectory tooling parses these records
    // back, so a non-finite number must fail the bench, not degrade to
    // null silently.
    let line = record
        .to_string_checked()
        .expect("bench record contains a non-finite number");
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .and_then(|mut f| writeln!(f, "{line}"))
    {
        Ok(()) => eprintln!("server bench: appended record to {out_path}"),
        Err(e) => eprintln!("server bench: could not write {out_path}: {e}"),
    }
}
