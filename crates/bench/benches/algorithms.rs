//! End-to-end algorithm benchmarks on a shared small workload — the
//! relative costs here mirror the Fig. 8 scalability story (SSPC and
//! PROCLUS linear and comparable; HARP hierarchical and slower; CLARANS
//! full-space) at a size where one Criterion sample stays cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use sspc::{Sspc, SspcParams, Supervision, ThresholdScheme};
use sspc_baselines::{clarans, doc, harp, orclus, proclus};
use sspc_datagen::{generate, GeneratedData, GeneratorConfig};
use std::hint::black_box;

fn workload() -> GeneratedData {
    generate(
        &GeneratorConfig {
            n: 300,
            d: 40,
            k: 4,
            avg_cluster_dims: 8,
            ..Default::default()
        },
        7,
    )
    .unwrap()
}

fn bench_algorithms(c: &mut Criterion) {
    let data = workload();
    let mut group = c.benchmark_group("algorithms_n300_d40");
    group.sample_size(10);

    let sspc =
        Sspc::new(SspcParams::new(4).with_threshold(ThresholdScheme::MFraction(0.5))).unwrap();
    let mut seed = 0u64;
    group.bench_function("sspc", |b| {
        b.iter(|| {
            seed += 1;
            black_box(sspc.run(&data.dataset, &Supervision::none(), seed).unwrap())
        })
    });

    let proclus_params = proclus::ProclusParams::new(4, 8);
    group.bench_function("proclus", |b| {
        b.iter(|| {
            seed += 1;
            black_box(proclus::run(&data.dataset, &proclus_params, seed).unwrap())
        })
    });

    let clarans_params = clarans::ClaransParams {
        max_neighbor: Some(100),
        ..clarans::ClaransParams::new(4)
    };
    group.bench_function("clarans", |b| {
        b.iter(|| {
            seed += 1;
            black_box(clarans::run(&data.dataset, &clarans_params, seed).unwrap())
        })
    });

    let harp_params = harp::HarpParams::new(4);
    group.bench_function("harp", |b| {
        b.iter(|| black_box(harp::run(&data.dataset, &harp_params).unwrap()))
    });

    let doc_params = doc::DocParams::new(4, 5.0);
    group.bench_function("doc", |b| {
        b.iter(|| {
            seed += 1;
            black_box(doc::run(&data.dataset, &doc_params, seed).unwrap())
        })
    });

    let orclus_params = orclus::OrclusParams::new(4, 8);
    group.bench_function("orclus", |b| {
        b.iter(|| {
            seed += 1;
            black_box(orclus::run(&data.dataset, &orclus_params, seed).unwrap())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
