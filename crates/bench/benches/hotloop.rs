//! The SSPC hot-loop A/B/C benchmark: the delta-driven incremental fast
//! path (`Sspc::run`, PR 2) against the batch-refit fast path of PR 1
//! (`incremental = false`) and the pre-columnar serial reference
//! (`Sspc::run_naive`), on the issue's target workload — a 5000 × 1000
//! synthetic gene-expression-shaped matrix at k = 10.
//!
//! All three paths produce **bit-identical** `SspcResult`s (asserted here
//! on every run); only memory layout, parallelism, allocation, and refit
//! strategy differ. The measured comparison is appended to
//! `BENCH_hotloop.json` in the workspace root so the perf trajectory is
//! tracked from PR 1 onward.
//!
//! Environment knobs:
//!
//! * `HOTLOOP_N` / `HOTLOOP_D` / `HOTLOOP_K` — workload shape (default
//!   5000 / 1000 / 10);
//! * `HOTLOOP_STALL` / `HOTLOOP_ITERS` — termination controls (default
//!   3 / 8; raise both to lengthen the stabilized, delta-dominated phase);
//! * `HOTLOOP_OUTLIERS` — outlier fraction of the generated data (percent,
//!   default 0). Outliers keep boundary objects oscillating between the
//!   outlier list and their nearest cluster, which is what makes late
//!   iterations delta-dominated instead of frozen;
//! * `HOTLOOP_ROUNDS` — timed rounds per path (default 3; min of the
//!   rounds is reported);
//! * `HOTLOOP_SMOKE=1` — 600 × 120 at k = 4, one round, for CI smoke jobs;
//! * `SSPC_ASSIGN_PATH` — force the assignment kernel layout (`row` /
//!   `transposed`; default `auto` routes by shape). Recorded in the JSON
//!   line as `assign_path`, alongside the per-phase breakdown
//!   (`assign_secs` / `refit_secs` / `other_secs` per timed leg);
//! * `BENCH_HOTLOOP_OUT` — output path for the JSON record.

use sspc::objective::{ClusterModel, FitScratch, IncrementalModel};
use sspc::{PhaseTimings, Sspc, SspcParams, SspcResult, Supervision, ThresholdScheme, Thresholds};
use sspc_common::{Dataset, ObjectId};
use std::time::Instant;

use sspc_datagen::{generate, GeneratorConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One batch refit as the main loop performs it: columnar fit, dimension
/// selection, scoring, medians extracted for the representative step.
fn batch_refit(
    dataset: &Dataset,
    members: &[ObjectId],
    t_row: &[f64],
    scratch: &mut FitScratch,
    medians: &mut Vec<f64>,
) -> f64 {
    let model = ClusterModel::fit_with_scratch(dataset, members, scratch).unwrap();
    let dims = model.select_dims_row(t_row);
    medians.clear();
    medians.extend(dataset.dim_ids().map(|j| model.summary(j).median));
    model.cluster_score_row(&dims, t_row)
}

/// The stabilized-phase A/B: once SSPC stabilizes, an iteration moves only
/// a handful of objects per cluster, so the refit phase is delta-dominated.
/// This simulates that regime directly on the benchmark dataset — each
/// "iteration" swaps `delta` members in and out of a truth cluster and
/// re-derives dims/score/medians — comparing the batch refit (what PR 1
/// did every iteration) against the incremental engine's
/// `apply_delta` + order-statistics path (what PR 2 does). A separate
/// untimed verification pass then replays the same stream on both paths
/// and checks, **per iteration**, identical selected dims, bit-identical
/// medians for every dimension, and scores within the engine's drift
/// budget (the real loop re-canonicalizes on any decision inside that
/// budget, and always before recording).
///
/// Returns `(batch_secs, incr_secs, equivalent)`.
fn stabilized_phase_ab(
    dataset: &Dataset,
    members: &[ObjectId],
    spares: &[ObjectId],
    thresholds: &Thresholds,
    delta: usize,
    iters: usize,
) -> (f64, f64, bool) {
    let t_row = thresholds.row(members.len());
    let mut scratch = FitScratch::new();
    let mut medians = Vec::new();

    // The rotating membership stream both paths replay: swap `delta`
    // members against the spare pool each iteration.
    let mut streams: Vec<Vec<ObjectId>> = Vec::with_capacity(iters);
    let mut current = members.to_vec();
    for it in 0..iters {
        for s in 0..delta {
            let slot = (it * delta + s) * 7 % current.len();
            let spare = spares[(it * delta + s) % spares.len()];
            current[slot] = spare;
        }
        // Keep the multiset consistent: drop duplicates introduced by the
        // rotation (a spare can displace itself); dedup via sort on ids.
        let mut ids: Vec<usize> = current.iter().map(|o| o.index()).collect();
        ids.sort_unstable();
        ids.dedup();
        current = ids.into_iter().map(ObjectId).collect();
        streams.push(current.clone());
    }

    // The per-iteration delta against the previous membership, as the
    // engine's assignment scan would produce it.
    let diff = |prev: &[ObjectId], next: &[ObjectId]| -> (Vec<ObjectId>, Vec<ObjectId>) {
        let prev_set: std::collections::HashSet<usize> = prev.iter().map(|o| o.index()).collect();
        let next_set: std::collections::HashSet<usize> = next.iter().map(|o| o.index()).collect();
        let removed = prev
            .iter()
            .copied()
            .filter(|o| !next_set.contains(&o.index()))
            .collect();
        let added = next
            .iter()
            .copied()
            .filter(|o| !prev_set.contains(&o.index()))
            .collect();
        (removed, added)
    };

    // Batch path: full refit per iteration.
    let start = Instant::now();
    for m in &streams {
        let score = batch_refit(dataset, m, &t_row, &mut scratch, &mut medians);
        std::hint::black_box(score);
    }
    let batch_secs = start.elapsed().as_secs_f64();

    // Incremental path: one rebuild, then delta updates (the rebuild is
    // included in the measured time — the engine pays it too).
    let start = Instant::now();
    let mut inc = IncrementalModel::new(dataset.n_dims());
    let mut prev: Vec<ObjectId> = members.to_vec();
    inc.rebuild_with_scratch(dataset, &prev, &mut scratch)
        .unwrap();
    let mut dims = Vec::new();
    for m in &streams {
        let (removed, added) = diff(&prev, m);
        inc.apply_delta(dataset, &removed, &added);
        let out = inc
            .select_and_score_row(&t_row, &mut dims, &mut medians)
            .expect("margins stay clear of thresholds on this data");
        std::hint::black_box(out.score);
        prev = m.clone();
    }
    let incr_secs = start.elapsed().as_secs_f64();

    // Untimed verification replay: per iteration, the selected dims must
    // be identical, every dimension's median bit-identical (the
    // order-statistics contract), and the scores within the drift budget.
    let mut equivalent = true;
    let mut inc = IncrementalModel::new(dataset.n_dims());
    let mut prev: Vec<ObjectId> = members.to_vec();
    inc.rebuild_with_scratch(dataset, &prev, &mut scratch)
        .unwrap();
    let mut batch_medians = Vec::new();
    for m in &streams {
        let (removed, added) = diff(&prev, m);
        inc.apply_delta(dataset, &removed, &added);
        let out = inc
            .select_and_score_row(&t_row, &mut dims, &mut medians)
            .expect("margins stay clear of thresholds on this data");
        let batch_model = ClusterModel::fit_with_scratch(dataset, m, &mut scratch).unwrap();
        let batch_dims = batch_model.select_dims_row(&t_row);
        let batch_score = batch_model.cluster_score_row(&batch_dims, &t_row);
        batch_medians.clear();
        batch_medians.extend(dataset.dim_ids().map(|j| batch_model.summary(j).median));
        equivalent &= dims == batch_dims
            && medians
                .iter()
                .zip(&batch_medians)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && (out.score - batch_score).abs() <= 1e-6 * (1.0 + batch_score.abs());
        prev = m.clone();
    }
    (batch_secs, incr_secs, equivalent)
}

fn main() {
    let smoke = std::env::var("HOTLOOP_SMOKE").is_ok_and(|v| v == "1");
    let (n, d, k, rounds) = if smoke {
        (600, 120, 4, 1)
    } else {
        (
            env_usize("HOTLOOP_N", 5000),
            env_usize("HOTLOOP_D", 1000),
            env_usize("HOTLOOP_K", 10),
            env_usize("HOTLOOP_ROUNDS", 3),
        )
    };
    let max_stall = env_usize("HOTLOOP_STALL", 3);
    let max_iterations = env_usize("HOTLOOP_ITERS", 8);
    let outlier_fraction = env_usize("HOTLOOP_OUTLIERS", 0) as f64 / 100.0;

    eprintln!("hotloop: generating {n}x{d} dataset, k={k} ...");
    let config = GeneratorConfig {
        n,
        d,
        k,
        avg_cluster_dims: (d / 50).max(4),
        outlier_fraction,
        ..Default::default()
    };
    let data = generate(&config, 20_250_101).unwrap();

    // Three labeled objects per class: private seed groups for every
    // cluster, so initialization (not under test) stays cheap and the
    // measured time is dominated by the iteration phase this PR targets.
    let mut supervision = Supervision::none();
    for c in 0..k {
        let class = sspc_common::ClusterId(c);
        for &o in data.truth.members_of(class).iter().take(3) {
            supervision = supervision.label_object(o, class);
        }
    }

    let params = SspcParams::new(k)
        .with_threshold(ThresholdScheme::MFraction(0.5))
        .with_termination(max_stall, max_iterations);
    let incr = Sspc::new(params.clone()).unwrap();
    let batch = Sspc::new(params.with_incremental(false)).unwrap();
    let seed = 7u64;

    // Each timed leg reports its per-phase breakdown (assign / refit /
    // other) alongside the wall clock — the breakdown of the best (min
    // total) round is what lands in the record, so assignment-phase wins
    // are attributable instead of inferred from whole-run deltas. The
    // timing collector costs two `Instant` reads per outer iteration.
    let time_path = |label: &str,
                     f: &dyn Fn() -> (SspcResult, PhaseTimings)|
     -> (f64, SspcResult, PhaseTimings) {
        let mut best = f64::INFINITY;
        let mut best_phases = PhaseTimings::default();
        let mut result = None;
        for round in 0..rounds.max(1) {
            let start = Instant::now();
            let (r, phases) = f();
            let secs = start.elapsed().as_secs_f64();
            eprintln!(
                "hotloop: {label} round {round}: {secs:.3} s ({} iterations; \
                     assign {:.3} s, refit {:.3} s, other {:.3} s)",
                r.iterations(),
                phases.assign_secs,
                phases.refit_secs,
                phases.other_secs,
            );
            if secs < best {
                best = secs;
                best_phases = phases;
            }
            result = Some(r);
        }
        (best, result.expect("at least one round"), best_phases)
    };

    let (naive_secs, naive_result, naive_phases) = time_path("naive  ", &|| {
        batch
            .run_naive_with_timings(&data.dataset, &supervision, seed)
            .unwrap()
    });
    let (batch_secs, batch_result, batch_phases) = time_path("batch  ", &|| {
        batch
            .run_with_timings(&data.dataset, &supervision, seed)
            .unwrap()
    });
    let (incr_secs, incr_result, incr_phases) = time_path("incr   ", &|| {
        incr.run_with_timings(&data.dataset, &supervision, seed)
            .unwrap()
    });

    // Cancellation-overhead A/B: the cooperative deadline check sits in
    // the outer iteration loop. The `incr` timing above runs it unarmed
    // (a thread-local read); this run installs a far-future deadline so
    // every check also pays its `Instant::now()`. Both must be noise.
    let far_deadline = Instant::now() + std::time::Duration::from_secs(86_400);
    let (deadline_secs, deadline_result, _) = time_path("incr+dl", &|| {
        let _deadline = sspc_common::cancel::deadline_guard(far_deadline);
        incr.run_with_timings(&data.dataset, &supervision, seed)
            .unwrap()
    });

    let bit_identical = naive_result == batch_result
        && naive_result == incr_result
        && naive_result == deadline_result
        && naive_result.objective().to_bits() == batch_result.objective().to_bits()
        && naive_result.objective().to_bits() == incr_result.objective().to_bits()
        && naive_result.objective().to_bits() == deadline_result.objective().to_bits();
    assert!(
        bit_identical,
        "hotloop: fast paths diverged from the reference path"
    );

    let speedup = naive_secs / incr_secs;
    let speedup_incr = batch_secs / incr_secs;
    let deadline_overhead = deadline_secs / incr_secs - 1.0;
    println!(
        "hotloop n={n} d={d} k={k}: naive {naive_secs:.3} s, batch {batch_secs:.3} s, \
         incr {incr_secs:.3} s, speedup {speedup:.2}x (incr vs batch {speedup_incr:.2}x), \
         armed-deadline overhead {:+.1}%, bit-identical results",
        deadline_overhead * 100.0
    );

    // The stabilized-regime A/B on the same workload: delta-dominated
    // iterations over a truth cluster, batch refit vs incremental engine.
    // The default delta (members/128, ~4 for the target workload) matches
    // the per-cluster deltas actually observed in stabilized iterations of
    // the run above (mostly 1-3 objects).
    let thresholds = Thresholds::new(ThresholdScheme::MFraction(0.5), &data.dataset).unwrap();
    let members = data.truth.members_of(sspc_common::ClusterId(0));
    let spares = data.truth.members_of(sspc_common::ClusterId(1.min(k - 1)));
    let stab_delta = env_usize("HOTLOOP_STAB_DELTA", (members.len() / 128).max(1));
    let stab_iters = env_usize("HOTLOOP_STAB_ITERS", if smoke { 10 } else { 30 });
    let mut stab_batch = f64::INFINITY;
    let mut stab_incr = f64::INFINITY;
    let mut stab_identical = true;
    for _ in 0..rounds.max(1) {
        let (b, i, ok) = stabilized_phase_ab(
            &data.dataset,
            &members,
            &spares,
            &thresholds,
            stab_delta,
            stab_iters,
        );
        stab_batch = stab_batch.min(b);
        stab_incr = stab_incr.min(i);
        stab_identical &= ok;
    }
    assert!(
        stab_identical,
        "hotloop: stabilized-phase incremental refits diverged from batch"
    );
    let stab_speedup = stab_batch / stab_incr;
    println!(
        "hotloop stabilized phase (cluster of {}, delta {stab_delta}, {stab_iters} iters): \
         batch {stab_batch:.4} s, incr {stab_incr:.4} s, speedup {stab_speedup:.2}x",
        members.len()
    );

    // Append one JSON record per run; the workspace root is two levels up
    // from this package's CARGO_MANIFEST_DIR. `threads` is the resolved
    // worker count the parallel phases actually use; `cores` is what the
    // machine offers — record both so multi-core re-baselines (the PR-1
    // numbers are from a 1-core box) stay interpretable.
    let out_path = std::env::var("BENCH_HOTLOOP_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_hotloop.json", env!("CARGO_MANIFEST_DIR")));
    let threads = sspc_common::parallel::num_threads();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    // The assignment-path routing in force (the SSPC_ASSIGN_PATH A/B
    // knob), normalized so the trajectory records parse uniformly.
    let assign_path = match std::env::var("SSPC_ASSIGN_PATH")
        .ok()
        .as_deref()
        .map(str::trim)
    {
        Some("row") => "row",
        Some("transposed") => "transposed",
        _ => "auto",
    };
    let record = format!(
        concat!(
            "{{\"bench\":\"hotloop\",\"n\":{},\"d\":{},\"k\":{},\"rounds\":{},",
            "\"threads\":{},\"cores\":{},\"assign_path\":\"{}\",",
            "\"naive_secs\":{:.6},\"batch_secs\":{:.6},",
            "\"incr_secs\":{:.6},\"fast_secs\":{:.6},\"speedup\":{:.3},",
            "\"speedup_incr_vs_batch\":{:.3},",
            "\"assign_secs\":{:.6},\"refit_secs\":{:.6},\"other_secs\":{:.6},",
            "\"naive_assign_secs\":{:.6},\"naive_refit_secs\":{:.6},",
            "\"naive_other_secs\":{:.6},\"batch_assign_secs\":{:.6},",
            "\"batch_refit_secs\":{:.6},\"batch_other_secs\":{:.6},",
            "\"stabilized_batch_secs\":{:.6},",
            "\"stabilized_incr_secs\":{:.6},\"stabilized_speedup\":{:.3},",
            "\"stabilized_delta\":{},\"deadline_incr_secs\":{:.6},",
            "\"deadline_overhead\":{:.4},\"bit_identical\":{},\"iterations\":{}}}\n"
        ),
        n,
        d,
        k,
        rounds,
        threads,
        cores,
        assign_path,
        naive_secs,
        batch_secs,
        incr_secs,
        incr_secs,
        speedup,
        speedup_incr,
        incr_phases.assign_secs,
        incr_phases.refit_secs,
        incr_phases.other_secs,
        naive_phases.assign_secs,
        naive_phases.refit_secs,
        naive_phases.other_secs,
        batch_phases.assign_secs,
        batch_phases.refit_secs,
        batch_phases.other_secs,
        stab_batch,
        stab_incr,
        stab_speedup,
        stab_delta,
        deadline_secs,
        deadline_overhead,
        bit_identical && stab_identical,
        incr_result.iterations()
    );
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
    {
        Ok(mut f) => {
            use std::io::Write;
            let _ = f.write_all(record.as_bytes());
            eprintln!("hotloop: appended record to {out_path}");
        }
        Err(e) => eprintln!("hotloop: could not write {out_path}: {e}"),
    }
}
