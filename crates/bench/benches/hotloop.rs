//! The SSPC hot-loop A/B benchmark: the columnar + parallel + scratch-
//! reusing fast path (`Sspc::run`) against the pre-columnar serial
//! reference (`Sspc::run_naive`), on the issue's target workload — a
//! 5000 × 1000 synthetic gene-expression-shaped matrix at k = 10.
//!
//! Both paths produce **bit-identical** `SspcResult`s (asserted here on
//! every run); only memory layout, parallelism, and allocation behaviour
//! differ. The measured comparison is appended to `BENCH_hotloop.json` in
//! the workspace root so the perf trajectory is tracked from PR 1 onward.
//!
//! Environment knobs:
//!
//! * `HOTLOOP_N` / `HOTLOOP_D` / `HOTLOOP_K` — workload shape (default
//!   5000 / 1000 / 10);
//! * `HOTLOOP_ROUNDS` — timed rounds per path (default 3; min of the
//!   rounds is reported);
//! * `HOTLOOP_SMOKE=1` — 600 × 120 at k = 4, one round, for CI smoke jobs;
//! * `BENCH_HOTLOOP_OUT` — output path for the JSON record.

use sspc::{Sspc, SspcParams, SspcResult, Supervision, ThresholdScheme};
use sspc_datagen::{generate, GeneratorConfig};
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let smoke = std::env::var("HOTLOOP_SMOKE").is_ok_and(|v| v == "1");
    let (n, d, k, rounds) = if smoke {
        (600, 120, 4, 1)
    } else {
        (
            env_usize("HOTLOOP_N", 5000),
            env_usize("HOTLOOP_D", 1000),
            env_usize("HOTLOOP_K", 10),
            env_usize("HOTLOOP_ROUNDS", 3),
        )
    };

    eprintln!("hotloop: generating {n}x{d} dataset, k={k} ...");
    let config = GeneratorConfig {
        n,
        d,
        k,
        avg_cluster_dims: (d / 50).max(4),
        ..Default::default()
    };
    let data = generate(&config, 20_250_101).unwrap();

    // Three labeled objects per class: private seed groups for every
    // cluster, so initialization (not under test) stays cheap and the
    // measured time is dominated by the iteration phase this PR targets.
    let mut supervision = Supervision::none();
    for c in 0..k {
        let class = sspc_common::ClusterId(c);
        for &o in data.truth.members_of(class).iter().take(3) {
            supervision = supervision.label_object(o, class);
        }
    }

    let params = SspcParams::new(k)
        .with_threshold(ThresholdScheme::MFraction(0.5))
        .with_termination(3, 8);
    let sspc = Sspc::new(params).unwrap();
    let seed = 7u64;

    let time_path = |label: &str, f: &dyn Fn() -> SspcResult| -> (f64, SspcResult) {
        let mut best = f64::INFINITY;
        let mut result = None;
        for round in 0..rounds.max(1) {
            let start = Instant::now();
            let r = f();
            let secs = start.elapsed().as_secs_f64();
            eprintln!(
                "hotloop: {label} round {round}: {secs:.3} s ({} iterations)",
                r.iterations()
            );
            best = best.min(secs);
            result = Some(r);
        }
        (best, result.expect("at least one round"))
    };

    let (naive_secs, naive_result) = time_path("naive  ", &|| {
        sspc.run_naive(&data.dataset, &supervision, seed).unwrap()
    });
    let (fast_secs, fast_result) = time_path("fast   ", &|| {
        sspc.run(&data.dataset, &supervision, seed).unwrap()
    });

    assert_eq!(
        naive_result, fast_result,
        "hotloop: fast path diverged from the reference path"
    );
    assert_eq!(
        naive_result.objective().to_bits(),
        fast_result.objective().to_bits(),
        "hotloop: objective bits diverged"
    );

    let speedup = naive_secs / fast_secs;
    println!(
        "hotloop n={n} d={d} k={k}: naive {naive_secs:.3} s, fast {fast_secs:.3} s, \
         speedup {speedup:.2}x, bit-identical results"
    );

    // Append one JSON record per run; the workspace root is two levels up
    // from this package's CARGO_MANIFEST_DIR.
    let out_path = std::env::var("BENCH_HOTLOOP_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_hotloop.json", env!("CARGO_MANIFEST_DIR")));
    let threads = sspc_common::parallel::num_threads();
    let record = format!(
        concat!(
            "{{\"bench\":\"hotloop\",\"n\":{},\"d\":{},\"k\":{},\"rounds\":{},",
            "\"threads\":{},\"naive_secs\":{:.6},\"fast_secs\":{:.6},",
            "\"speedup\":{:.3},\"bit_identical\":true,\"iterations\":{}}}\n"
        ),
        n,
        d,
        k,
        rounds,
        threads,
        naive_secs,
        fast_secs,
        speedup,
        fast_result.iterations()
    );
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
    {
        Ok(mut f) => {
            use std::io::Write;
            let _ = f.write_all(record.as_bytes());
            eprintln!("hotloop: appended record to {out_path}");
        }
        Err(e) => eprintln!("hotloop: could not write {out_path}: {e}"),
    }
}
