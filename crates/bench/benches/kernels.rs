//! Criterion micro-benchmarks of the computational kernels behind every
//! experiment: objective evaluation and dimension selection (the per-
//! iteration core of SSPC), grid construction (initialization), the
//! chi-square quantile (p-scheme thresholds), the ARI metric, the
//! Hungarian matcher, and the synthetic generator.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use sspc::objective::{
    assignment_argmax, assignment_gain_row, assignment_gains_transposed, AssignCandidate,
    ClusterModel, FitScratch, IncrementalModel, ASSIGN_BLOCK,
};
use sspc::{ThresholdScheme, Thresholds};
use sspc_common::orderstat::MedianSet;
use sspc_common::stats::ChiSquared;
use sspc_common::{ClusterId, DimId, ObjectId};
use sspc_datagen::{generate, GeneratorConfig};
use sspc_metrics::{adjusted_rand_index, matching, ContingencyTable, OutlierPolicy};
use std::hint::black_box;

fn config(n: usize, d: usize) -> GeneratorConfig {
    GeneratorConfig {
        n,
        d,
        k: 5,
        avg_cluster_dims: (d / 10).max(2),
        ..Default::default()
    }
}

fn bench_objective(c: &mut Criterion) {
    let mut group = c.benchmark_group("objective");
    for (n, d) in [(1000usize, 100usize), (150, 3000)] {
        let data = generate(&config(n, d), 1).unwrap();
        let members: Vec<ObjectId> = data.truth.members_of(ClusterId(0));
        let thresholds = Thresholds::new(ThresholdScheme::MFraction(0.5), &data.dataset).unwrap();
        group.bench_with_input(
            BenchmarkId::new("fit_and_select", format!("n{n}_d{d}")),
            &(&data, &members, &thresholds),
            |b, (data, members, thresholds)| {
                b.iter(|| {
                    let model = ClusterModel::fit(&data.dataset, members).unwrap();
                    let dims = model.select_dims(thresholds);
                    black_box(model.cluster_score(&dims, thresholds))
                })
            },
        );
    }
    group.finish();
}

/// Columnar gather (`fit_with_scratch`) vs the row-major strided reference
/// (`fit_naive`) — the core of the PR-1 performance layer. The gap widens
/// with `d` (stride `8·d` bytes between consecutive reads of one dimension
/// in the naive path).
fn bench_fit_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_layout");
    for (n, d) in [(1000usize, 100usize), (150, 3000), (5000, 1000)] {
        let data = generate(&config(n, d), 1).unwrap();
        let members: Vec<ObjectId> = data.truth.members_of(ClusterId(0));
        let mut scratch = FitScratch::new();
        group.bench_with_input(
            BenchmarkId::new("columnar", format!("n{n}_d{d}")),
            &(&data, &members),
            |b, (data, members)| {
                b.iter(|| {
                    black_box(
                        ClusterModel::fit_with_scratch(&data.dataset, members, &mut scratch)
                            .unwrap(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive", format!("n{n}_d{d}")),
            &(&data, &members),
            |b, (data, members)| {
                b.iter(|| black_box(ClusterModel::fit_naive(&data.dataset, members).unwrap()))
            },
        );
    }
    group.finish();
}

/// The delta-size sweep behind the incremental refit engine's cutover
/// policy: one stabilized-iteration refit of a ~n/5-member cluster over
/// `d` dimensions — incremental (`apply_delta` + order-statistics
/// selection) vs the batch fit — across delta sizes. The crossover this
/// sweep shows is what `DELTA_CUTOVER_DIV` in the main loop encodes.
fn bench_incremental_delta_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_refit");
    let (n, d) = (2500usize, 1000usize);
    let data = generate(&config(n, d), 3).unwrap();
    let members: Vec<ObjectId> = data.truth.members_of(ClusterId(0));
    let spares: Vec<ObjectId> = data.truth.members_of(ClusterId(1));
    let thresholds = Thresholds::new(ThresholdScheme::MFraction(0.5), &data.dataset).unwrap();
    let t_row = thresholds.row(members.len());
    let mut scratch = FitScratch::new();

    group.bench_with_input(
        BenchmarkId::new("batch_fit", format!("m{}_d{d}", members.len())),
        &(&data, &members),
        |b, (data, members)| {
            b.iter(|| {
                let model =
                    ClusterModel::fit_with_scratch(&data.dataset, members, &mut scratch).unwrap();
                black_box(model.select_dims_row(&t_row))
            })
        },
    );

    for delta in [1usize, 4, 8, 16, 32] {
        let removed: Vec<ObjectId> = members.iter().copied().take(delta).collect();
        let added: Vec<ObjectId> = spares.iter().copied().take(delta).collect();
        let mut inc = IncrementalModel::new(d);
        inc.rebuild_with_scratch(&data.dataset, &members, &mut scratch)
            .unwrap();
        let (mut dims, mut medians) = (Vec::new(), Vec::new());
        group.bench_with_input(
            BenchmarkId::new("apply_delta_select", format!("delta{delta}")),
            &(&data, &removed, &added),
            |b, (data, removed, added)| {
                b.iter(|| {
                    // Swap the same objects out and back in: two deltas of
                    // the given size, leaving the model unchanged for the
                    // next measurement.
                    inc.apply_delta(&data.dataset, removed, added);
                    inc.apply_delta(&data.dataset, added, removed);
                    black_box(inc.select_and_score_row(&t_row, &mut dims, &mut medians))
                })
            },
        );
    }

    // The bulk-load investment (sorted rebuild of every per-dimension
    // multiset) that a delta-dominated stretch must amortize.
    let mut inc = IncrementalModel::new(d);
    group.bench_with_input(
        BenchmarkId::new("rebuild", format!("m{}_d{d}", members.len())),
        &(&data, &members),
        |b, (data, members)| {
            b.iter(|| {
                inc.rebuild_with_scratch(&data.dataset, members, &mut scratch)
                    .unwrap();
                black_box(inc.size())
            })
        },
    );
    group.finish();
}

/// Raw order-statistics multiset operations — the per-(object, dimension)
/// cost every incremental refit pays.
fn bench_medianset_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("medianset");
    for n in [128usize, 512, 2048] {
        let values: Vec<f64> = (0..n).map(|i| ((i * 193) % 1009) as f64).collect();
        let mut set = MedianSet::new();
        let mut keys = Vec::new();
        set.rebuild_from_unsorted(&values, &mut keys);
        group.bench_with_input(
            BenchmarkId::new("swap_and_median", format!("n{n}")),
            &values,
            |b, values| {
                let mut i = 0usize;
                b.iter(|| {
                    let v = values[i % values.len()];
                    set.remove(v);
                    set.insert(v + 0.5);
                    set.remove(v + 0.5);
                    set.insert(v);
                    i += 1;
                    black_box(set.median())
                })
            },
        );
        // A/B of the two median read paths under the same mutation load:
        // `median()` reads through the O(1) maintained cursor;
        // `select(median_rank)` pays the chunk-length walk the cursor
        // removed (PERFORMANCE.md "Incremental refits" follow-up).
        group.bench_with_input(
            BenchmarkId::new("swap_and_median_select_walk", format!("n{n}")),
            &values,
            |b, values| {
                let mut i = 0usize;
                b.iter(|| {
                    let v = values[i % values.len()];
                    set.remove(v);
                    set.insert(v + 0.5);
                    set.remove(v + 0.5);
                    set.insert(v);
                    i += 1;
                    black_box(set.select((set.len() - 1) / 2))
                })
            },
        );
        // Bulk-load A/B: the default full `sort_unstable` rebuild against
        // the quantile-partition pass (recursive `select_nth_unstable` at
        // chunk boundaries, then short chunk sorts). Both build the
        // identical structure; the measurement decided the default — the
        // full sort won at every size, so the partition pass is the A/B
        // arm only (PERFORMANCE.md "MedianSet bulk-load").
        group.bench_with_input(
            BenchmarkId::new("rebuild_unsorted", format!("n{n}")),
            &values,
            |b, values| b.iter(|| set.rebuild_from_unsorted(black_box(values), &mut keys)),
        );
        group.bench_with_input(
            BenchmarkId::new("rebuild_unsorted_quantile", format!("n{n}")),
            &values,
            |b, values| b.iter(|| set.rebuild_from_unsorted_quantile(black_box(values), &mut keys)),
        );
    }
    group.finish();
}

/// The assignment-phase gain kernel (order-exact 4-wide unroll) at
/// realistic selected-dimension counts.
fn bench_gain_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("gain_row");
    let d = 1000usize;
    let data = generate(&config(2000, d), 4).unwrap();
    let row = data.dataset.row(ObjectId(0)).to_vec();
    let rep = data.dataset.row(ObjectId(1)).to_vec();
    let thresholds = Thresholds::new(ThresholdScheme::MFraction(0.5), &data.dataset).unwrap();
    let t_row = thresholds.row(400);
    // The pre-unroll formulation, kept here as the measured baseline the
    // order-exact unroll in `assignment_gain_row` is compared against
    // (PERFORMANCE.md quotes this A/B).
    let sequential = |dims: &[DimId]| -> f64 {
        dims.iter()
            .map(|&j| {
                let t = t_row[j.index()];
                if t <= 0.0 {
                    return 0.0;
                }
                let diff = row[j.index()] - rep[j.index()];
                1.0 - diff * diff / t
            })
            .sum()
    };
    for n_dims in [8usize, 20, 100] {
        let dims: Vec<DimId> = (0..n_dims).map(|j| DimId(j * (d / n_dims))).collect();
        group.bench_with_input(
            BenchmarkId::new("unrolled", format!("dims{n_dims}")),
            &dims,
            |b, dims| b.iter(|| black_box(assignment_gain_row(&row, &rep, dims, &t_row))),
        );
        group.bench_with_input(
            BenchmarkId::new("sequential", format!("dims{n_dims}")),
            &dims,
            |b, dims| b.iter(|| black_box(sequential(dims))),
        );
    }
    group.finish();
}

/// The whole-assignment-phase layout A/B behind the `SSPC_ASSIGN_PATH`
/// router: the row-wise path (per-object `assignment_gain_row` over every
/// candidate, strided column reads) against the transposed path
/// (per-candidate contiguous `column_slice` scans into blocked gain
/// stripes, then a per-object argmax reduction). Both produce bit-identical
/// gains; the sweep varies the per-cluster selected-dimension count, which
/// is what the auto-routing heuristic keys on — transposed pulls ahead as
/// dimensions widen, row stays competitive on narrow clusters.
fn bench_assign_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("assign_layout");
    let (n, d, k) = (4096usize, 1000usize, 10usize);
    let data = generate(&config(n, d), 5).unwrap();
    let thresholds = Thresholds::new(ThresholdScheme::MFraction(0.5), &data.dataset).unwrap();
    let t_row = thresholds.row(n / k);
    for n_dims in [4usize, 20, 100] {
        // k candidate clusters: representatives from distinct data rows,
        // dimension sets offset per cluster so the scans don't all touch
        // the same columns.
        let reps: Vec<Vec<f64>> = (0..k)
            .map(|cl| data.dataset.row(ObjectId(cl * (n / k))).to_vec())
            .collect();
        let dims_list: Vec<Vec<DimId>> = (0..k)
            .map(|cl| {
                (0..n_dims)
                    .map(|j| DimId((cl * 7 + j * (d / n_dims)) % d))
                    .collect()
            })
            .collect();
        let candidates: Vec<AssignCandidate<'_>> = (0..k)
            .map(|cl| AssignCandidate {
                rep: &reps[cl],
                dims: &dims_list[cl],
                threshold_row: &t_row,
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("row", format!("dims{n_dims}")),
            &candidates,
            |b, candidates| {
                b.iter(|| {
                    let mut outliers = 0usize;
                    for i in 0..n {
                        let row = data.dataset.row(ObjectId(i));
                        let mut best_gain = 0.0f64;
                        let mut best = None;
                        for (cl, cand) in candidates.iter().enumerate() {
                            let gain =
                                assignment_gain_row(row, cand.rep, cand.dims, cand.threshold_row);
                            if gain > best_gain {
                                best_gain = gain;
                                best = Some(cl);
                            }
                        }
                        if best.is_none() {
                            outliers += 1;
                        }
                    }
                    black_box(outliers)
                })
            },
        );
        let mut gains = Vec::new();
        group.bench_with_input(
            BenchmarkId::new("transposed", format!("dims{n_dims}")),
            &candidates,
            |b, candidates| {
                b.iter(|| {
                    let mut outliers = 0usize;
                    let mut start = 0usize;
                    while start < n {
                        let block_len = (n - start).min(ASSIGN_BLOCK);
                        assignment_gains_transposed(
                            &data.dataset,
                            start,
                            block_len,
                            candidates,
                            &mut gains,
                        );
                        for i in 0..block_len {
                            if assignment_argmax(&gains, block_len, i).is_none() {
                                outliers += 1;
                            }
                        }
                        start += block_len;
                    }
                    black_box(outliers)
                })
            },
        );
    }
    group.finish();
}

fn bench_chi_square_quantile(c: &mut Criterion) {
    c.bench_function("chi_square_quantile_dof30", |b| {
        let chi = ChiSquared::new(30.0).unwrap();
        b.iter(|| black_box(chi.quantile(black_box(0.01)).unwrap()))
    });
}

fn bench_ari(c: &mut Criterion) {
    let data = generate(&config(5000, 10), 2).unwrap();
    let truth = data.truth.assignment().to_vec();
    let mut shifted = truth.clone();
    shifted.rotate_right(7);
    c.bench_function("ari_n5000", |b| {
        b.iter(|| {
            black_box(adjusted_rand_index(&truth, &shifted, OutlierPolicy::AsCluster).unwrap())
        })
    });
}

fn bench_hungarian(c: &mut Criterion) {
    let data = generate(&config(2000, 10), 3).unwrap();
    let truth = data.truth.assignment().to_vec();
    let mut shifted = truth.clone();
    shifted.rotate_right(13);
    let table = ContingencyTable::build(&truth, &shifted, OutlierPolicy::Exclude).unwrap();
    c.bench_function("hungarian_match_5x5", |b| {
        b.iter(|| black_box(matching::match_clusters_to_classes(&table).unwrap()))
    });
}

fn bench_generator(c: &mut Criterion) {
    c.bench_function("generate_n1000_d100", |b| {
        let cfg = config(1000, 100);
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                seed
            },
            |s| black_box(generate(&cfg, s).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_objective,
    bench_fit_layouts,
    bench_incremental_delta_sweep,
    bench_medianset_ops,
    bench_gain_row,
    bench_assign_layouts,
    bench_chi_square_quantile,
    bench_ari,
    bench_hungarian,
    bench_generator
);
criterion_main!(benches);
