//! Criterion micro-benchmarks of the computational kernels behind every
//! experiment: objective evaluation and dimension selection (the per-
//! iteration core of SSPC), grid construction (initialization), the
//! chi-square quantile (p-scheme thresholds), the ARI metric, the
//! Hungarian matcher, and the synthetic generator.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use sspc::objective::{ClusterModel, FitScratch};
use sspc::{ThresholdScheme, Thresholds};
use sspc_common::stats::ChiSquared;
use sspc_common::{ClusterId, ObjectId};
use sspc_datagen::{generate, GeneratorConfig};
use sspc_metrics::{adjusted_rand_index, matching, ContingencyTable, OutlierPolicy};
use std::hint::black_box;

fn config(n: usize, d: usize) -> GeneratorConfig {
    GeneratorConfig {
        n,
        d,
        k: 5,
        avg_cluster_dims: (d / 10).max(2),
        ..Default::default()
    }
}

fn bench_objective(c: &mut Criterion) {
    let mut group = c.benchmark_group("objective");
    for (n, d) in [(1000usize, 100usize), (150, 3000)] {
        let data = generate(&config(n, d), 1).unwrap();
        let members: Vec<ObjectId> = data.truth.members_of(ClusterId(0));
        let thresholds = Thresholds::new(ThresholdScheme::MFraction(0.5), &data.dataset).unwrap();
        group.bench_with_input(
            BenchmarkId::new("fit_and_select", format!("n{n}_d{d}")),
            &(&data, &members, &thresholds),
            |b, (data, members, thresholds)| {
                b.iter(|| {
                    let model = ClusterModel::fit(&data.dataset, members).unwrap();
                    let dims = model.select_dims(thresholds);
                    black_box(model.cluster_score(&dims, thresholds))
                })
            },
        );
    }
    group.finish();
}

/// Columnar gather (`fit_with_scratch`) vs the row-major strided reference
/// (`fit_naive`) — the core of the PR-1 performance layer. The gap widens
/// with `d` (stride `8·d` bytes between consecutive reads of one dimension
/// in the naive path).
fn bench_fit_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_layout");
    for (n, d) in [(1000usize, 100usize), (150, 3000), (5000, 1000)] {
        let data = generate(&config(n, d), 1).unwrap();
        let members: Vec<ObjectId> = data.truth.members_of(ClusterId(0));
        let mut scratch = FitScratch::new();
        group.bench_with_input(
            BenchmarkId::new("columnar", format!("n{n}_d{d}")),
            &(&data, &members),
            |b, (data, members)| {
                b.iter(|| {
                    black_box(
                        ClusterModel::fit_with_scratch(&data.dataset, members, &mut scratch)
                            .unwrap(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive", format!("n{n}_d{d}")),
            &(&data, &members),
            |b, (data, members)| {
                b.iter(|| black_box(ClusterModel::fit_naive(&data.dataset, members).unwrap()))
            },
        );
    }
    group.finish();
}

fn bench_chi_square_quantile(c: &mut Criterion) {
    c.bench_function("chi_square_quantile_dof30", |b| {
        let chi = ChiSquared::new(30.0).unwrap();
        b.iter(|| black_box(chi.quantile(black_box(0.01)).unwrap()))
    });
}

fn bench_ari(c: &mut Criterion) {
    let data = generate(&config(5000, 10), 2).unwrap();
    let truth = data.truth.assignment().to_vec();
    let mut shifted = truth.clone();
    shifted.rotate_right(7);
    c.bench_function("ari_n5000", |b| {
        b.iter(|| {
            black_box(adjusted_rand_index(&truth, &shifted, OutlierPolicy::AsCluster).unwrap())
        })
    });
}

fn bench_hungarian(c: &mut Criterion) {
    let data = generate(&config(2000, 10), 3).unwrap();
    let truth = data.truth.assignment().to_vec();
    let mut shifted = truth.clone();
    shifted.rotate_right(13);
    let table = ContingencyTable::build(&truth, &shifted, OutlierPolicy::Exclude).unwrap();
    c.bench_function("hungarian_match_5x5", |b| {
        b.iter(|| black_box(matching::match_clusters_to_classes(&table).unwrap()))
    });
}

fn bench_generator(c: &mut Criterion) {
    c.bench_function("generate_n1000_d100", |b| {
        let cfg = config(1000, 100);
        let mut seed = 0u64;
        b.iter_batched(
            || {
                seed += 1;
                seed
            },
            |s| black_box(generate(&cfg, s).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_objective,
    bench_fit_layouts,
    bench_chi_square_quantile,
    bench_ari,
    bench_hungarian,
    bench_generator
);
criterion_main!(benches);
