//! Open-loop load-generator benchmark: drives the batch service with the
//! `sspc_server::loadgen` traces — steady Poisson arrivals and a burst
//! pattern that deliberately overruns the queue — and records what the
//! service did under pressure: acked throughput, the submit/e2e latency
//! percentiles (from the allocation-free log-linear histograms), and the
//! full 503 taxonomy. Unlike `server.rs` (closed-loop capacity sweep),
//! this measures behavior at *offered* load the server did not choose.
//!
//! The **shard sweep** drives the same overload arrivals through the
//! consistent-hash router at 1, 2 and 4 one-worker shards (each with the
//! same shallow queue and the spool enabled, i.e. the recommended
//! multi-node deployment): aggregate admission capacity grows with the
//! fleet, so the acked throughput at a fixed offered rate rises with the
//! shard count — the 1-shard point is the single-shard baseline.
//!
//! The **rebalance leg** repeats the 2-shard overload point with a third
//! shard joined *mid-trace* through `POST /admin/shards`: the record
//! carries the join's own summary (planned/moved key counts and the
//! handoff duration) next to the trace report, so the in-flight e2e p99
//! with a live handoff — and any `rebalancing` sheds from the cutover
//! window — is directly comparable to the static `router_shards_2`
//! point.
//!
//! Environment knobs:
//!
//! * `LOADGEN_BENCH_JOBS` — jobs per trace (default 200);
//! * `LOADGEN_BENCH_RATE` — Poisson rate in jobs/s (default 100);
//! * `SERVER_SMOKE=1` — 40 jobs at 50/s for CI smoke runs;
//! * `BENCH_SERVER_OUT` — output path for the JSON record (defaults to
//!   the workspace-root `BENCH_server.json`).

use sspc_common::json::Value;
use sspc_server::client::Client;
use sspc_server::loadgen::{run, LoadgenConfig, Pattern};
use sspc_server::router::ring::{rebalance_plan, Ring};
use sspc_server::{Router, RouterConfig, Server, ServerConfig};
use std::time::Duration;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One trace against a fresh server; returns the report as a JSON value
/// plus the console line.
fn trace(label: &str, workers: usize, queue_capacity: usize, config: &LoadgenConfig) -> Value {
    let server = Server::start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_capacity,
        ..Default::default()
    })
    .expect("bind loopback");
    let config = LoadgenConfig {
        addr: server.addr().to_string(),
        ..config.clone()
    };
    let report = run(&config).expect("loadgen trace");
    println!(
        "loadgen bench: {label:18} {}/{} acked ({:.1}/s), {} rejected {:?}, \
         submit p50/p99 {:.2}/{:.2}ms, e2e p50/p99 {:.1}/{:.1}ms",
        report.acked.len(),
        report.attempted,
        report.acked_per_second,
        report.rejected_total(),
        report.rejected,
        report.submit_latency.quantile(0.50).unwrap_or(0) as f64 / 1e3,
        report.submit_latency.quantile(0.99).unwrap_or(0) as f64 / 1e3,
        report.e2e_latency.quantile(0.50).unwrap_or(0) as f64 / 1e3,
        report.e2e_latency.quantile(0.99).unwrap_or(0) as f64 / 1e3,
    );
    assert_eq!(
        report.acked.len() as u64 + report.rejected_total(),
        report.attempted as u64,
        "{label}: every submission must be accounted for"
    );
    assert_eq!(
        report.unfinished,
        Vec::<u64>::new(),
        "{label}: every acked job must reach a terminal state"
    );
    server.shutdown();
    Value::object()
        .with("trace", label)
        .with("workers", workers)
        .with("queue_capacity", queue_capacity)
        .with("report", report.to_value())
}

/// One router-fronted trace: `shards` one-worker shard servers (each
/// with its own `queue_capacity`-deep queue and the spool enabled)
/// behind a consistent-hash router, the arrivals offered to the router.
fn shard_trace(shards: usize, queue_capacity: usize, config: &LoadgenConfig) -> Value {
    let spool = std::env::temp_dir().join(format!(
        "sspc_loadgen_spool_{}_{shards}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&spool);
    let mut servers = Vec::new();
    let mut roster = Vec::new();
    for shard in 0..shards as u16 {
        let server = Server::start(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity,
            shard_id: shard,
            spool_dir: Some(spool.clone()),
            ..Default::default()
        })
        .expect("bind loopback");
        roster.push((shard, server.addr().to_string()));
        servers.push(server);
    }
    let router = Router::start(&RouterConfig {
        addr: "127.0.0.1:0".into(),
        shards: roster,
        spool_dir: Some(spool.clone()),
        ..Default::default()
    })
    .expect("bind router");
    let config = LoadgenConfig {
        addr: router.addr().to_string(),
        ..config.clone()
    };
    let label = format!("router_shards_{shards}");
    let report = run(&config).expect("loadgen trace");
    println!(
        "loadgen bench: {label:18} {}/{} acked ({:.1}/s), {} rejected {:?}, \
         e2e p50/p99 {:.1}/{:.1}ms",
        report.acked.len(),
        report.attempted,
        report.acked_per_second,
        report.rejected_total(),
        report.rejected,
        report.e2e_latency.quantile(0.50).unwrap_or(0) as f64 / 1e3,
        report.e2e_latency.quantile(0.99).unwrap_or(0) as f64 / 1e3,
    );
    assert_eq!(
        report.acked.len() as u64 + report.rejected_total(),
        report.attempted as u64,
        "{label}: every submission must be accounted for"
    );
    assert_eq!(
        report.unfinished,
        Vec::<u64>::new(),
        "{label}: every acked job must reach a terminal state"
    );
    router.shutdown();
    for server in servers {
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&spool);
    Value::object()
        .with("trace", label)
        .with("shards", shards)
        .with("workers_per_shard", 1u64)
        .with("queue_capacity", queue_capacity)
        .with("report", report.to_value())
}

/// The rebalance leg: the same overload arrivals offered to a 2-shard
/// router while a third shard **joins at runtime** mid-trace. The
/// returned record pairs the trace report (whose e2e p99 includes every
/// job in flight across the handoff and cutover) with the join summary
/// the admin endpoint returned: planned/moved key counts and
/// `handoff_seconds`, the wall-clock cost of the spool-backed handoff.
/// A plan-guided backlog is seeded first (submitting until the ring
/// delta proves ≥ 2 acked keys will move to the joiner) so the handoff
/// provably streams records instead of cutting over an empty plan.
fn rebalance_trace(queue_capacity: usize, config: &LoadgenConfig) -> Value {
    let spool =
        std::env::temp_dir().join(format!("sspc_loadgen_spool_{}_join", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    let mut servers = Vec::new();
    let mut roster = Vec::new();
    for shard in 0..2u16 {
        let server = Server::start(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity,
            shard_id: shard,
            spool_dir: Some(spool.clone()),
            ..Default::default()
        })
        .expect("bind loopback");
        roster.push((shard, server.addr().to_string()));
        servers.push(server);
    }
    let router = Router::start(&RouterConfig {
        addr: "127.0.0.1:0".into(),
        shards: roster,
        spool_dir: Some(spool.clone()),
        ..Default::default()
    })
    .expect("bind router");
    let config = LoadgenConfig {
        addr: router.addr().to_string(),
        ..config.clone()
    };
    let trace_config = config.clone();
    let loadgen_thread = std::thread::spawn(move || run(&trace_config).expect("loadgen trace"));

    // Seed a backlog the handoff must actually move: submit until the
    // ring delta proves at least two acked keys will change owner to the
    // joiner. The backlog jobs are chunky enough that the immediate join
    // still finds them pending in the donors' spools.
    let before = Ring::new([0u16, 1], Ring::DEFAULT_VNODES);
    let mut after = before.clone();
    after.add(2);
    let mut client = Client::new(router.addr().to_string());
    let mut backlog: Vec<u64> = Vec::new();
    for seed in 0..24u64 {
        let job = Value::object()
            .with("k", 3u64)
            .with(
                "dataset",
                Value::object().with(
                    "generate",
                    Value::object()
                        .with("n", 200u64)
                        .with("d", 16u64)
                        .with("dims", 5u64)
                        .with("seed", seed + 1),
                ),
            )
            .with("algorithms", "harp")
            .with("runs", 2u64)
            .with("seed", 7u64);
        backlog.push(client.submit(&job).expect("backlog submit"));
        let moving = rebalance_plan(&before, &after, &backlog)
            .iter()
            .filter(|m| m.to == 2)
            .count();
        if moving >= 2 && backlog.len() >= 6 {
            break;
        }
    }

    // Join the third shard while arrivals are still being offered — the
    // handoff streams against live traffic and the cutover's
    // `rebalancing` window overlaps it.
    let joiner = Server::start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity,
        shard_id: 2,
        spool_dir: Some(spool.clone()),
        ..Default::default()
    })
    .expect("bind joiner");
    let join = client
        .add_shard(2, &joiner.addr().to_string())
        .expect("runtime join under load");
    servers.push(joiner);

    let report = loadgen_thread.join().expect("loadgen thread");
    let label = "rebalance_join";
    println!(
        "loadgen bench: {label:18} {}/{} acked ({:.1}/s), {} rejected {:?}, \
         e2e p50/p99 {:.1}/{:.1}ms, handoff {:.3}s ({} moved / {} planned)",
        report.acked.len(),
        report.attempted,
        report.acked_per_second,
        report.rejected_total(),
        report.rejected,
        report.e2e_latency.quantile(0.50).unwrap_or(0) as f64 / 1e3,
        report.e2e_latency.quantile(0.99).unwrap_or(0) as f64 / 1e3,
        join.get("handoff_seconds")
            .and_then(Value::as_f64)
            .unwrap_or(0.0),
        join.get("moved").and_then(Value::as_u64).unwrap_or(0),
        join.get("planned").and_then(Value::as_u64).unwrap_or(0),
    );
    assert_eq!(
        report.acked.len() as u64 + report.rejected_total(),
        report.attempted as u64,
        "{label}: every submission must be accounted for"
    );
    assert_eq!(
        report.unfinished,
        Vec::<u64>::new(),
        "{label}: every acked job must reach a terminal state through the join"
    );
    // The handed-off backlog completes under its original ids too.
    for id in &backlog {
        let done = client
            .wait_for(*id, Duration::from_millis(10), Duration::from_secs(600))
            .expect("backlog job finishes after the join");
        assert_eq!(
            done.get("status").and_then(Value::as_str),
            Some("done"),
            "backlog job {id} failed: {done}"
        );
    }
    drop(client);
    router.shutdown();
    for server in servers {
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&spool);
    Value::object()
        .with("trace", label)
        .with("shards_before", 2u64)
        .with("shards_after", 3u64)
        .with("workers_per_shard", 1u64)
        .with("queue_capacity", queue_capacity)
        .with("backlog_jobs", backlog.len() as u64)
        .with("join", join)
        .with("report", report.to_value())
}

fn main() {
    let smoke = std::env::var("SERVER_SMOKE").is_ok_and(|v| v == "1");
    // Pin per-job parallelism: offered-load behavior, not kernel scaling.
    std::env::set_var("SSPC_NUM_THREADS", "1");
    let (jobs, rate) = if smoke {
        (40, 50.0)
    } else {
        (
            env_usize("LOADGEN_BENCH_JOBS", 200),
            env_f64("LOADGEN_BENCH_RATE", 100.0),
        )
    };

    let base = LoadgenConfig {
        addr: String::new(), // per-trace
        jobs,
        pattern: Pattern::Poisson { rate },
        seed: 17,
        wait_timeout: Duration::from_secs(600),
        poll_every: Duration::from_millis(5),
    };
    let mut traces = vec![
        // Steady state: arrivals a 2-worker pool can absorb.
        trace("poisson_steady", 2, jobs + 8, &base),
        // Overload: the same arrivals into a queue of 8 — the shed path
        // (queue_full) is the thing being measured.
        trace(
            "poisson_overload",
            1,
            8,
            &LoadgenConfig {
                pattern: Pattern::Poisson { rate: rate * 2.0 },
                ..base.clone()
            },
        ),
        // Flash crowd: bursts into the same shallow queue.
        trace(
            "burst_overload",
            1,
            8,
            &LoadgenConfig {
                pattern: Pattern::Burst {
                    size: (jobs / 4).max(1),
                    every: Duration::from_millis(250),
                },
                ..base.clone()
            },
        ),
    ];
    // The shard sweep: the flash-crowd arrivals from `burst_overload` —
    // the pattern that actually overruns one shallow queue — offered to
    // a router over 1, 2 and 4 shards. Aggregate admission capacity
    // (queues and workers both) grows with the fleet, so the acked
    // throughput at this offered load rises with the shard count;
    // 1 shard is the single-shard baseline.
    let overload = LoadgenConfig {
        pattern: Pattern::Burst {
            size: (jobs / 4).max(1),
            every: Duration::from_millis(250),
        },
        ..base
    };
    for shards in [1usize, 2, 4] {
        traces.push(shard_trace(shards, 8, &overload));
    }
    // The rebalance leg: the 2-shard overload point again, but with a
    // third shard joining mid-trace — membership churn under the same
    // offered load the static points saw.
    traces.push(rebalance_trace(8, &overload));

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let record = Value::object()
        .with("bench", "loadgen")
        .with("smoke", smoke)
        .with("jobs", jobs)
        .with("rate", rate)
        // Resolved per-job worker count, read back from the same source
        // the algorithms use (pinned via SSPC_NUM_THREADS above) instead
        // of echoing the pin — the record cannot disagree with reality.
        .with("threads", sspc_common::parallel::num_threads() as u64)
        .with("cores", cores)
        .with("traces", traces);

    let out_path = std::env::var("BENCH_SERVER_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_server.json", env!("CARGO_MANIFEST_DIR")));
    let line = record
        .to_string_checked()
        .expect("bench record contains a non-finite number");
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .and_then(|mut f| writeln!(f, "{line}"))
    {
        Ok(()) => eprintln!("loadgen bench: appended record to {out_path}"),
        Err(e) => eprintln!("loadgen bench: could not write {out_path}: {e}"),
    }
}
