//! Open-loop load-generator benchmark: drives the batch service with the
//! `sspc_server::loadgen` traces — steady Poisson arrivals and a burst
//! pattern that deliberately overruns the queue — and records what the
//! service did under pressure: acked throughput, the submit/e2e latency
//! percentiles (from the allocation-free log-linear histograms), and the
//! full 503 taxonomy. Unlike `server.rs` (closed-loop capacity sweep),
//! this measures behavior at *offered* load the server did not choose.
//!
//! Environment knobs:
//!
//! * `LOADGEN_BENCH_JOBS` — jobs per trace (default 200);
//! * `LOADGEN_BENCH_RATE` — Poisson rate in jobs/s (default 100);
//! * `SERVER_SMOKE=1` — 40 jobs at 50/s for CI smoke runs;
//! * `BENCH_SERVER_OUT` — output path for the JSON record (defaults to
//!   the workspace-root `BENCH_server.json`).

use sspc_common::json::Value;
use sspc_server::loadgen::{run, LoadgenConfig, Pattern};
use sspc_server::{Server, ServerConfig};
use std::time::Duration;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One trace against a fresh server; returns the report as a JSON value
/// plus the console line.
fn trace(label: &str, workers: usize, queue_capacity: usize, config: &LoadgenConfig) -> Value {
    let server = Server::start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_capacity,
        ..Default::default()
    })
    .expect("bind loopback");
    let config = LoadgenConfig {
        addr: server.addr().to_string(),
        ..config.clone()
    };
    let report = run(&config).expect("loadgen trace");
    println!(
        "loadgen bench: {label:18} {}/{} acked ({:.1}/s), {} rejected {:?}, \
         submit p50/p99 {:.2}/{:.2}ms, e2e p50/p99 {:.1}/{:.1}ms",
        report.acked.len(),
        report.attempted,
        report.acked_per_second,
        report.rejected_total(),
        report.rejected,
        report.submit_latency.quantile(0.50).unwrap_or(0) as f64 / 1e3,
        report.submit_latency.quantile(0.99).unwrap_or(0) as f64 / 1e3,
        report.e2e_latency.quantile(0.50).unwrap_or(0) as f64 / 1e3,
        report.e2e_latency.quantile(0.99).unwrap_or(0) as f64 / 1e3,
    );
    assert_eq!(
        report.acked.len() as u64 + report.rejected_total(),
        report.attempted as u64,
        "{label}: every submission must be accounted for"
    );
    assert_eq!(
        report.unfinished,
        Vec::<u64>::new(),
        "{label}: every acked job must reach a terminal state"
    );
    server.shutdown();
    Value::object()
        .with("trace", label)
        .with("workers", workers)
        .with("queue_capacity", queue_capacity)
        .with("report", report.to_value())
}

fn main() {
    let smoke = std::env::var("SERVER_SMOKE").is_ok_and(|v| v == "1");
    // Pin per-job parallelism: offered-load behavior, not kernel scaling.
    std::env::set_var("SSPC_NUM_THREADS", "1");
    let (jobs, rate) = if smoke {
        (40, 50.0)
    } else {
        (
            env_usize("LOADGEN_BENCH_JOBS", 200),
            env_f64("LOADGEN_BENCH_RATE", 100.0),
        )
    };

    let base = LoadgenConfig {
        addr: String::new(), // per-trace
        jobs,
        pattern: Pattern::Poisson { rate },
        seed: 17,
        wait_timeout: Duration::from_secs(600),
        poll_every: Duration::from_millis(5),
    };
    let traces = vec![
        // Steady state: arrivals a 2-worker pool can absorb.
        trace("poisson_steady", 2, jobs + 8, &base),
        // Overload: the same arrivals into a queue of 8 — the shed path
        // (queue_full) is the thing being measured.
        trace(
            "poisson_overload",
            1,
            8,
            &LoadgenConfig {
                pattern: Pattern::Poisson { rate: rate * 2.0 },
                ..base.clone()
            },
        ),
        // Flash crowd: bursts into the same shallow queue.
        trace(
            "burst_overload",
            1,
            8,
            &LoadgenConfig {
                pattern: Pattern::Burst {
                    size: (jobs / 4).max(1),
                    every: Duration::from_millis(250),
                },
                ..base
            },
        ),
    ];

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let record = Value::object()
        .with("bench", "loadgen")
        .with("smoke", smoke)
        .with("jobs", jobs)
        .with("rate", rate)
        .with("threads", 1u64)
        .with("cores", cores)
        .with("traces", traces);

    let out_path = std::env::var("BENCH_SERVER_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_server.json", env!("CARGO_MANIFEST_DIR")));
    let line = record
        .to_string_checked()
        .expect("bench record contains a non-finite number");
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .and_then(|mut f| writeln!(f, "{line}"))
    {
        Ok(()) => eprintln!("loadgen bench: appended record to {out_path}"),
        Err(e) => eprintln!("loadgen bench: could not write {out_path}: {e}"),
    }
}
