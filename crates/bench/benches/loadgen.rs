//! Open-loop load-generator benchmark: drives the batch service with the
//! `sspc_server::loadgen` traces — steady Poisson arrivals and a burst
//! pattern that deliberately overruns the queue — and records what the
//! service did under pressure: acked throughput, the submit/e2e latency
//! percentiles (from the allocation-free log-linear histograms), and the
//! full 503 taxonomy. Unlike `server.rs` (closed-loop capacity sweep),
//! this measures behavior at *offered* load the server did not choose.
//!
//! The **shard sweep** drives the same overload arrivals through the
//! consistent-hash router at 1, 2 and 4 one-worker shards (each with the
//! same shallow queue and the spool enabled, i.e. the recommended
//! multi-node deployment): aggregate admission capacity grows with the
//! fleet, so the acked throughput at a fixed offered rate rises with the
//! shard count — the 1-shard point is the single-shard baseline.
//!
//! Environment knobs:
//!
//! * `LOADGEN_BENCH_JOBS` — jobs per trace (default 200);
//! * `LOADGEN_BENCH_RATE` — Poisson rate in jobs/s (default 100);
//! * `SERVER_SMOKE=1` — 40 jobs at 50/s for CI smoke runs;
//! * `BENCH_SERVER_OUT` — output path for the JSON record (defaults to
//!   the workspace-root `BENCH_server.json`).

use sspc_common::json::Value;
use sspc_server::loadgen::{run, LoadgenConfig, Pattern};
use sspc_server::{Router, RouterConfig, Server, ServerConfig};
use std::time::Duration;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One trace against a fresh server; returns the report as a JSON value
/// plus the console line.
fn trace(label: &str, workers: usize, queue_capacity: usize, config: &LoadgenConfig) -> Value {
    let server = Server::start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_capacity,
        ..Default::default()
    })
    .expect("bind loopback");
    let config = LoadgenConfig {
        addr: server.addr().to_string(),
        ..config.clone()
    };
    let report = run(&config).expect("loadgen trace");
    println!(
        "loadgen bench: {label:18} {}/{} acked ({:.1}/s), {} rejected {:?}, \
         submit p50/p99 {:.2}/{:.2}ms, e2e p50/p99 {:.1}/{:.1}ms",
        report.acked.len(),
        report.attempted,
        report.acked_per_second,
        report.rejected_total(),
        report.rejected,
        report.submit_latency.quantile(0.50).unwrap_or(0) as f64 / 1e3,
        report.submit_latency.quantile(0.99).unwrap_or(0) as f64 / 1e3,
        report.e2e_latency.quantile(0.50).unwrap_or(0) as f64 / 1e3,
        report.e2e_latency.quantile(0.99).unwrap_or(0) as f64 / 1e3,
    );
    assert_eq!(
        report.acked.len() as u64 + report.rejected_total(),
        report.attempted as u64,
        "{label}: every submission must be accounted for"
    );
    assert_eq!(
        report.unfinished,
        Vec::<u64>::new(),
        "{label}: every acked job must reach a terminal state"
    );
    server.shutdown();
    Value::object()
        .with("trace", label)
        .with("workers", workers)
        .with("queue_capacity", queue_capacity)
        .with("report", report.to_value())
}

/// One router-fronted trace: `shards` one-worker shard servers (each
/// with its own `queue_capacity`-deep queue and the spool enabled)
/// behind a consistent-hash router, the arrivals offered to the router.
fn shard_trace(shards: usize, queue_capacity: usize, config: &LoadgenConfig) -> Value {
    let spool = std::env::temp_dir().join(format!(
        "sspc_loadgen_spool_{}_{shards}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&spool);
    let mut servers = Vec::new();
    let mut roster = Vec::new();
    for shard in 0..shards as u16 {
        let server = Server::start(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity,
            shard_id: shard,
            spool_dir: Some(spool.clone()),
            ..Default::default()
        })
        .expect("bind loopback");
        roster.push((shard, server.addr().to_string()));
        servers.push(server);
    }
    let router = Router::start(&RouterConfig {
        addr: "127.0.0.1:0".into(),
        shards: roster,
        spool_dir: Some(spool.clone()),
        ..Default::default()
    })
    .expect("bind router");
    let config = LoadgenConfig {
        addr: router.addr().to_string(),
        ..config.clone()
    };
    let label = format!("router_shards_{shards}");
    let report = run(&config).expect("loadgen trace");
    println!(
        "loadgen bench: {label:18} {}/{} acked ({:.1}/s), {} rejected {:?}, \
         e2e p50/p99 {:.1}/{:.1}ms",
        report.acked.len(),
        report.attempted,
        report.acked_per_second,
        report.rejected_total(),
        report.rejected,
        report.e2e_latency.quantile(0.50).unwrap_or(0) as f64 / 1e3,
        report.e2e_latency.quantile(0.99).unwrap_or(0) as f64 / 1e3,
    );
    assert_eq!(
        report.acked.len() as u64 + report.rejected_total(),
        report.attempted as u64,
        "{label}: every submission must be accounted for"
    );
    assert_eq!(
        report.unfinished,
        Vec::<u64>::new(),
        "{label}: every acked job must reach a terminal state"
    );
    router.shutdown();
    for server in servers {
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&spool);
    Value::object()
        .with("trace", label)
        .with("shards", shards)
        .with("workers_per_shard", 1u64)
        .with("queue_capacity", queue_capacity)
        .with("report", report.to_value())
}

fn main() {
    let smoke = std::env::var("SERVER_SMOKE").is_ok_and(|v| v == "1");
    // Pin per-job parallelism: offered-load behavior, not kernel scaling.
    std::env::set_var("SSPC_NUM_THREADS", "1");
    let (jobs, rate) = if smoke {
        (40, 50.0)
    } else {
        (
            env_usize("LOADGEN_BENCH_JOBS", 200),
            env_f64("LOADGEN_BENCH_RATE", 100.0),
        )
    };

    let base = LoadgenConfig {
        addr: String::new(), // per-trace
        jobs,
        pattern: Pattern::Poisson { rate },
        seed: 17,
        wait_timeout: Duration::from_secs(600),
        poll_every: Duration::from_millis(5),
    };
    let mut traces = vec![
        // Steady state: arrivals a 2-worker pool can absorb.
        trace("poisson_steady", 2, jobs + 8, &base),
        // Overload: the same arrivals into a queue of 8 — the shed path
        // (queue_full) is the thing being measured.
        trace(
            "poisson_overload",
            1,
            8,
            &LoadgenConfig {
                pattern: Pattern::Poisson { rate: rate * 2.0 },
                ..base.clone()
            },
        ),
        // Flash crowd: bursts into the same shallow queue.
        trace(
            "burst_overload",
            1,
            8,
            &LoadgenConfig {
                pattern: Pattern::Burst {
                    size: (jobs / 4).max(1),
                    every: Duration::from_millis(250),
                },
                ..base.clone()
            },
        ),
    ];
    // The shard sweep: the flash-crowd arrivals from `burst_overload` —
    // the pattern that actually overruns one shallow queue — offered to
    // a router over 1, 2 and 4 shards. Aggregate admission capacity
    // (queues and workers both) grows with the fleet, so the acked
    // throughput at this offered load rises with the shard count;
    // 1 shard is the single-shard baseline.
    let overload = LoadgenConfig {
        pattern: Pattern::Burst {
            size: (jobs / 4).max(1),
            every: Duration::from_millis(250),
        },
        ..base
    };
    for shards in [1usize, 2, 4] {
        traces.push(shard_trace(shards, 8, &overload));
    }

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let record = Value::object()
        .with("bench", "loadgen")
        .with("smoke", smoke)
        .with("jobs", jobs)
        .with("rate", rate)
        .with("threads", 1u64)
        .with("cores", cores)
        .with("traces", traces);

    let out_path = std::env::var("BENCH_SERVER_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_server.json", env!("CARGO_MANIFEST_DIR")));
    let line = record
        .to_string_checked()
        .expect("bench record contains a non-finite number");
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .and_then(|mut f| writeln!(f, "{line}"))
    {
        Ok(()) => eprintln!("loadgen bench: appended record to {out_path}"),
        Err(e) => eprintln!("loadgen bench: could not write {out_path}: {e}"),
    }
}
