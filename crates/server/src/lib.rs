//! `sspc-server` — a batch experiment service over the `sspc-api`
//! registry.
//!
//! The paper's Sec. 5 protocol (seeded restarts, best-of selection,
//! algorithm comparison) is a batch workload; this crate serves it over
//! plain TCP/JSON with **no dependencies beyond the workspace**: a
//! `std::net::TcpListener` acceptor serving keep-alive connections, a
//! bounded [`TaskQueue`](sspc_common::parallel::TaskQueue) of jobs, and a
//! pool of worker threads that execute each job through
//! [`sspc_api::experiment`] — the same code path as the CLI and the bench
//! harness, so a result fetched over the wire is the result an in-process
//! call would produce (numbers travel in shortest-roundtrip JSON and parse
//! back bit-identically).
//!
//! Job state lives behind the [`store::JobStore`] seam: in memory by
//! default, or journaled to disk ([`ServerConfig::state_dir`]) so
//! completed results survive restart **bit-identically** and interrupted
//! jobs re-run. Finished jobs can be evicted by TTL
//! ([`ServerConfig::result_ttl`]) or a store cap
//! ([`ServerConfig::max_jobs`]).
//!
//! # Endpoints
//!
//! | method & path   | answer |
//! |-----------------|--------|
//! | `POST /jobs`    | `202 {"job": id, "queue_depth": …}` — or `400` (invalid job), `503` (queue full / backlog exceeded / draining: backpressure) |
//! | `GET /jobs/<id>`| job status; `result` once `done`, `error` once `failed`; `404` once evicted |
//! | `GET /jobs`     | job summaries, newest first, `?status=` filter, `?limit=` cap (default 100), plus `total` |
//! | `GET /healthz`  | queue depth/capacity, job/connection counters, latency percentiles, store stats (kind, held jobs, evictions), per-algorithm throughput |
//!
//! See [`job::JobSpec::from_json`] for the job schema. Connections are
//! HTTP/1.1 keep-alive (`Content-Length`-framed both ways, `Connection:
//! close` honored, idle timeout); the [`client::Client`] reuses one
//! socket across submissions and polls.
//!
//! # Failure domains
//!
//! Each job body runs under an unwind barrier (a panicking clusterer
//! fails the job, not the worker), `timeout_secs` installs a cooperative
//! deadline ([`sspc_common::cancel`]), a runtime journal-write failure
//! degrades the disk store to read-only instead of crashing the process,
//! and every `503` carries a `Retry-After` hint honored by the client's
//! jittered backoff ([`backoff::Backoff`]). The named fault points wired
//! through these layers ([`FAULT_POINTS`], [`sspc_common::fault`]) let a
//! harness crash a real server at each of them deterministically — see
//! `docs/ARCHITECTURE.md` § "Failure domains".
//!
//! # Overload & lifecycle
//!
//! Ingress is bounded end to end: the acceptor sheds connections over
//! [`ServerConfig::max_connections`] with an inline `503` +
//! `Retry-After` (never a silent drop), the queue bounds accepted-but-
//! unstarted jobs, and [`ServerConfig::max_backlog_seconds`] adds
//! **cost-aware** admission — submissions are refused while the
//! estimated seconds of queued + running work exceed the budget.
//! Queue-wait and end-to-end job latency flow into allocation-free
//! log-linear histograms ([`sspc_common::hist`]); `/healthz` reports
//! their p50/p95/p99. [`Server::begin_drain`] + [`Server::drain`]
//! implement lame-duck shutdown (SIGTERM in the CLI), and [`loadgen`] is
//! the open-loop generator that soaks all of it — see
//! `docs/ARCHITECTURE.md` § "Overload & lifecycle".
//!
//! # Sharding
//!
//! [`router::Router`] is a thin proxy tier fronting N shard processes
//! (`serve --shard-id N --spool-dir …`), speaking the same protocol as a
//! single shard: a deterministic consistent-hash ring
//! ([`router::ring::Ring`]) spreads submissions, job ids carry their
//! shard in the top 16 bits so status reads route without fan-out,
//! `/healthz` and `GET /jobs` fan in across the fleet, and a dead
//! shard's shipped journal ([`router::spool`]) is replayed onto
//! survivors so every `202`-acked job still completes — see
//! `docs/ARCHITECTURE.md` § "Sharding".
//!
//! # Example
//!
//! A complete round trip on a loopback socket — start, submit a
//! generated-dataset comparison, poll to completion, shut down:
//!
//! ```
//! use sspc_common::json::Value;
//! use sspc_server::{client, Server, ServerConfig};
//! use std::time::Duration;
//!
//! let server = Server::start(&ServerConfig {
//!     addr: "127.0.0.1:0".into(), // free port; server.addr() resolves it
//!     workers: 1,
//!     queue_capacity: 8,
//!     ..Default::default()        // in-memory store, no eviction
//! }).unwrap();
//! let addr = server.addr().to_string();
//!
//! let job = Value::object()
//!     .with("k", 2u64)
//!     .with("dataset", Value::object().with(
//!         "generate",
//!         Value::object().with("n", 40u64).with("d", 8u64)
//!             .with("dims", 4u64).with("seed", 3u64),
//!     ))
//!     .with("algorithms", "clarans,harp")
//!     .with("runs", 2u64)
//!     .with("truth", true);
//!
//! let id = client::submit(&addr, &job).unwrap();
//! let done = client::wait_for(
//!     &addr, id, Duration::from_millis(20), Duration::from_secs(30),
//! ).unwrap();
//! assert_eq!(done.get("status").and_then(Value::as_str), Some("done"));
//! let reports = done.get("result").unwrap().get("reports").unwrap();
//! assert_eq!(reports.as_array().unwrap().len(), 2);
//!
//! let health = client::healthz(&addr).unwrap();
//! assert_eq!(
//!     health.get("jobs").unwrap().get("completed").and_then(Value::as_u64),
//!     Some(1),
//! );
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backoff;
pub mod client;
pub mod http;
pub mod job;
pub mod loadgen;
pub mod metrics;
pub mod router;
mod service;
pub mod store;

pub use job::{JobKind, JobSpec};
pub use router::{Router, RouterConfig};
pub use service::{Server, ServerConfig};
pub use store::{DiskStore, EvictionPolicy, JobStore, MemoryStore};

/// Every named fault point the server stack registers with
/// [`sspc_common::fault`], boot-time points first — the sweep list for
/// crash-torture harnesses. Keep in sync with the `fault::point` call
/// sites (the torture test exercises each entry).
pub const FAULT_POINTS: &[&str] = &[
    "journal.compact",   // DiskStore::open, before boot compaction
    "io.atomic_replace", // sspc_common::io::write_atomic
    "journal.append",    // DiskStore journal appends (submit/done/failed/evict)
    "http.response",     // every response write
    "job.execute",       // top of JobSpec::execute on a worker
];

/// Fault points that only fire inside the **router** process (shard
/// membership handoffs) — kept separate from [`FAULT_POINTS`] because
/// the single-server crash-torture sweep would hang waiting on points
/// that a `serve` process never reaches. The membership crash sweep in
/// `crash_torture.rs` arms these against a `route` process instead.
pub const ROUTER_FAULT_POINTS: &[&str] = &[
    "handoff.stream",  // once per spool record streamed during a handoff
    "handoff.cutover", // immediately before the atomic routing flip
];
