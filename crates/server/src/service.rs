//! The service itself: listener, bounded job queue, worker pool, routes.
//!
//! Threading model — all std, no async runtime:
//!
//! * one **acceptor** thread owns the `TcpListener` and spawns a short-lived
//!   handler thread per connection (requests are tiny; job work never runs
//!   on a handler);
//! * `workers` long-lived **worker** threads block on the bounded
//!   [`TaskQueue`] and execute jobs through `sspc_api::experiment`;
//! * submissions never block: a full queue answers `503` immediately —
//!   backpressure is the client's signal to slow down.
//!
//! Shutdown closes the queue (pending jobs drain), wakes the acceptor with
//! a loopback connection, and joins every thread.

use crate::http::{read_request, write_response, Request};
use crate::job::JobSpec;
use crate::metrics::Metrics;
use sspc_common::json::Value;
use sspc_common::parallel::{PushError, TaskQueue};
use sspc_common::{Error, Result};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Worker threads executing jobs. `0` is accepted and means *nothing
    /// ever drains the queue* — only useful for backpressure drills.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before submissions get `503`.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 2,
            queue_capacity: 64,
        }
    }
}

/// Lifecycle of one job.
#[derive(Debug, Clone)]
enum JobStatus {
    Queued,
    Running,
    Done { result: Value, seconds: f64 },
    Failed { error: String },
}

/// One tracked job: the parsed spec plus its current status.
struct JobRecord {
    spec: JobSpec,
    status: JobStatus,
}

impl JobRecord {
    /// The status document served by `GET /jobs/<id>`; `result` appears
    /// only once done, `error` only once failed.
    fn to_value(&self, id: u64, with_result: bool) -> Value {
        let algorithms: Vec<Value> = self
            .spec
            .algorithms
            .iter()
            .map(|a| Value::from(a.as_str()))
            .collect();
        let mut v = Value::object()
            .with("job", id)
            .with("algorithms", algorithms)
            .with("runs", self.spec.runs)
            .with("seed", self.spec.seed);
        match &self.status {
            JobStatus::Queued => v = v.with("status", "queued"),
            JobStatus::Running => v = v.with("status", "running"),
            JobStatus::Done { result, seconds } => {
                v = v.with("status", "done").with("seconds", *seconds);
                if with_result {
                    v = v.with("result", result.clone());
                }
            }
            JobStatus::Failed { error } => {
                v = v.with("status", "failed").with("error", error.as_str());
            }
        }
        v
    }
}

/// State shared by the acceptor, handlers, and workers.
struct ServerState {
    queue: TaskQueue<u64>,
    jobs: Mutex<BTreeMap<u64, JobRecord>>,
    next_id: AtomicU64,
    metrics: Metrics,
    shutting_down: AtomicBool,
    workers: usize,
}

/// A running batch service; dropping the handle does **not** stop it —
/// call [`Server::shutdown`] (tests) or [`Server::wait`] (the CLI).
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the service (acceptor + worker pool).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when the address cannot be bound.
    pub fn start(config: &ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| Error::InvalidParameter(format!("cannot bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::InvalidParameter(format!("local_addr: {e}")))?;
        let state = Arc::new(ServerState {
            queue: TaskQueue::bounded(config.queue_capacity),
            jobs: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            metrics: Metrics::default(),
            shutting_down: AtomicBool::new(false),
            workers: config.workers,
        });

        let workers = (0..config.workers)
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("sspc-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor_state = Arc::clone(&state);
        let acceptor = std::thread::Builder::new()
            .name("sspc-acceptor".into())
            .spawn(move || acceptor_loop(&listener, &acceptor_state))
            .expect("spawn acceptor");

        Ok(Server {
            addr,
            state,
            acceptor,
            workers,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the acceptor exits — i.e. forever, short of a
    /// [`Server::shutdown`] from another thread or process death. The CLI
    /// `serve` command parks here.
    pub fn wait(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Stops accepting, drains queued jobs, and joins every thread.
    pub fn shutdown(self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        self.state.queue.close();
        // Wake the acceptor out of `accept()` with a loopback connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(state: &ServerState) {
    while let Some(id) = state.queue.pop() {
        let spec = {
            let mut jobs = state.jobs.lock().expect("jobs poisoned");
            let Some(record) = jobs.get_mut(&id) else {
                continue;
            };
            record.status = JobStatus::Running;
            record.spec.clone()
        };
        let started = Instant::now();
        let outcome = spec.execute();
        let seconds = started.elapsed().as_secs_f64();
        let status = match outcome {
            Ok(outcome) => {
                state.metrics.record_completed(&outcome.throughput);
                JobStatus::Done {
                    result: outcome.result,
                    seconds,
                }
            }
            Err(e) => {
                state.metrics.record_failed();
                JobStatus::Failed {
                    error: e.to_string(),
                }
            }
        };
        state
            .jobs
            .lock()
            .expect("jobs poisoned")
            .get_mut(&id)
            .expect("job vanished")
            .status = status;
    }
}

fn acceptor_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    for stream in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = Arc::clone(state);
        // Handlers are short-lived (parse, route, respond); job execution
        // happens on the worker pool, never here.
        let _ = std::thread::Builder::new()
            .name("sspc-handler".into())
            .spawn(move || handle_connection(stream, &state));
    }
}

fn handle_connection(mut stream: TcpStream, state: &ServerState) {
    let response = match read_request(&mut stream) {
        Ok(request) => route(&request, state),
        Err(e) => (400, Value::object().with("error", e.to_string())),
    };
    let _ = write_response(&mut stream, response.0, &response.1);
}

fn error_body(msg: impl Into<String>) -> Value {
    Value::object().with("error", msg.into())
}

fn route(request: &Request, state: &ServerState) -> (u16, Value) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/jobs") => submit_job(&request.body, state),
        ("GET", "/jobs") => list_jobs(state),
        ("GET", path) if path.starts_with("/jobs/") => get_job(path, state),
        ("GET", "/healthz") => (
            200,
            state
                .metrics
                .healthz_value(state.queue.len(), state.queue.capacity(), state.workers),
        ),
        (_, "/jobs" | "/healthz") => (405, error_body("method not allowed")),
        (_, path) if path.starts_with("/jobs/") => (405, error_body("method not allowed")),
        _ => (404, error_body("no such endpoint")),
    }
}

fn submit_job(body: &[u8], state: &ServerState) -> (u16, Value) {
    let parsed = std::str::from_utf8(body)
        .map_err(|_| Error::InvalidParameter("body is not UTF-8".into()))
        .and_then(Value::parse)
        .and_then(|v| JobSpec::from_json(&v));
    let spec = match parsed {
        Ok(spec) => spec,
        Err(e) => {
            state.metrics.record_rejected_invalid();
            return (400, error_body(e.to_string()));
        }
    };

    let id = state.next_id.fetch_add(1, Ordering::SeqCst);
    // Insert before enqueueing so a fast worker always finds the record;
    // a refused push removes it again.
    state.jobs.lock().expect("jobs poisoned").insert(
        id,
        JobRecord {
            spec,
            status: JobStatus::Queued,
        },
    );
    match state.queue.try_push(id) {
        Ok(depth) => {
            state.metrics.record_submitted();
            (
                202,
                Value::object()
                    .with("job", id)
                    .with("status", "queued")
                    .with("queue_depth", depth),
            )
        }
        Err(refusal) => {
            state.jobs.lock().expect("jobs poisoned").remove(&id);
            match refusal {
                PushError::Full(_) => {
                    state.metrics.record_rejected_full();
                    (
                        503,
                        error_body("queue full, retry later")
                            .with("queue_depth", state.queue.len())
                            .with("queue_capacity", state.queue.capacity()),
                    )
                }
                PushError::Closed(_) => (503, error_body("server is shutting down")),
            }
        }
    }
}

fn get_job(path: &str, state: &ServerState) -> (u16, Value) {
    let id_text = &path["/jobs/".len()..];
    let Ok(id) = id_text.parse::<u64>() else {
        return (404, error_body(format!("bad job id `{id_text}`")));
    };
    match state.jobs.lock().expect("jobs poisoned").get(&id) {
        Some(record) => (200, record.to_value(id, true)),
        None => (404, error_body(format!("no job {id}"))),
    }
}

fn list_jobs(state: &ServerState) -> (u16, Value) {
    let jobs = state.jobs.lock().expect("jobs poisoned");
    let items: Vec<Value> = jobs
        .iter()
        .map(|(id, record)| record.to_value(*id, false))
        .collect();
    (200, Value::object().with("jobs", items))
}
