//! The service itself: listener, bounded job queue, worker pool, routes.
//!
//! Threading model — all std, no async runtime:
//!
//! * one **acceptor** thread owns the `TcpListener` and spawns a handler
//!   thread per connection, **bounded** by
//!   [`ServerConfig::max_connections`]: a connection over the cap (or one
//!   whose handler thread cannot be spawned) is answered `503` +
//!   `Retry-After` inline on the acceptor thread and closed — shed, never
//!   silently dropped. A handler serves **many requests** over its
//!   keep-alive connection (requests are tiny; job work never runs on a
//!   handler) and exits on `Connection: close`, peer EOF, or the idle
//!   timeout;
//! * `workers` long-lived **worker** threads block on the bounded
//!   [`TaskQueue`] and execute jobs through `sspc_api::experiment`;
//! * submissions never block: a full queue answers `503` immediately —
//!   backpressure is the client's signal to slow down — and, with
//!   [`ServerConfig::max_backlog_seconds`] set, submissions are also
//!   **cost-aware**: a job is refused with `503 backlog_exceeded` when
//!   the estimated seconds of work already queued or running exceed the
//!   budget, so one pathologically-huge job cannot hide behind a shallow
//!   queue-depth bound.
//!
//! Job state lives behind the [`JobStore`] seam: in-memory by default, or
//! the journaled disk store when [`ServerConfig::state_dir`] is set — in
//! which case completed results survive restart bit-identically and
//! interrupted jobs are re-enqueued on startup.
//!
//! # Lifecycle
//!
//! [`Server::shutdown`] stops everything promptly (tests). Operator
//! shutdown goes through the **drain** pair instead:
//! [`Server::begin_drain`] flips the lame-duck state — `/healthz` reports
//! `status: "draining"`, new submissions get `503 shutting_down`, already
//! queued and running jobs keep going — and [`Server::drain`] waits up to
//! a deadline for the queue to empty and the workers to finish before
//! stopping the acceptor. The CLI wires SIGTERM/SIGINT to exactly this
//! pair.

use crate::http::{read_request, write_response, write_response_with, Request};
use crate::job::{JobOutcome, JobSpec};
use crate::metrics::{Gauges, Metrics};
use crate::router::spool::SpoolWriter;
use crate::router::{id_base, spool};
use crate::store::{DiskStore, EvictionPolicy, JobStore, MemoryStore};
use sspc_common::json::Value;
use sspc_common::parallel::{PushError, TaskQueue};
use sspc_common::{cancel, Error, Result};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default cap on `GET /jobs` items when the request names none.
pub const DEFAULT_LIST_LIMIT: usize = 100;
/// Hard ceiling on `GET /jobs` items regardless of `?limit=`.
pub const MAX_LIST_LIMIT: usize = 1000;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Worker threads executing jobs. `0` is accepted and means *nothing
    /// ever drains the queue* — only useful for backpressure drills.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before submissions get `503`.
    pub queue_capacity: usize,
    /// Maximum concurrently open handler connections; the acceptor
    /// answers connections over the cap with `503` + `Retry-After`
    /// (`reason: connections_exhausted`) inline and closes them.
    pub max_connections: usize,
    /// Admission budget: refuse submissions (`503 backlog_exceeded`)
    /// while the estimated seconds of queued + running work exceed this.
    /// `None` (default) disables cost-aware admission control.
    pub max_backlog_seconds: Option<f64>,
    /// Journal directory for the disk-backed job store. `None` (default)
    /// keeps jobs in memory only; `Some(dir)` makes results survive
    /// restart and re-enqueues interrupted jobs on startup.
    pub state_dir: Option<PathBuf>,
    /// Evict finished jobs this long after completion (`None`: keep
    /// forever).
    pub result_ttl: Option<Duration>,
    /// Cap the store at this many jobs, evicting oldest-finished first
    /// (`None`: unbounded).
    pub max_jobs: Option<usize>,
    /// This server's shard id when it runs behind the router tier: it is
    /// stamped into the top 16 bits of every job id assigned here (see
    /// [`crate::router::id_base`]), so the router can route `GET
    /// /jobs/<id>` without fan-out. The default `0` leaves single-node
    /// ids exactly as they always were.
    pub shard_id: u16,
    /// Journal-shipping spool directory (see [`crate::router::spool`]).
    /// When set, every admission and terminal state is appended to
    /// `<spool_dir>/shard-<shard_id>.jsonl` so the router can replay
    /// this shard's acked-but-unfinished jobs onto survivors if this
    /// process dies. `None` (default) ships nothing.
    pub spool_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 2,
            queue_capacity: 64,
            max_connections: 256,
            max_backlog_seconds: None,
            state_dir: None,
            result_ttl: None,
            max_jobs: None,
            shard_id: 0,
            spool_dir: None,
        }
    }
}

/// Book-keeping for one job between admission and its terminal state:
/// when it was accepted (latency histograms) and what it is estimated to
/// cost (the admission backlog gauge).
struct Admitted {
    submitted: Instant,
    cost: u64,
}

/// State shared by the acceptor, handlers, and workers.
struct ServerState {
    queue: TaskQueue<u64>,
    store: Arc<dyn JobStore>,
    next_id: AtomicU64,
    metrics: Metrics,
    shutting_down: AtomicBool,
    /// Lame-duck flag: accept reads, refuse new work, let the queue
    /// empty. Set by [`Server::begin_drain`], never cleared.
    draining: AtomicBool,
    workers: usize,
    /// Worker threads currently inside their loop — `/healthz` compares
    /// this against `workers` to surface a crashed worker (it should
    /// never diverge now that job bodies run under an unwind barrier).
    workers_alive: AtomicUsize,
    max_connections: usize,
    max_backlog_seconds: Option<f64>,
    /// Jobs admitted (or recovered) but not yet terminal, keyed by id.
    inflight: Mutex<HashMap<u64, Admitted>>,
    shard_id: u16,
    /// Journal shipping for router failover; `None` when not sharded.
    spool: Option<SpoolWriter>,
}

impl ServerState {
    fn gauges(&self) -> Gauges {
        Gauges {
            queue_depth: self.queue.len(),
            queue_capacity: self.queue.capacity(),
            workers: self.workers,
            workers_alive: self.workers_alive.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::SeqCst),
            connections_limit: self.max_connections,
            max_backlog_seconds: self.max_backlog_seconds,
            shard: self.shard_id,
            spool_ship_failures: self.spool.as_ref().map(SpoolWriter::failures),
        }
    }

    /// Appends one event to the shard's spool, when shipping is on.
    fn ship(&self, event: &Value) {
        if let Some(spool) = &self.spool {
            spool.ship(event);
        }
    }

    /// Enters a job into the in-flight table and charges its cost to the
    /// admission backlog. `cost == 0` marks a recovered job whose spec
    /// (and hence cost) is only known once a worker begins it.
    fn admit_inflight(&self, id: u64, cost: u64) {
        self.metrics.admit_cost(cost);
        self.inflight.lock().expect("inflight poisoned").insert(
            id,
            Admitted {
                submitted: Instant::now(),
                cost,
            },
        );
    }

    /// A worker began job `id`: records its queue wait and, for recovered
    /// jobs admitted with unknown cost, charges the now-known cost.
    fn note_begin(&self, id: u64, spec: &JobSpec) {
        let mut table = self.inflight.lock().expect("inflight poisoned");
        let entry = table.entry(id).or_insert_with(|| Admitted {
            submitted: Instant::now(),
            cost: 0,
        });
        if entry.cost == 0 {
            entry.cost = spec.cost_units();
            self.metrics.admit_cost(entry.cost);
        }
        self.metrics.record_queue_wait(entry.submitted.elapsed());
    }

    /// Job `id` reached a terminal state (or vanished): releases its cost
    /// from the backlog, records end-to-end latency, and — on success —
    /// feeds the measured cost rate. `busy_seconds` is `None` for jobs
    /// that never ran (forgotten or vanished).
    fn finish_inflight(&self, id: u64, busy_seconds: Option<f64>) {
        let entry = self.inflight.lock().expect("inflight poisoned").remove(&id);
        let Some(entry) = entry else { return };
        self.metrics.release_cost(entry.cost);
        if let Some(busy) = busy_seconds {
            self.metrics.record_job_latency(entry.submitted.elapsed());
            self.metrics.observe_cost_rate(entry.cost, busy);
        }
    }
}

/// A running batch service; dropping the handle does **not** stop it —
/// call [`Server::shutdown`] (tests), [`Server::begin_drain`] +
/// [`Server::drain`] (operator shutdown), or [`Server::wait`] (the CLI).
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the service (acceptor + worker pool), opening —
    /// and, for a disk store, replaying — the job store first. Jobs that
    /// were `queued`/`running` when a previous process died are
    /// re-enqueued before the listener starts accepting.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when the address cannot be bound or
    /// the state directory cannot be opened/replayed.
    pub fn start(config: &ServerConfig) -> Result<Server> {
        let policy = EvictionPolicy {
            result_ttl: config.result_ttl,
            max_jobs: config.max_jobs,
        };
        // Job ids start just above this shard's id-space base, so every
        // id this process assigns routes back here by its prefix. A disk
        // store's recovered counter wins when it is already past the
        // base (same shard restarting); the clamp only matters when a
        // state dir is first adopted by a non-zero shard id.
        let base = id_base(config.shard_id);
        let (store, recovered, next_id): (Arc<dyn JobStore>, Vec<u64>, u64) =
            match &config.state_dir {
                None => (Arc::new(MemoryStore::new(policy)), Vec::new(), base + 1),
                Some(dir) => {
                    let recovery = DiskStore::open(dir, policy)?;
                    (
                        Arc::new(recovery.store),
                        recovery.pending,
                        recovery.next_id.max(base + 1),
                    )
                }
            };
        let spool = match &config.spool_dir {
            None => None,
            Some(dir) => Some(SpoolWriter::open(dir, config.shard_id)?),
        };

        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| Error::InvalidParameter(format!("cannot bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::InvalidParameter(format!("local_addr: {e}")))?;
        let state = Arc::new(ServerState {
            queue: TaskQueue::bounded(config.queue_capacity),
            store,
            next_id: AtomicU64::new(next_id),
            metrics: Metrics::default(),
            shutting_down: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            workers: config.workers,
            workers_alive: AtomicUsize::new(0),
            max_connections: config.max_connections.max(1),
            max_backlog_seconds: config.max_backlog_seconds,
            inflight: Mutex::new(HashMap::new()),
            shard_id: config.shard_id,
            spool,
        });

        // Re-enqueue interrupted work before anything else can fill the
        // queue. A recovery larger than the queue fails the overflow
        // loudly rather than dropping it silently. Recovered jobs enter
        // the in-flight table with cost 0 (their spec — and cost — is
        // looked up when a worker begins them).
        for id in recovered {
            state.metrics.record_recovered();
            if state.queue.try_push(id).is_err() {
                state
                    .store
                    .fail(id, "recovery: job queue full, not re-enqueued".into());
                state.metrics.record_failed();
            } else {
                state.admit_inflight(id, 0);
            }
        }

        let workers = (0..config.workers)
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("sspc-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn worker")
            })
            .collect();

        let acceptor_state = Arc::clone(&state);
        let acceptor = std::thread::Builder::new()
            .name("sspc-acceptor".into())
            .spawn(move || acceptor_loop(&listener, &acceptor_state))
            .expect("spawn acceptor");

        Ok(Server {
            addr,
            state,
            acceptor,
            workers,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the acceptor exits — i.e. forever, short of a
    /// [`Server::shutdown`] from another thread or process death.
    pub fn wait(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Flips the server into its lame-duck state: `/healthz` reports
    /// `status: "draining"` (`ready: false`), new submissions are refused
    /// with `503 reason: shutting_down`, and the job queue is closed so
    /// workers exit once the already-admitted work is done. Status and
    /// result reads keep being served. Idempotent; there is no way back.
    pub fn begin_drain(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
        self.state.queue.close();
    }

    /// Waits up to `timeout` for the drain started by
    /// [`Server::begin_drain`] to complete — queue empty and every worker
    /// out of its loop — then stops the acceptor and returns whether the
    /// drain finished in time. On `false`, worker threads may still be
    /// mid-job; their handles are dropped (not joined), so the caller can
    /// exit without waiting on them. With a disk store the journal is
    /// consistent either way — an unfinished job is simply re-enqueued by
    /// the next boot's replay.
    #[must_use = "a false return means workers were still running at the deadline"]
    pub fn drain(self, timeout: Duration) -> bool {
        self.begin_drain();
        let deadline = Instant::now() + timeout;
        // Workers only leave their loop once the closed queue is empty,
        // so `workers_alive == 0` alone means all admitted work finished
        // (or there never were workers — then nothing is mid-job either;
        // a disk store re-enqueues the stranded queue on the next boot).
        let drained = loop {
            if self.state.workers_alive.load(Ordering::Relaxed) == 0 {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        self.state.shutting_down.store(true, Ordering::SeqCst);
        // Wake the acceptor out of `accept()` with a loopback connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        if drained {
            for w in self.workers {
                let _ = w.join();
            }
        }
        drained
    }

    /// Stops accepting, drains queued jobs, and joins the acceptor and
    /// workers. The prompt path for tests; operators use
    /// [`Server::begin_drain`] + [`Server::drain`].
    pub fn shutdown(self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        self.state.queue.close();
        // Wake the acceptor out of `accept()` with a loopback connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(state: &ServerState) {
    state.workers_alive.fetch_add(1, Ordering::Relaxed);
    // Keep the gauge honest even if something ever unwinds past the
    // per-job barrier below (a panicking Drop, a non-unwind-safe bug).
    struct AliveGuard<'a>(&'a AtomicUsize);
    impl Drop for AliveGuard<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::Relaxed);
        }
    }
    let _alive = AliveGuard(&state.workers_alive);

    while let Some(id) = state.queue.pop() {
        // `begin` marks the job running; None means it vanished (evicted
        // or forgotten) between push and pop.
        let Some(spec) = state.store.begin(id) else {
            state.finish_inflight(id, None);
            continue;
        };
        state.note_begin(id, &spec);
        let started = Instant::now();
        let outcome = run_isolated(&spec);
        let seconds = started.elapsed().as_secs_f64();
        match outcome {
            Ok(Ok(outcome)) => {
                state.metrics.record_completed(&outcome.throughput);
                // Ship the terminal line (with the result, so the router
                // can serve this job even if we die right after) before
                // the store consumes the result value.
                state.ship(&spool::done_event(id, &outcome.result, seconds));
                state.store.complete(id, outcome.result, seconds);
                state.finish_inflight(id, Some(seconds));
            }
            Ok(Err(e)) => {
                if matches!(e, Error::DeadlineExceeded(_)) {
                    state.metrics.record_deadline_exceeded();
                }
                state.metrics.record_failed();
                state.ship(&spool::failed_event(id, &e.to_string()));
                state.store.fail(id, e.to_string());
                // A failure still ends the job's latency story, but its
                // (truncated) busy time must not feed the cost-rate
                // estimator.
                state.metrics.record_job_latency(started.elapsed());
                state.finish_inflight(id, None);
            }
            Err(message) => {
                state.metrics.record_panicked();
                state.metrics.record_failed();
                state.ship(&spool::failed_event(id, &message));
                state.store.fail(id, message);
                state.metrics.record_job_latency(started.elapsed());
                state.finish_inflight(id, None);
            }
        }
    }
}

/// Runs one job body inside its own failure domain: a `timeout_secs`
/// spec installs a cooperative deadline for the duration, and a panic in
/// the clusterer is caught at this barrier — the worker thread survives
/// and the panic payload becomes the job's error (`Err(message)`).
fn run_isolated(spec: &JobSpec) -> std::result::Result<Result<JobOutcome>, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _deadline = spec
            .timeout_secs
            .and_then(|secs| Duration::try_from_secs_f64(secs).ok())
            .and_then(|timeout| Instant::now().checked_add(timeout))
            .map(cancel::deadline_guard);
        spec.execute()
    }))
    .map_err(|payload| {
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("opaque panic payload");
        format!("job panicked: {message}")
    })
}

/// Decrements the `connections_active` gauge when a handler releases its
/// connection — on every exit path, including a panicking handler.
struct ConnectionGuard(Arc<ServerState>);

impl ConnectionGuard {
    fn open(state: &Arc<ServerState>) -> ConnectionGuard {
        state.metrics.connection_opened();
        ConnectionGuard(Arc::clone(state))
    }
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.0.metrics.connection_closed();
    }
}

/// Answers a connection the service cannot take — over the connection
/// cap, or no handler thread available — with `503` + `Retry-After`
/// inline on the acceptor thread, then closes it. Shedding must be
/// *visible* to the peer: a silently dropped connection looks like a
/// network fault and teaches clients nothing about backing off.
fn shed_connection(mut stream: TcpStream, state: &ServerState, message: &str) {
    // A short write timeout so one unreadable peer cannot wedge the
    // acceptor (this runs on the acceptor thread).
    let _ = stream.set_write_timeout(Some(crate::http::IO_TIMEOUT));
    let body = error_body(message).with("reason", "connections_exhausted");
    let _ = write_response_with(
        &mut stream,
        503,
        &body,
        true,
        Some(state.metrics.retry_after_seconds()),
    );
}

fn acceptor_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    for stream in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // The ingress bound: when `max_connections` handlers hold
        // connections, shed instead of spawning an unbounded thread.
        if state.metrics.connections_active() >= state.max_connections as u64 {
            state.metrics.record_connection_rejected();
            shed_connection(
                stream,
                state,
                &format!(
                    "connection limit reached ({} active), retry later",
                    state.max_connections
                ),
            );
            continue;
        }
        state.metrics.record_connection();
        let guard = ConnectionGuard::open(state);
        // A duplicate handle so a failed spawn can still answer the peer
        // (`stream` itself moves into the handler closure).
        let reply = stream.try_clone();
        let handler_state = Arc::clone(state);
        let spawned = std::thread::Builder::new()
            .name("sspc-handler".into())
            .spawn(move || {
                let _guard = guard;
                handle_connection(stream, &handler_state);
            });
        if spawned.is_err() {
            // The closure (with `stream` and the gauge guard) was dropped
            // by the failed spawn; the duplicate still reaches the peer.
            state.metrics.record_spawn_failure();
            if let Ok(reply) = reply {
                shed_connection(reply, state, "no handler thread available, retry later");
            }
        }
    }
}

/// Serves one connection until the peer asks to close, goes idle past
/// the socket timeout, hangs up, or sends something malformed.
fn handle_connection(mut stream: TcpStream, state: &ServerState) {
    if stream
        .set_read_timeout(Some(crate::http::IO_TIMEOUT))
        .is_err()
        || stream
            .set_write_timeout(Some(crate::http::IO_TIMEOUT))
            .is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    loop {
        match read_request(&mut reader) {
            Ok(Some(request)) => {
                // Close when the peer asked to, or when we are stopping.
                let close = request.close || state.shutting_down.load(Ordering::SeqCst);
                state.metrics.request_started();
                let (status, body) = route(&request, state);
                // Every 503 carries a Retry-After hint sized from the
                // mean job seconds observed so far.
                let retry_after = (status == 503).then(|| state.metrics.retry_after_seconds());
                let written = write_response_with(&mut stream, status, &body, close, retry_after);
                state.metrics.request_finished();
                if written.is_err() || close {
                    break;
                }
            }
            Ok(None) => break, // clean close (EOF or idle timeout)
            Err(e) => {
                // Malformed request: answer 400 and drop the connection —
                // the stream position is no longer trustworthy.
                let _ = write_response(&mut stream, 400, &error_body(e.to_string()), true);
                break;
            }
        }
    }
}

fn error_body(msg: impl Into<String>) -> Value {
    Value::object().with("error", msg.into())
}

fn route(request: &Request, state: &ServerState) -> (u16, Value) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/jobs") => submit_job(&request.body, state),
        ("GET", "/jobs") => list_jobs(request, state),
        ("GET", path) if path.starts_with("/jobs/") => get_job(path, state),
        ("GET", "/healthz") => (
            200,
            state.metrics.healthz_value(
                &state.gauges(),
                state.store.stats(),
                state.store.degraded(),
            ),
        ),
        (_, "/jobs" | "/healthz") => (405, error_body("method not allowed")),
        (_, path) if path.starts_with("/jobs/") => (405, error_body("method not allowed")),
        _ => (404, error_body("no such endpoint")),
    }
}

fn submit_job(body: &[u8], state: &ServerState) -> (u16, Value) {
    // Lame duck first: during a drain nothing new is admitted, however
    // well-formed. Same `reason` as the closed-queue race below — clients
    // treat both as "this server is going away, find another".
    if state.draining.load(Ordering::SeqCst) {
        state.metrics.record_rejected_draining();
        return (
            503,
            error_body("server is draining; not accepting new jobs")
                .with("reason", "shutting_down"),
        );
    }

    let parsed = std::str::from_utf8(body)
        .map_err(|_| Error::InvalidParameter("body is not UTF-8".into()))
        .and_then(Value::parse)
        .and_then(|raw| JobSpec::from_json(&raw).map(|spec| (spec, raw)));
    let (spec, raw) = match parsed {
        Ok(pair) => pair,
        Err(e) => {
            state.metrics.record_rejected_invalid();
            return (400, error_body(e.to_string()));
        }
    };

    // A degraded (read-only) store refuses submissions up front; 503
    // rather than 500 because a restarted (repaired) server will accept
    // the same job — `reason` tells retrying clients NOT to bother until
    // then.
    if state.store.degraded() {
        return (
            503,
            error_body("job store is degraded (a journal write failed); submissions disabled")
                .with("reason", "store_degraded"),
        );
    }

    // Cost-aware admission: when the estimated seconds of work already
    // queued or running exceed the budget, shed before burning an id or
    // a journal write. Like `queue_full`, the job provably left no trace,
    // so a client may retry this one safely.
    if let Some(budget) = state.max_backlog_seconds {
        let estimate = state.metrics.estimated_backlog_seconds();
        if estimate > budget {
            state.metrics.record_rejected_backlog();
            return (
                503,
                error_body(format!(
                    "estimated backlog {estimate:.3}s exceeds the {budget:.3}s budget, \
                     retry later"
                ))
                .with("reason", "backlog_exceeded")
                .with("estimated_backlog_seconds", estimate)
                .with("max_backlog_seconds", budget),
            );
        }
    }

    let cost = spec.cost_units();
    let id = state.next_id.fetch_add(1, Ordering::SeqCst);
    // The store consumes `raw`; the spool line needs its own copy (only
    // taken when shipping is on).
    let raw_for_spool = state.spool.as_ref().map(|_| raw.clone());
    // Insert (and journal) before enqueueing so a fast worker always
    // finds the record; a refused push forgets it again. The in-flight
    // entry goes in before the push for the same reason — a worker that
    // pops the id immediately must find the admission timestamp.
    if let Err(e) = state.store.insert(id, spec, raw) {
        // An insert that degraded the store mid-flight is the same 503;
        // anything else is a plain server error.
        if state.store.degraded() {
            return (
                503,
                error_body(format!("job store: {e}")).with("reason", "store_degraded"),
            );
        }
        return (500, error_body(format!("job store: {e}")));
    }
    state.admit_inflight(id, cost);
    // Ship the admission BEFORE the queue push (and hence strictly
    // before the 202 leaves): a worker only sees the id after the push,
    // so its terminal ship always lands after this line, and a shard
    // killed at any point past here owes the router nothing it cannot
    // replay.
    if let Some(raw) = &raw_for_spool {
        state.ship(&spool::submit_event(id, raw));
    }
    match state.queue.try_push(id) {
        Ok(depth) => {
            state.metrics.record_submitted();
            (
                202,
                Value::object()
                    .with("job", id)
                    .with("status", "queued")
                    .with("queue_depth", depth),
            )
        }
        Err(refusal) => {
            state.store.forget(id);
            // Void the shipped admission — the client gets a 503, so
            // the router is owed nothing for this id.
            state.ship(&spool::evict_event(id));
            state.finish_inflight(id, None);
            match refusal {
                PushError::Full(_) => {
                    state.metrics.record_rejected_full();
                    // `reason: queue_full` is the one 503 a client may
                    // safely retry: the job was provably not admitted
                    // (we just forgot it).
                    (
                        503,
                        error_body("queue full, retry later")
                            .with("reason", "queue_full")
                            .with("queue_depth", state.queue.len())
                            .with("queue_capacity", state.queue.capacity()),
                    )
                }
                PushError::Closed(_) => (
                    503,
                    error_body("server is shutting down").with("reason", "shutting_down"),
                ),
            }
        }
    }
}

fn get_job(path: &str, state: &ServerState) -> (u16, Value) {
    let id_text = &path["/jobs/".len()..];
    let Ok(id) = id_text.parse::<u64>() else {
        return (404, error_body(format!("bad job id `{id_text}`")));
    };
    match state.store.get(id) {
        Some(doc) => {
            // During a drain with no workers left, a still-queued job can
            // provably never run in this process's lifetime. Saying so
            // (`503 shutting_down`) lets pollers fail fast instead of
            // burning their backoff budget against a terminal wait.
            if state.draining.load(Ordering::SeqCst)
                && doc.get("status").and_then(Value::as_str) == Some("queued")
                && state.workers_alive.load(Ordering::Relaxed) == 0
            {
                return (
                    503,
                    error_body(format!(
                        "server is draining; queued job {id} will not run here"
                    ))
                    .with("reason", "shutting_down")
                    .with("job", id),
                );
            }
            (200, doc)
        }
        None => (404, error_body(format!("no job {id}"))),
    }
}

pub(crate) const STATUS_NAMES: [&str; 4] = ["queued", "running", "done", "failed"];

/// `GET /jobs[?status=NAME][&limit=N]` — summaries newest first, capped
/// so listing a long-lived store stays bounded. `total` reports the
/// matching count before the cap.
fn list_jobs(request: &Request, state: &ServerState) -> (u16, Value) {
    let mut status: Option<&str> = None;
    let mut limit = DEFAULT_LIST_LIMIT;
    for (key, value) in &request.query {
        match key.as_str() {
            "status" => {
                if !STATUS_NAMES.contains(&value.as_str()) {
                    return (
                        400,
                        error_body(format!(
                            "unknown status `{value}` (one of: {})",
                            STATUS_NAMES.join(", ")
                        )),
                    );
                }
                status = Some(value.as_str());
            }
            "limit" => match value.parse::<usize>() {
                Ok(n) => limit = n.min(MAX_LIST_LIMIT),
                Err(_) => {
                    return (400, error_body(format!("bad limit `{value}`")));
                }
            },
            other => {
                return (
                    400,
                    error_body(format!(
                        "unknown query parameter `{other}` (accepted: status, limit)"
                    )),
                );
            }
        }
    }
    let (total, items) = state.store.list(status, limit);
    (
        200,
        Value::object().with("jobs", items).with("total", total),
    )
}
