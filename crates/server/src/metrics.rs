//! Service health counters: queue pressure, job outcomes, and
//! per-algorithm throughput, rendered as the `/healthz` document.

use crate::job::AlgorithmCost;
use sspc_common::json::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Accumulated execution cost of one algorithm across all finished jobs.
#[derive(Debug, Default, Clone)]
struct AlgorithmThroughput {
    jobs: u64,
    restarts: u64,
    busy_seconds: f64,
}

/// Monotonic counters updated by the acceptor and workers; all reads
/// happen in [`Metrics::healthz_value`]. Counters are process-lifetime —
/// a restart starts them at zero even when the job store is disk-backed.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    submitted: AtomicU64,
    recovered: AtomicU64,
    rejected_full: AtomicU64,
    rejected_invalid: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    panicked: AtomicU64,
    deadline_exceeded: AtomicU64,
    connections: AtomicU64,
    per_algorithm: Mutex<BTreeMap<String, AlgorithmThroughput>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            rejected_invalid: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            per_algorithm: Mutex::new(BTreeMap::new()),
        }
    }
}

impl Metrics {
    /// A job was accepted onto the queue.
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// A job was re-enqueued from the journal at startup.
    pub fn record_recovered(&self) {
        self.recovered.fetch_add(1, Ordering::Relaxed);
    }

    /// The acceptor took a new TCP connection (each may carry many
    /// keep-alive requests — the keep-alive tests assert on this).
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// A job was refused because the queue was at capacity.
    pub fn record_rejected_full(&self) {
        self.rejected_full.fetch_add(1, Ordering::Relaxed);
    }

    /// A request failed validation (malformed JSON or schema).
    pub fn record_rejected_invalid(&self) {
        self.rejected_invalid.fetch_add(1, Ordering::Relaxed);
    }

    /// A job finished successfully; fold its per-algorithm costs into the
    /// throughput table.
    pub fn record_completed(&self, costs: &[AlgorithmCost]) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let mut table = self.per_algorithm.lock().expect("metrics poisoned");
        for cost in costs {
            let entry = table.entry(cost.algorithm.clone()).or_default();
            entry.jobs += 1;
            entry.restarts += cost.restarts as u64;
            entry.busy_seconds += cost.busy_seconds;
        }
    }

    /// A job failed.
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// A job body panicked and was caught by the worker's unwind barrier
    /// (the job is also counted in `failed`).
    pub fn record_panicked(&self) {
        self.panicked.fetch_add(1, Ordering::Relaxed);
    }

    /// A job was cancelled at its cooperative deadline (also counted in
    /// `failed`).
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Backpressure hint attached as `Retry-After` to every 503: the mean
    /// wall-clock seconds per completed job observed so far (total
    /// per-algorithm busy seconds over completed jobs), rounded up and
    /// clamped to `[1, 60]`; `1` before anything has completed.
    pub fn retry_after_seconds(&self) -> u64 {
        let completed = self.completed.load(Ordering::Relaxed);
        if completed == 0 {
            return 1;
        }
        let busy: f64 = self
            .per_algorithm
            .lock()
            .expect("metrics poisoned")
            .values()
            .map(|t| t.busy_seconds)
            .sum();
        (busy / completed as f64).ceil().clamp(1.0, 60.0) as u64
    }

    /// Renders the `/healthz` document. `queue_depth`/`queue_capacity`
    /// describe the bounded queue; `workers` is the configured pool size
    /// and `workers_alive` the threads currently in their loop; `store`
    /// is the job store's own stats section (kind, held jobs, evictions,
    /// configured limits) and `store_degraded` its read-only flag.
    ///
    /// The document splits liveness from readiness: any answer at all is
    /// liveness, while `ready` (mirrored by `status`: `"ok"` vs
    /// `"degraded"`) says whether new submissions can be accepted.
    pub fn healthz_value(
        &self,
        queue_depth: usize,
        queue_capacity: usize,
        workers: usize,
        workers_alive: usize,
        store: Value,
        store_degraded: bool,
    ) -> Value {
        let mut algorithms = Value::object();
        for (name, t) in self.per_algorithm.lock().expect("metrics poisoned").iter() {
            let per_sec = if t.busy_seconds > 0.0 {
                t.restarts as f64 / t.busy_seconds
            } else {
                0.0
            };
            algorithms = algorithms.with(
                name.as_str(),
                Value::object()
                    .with("jobs", t.jobs)
                    .with("restarts", t.restarts)
                    .with("busy_seconds", t.busy_seconds)
                    .with("restarts_per_busy_second", per_sec),
            );
        }
        Value::object()
            .with("status", if store_degraded { "degraded" } else { "ok" })
            .with("ready", !store_degraded)
            .with("uptime_seconds", self.started.elapsed().as_secs_f64())
            .with("workers", workers)
            .with("workers_alive", workers_alive)
            .with(
                "connections_accepted",
                self.connections.load(Ordering::Relaxed),
            )
            .with(
                "queue",
                Value::object()
                    .with("depth", queue_depth)
                    .with("capacity", queue_capacity),
            )
            .with("store", store)
            .with(
                "jobs",
                Value::object()
                    .with("submitted", self.submitted.load(Ordering::Relaxed))
                    .with("recovered", self.recovered.load(Ordering::Relaxed))
                    .with(
                        "rejected_queue_full",
                        self.rejected_full.load(Ordering::Relaxed),
                    )
                    .with(
                        "rejected_invalid",
                        self.rejected_invalid.load(Ordering::Relaxed),
                    )
                    .with("completed", self.completed.load(Ordering::Relaxed))
                    .with("failed", self.failed.load(Ordering::Relaxed)),
            )
            .with("jobs_panicked", self.panicked.load(Ordering::Relaxed))
            .with(
                "jobs_deadline_exceeded",
                self.deadline_exceeded.load(Ordering::Relaxed),
            )
            .with("store_degraded", store_degraded)
            .with("algorithms", algorithms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_flow_into_healthz() {
        let m = Metrics::default();
        m.record_submitted();
        m.record_submitted();
        m.record_recovered();
        m.record_connection();
        m.record_connection();
        m.record_connection();
        m.record_rejected_full();
        m.record_rejected_invalid();
        m.record_failed();
        m.record_panicked();
        m.record_deadline_exceeded();
        m.record_completed(&[
            AlgorithmCost {
                algorithm: "sspc".into(),
                restarts: 5,
                busy_seconds: 2.5,
            },
            AlgorithmCost {
                algorithm: "harp".into(),
                restarts: 1,
                busy_seconds: 0.5,
            },
        ]);
        m.record_completed(&[AlgorithmCost {
            algorithm: "sspc".into(),
            restarts: 5,
            busy_seconds: 2.5,
        }]);

        let store = Value::object().with("kind", "memory").with("jobs", 2u64);
        let h = m.healthz_value(3, 64, 2, 2, store, false);
        assert_eq!(h.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(h.get("ready").and_then(Value::as_bool), Some(true));
        assert_eq!(h.get("workers").and_then(Value::as_u64), Some(2));
        assert_eq!(h.get("workers_alive").and_then(Value::as_u64), Some(2));
        assert_eq!(h.get("jobs_panicked").and_then(Value::as_u64), Some(1));
        assert_eq!(
            h.get("jobs_deadline_exceeded").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            h.get("store_degraded").and_then(Value::as_bool),
            Some(false)
        );
        assert_eq!(
            h.get("connections_accepted").and_then(Value::as_u64),
            Some(3)
        );
        let queue = h.get("queue").unwrap();
        assert_eq!(queue.get("depth").and_then(Value::as_u64), Some(3));
        assert_eq!(queue.get("capacity").and_then(Value::as_u64), Some(64));
        assert_eq!(
            h.get("store").unwrap().get("kind").and_then(Value::as_str),
            Some("memory")
        );
        let jobs = h.get("jobs").unwrap();
        assert_eq!(jobs.get("submitted").and_then(Value::as_u64), Some(2));
        assert_eq!(jobs.get("recovered").and_then(Value::as_u64), Some(1));
        assert_eq!(
            jobs.get("rejected_queue_full").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(jobs.get("completed").and_then(Value::as_u64), Some(2));
        assert_eq!(jobs.get("failed").and_then(Value::as_u64), Some(1));
        let sspc = h.get("algorithms").unwrap().get("sspc").unwrap();
        assert_eq!(sspc.get("jobs").and_then(Value::as_u64), Some(2));
        assert_eq!(sspc.get("restarts").and_then(Value::as_u64), Some(10));
        assert_eq!(sspc.get("busy_seconds").and_then(Value::as_f64), Some(5.0));
        assert_eq!(
            sspc.get("restarts_per_busy_second").and_then(Value::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn retry_after_tracks_mean_job_seconds() {
        let m = Metrics::default();
        assert_eq!(m.retry_after_seconds(), 1, "floor of 1 before completions");
        m.record_completed(&[AlgorithmCost {
            algorithm: "sspc".into(),
            restarts: 1,
            busy_seconds: 2.2,
        }]);
        assert_eq!(m.retry_after_seconds(), 3, "ceil of the mean");
        m.record_completed(&[AlgorithmCost {
            algorithm: "sspc".into(),
            restarts: 1,
            busy_seconds: 1000.0,
        }]);
        assert_eq!(m.retry_after_seconds(), 60, "clamped to a minute");
    }

    #[test]
    fn degraded_store_flips_status_and_readiness() {
        let m = Metrics::default();
        let h = m.healthz_value(0, 4, 1, 1, Value::object(), true);
        assert_eq!(h.get("status").and_then(Value::as_str), Some("degraded"));
        assert_eq!(h.get("ready").and_then(Value::as_bool), Some(false));
        assert_eq!(h.get("store_degraded").and_then(Value::as_bool), Some(true));
    }
}
