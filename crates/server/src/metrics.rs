//! Service health counters: queue pressure, job outcomes, per-algorithm
//! throughput, connection/ingress gauges, latency histograms, and the
//! cost-based backlog estimator — rendered as the `/healthz` document.

use crate::job::AlgorithmCost;
use sspc_common::hist::Histogram;
use sspc_common::json::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Accumulated execution cost of one algorithm across all finished jobs.
#[derive(Debug, Default, Clone)]
struct AlgorithmThroughput {
    jobs: u64,
    restarts: u64,
    busy_seconds: f64,
}

/// Cold-start prior for the backlog estimator: seconds per cost unit
/// (`n·d·k·runs·algorithms`) assumed before any job has completed. Tiny
/// on purpose — the first completions replace it with measured data.
const COST_RATE_PRIOR: f64 = 1e-6;

/// Point-in-time service state that lives outside [`Metrics`] (queue,
/// worker pool, drain flag, configured limits), passed into
/// [`Metrics::healthz_value`] by the route handler.
#[derive(Debug, Clone, Copy)]
pub struct Gauges {
    /// Jobs currently queued (not yet running).
    pub queue_depth: usize,
    /// Bounded queue capacity.
    pub queue_capacity: usize,
    /// Configured worker pool size.
    pub workers: usize,
    /// Worker threads currently inside their loop.
    pub workers_alive: usize,
    /// Lame-duck state: the server is finishing work but refusing new
    /// submissions.
    pub draining: bool,
    /// Configured connection cap (the ingress semaphore).
    pub connections_limit: usize,
    /// Configured admission budget in estimated backlog seconds, if any.
    pub max_backlog_seconds: Option<f64>,
    /// This server's shard id (0 for a plain single-node deployment);
    /// the router reads it back out of `/healthz` fan-ins.
    pub shard: u16,
    /// Journal-shipping write failures, when a spool is configured
    /// (`None` renders nothing — the server is not sharded).
    pub spool_ship_failures: Option<u64>,
}

/// Monotonic counters updated by the acceptor and workers; all reads
/// happen in [`Metrics::healthz_value`]. Counters are process-lifetime —
/// a restart starts them at zero even when the job store is disk-backed.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    submitted: AtomicU64,
    recovered: AtomicU64,
    rejected_full: AtomicU64,
    rejected_invalid: AtomicU64,
    rejected_backlog: AtomicU64,
    rejected_draining: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    panicked: AtomicU64,
    deadline_exceeded: AtomicU64,
    connections: AtomicU64,
    connections_active: AtomicU64,
    connections_rejected: AtomicU64,
    spawn_failures: AtomicU64,
    requests_in_flight: AtomicU64,
    /// Estimated cost units (`n·d·k·runs·algorithms`) of jobs currently
    /// queued or running — the numerator of the admission estimate.
    backlog_cost: AtomicU64,
    /// Measured cost-vs-time: units and busy microseconds of successfully
    /// completed jobs, giving the seconds-per-unit rate.
    observed_cost: AtomicU64,
    observed_busy_us: AtomicU64,
    queue_wait: Histogram,
    job_latency: Histogram,
    per_algorithm: Mutex<BTreeMap<String, AlgorithmThroughput>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            rejected_invalid: AtomicU64::new(0),
            rejected_backlog: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
            spawn_failures: AtomicU64::new(0),
            requests_in_flight: AtomicU64::new(0),
            backlog_cost: AtomicU64::new(0),
            observed_cost: AtomicU64::new(0),
            observed_busy_us: AtomicU64::new(0),
            queue_wait: Histogram::new(),
            job_latency: Histogram::new(),
            per_algorithm: Mutex::new(BTreeMap::new()),
        }
    }
}

impl Metrics {
    /// A job was accepted onto the queue.
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// A job was re-enqueued from the journal at startup.
    pub fn record_recovered(&self) {
        self.recovered.fetch_add(1, Ordering::Relaxed);
    }

    /// The acceptor took a new TCP connection (each may carry many
    /// keep-alive requests — the keep-alive tests assert on this).
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// A handler thread took ownership of an accepted connection — pairs
    /// with [`connection_closed`](Metrics::connection_closed) to maintain
    /// the `connections_active` gauge the acceptor's cap checks.
    pub fn connection_opened(&self) {
        self.connections_active.fetch_add(1, Ordering::SeqCst);
    }

    /// A handler released its connection (clean close or any error path).
    pub fn connection_closed(&self) {
        self.connections_active.fetch_sub(1, Ordering::SeqCst);
    }

    /// Handler connections currently open.
    pub fn connections_active(&self) -> u64 {
        self.connections_active.load(Ordering::SeqCst)
    }

    /// A connection was refused at the cap (answered `503
    /// connections_exhausted` inline on the acceptor).
    pub fn record_connection_rejected(&self) {
        self.connections_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Spawning a handler thread failed (resource exhaustion); the
    /// connection was answered `503` inline instead of dropped.
    pub fn record_spawn_failure(&self) {
        self.spawn_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// A request entered routing on some handler.
    pub fn request_started(&self) {
        self.requests_in_flight.fetch_add(1, Ordering::SeqCst);
    }

    /// The response for a routed request was written (or failed to be).
    pub fn request_finished(&self) {
        self.requests_in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// A job was refused because the queue was at capacity.
    pub fn record_rejected_full(&self) {
        self.rejected_full.fetch_add(1, Ordering::Relaxed);
    }

    /// A request failed validation (malformed JSON or schema).
    pub fn record_rejected_invalid(&self) {
        self.rejected_invalid.fetch_add(1, Ordering::Relaxed);
    }

    /// A job was refused because the estimated backlog exceeded the
    /// configured `--max-backlog-seconds` budget.
    pub fn record_rejected_backlog(&self) {
        self.rejected_backlog.fetch_add(1, Ordering::Relaxed);
    }

    /// A submission was refused because the server is draining.
    pub fn record_rejected_draining(&self) {
        self.rejected_draining.fetch_add(1, Ordering::Relaxed);
    }

    /// A job's estimated cost entered the backlog (admitted or recovered).
    pub fn admit_cost(&self, cost: u64) {
        self.backlog_cost.fetch_add(cost, Ordering::Relaxed);
    }

    /// A job's estimated cost left the backlog (finished, forgotten, or
    /// vanished). Saturating: a double release cannot wrap the gauge.
    pub fn release_cost(&self, cost: u64) {
        let _ = self
            .backlog_cost
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |current| {
                Some(current.saturating_sub(cost))
            });
    }

    /// Feeds the measured seconds-per-cost-unit rate (successful
    /// completions only — failures finish early and would bias it down).
    pub fn observe_cost_rate(&self, cost: u64, busy_seconds: f64) {
        if cost > 0 && busy_seconds > 0.0 {
            self.observed_cost.fetch_add(cost, Ordering::Relaxed);
            self.observed_busy_us
                .fetch_add((busy_seconds * 1e6) as u64, Ordering::Relaxed);
        }
    }

    /// Estimated seconds of work currently queued or running: the backlog
    /// cost units times the measured seconds-per-unit rate (a small prior
    /// before anything has completed). This is what `--max-backlog-seconds`
    /// admission control compares against its budget.
    pub fn estimated_backlog_seconds(&self) -> f64 {
        let backlog = self.backlog_cost.load(Ordering::Relaxed) as f64;
        let observed = self.observed_cost.load(Ordering::Relaxed);
        let rate = if observed == 0 {
            COST_RATE_PRIOR
        } else {
            (self.observed_busy_us.load(Ordering::Relaxed) as f64 / 1e6) / observed as f64
        };
        backlog * rate
    }

    /// How long a job sat queued before a worker began it.
    pub fn record_queue_wait(&self, wait: Duration) {
        self.queue_wait.record_duration(wait);
    }

    /// Submission-to-terminal-state latency of a finished job.
    pub fn record_job_latency(&self, latency: Duration) {
        self.job_latency.record_duration(latency);
    }

    /// A job finished successfully; fold its per-algorithm costs into the
    /// throughput table.
    pub fn record_completed(&self, costs: &[AlgorithmCost]) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let mut table = self.per_algorithm.lock().expect("metrics poisoned");
        for cost in costs {
            let entry = table.entry(cost.algorithm.clone()).or_default();
            entry.jobs += 1;
            entry.restarts += cost.restarts as u64;
            entry.busy_seconds += cost.busy_seconds;
        }
    }

    /// A job failed.
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// A job body panicked and was caught by the worker's unwind barrier
    /// (the job is also counted in `failed`).
    pub fn record_panicked(&self) {
        self.panicked.fetch_add(1, Ordering::Relaxed);
    }

    /// A job was cancelled at its cooperative deadline (also counted in
    /// `failed`).
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Backpressure hint attached as `Retry-After` to every 503: the mean
    /// wall-clock seconds per completed job observed so far (total
    /// per-algorithm busy seconds over completed jobs), rounded up and
    /// clamped to `[1, 60]`; `1` before anything has completed.
    pub fn retry_after_seconds(&self) -> u64 {
        let completed = self.completed.load(Ordering::Relaxed);
        if completed == 0 {
            return 1;
        }
        let busy: f64 = self
            .per_algorithm
            .lock()
            .expect("metrics poisoned")
            .values()
            .map(|t| t.busy_seconds)
            .sum();
        (busy / completed as f64).ceil().clamp(1.0, 60.0) as u64
    }

    /// Renders one latency histogram as `{count, p50_ms, p95_ms, p99_ms}`
    /// (milliseconds; quantiles carry the histogram's documented 1/16
    /// relative-error bound). Percentiles are 0 while empty.
    fn latency_value(hist: &Histogram) -> Value {
        let ms = |q: f64| hist.quantile(q).unwrap_or(0) as f64 / 1e3;
        Value::object()
            .with("count", hist.count())
            .with("p50_ms", ms(0.50))
            .with("p95_ms", ms(0.95))
            .with("p99_ms", ms(0.99))
    }

    /// Renders the `/healthz` document. `gauges` carries the live service
    /// state (queue, workers, drain flag, configured limits); `store` is
    /// the job store's own stats section and `store_degraded` its
    /// read-only flag.
    ///
    /// The document splits liveness from readiness: any answer at all is
    /// liveness, while `ready` says whether new submissions can be
    /// accepted. `status` is `"ok"`, `"degraded"` (journal write failed;
    /// read-only), or `"draining"` (lame duck — drain wins the tiebreak
    /// because it is the operator-initiated, terminal state).
    pub fn healthz_value(&self, gauges: &Gauges, store: Value, store_degraded: bool) -> Value {
        let mut algorithms = Value::object();
        for (name, t) in self.per_algorithm.lock().expect("metrics poisoned").iter() {
            let per_sec = if t.busy_seconds > 0.0 {
                t.restarts as f64 / t.busy_seconds
            } else {
                0.0
            };
            algorithms = algorithms.with(
                name.as_str(),
                Value::object()
                    .with("jobs", t.jobs)
                    .with("restarts", t.restarts)
                    .with("busy_seconds", t.busy_seconds)
                    .with("restarts_per_busy_second", per_sec),
            );
        }
        let status = if gauges.draining {
            "draining"
        } else if store_degraded {
            "degraded"
        } else {
            "ok"
        };
        let mut admission = Value::object()
            .with(
                "backlog_cost_units",
                self.backlog_cost.load(Ordering::Relaxed),
            )
            .with(
                "estimated_backlog_seconds",
                self.estimated_backlog_seconds(),
            );
        if let Some(budget) = gauges.max_backlog_seconds {
            admission = admission.with("max_backlog_seconds", budget);
        }
        let mut doc = Value::object();
        if let Some(failures) = gauges.spool_ship_failures {
            doc = doc.with("spool_ship_failures", failures);
        }
        doc.with("status", status)
            .with("ready", !store_degraded && !gauges.draining)
            .with("shard", u64::from(gauges.shard))
            .with("uptime_seconds", self.started.elapsed().as_secs_f64())
            .with("workers", gauges.workers)
            .with("workers_alive", gauges.workers_alive)
            // The *effective* per-job data-parallel thread count, resolved
            // from the same source the algorithms use — not a config echo,
            // so it can never silently disagree with what jobs actually do.
            .with("job_threads", sspc_common::parallel::num_threads() as u64)
            .with(
                "connections_accepted",
                self.connections.load(Ordering::Relaxed),
            )
            .with("connections_active", self.connections_active())
            .with("connections_limit", gauges.connections_limit)
            .with(
                "connections_rejected",
                self.connections_rejected.load(Ordering::Relaxed),
            )
            .with(
                "handler_spawn_failures",
                self.spawn_failures.load(Ordering::Relaxed),
            )
            .with(
                "requests_in_flight",
                self.requests_in_flight.load(Ordering::SeqCst),
            )
            .with(
                "queue",
                Value::object()
                    .with("depth", gauges.queue_depth)
                    .with("capacity", gauges.queue_capacity),
            )
            .with("admission", admission)
            .with(
                "latency",
                Value::object()
                    .with("queue_wait", Self::latency_value(&self.queue_wait))
                    .with("job", Self::latency_value(&self.job_latency)),
            )
            .with("store", store)
            .with(
                "jobs",
                Value::object()
                    .with("submitted", self.submitted.load(Ordering::Relaxed))
                    .with("recovered", self.recovered.load(Ordering::Relaxed))
                    .with(
                        "rejected_queue_full",
                        self.rejected_full.load(Ordering::Relaxed),
                    )
                    .with(
                        "rejected_invalid",
                        self.rejected_invalid.load(Ordering::Relaxed),
                    )
                    .with(
                        "rejected_backlog",
                        self.rejected_backlog.load(Ordering::Relaxed),
                    )
                    .with(
                        "rejected_draining",
                        self.rejected_draining.load(Ordering::Relaxed),
                    )
                    .with("completed", self.completed.load(Ordering::Relaxed))
                    .with("failed", self.failed.load(Ordering::Relaxed)),
            )
            .with("jobs_panicked", self.panicked.load(Ordering::Relaxed))
            .with(
                "jobs_deadline_exceeded",
                self.deadline_exceeded.load(Ordering::Relaxed),
            )
            .with("store_degraded", store_degraded)
            .with("algorithms", algorithms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauges(queue_depth: usize, queue_capacity: usize, workers: usize) -> Gauges {
        Gauges {
            queue_depth,
            queue_capacity,
            workers,
            workers_alive: workers,
            draining: false,
            connections_limit: 256,
            max_backlog_seconds: None,
            shard: 0,
            spool_ship_failures: None,
        }
    }

    #[test]
    fn counters_flow_into_healthz() {
        let m = Metrics::default();
        m.record_submitted();
        m.record_submitted();
        m.record_recovered();
        m.record_connection();
        m.record_connection();
        m.record_connection();
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        m.record_connection_rejected();
        m.record_spawn_failure();
        m.request_started();
        m.record_rejected_full();
        m.record_rejected_invalid();
        m.record_rejected_backlog();
        m.record_rejected_draining();
        m.record_failed();
        m.record_panicked();
        m.record_deadline_exceeded();
        m.record_queue_wait(Duration::from_millis(4));
        m.record_job_latency(Duration::from_millis(20));
        m.record_completed(&[
            AlgorithmCost {
                algorithm: "sspc".into(),
                restarts: 5,
                busy_seconds: 2.5,
            },
            AlgorithmCost {
                algorithm: "harp".into(),
                restarts: 1,
                busy_seconds: 0.5,
            },
        ]);
        m.record_completed(&[AlgorithmCost {
            algorithm: "sspc".into(),
            restarts: 5,
            busy_seconds: 2.5,
        }]);

        let store = Value::object().with("kind", "memory").with("jobs", 2u64);
        let h = m.healthz_value(&gauges(3, 64, 2), store, false);
        assert_eq!(h.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(h.get("ready").and_then(Value::as_bool), Some(true));
        assert_eq!(h.get("shard").and_then(Value::as_u64), Some(0));
        assert!(
            h.get("spool_ship_failures").is_none(),
            "no spool configured, no spool field"
        );
        assert_eq!(h.get("workers").and_then(Value::as_u64), Some(2));
        assert_eq!(h.get("workers_alive").and_then(Value::as_u64), Some(2));
        assert_eq!(
            h.get("job_threads").and_then(Value::as_u64),
            Some(sspc_common::parallel::num_threads() as u64),
            "job_threads must mirror the resolved per-job worker count"
        );
        assert_eq!(h.get("jobs_panicked").and_then(Value::as_u64), Some(1));
        assert_eq!(
            h.get("jobs_deadline_exceeded").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            h.get("store_degraded").and_then(Value::as_bool),
            Some(false)
        );
        assert_eq!(
            h.get("connections_accepted").and_then(Value::as_u64),
            Some(3)
        );
        assert_eq!(h.get("connections_active").and_then(Value::as_u64), Some(1));
        assert_eq!(
            h.get("connections_limit").and_then(Value::as_u64),
            Some(256)
        );
        assert_eq!(
            h.get("connections_rejected").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            h.get("handler_spawn_failures").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(h.get("requests_in_flight").and_then(Value::as_u64), Some(1));
        let queue = h.get("queue").unwrap();
        assert_eq!(queue.get("depth").and_then(Value::as_u64), Some(3));
        assert_eq!(queue.get("capacity").and_then(Value::as_u64), Some(64));
        assert_eq!(
            h.get("store").unwrap().get("kind").and_then(Value::as_str),
            Some("memory")
        );
        let jobs = h.get("jobs").unwrap();
        assert_eq!(jobs.get("submitted").and_then(Value::as_u64), Some(2));
        assert_eq!(jobs.get("recovered").and_then(Value::as_u64), Some(1));
        assert_eq!(
            jobs.get("rejected_queue_full").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            jobs.get("rejected_backlog").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            jobs.get("rejected_draining").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(jobs.get("completed").and_then(Value::as_u64), Some(2));
        assert_eq!(jobs.get("failed").and_then(Value::as_u64), Some(1));
        let latency = h.get("latency").unwrap();
        let qw = latency.get("queue_wait").unwrap();
        assert_eq!(qw.get("count").and_then(Value::as_u64), Some(1));
        let p50 = qw.get("p50_ms").and_then(Value::as_f64).unwrap();
        assert!((p50 - 4.0).abs() / 4.0 < 0.07, "queue-wait p50 {p50} ms");
        let job = latency.get("job").unwrap();
        let p99 = job.get("p99_ms").and_then(Value::as_f64).unwrap();
        assert!((p99 - 20.0).abs() / 20.0 < 0.07, "job p99 {p99} ms");
        let sspc = h.get("algorithms").unwrap().get("sspc").unwrap();
        assert_eq!(sspc.get("jobs").and_then(Value::as_u64), Some(2));
        assert_eq!(sspc.get("restarts").and_then(Value::as_u64), Some(10));
        assert_eq!(sspc.get("busy_seconds").and_then(Value::as_f64), Some(5.0));
        assert_eq!(
            sspc.get("restarts_per_busy_second").and_then(Value::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn shard_id_and_spool_failures_render_when_sharded() {
        let m = Metrics::default();
        let mut g = gauges(0, 4, 1);
        g.shard = 3;
        g.spool_ship_failures = Some(2);
        let h = m.healthz_value(&g, Value::object(), false);
        assert_eq!(h.get("shard").and_then(Value::as_u64), Some(3));
        assert_eq!(
            h.get("spool_ship_failures").and_then(Value::as_u64),
            Some(2)
        );
    }

    #[test]
    fn retry_after_tracks_mean_job_seconds() {
        let m = Metrics::default();
        assert_eq!(m.retry_after_seconds(), 1, "floor of 1 before completions");
        m.record_completed(&[AlgorithmCost {
            algorithm: "sspc".into(),
            restarts: 1,
            busy_seconds: 2.2,
        }]);
        assert_eq!(m.retry_after_seconds(), 3, "ceil of the mean");
        m.record_completed(&[AlgorithmCost {
            algorithm: "sspc".into(),
            restarts: 1,
            busy_seconds: 1000.0,
        }]);
        assert_eq!(m.retry_after_seconds(), 60, "clamped to a minute");
    }

    #[test]
    fn degraded_store_flips_status_and_readiness() {
        let m = Metrics::default();
        let h = m.healthz_value(&gauges(0, 4, 1), Value::object(), true);
        assert_eq!(h.get("status").and_then(Value::as_str), Some("degraded"));
        assert_eq!(h.get("ready").and_then(Value::as_bool), Some(false));
        assert_eq!(h.get("store_degraded").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn draining_wins_the_status_tiebreak_and_clears_readiness() {
        let m = Metrics::default();
        let mut g = gauges(0, 4, 1);
        g.draining = true;
        let h = m.healthz_value(&g, Value::object(), false);
        assert_eq!(h.get("status").and_then(Value::as_str), Some("draining"));
        assert_eq!(h.get("ready").and_then(Value::as_bool), Some(false));
        // Draining masks degraded in `status` but not in the flag.
        let h = m.healthz_value(&g, Value::object(), true);
        assert_eq!(h.get("status").and_then(Value::as_str), Some("draining"));
        assert_eq!(h.get("store_degraded").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn backlog_estimate_uses_prior_then_measured_rate() {
        let m = Metrics::default();
        assert_eq!(m.estimated_backlog_seconds(), 0.0, "empty backlog");
        m.admit_cost(1_000_000);
        let prior = m.estimated_backlog_seconds();
        assert!(
            (prior - 1.0).abs() < 1e-9,
            "1M units at the 1µs prior ≈ 1s, got {prior}"
        );
        // A measured completion: 500k units in 2s => 4µs per unit.
        m.release_cost(500_000);
        m.observe_cost_rate(500_000, 2.0);
        let measured = m.estimated_backlog_seconds();
        assert!(
            (measured - 2.0).abs() < 1e-6,
            "500k backlog at 4µs/unit ≈ 2s, got {measured}"
        );
        // Releases saturate instead of wrapping.
        m.release_cost(u64::MAX);
        assert_eq!(m.estimated_backlog_seconds(), 0.0);
    }

    #[test]
    fn connection_gauge_tracks_open_close() {
        let m = Metrics::default();
        assert_eq!(m.connections_active(), 0);
        m.connection_opened();
        m.connection_opened();
        assert_eq!(m.connections_active(), 2);
        m.connection_closed();
        assert_eq!(m.connections_active(), 1);
    }
}
