//! The slice of HTTP/1.1 the batch service needs — now with keep-alive.
//!
//! The build environment has no async runtime and no HTTP crates, so this
//! module implements exactly what the job API requires over
//! `std::net::TcpStream`: request-line + headers + `Content-Length` body
//! parsing on the server side, and a client that can either hold one
//! **keep-alive** connection across many exchanges ([`HttpConnection`] —
//! what `submit --wait` polls through, one TCP connect total) or do a
//! one-shot `Connection: close` round trip ([`request`]).
//!
//! Framing is `Content-Length` only, on both directions — every response
//! carries the header, so a reader always knows where the body ends
//! without waiting for EOF. `Connection: close` is honored in both
//! directions; an idle keep-alive connection is closed by the server
//! after [`IO_TIMEOUT`]. Chunked encoding, TLS, and `%`-decoding of query
//! strings are deliberately out of scope — payloads are small JSON
//! documents on a trusted network.

use sspc_common::json::Value;
use sspc_common::{Error, Result};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request body; protects the server from unbounded
/// buffering on a misbehaving client.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Largest accepted request line + headers combined; with
/// [`MAX_BODY_BYTES`] this bounds the total buffering any one request
/// can force (a peer streaming an endless header line hits this cap, not
/// the allocator).
pub const MAX_HEAD_BYTES: u64 = 64 * 1024;

/// Per-connection socket timeout. Doubles as the keep-alive **idle
/// timeout**: a connection with no next request within this window is
/// closed, so stalled peers cannot pin handler threads forever.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed HTTP request: method, path, query, body, and whether the
/// peer asked to close the connection after this exchange.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the client already).
    pub method: String,
    /// The request path with the query string stripped, e.g. `/jobs/3`.
    pub path: String,
    /// Query parameters in order of appearance (`?status=done&limit=5` →
    /// `[("status","done"),("limit","5")]`); no `%`-decoding.
    pub query: Vec<(String, String)>,
    /// Raw body bytes (`Content-Length` framing only).
    pub body: Vec<u8>,
    /// The peer sent `Connection: close`.
    pub close: bool,
}

fn io_err(context: &str, e: std::io::Error) -> Error {
    Error::InvalidParameter(format!("{context}: {e}"))
}

/// True for the error kinds a quietly-departed or idle peer produces
/// (as opposed to a malformed request).
fn is_disconnect(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
    )
}

/// Reads one request from a connection's buffered reader. The reader
/// must persist across calls on a keep-alive connection — its buffer may
/// already hold the next pipelined request.
///
/// Returns `Ok(None)` when the peer closed the connection (or went idle
/// past the socket timeout) *between* requests — the clean end of a
/// keep-alive session, not an error.
///
/// # Errors
///
/// [`Error::InvalidParameter`] on malformed request lines or headers, a
/// body larger than [`MAX_BODY_BYTES`], or socket failures mid-request.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>> {
    let mut head_budget = MAX_HEAD_BYTES;

    let mut request_line = String::new();
    match read_head_line(reader, &mut head_budget, &mut request_line) {
        Ok(0) => return Ok(None), // EOF between requests: clean close
        Ok(_) => {}
        Err(e) if request_line.is_empty() && is_disconnect(&e) => return Ok(None),
        Err(e) => return Err(io_err("read request line", e)),
    }
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(Error::InvalidParameter(format!(
            "malformed request line `{}`",
            request_line.trim_end()
        )));
    };
    let method = method.to_string();
    let (path, query) = parse_target(target);

    let mut content_length = 0usize;
    let mut close = false;
    loop {
        let mut line = String::new();
        read_head_line(reader, &mut head_budget, &mut line)
            .map_err(|e| io_err("read header", e))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| {
                    Error::InvalidParameter(format!("bad Content-Length `{value}`"))
                })?;
            } else if name.eq_ignore_ascii_case("connection") {
                close = value.eq_ignore_ascii_case("close");
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(Error::InvalidParameter(format!(
            "request body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }

    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| io_err("read body", e))?;
    Ok(Some(Request {
        method,
        path,
        query,
        body,
        close,
    }))
}

/// Splits a request target into path and parsed query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, query)) => {
            let pairs = query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| match p.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (p.to_string(), String::new()),
                })
                .collect();
            (path.to_string(), pairs)
        }
    }
}

/// Reads one head line (request line or header) against the shared
/// [`MAX_HEAD_BYTES`] budget, so a peer cannot force unbounded buffering
/// by never sending a newline. Returns the bytes read (0 = EOF).
fn read_head_line<R: BufRead>(
    reader: &mut R,
    budget: &mut u64,
    line: &mut String,
) -> std::io::Result<usize> {
    let mut limited = reader.by_ref().take(*budget);
    let n = limited.read_line(line)?;
    *budget -= line.len() as u64;
    if *budget == 0 && !line.ends_with('\n') {
        return Err(std::io::Error::other(format!(
            "request head exceeds the {MAX_HEAD_BYTES}-byte limit"
        )));
    }
    Ok(n)
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a JSON response. `close` controls the `Connection` header —
/// the caller closes the stream after a `close: true` response; a
/// `keep-alive` response leaves the connection open for the next
/// request. Always `Content-Length`-framed.
///
/// # Errors
///
/// [`Error::InvalidParameter`] wrapping socket failures.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &Value,
    close: bool,
) -> Result<()> {
    write_response_with(stream, status, body, close, None)
}

/// [`write_response`] plus an optional `Retry-After: <seconds>` header —
/// the backpressure hint the service attaches to every 503 so clients
/// know how long to back off before resubmitting.
///
/// # Errors
///
/// [`Error::InvalidParameter`] wrapping socket failures.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    body: &Value,
    close: bool,
    retry_after: Option<u64>,
) -> Result<()> {
    sspc_common::fault::point("http.response")?;
    let payload = body.to_string();
    let connection = if close { "close" } else { "keep-alive" };
    let retry = retry_after.map_or(String::new(), |secs| format!("retry-after: {secs}\r\n"));
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\n{retry}connection: {connection}\r\n\r\n",
        status_text(status),
        payload.len()
    );
    let mut message = head.into_bytes();
    message.extend_from_slice(payload.as_bytes());
    stream
        .write_all(&message)
        .and_then(|()| stream.flush())
        .map_err(|e| io_err("write response", e))
}

/// A client-side keep-alive connection: many request/response exchanges
/// over one TCP socket. This is what turns an N-poll `submit --wait`
/// from N connects into one.
///
/// After the server answers `Connection: close` (or the socket drops),
/// [`HttpConnection::server_closed`] turns true and further round trips
/// fail — callers reconnect (see `client::Client`, which does this
/// automatically and retries idempotent GETs once).
pub struct HttpConnection {
    reader: BufReader<TcpStream>,
    addr: String,
    server_closed: bool,
    retry_after: Option<u64>,
}

impl HttpConnection {
    /// Connects with the standard socket timeouts applied.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] on connect/configure failures.
    pub fn connect(addr: &str) -> Result<HttpConnection> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| Error::InvalidParameter(format!("cannot connect to {addr}: {e}")))?;
        stream
            .set_read_timeout(Some(IO_TIMEOUT))
            .map_err(|e| io_err("set_read_timeout", e))?;
        stream
            .set_write_timeout(Some(IO_TIMEOUT))
            .map_err(|e| io_err("set_write_timeout", e))?;
        Ok(HttpConnection {
            reader: BufReader::new(stream),
            addr: addr.to_string(),
            server_closed: false,
            retry_after: None,
        })
    }

    /// True once the server has signalled (or forced) a close; the next
    /// exchange needs a fresh connection.
    pub fn server_closed(&self) -> bool {
        self.server_closed
    }

    /// The `Retry-After` seconds the **most recent** response carried
    /// (`None` when it had no such header) — the server's backpressure
    /// hint on 503s, consumed by the client's submit backoff.
    pub fn retry_after(&self) -> Option<u64> {
        self.retry_after
    }

    /// One keep-alive exchange: sends the request, returns
    /// `(status, parsed JSON body)`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] on socket failures, a malformed
    /// response, or when the connection was already closed by the server.
    pub fn roundtrip(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Value>,
    ) -> Result<(u16, Value)> {
        self.exchange(method, path, body, false)
    }

    fn exchange(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Value>,
        close: bool,
    ) -> Result<(u16, Value)> {
        if self.server_closed {
            return Err(Error::InvalidParameter(
                "connection already closed by the server".into(),
            ));
        }
        let payload = body.map(Value::to_string).unwrap_or_default();
        let connection = if close { "close" } else { "keep-alive" };
        // Host is mandatory in HTTP/1.1 — intermediaries (nginx, haproxy)
        // reject requests without it.
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\n\
             content-length: {}\r\nconnection: {connection}\r\n\r\n",
            self.addr,
            payload.len()
        );
        let mut message = head.into_bytes();
        message.extend_from_slice(payload.as_bytes());
        let outcome = self.exchange_inner(&message);
        if outcome.is_err() {
            self.server_closed = true;
        }
        outcome
    }

    fn exchange_inner(&mut self, message: &[u8]) -> Result<(u16, Value)> {
        self.retry_after = None; // per-response; reset before each exchange
        self.reader
            .get_mut()
            .write_all(message)
            .map_err(|e| io_err("write request", e))?;

        let mut status_line = String::new();
        self.reader
            .read_line(&mut status_line)
            .map_err(|e| io_err("read status line", e))?;
        if status_line.is_empty() {
            return Err(Error::InvalidParameter(
                "connection closed before a response arrived".into(),
            ));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                Error::InvalidParameter(format!(
                    "malformed status line `{}`",
                    status_line.trim_end()
                ))
            })?;

        let mut content_length: Option<usize> = None;
        loop {
            let mut line = String::new();
            self.reader
                .read_line(&mut line)
                .map_err(|e| io_err("read header", e))?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim();
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = Some(value.parse().map_err(|_| {
                        Error::InvalidParameter(format!("bad response Content-Length `{value}`"))
                    })?);
                } else if name.eq_ignore_ascii_case("connection")
                    && value.eq_ignore_ascii_case("close")
                {
                    self.server_closed = true;
                } else if name.eq_ignore_ascii_case("retry-after") {
                    self.retry_after = value.parse().ok();
                }
            }
        }

        let body_bytes = match content_length {
            Some(n) => {
                let mut buf = vec![0u8; n];
                self.reader
                    .read_exact(&mut buf)
                    .map_err(|e| io_err("read response body", e))?;
                buf
            }
            // No Content-Length: only legal on a closing response; the
            // body runs to EOF.
            None => {
                self.server_closed = true;
                let mut buf = Vec::new();
                self.reader
                    .read_to_end(&mut buf)
                    .map_err(|e| io_err("read response body", e))?;
                buf
            }
        };
        let text = String::from_utf8(body_bytes)
            .map_err(|_| Error::InvalidParameter("response body is not UTF-8".into()))?;
        let value = Value::parse(&text)
            .map_err(|e| Error::InvalidParameter(format!("response body is not JSON: {e}")))?;
        Ok((status, value))
    }
}

/// One-shot HTTP exchange: connects to `addr`, sends `body` (when given)
/// as JSON with `Connection: close`, and returns `(status, parsed
/// response body)`. For repeated calls against the same server, hold an
/// [`HttpConnection`] (or a `client::Client`) instead.
///
/// # Errors
///
/// [`Error::InvalidParameter`] on connect/socket failures, a malformed
/// status line, or a non-JSON response body.
pub fn request(addr: &str, method: &str, path: &str, body: Option<&Value>) -> Result<(u16, Value)> {
    HttpConnection::connect(addr)?.exchange(method, path, body, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Round-trips one exchange through a real socket pair: the client
    /// helper against the server-side parser and writer.
    #[test]
    fn request_response_roundtrip_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let req = read_request(&mut reader).unwrap().unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/jobs");
            assert!(req.close, "one-shot client announces close");
            let body = Value::parse(std::str::from_utf8(&req.body).unwrap()).unwrap();
            assert_eq!(body.get("k").and_then(Value::as_u64), Some(3));
            write_response(&mut stream, 202, &Value::object().with("job", 1u64), true).unwrap();
        });
        let job = Value::object().with("k", 3u64);
        let (status, response) = request(&addr, "POST", "/jobs", Some(&job)).unwrap();
        assert_eq!(status, 202);
        assert_eq!(response.get("job").and_then(Value::as_u64), Some(1));
        server.join().unwrap();
    }

    /// One [`HttpConnection`] carries several exchanges over a single
    /// accepted socket — the keep-alive loop in both directions.
    #[test]
    fn keep_alive_reuses_one_socket_for_many_exchanges() {
        const EXCHANGES: usize = 4;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // Exactly ONE accept: every request must arrive on it.
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            for i in 0..EXCHANGES {
                let req = read_request(&mut reader).unwrap().expect("request arrives");
                assert_eq!(req.path, format!("/jobs/{i}"));
                assert!(!req.close, "keep-alive client does not ask to close");
                write_response(
                    &mut stream,
                    200,
                    &Value::object().with("job", i as u64),
                    false,
                )
                .unwrap();
            }
            // The client hangs up after the last exchange.
            assert!(read_request(&mut reader).unwrap().is_none());
        });
        let mut conn = HttpConnection::connect(&addr).unwrap();
        for i in 0..EXCHANGES {
            let (status, body) = conn.roundtrip("GET", &format!("/jobs/{i}"), None).unwrap();
            assert_eq!(status, 200);
            assert_eq!(body.get("job").and_then(Value::as_u64), Some(i as u64));
            assert!(!conn.server_closed());
        }
        drop(conn);
        server.join().unwrap();
    }

    /// A `Connection: close` response flips `server_closed`, and the
    /// next round trip refuses instead of writing into a dead socket.
    #[test]
    fn server_close_is_honored_by_the_client() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let _ = read_request(&mut reader).unwrap().unwrap();
            write_response(&mut stream, 200, &Value::object(), true).unwrap();
        });
        let mut conn = HttpConnection::connect(&addr).unwrap();
        let (status, _) = conn.roundtrip("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert!(conn.server_closed());
        assert!(conn.roundtrip("GET", "/healthz", None).is_err());
        server.join().unwrap();
    }

    /// `Retry-After` is carried per-response: present after a 503 that
    /// sent it, cleared again by the next response without it.
    #[test]
    fn retry_after_header_roundtrips_and_resets() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let _ = read_request(&mut reader).unwrap().unwrap();
            write_response_with(&mut stream, 503, &Value::object(), false, Some(7)).unwrap();
            let _ = read_request(&mut reader).unwrap().unwrap();
            write_response(&mut stream, 200, &Value::object(), true).unwrap();
        });
        let mut conn = HttpConnection::connect(&addr).unwrap();
        let (status, _) = conn.roundtrip("POST", "/jobs", None).unwrap();
        assert_eq!(status, 503);
        assert_eq!(conn.retry_after(), Some(7));
        let (status, _) = conn.roundtrip("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(conn.retry_after(), None, "reset by a header-free response");
        server.join().unwrap();
    }

    #[test]
    fn query_strings_parse_and_strip() {
        let (path, query) = parse_target("/jobs?status=done&limit=5");
        assert_eq!(path, "/jobs");
        assert_eq!(
            query,
            vec![
                ("status".to_string(), "done".to_string()),
                ("limit".to_string(), "5".to_string())
            ]
        );
        let (path, query) = parse_target("/jobs");
        assert_eq!(path, "/jobs");
        assert!(query.is_empty());
        let (_, query) = parse_target("/jobs?flag");
        assert_eq!(query, vec![("flag".to_string(), String::new())]);
    }

    #[test]
    fn rejects_oversized_and_malformed_requests() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..3 {
                let (stream, _) = listener.accept().unwrap();
                stream.set_read_timeout(Some(IO_TIMEOUT)).unwrap();
                let mut reader = BufReader::new(stream);
                assert!(read_request(&mut reader).is_err());
            }
        });
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /jobs HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n")
            .unwrap();
        drop(s);
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"\r\n\r\n").unwrap();
        drop(s);
        // A header stream that never terminates is cut off at
        // MAX_HEAD_BYTES, not buffered until the socket timeout.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /jobs HTTP/1.1\r\nx-junk: ").unwrap();
        let chunk = vec![b'a'; 8 * 1024];
        for _ in 0..((MAX_HEAD_BYTES / 8192) + 2) {
            if s.write_all(&chunk).is_err() {
                break; // server already rejected and closed
            }
        }
        drop(s);
        server.join().unwrap();
    }

    /// A clean disconnect between requests is `Ok(None)`, not an error.
    #[test]
    fn eof_between_requests_is_a_clean_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let s = TcpStream::connect(addr).unwrap();
            drop(s); // connect, say nothing, hang up
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream);
        assert!(read_request(&mut reader).unwrap().is_none());
        client.join().unwrap();
    }
}
