//! The minimal slice of HTTP/1.1 the batch service needs.
//!
//! The build environment has no async runtime and no HTTP crates, so this
//! module implements exactly what the job API requires over
//! `std::net::TcpStream`: request-line + headers + `Content-Length` body
//! parsing on the server side, and a one-shot `Connection: close` client.
//! Chunked encoding, keep-alive, TLS, and query strings are deliberately
//! out of scope — payloads are small JSON documents on a trusted network.

use sspc_common::json::Value;
use sspc_common::{Error, Result};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request body; protects the server from unbounded
/// buffering on a misbehaving client.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Largest accepted request line + headers combined; with
/// [`MAX_BODY_BYTES`] this bounds the total buffering any one connection
/// can force (a peer streaming an endless header line hits this cap, not
/// the allocator).
pub const MAX_HEAD_BYTES: u64 = 64 * 1024;

/// Per-connection socket timeout: a stalled peer cannot pin a handler
/// thread forever.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed HTTP request: method, path, and the (possibly empty) body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased by the client already).
    pub method: String,
    /// The request path, e.g. `/jobs/3`.
    pub path: String,
    /// Raw body bytes (`Content-Length` framing only).
    pub body: Vec<u8>,
}

fn io_err(context: &str, e: std::io::Error) -> Error {
    Error::InvalidParameter(format!("{context}: {e}"))
}

/// Reads one request from the stream.
///
/// # Errors
///
/// [`Error::InvalidParameter`] on malformed request lines or headers, a
/// body larger than [`MAX_BODY_BYTES`], or socket failures/timeouts.
pub fn read_request(stream: &mut TcpStream) -> Result<Request> {
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .map_err(|e| io_err("set_read_timeout", e))?;
    stream
        .set_write_timeout(Some(IO_TIMEOUT))
        .map_err(|e| io_err("set_write_timeout", e))?;
    let mut reader = BufReader::new(stream);
    let mut head_budget = MAX_HEAD_BYTES;

    let mut request_line = String::new();
    read_head_line(&mut reader, &mut head_budget, &mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(Error::InvalidParameter(format!(
            "malformed request line `{}`",
            request_line.trim_end()
        )));
    };
    let request = (method.to_string(), path.to_string());

    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        read_head_line(&mut reader, &mut head_budget, &mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    Error::InvalidParameter(format!("bad Content-Length `{}`", value.trim()))
                })?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(Error::InvalidParameter(format!(
            "request body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }

    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| io_err("read body", e))?;
    Ok(Request {
        method: request.0,
        path: request.1,
        body,
    })
}

/// Reads one head line (request line or header) against the shared
/// [`MAX_HEAD_BYTES`] budget, so a peer cannot force unbounded buffering
/// by never sending a newline.
fn read_head_line<R: BufRead>(reader: &mut R, budget: &mut u64, line: &mut String) -> Result<()> {
    let mut limited = reader.by_ref().take(*budget);
    limited
        .read_line(line)
        .map_err(|e| io_err("read head line", e))?;
    *budget -= line.len() as u64;
    if *budget == 0 && !line.ends_with('\n') {
        return Err(Error::InvalidParameter(format!(
            "request head exceeds the {MAX_HEAD_BYTES}-byte limit"
        )));
    }
    Ok(())
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a JSON response with the given status and closes the exchange.
///
/// # Errors
///
/// [`Error::InvalidParameter`] wrapping socket failures.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &Value) -> Result<()> {
    let payload = body.to_string();
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        status_text(status),
        payload.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(payload.as_bytes()))
        .and_then(|()| stream.flush())
        .map_err(|e| io_err("write response", e))
}

/// One-shot HTTP client call: connects to `addr`, sends `body` (when
/// given) as JSON, and returns `(status, parsed response body)`.
///
/// # Errors
///
/// [`Error::InvalidParameter`] on connect/socket failures, a malformed
/// status line, or a non-JSON response body.
pub fn request(addr: &str, method: &str, path: &str, body: Option<&Value>) -> Result<(u16, Value)> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| Error::InvalidParameter(format!("cannot connect to {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(IO_TIMEOUT))
        .map_err(|e| io_err("set_read_timeout", e))?;
    stream
        .set_write_timeout(Some(IO_TIMEOUT))
        .map_err(|e| io_err("set_write_timeout", e))?;

    let payload = body.map(Value::to_string).unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        payload.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(payload.as_bytes()))
        .map_err(|e| io_err("write request", e))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| io_err("read status line", e))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            Error::InvalidParameter(format!(
                "malformed status line `{}`",
                status_line.trim_end()
            ))
        })?;
    // Skip headers; the connection closes after the body, so read to EOF.
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| io_err("read header", e))?;
        if line.trim_end().is_empty() {
            break;
        }
    }
    let mut body_bytes = Vec::new();
    reader
        .read_to_end(&mut body_bytes)
        .map_err(|e| io_err("read response body", e))?;
    let text = String::from_utf8(body_bytes)
        .map_err(|_| Error::InvalidParameter("response body is not UTF-8".into()))?;
    let value = Value::parse(&text)
        .map_err(|e| Error::InvalidParameter(format!("response body is not JSON: {e}")))?;
    Ok((status, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Round-trips one exchange through a real socket pair: the client
    /// helper against the server-side parser and writer.
    #[test]
    fn request_response_roundtrip_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/jobs");
            let body = Value::parse(std::str::from_utf8(&req.body).unwrap()).unwrap();
            assert_eq!(body.get("k").and_then(Value::as_u64), Some(3));
            write_response(&mut stream, 202, &Value::object().with("job", 1u64)).unwrap();
        });
        let job = Value::object().with("k", 3u64);
        let (status, response) = request(&addr, "POST", "/jobs", Some(&job)).unwrap();
        assert_eq!(status, 202);
        assert_eq!(response.get("job").and_then(Value::as_u64), Some(1));
        server.join().unwrap();
    }

    #[test]
    fn bodyless_get_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "GET");
            assert!(req.body.is_empty());
            write_response(&mut stream, 404, &Value::object().with("error", "no")).unwrap();
        });
        let (status, response) = request(&addr, "GET", "/jobs/99", None).unwrap();
        assert_eq!(status, 404);
        assert_eq!(response.get("error").and_then(Value::as_str), Some("no"));
        server.join().unwrap();
    }

    #[test]
    fn rejects_oversized_and_malformed_requests() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..3 {
                let (mut stream, _) = listener.accept().unwrap();
                assert!(read_request(&mut stream).is_err());
            }
        });
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /jobs HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n")
            .unwrap();
        drop(s);
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"\r\n\r\n").unwrap();
        drop(s);
        // A header stream that never terminates is cut off at
        // MAX_HEAD_BYTES, not buffered until the socket timeout.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /jobs HTTP/1.1\r\nx-junk: ").unwrap();
        let chunk = vec![b'a'; 8 * 1024];
        for _ in 0..((MAX_HEAD_BYTES / 8192) + 2) {
            if s.write_all(&chunk).is_err() {
                break; // server already rejected and closed
            }
        }
        drop(s);
        server.join().unwrap();
    }
}
