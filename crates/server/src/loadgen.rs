//! An open-loop load generator for the batch service.
//!
//! The generator replays a deterministic trace of mixed-size jobs against
//! a live server: **open-loop**, i.e. submissions happen at their
//! scheduled times regardless of how the server answered the previous one
//! — a slow or shedding server does not throttle the offered load, which
//! is exactly how real overload arrives. Two arrival [`Pattern`]s are
//! built in:
//!
//! * [`Pattern::Poisson`] — exponential inter-arrival times at `rate`
//!   jobs/second (steady-state load);
//! * [`Pattern::Burst`] — `size` back-to-back submissions, then silence
//!   for `every` (the flash-crowd shape that exercises queue-full and
//!   backlog shedding).
//!
//! Every answer is tallied into an **error taxonomy** keyed by the
//! server's `503 reason` (`queue_full`, `backlog_exceeded`,
//! `connections_exhausted`, `shutting_down`, `store_degraded` — and,
//! when the target is the router tier, its `no_shards_available`,
//! `shard_unavailable`, and membership-cutover `rebalancing` sheds,
//! which are filed under their own reason
//! like any other, **including on the reconnect path** after a dropped
//! connection) plus `transport` (socket-level failures — a crashed
//! server mid-soak) and `invalid` (4xx). After the trace, an optional
//! **wait phase** polls
//! every acknowledged job to a terminal state — a `202` is the server's
//! promise, and the chaos soak asserts the promise is kept across a
//! crash/restart.
//!
//! The whole run is deterministic in [`LoadgenConfig::seed`]: the same
//! seed replays the same job sizes and the same schedule (modulo wall
//! clock), so a regression seen once can be replayed.

use crate::backoff::Backoff;
use crate::http::HttpConnection;
use sspc_common::hist::Histogram;
use sspc_common::json::Value;
use sspc_common::{Error, Result};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// How submissions are spaced in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Exponential inter-arrival times at `rate` jobs/second.
    Poisson {
        /// Mean offered load in jobs per second (> 0).
        rate: f64,
    },
    /// `size` submissions back-to-back, then sleep `every`, repeat.
    Burst {
        /// Jobs per burst (≥ 1).
        size: usize,
        /// Gap between burst starts.
        every: Duration,
    },
}

/// Load-generator knobs. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Total submissions to attempt.
    pub jobs: usize,
    /// Arrival pattern.
    pub pattern: Pattern,
    /// Seed for the job-size mix and the Poisson schedule.
    pub seed: u64,
    /// Wait-phase budget: after the trace, poll every acknowledged job to
    /// a terminal state for at most this long. [`Duration::ZERO`] skips
    /// the wait phase entirely (pure submission-side measurement).
    pub wait_timeout: Duration,
    /// Base poll interval for the wait phase.
    pub poll_every: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7878".into(),
            jobs: 50,
            pattern: Pattern::Poisson { rate: 20.0 },
            seed: 1,
            wait_timeout: Duration::from_secs(60),
            poll_every: Duration::from_millis(25),
        }
    }
}

/// What one [`run`] observed, ready for assertions or a bench record.
#[derive(Debug)]
pub struct LoadgenReport {
    /// Submissions attempted (== `config.jobs`).
    pub attempted: usize,
    /// Ids the server acknowledged with `202` — its completion promises.
    pub acked: Vec<u64>,
    /// Refusals and failures keyed by taxonomy:
    /// the server's `503 reason` verbatim, `invalid` (4xx), or
    /// `transport` (no parseable answer at all).
    pub rejected: BTreeMap<String, u64>,
    /// Acked jobs observed `done` during the wait phase.
    pub completed: usize,
    /// Acked jobs observed `failed` during the wait phase.
    pub failed: usize,
    /// Acked jobs still non-terminal when the wait budget ran out.
    pub unfinished: Vec<u64>,
    /// Wall-clock seconds for the submission trace (excludes the wait
    /// phase).
    pub trace_seconds: f64,
    /// Acknowledged submissions per trace second.
    pub acked_per_second: f64,
    /// Submission round-trip latency (microseconds recorded).
    pub submit_latency: Histogram,
    /// Ack-to-terminal latency for jobs that finished (microseconds).
    pub e2e_latency: Histogram,
}

impl LoadgenReport {
    /// Total refusals across the taxonomy.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.values().sum()
    }

    /// The report as a JSON record (the shape appended to
    /// `BENCH_server.json` by the loadgen bench and the chaos soak).
    pub fn to_value(&self) -> Value {
        let mut rejected = Value::object();
        for (reason, count) in &self.rejected {
            rejected = rejected.with(reason.clone(), *count);
        }
        Value::object()
            .with("attempted", self.attempted as u64)
            .with("acked", self.acked.len() as u64)
            .with("rejected", rejected)
            .with("completed", self.completed as u64)
            .with("failed", self.failed as u64)
            .with("unfinished", self.unfinished.len() as u64)
            .with("trace_seconds", self.trace_seconds)
            .with("acked_per_second", self.acked_per_second)
            .with("submit_latency", latency_value(&self.submit_latency))
            .with("e2e_latency", latency_value(&self.e2e_latency))
    }
}

fn latency_value(hist: &Histogram) -> Value {
    let ms = |q: f64| hist.quantile(q).map_or(0.0, |us| us as f64 / 1_000.0);
    Value::object()
        .with("count", hist.count())
        .with("p50_ms", ms(0.50))
        .with("p95_ms", ms(0.95))
        .with("p99_ms", ms(0.99))
}

/// splitmix64 — the workspace's deterministic mixing step (same constants
/// as [`crate::backoff::Backoff`]'s jitter).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The mixed-size job body for trace position `index`: ~70% small, ~25%
/// medium, ~5% large — all cheap enough that a soak finishes in seconds,
/// different enough that cost-aware admission sees a spread. Validated
/// against [`crate::job::JobSpec::from_json`] by a test below.
fn job_body(rng: &mut Rng, index: usize) -> Value {
    let roll = rng.unit();
    let (n, d, dims, k, runs) = if roll < 0.70 {
        (30u64, 6u64, 3u64, 2u64, 1u64)
    } else if roll < 0.95 {
        (80u64, 10u64, 4u64, 3u64, 1u64)
    } else {
        (160u64, 12u64, 5u64, 3u64, 2u64)
    };
    Value::object()
        .with("k", k)
        .with(
            "dataset",
            Value::object().with(
                "generate",
                Value::object()
                    .with("n", n)
                    .with("d", d)
                    .with("dims", dims)
                    .with("seed", index as u64 + 1),
            ),
        )
        .with("algorithms", "harp")
        .with("runs", runs)
}

/// Files each answer into the taxonomy: the `503 reason` verbatim when
/// present, else a status-class bucket.
fn taxonomy_key(status: u16, body: &Value) -> String {
    if let Some(reason) = body.get("reason").and_then(Value::as_str) {
        return reason.to_string();
    }
    if (400..500).contains(&status) {
        "invalid".to_string()
    } else {
        format!("http_{status}")
    }
}

/// Runs the configured trace against a live server and returns what
/// happened. Transport errors (including a server that crashes mid-run)
/// are tallied, never fatal: the generator reconnects and keeps offering
/// load, which is what lets the chaos soak measure *recovery*.
///
/// # Errors
///
/// Only configuration errors ([`Error::InvalidParameter`] for a zero
/// rate/burst); everything observed on the wire is data, not an error.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport> {
    match config.pattern {
        Pattern::Poisson { rate } if !(rate > 0.0) => {
            return Err(Error::InvalidParameter(format!(
                "poisson rate must be positive, got {rate}"
            )));
        }
        Pattern::Burst { size: 0, .. } => {
            return Err(Error::InvalidParameter("burst size must be >= 1".into()));
        }
        _ => {}
    }

    let mut rng = Rng(config.seed);
    let mut schedule_rng = Rng(config.seed ^ 0xA5A5_A5A5_A5A5_A5A5);
    let mut conn: Option<HttpConnection> = None;
    let mut report = LoadgenReport {
        attempted: config.jobs,
        acked: Vec::new(),
        rejected: BTreeMap::new(),
        completed: 0,
        failed: 0,
        unfinished: Vec::new(),
        trace_seconds: 0.0,
        acked_per_second: 0.0,
        submit_latency: Histogram::new(),
        e2e_latency: Histogram::new(),
    };
    let mut acked_at: BTreeMap<u64, Instant> = BTreeMap::new();

    let started = Instant::now();
    let mut next_due = started;
    for index in 0..config.jobs {
        // Open loop: sleep until the scheduled instant (not at all when
        // behind schedule), then submit exactly once — no retries; a
        // refusal is a data point, not a failure to paper over.
        let now = Instant::now();
        if next_due > now {
            std::thread::sleep(next_due - now);
        }
        next_due += match config.pattern {
            Pattern::Poisson { rate } => {
                // Exponential inter-arrival: −ln(U)/λ, U ∈ (0, 1].
                let u = 1.0 - schedule_rng.unit();
                Duration::from_secs_f64((-u.ln() / rate).min(60.0))
            }
            Pattern::Burst { size, every } => {
                if (index + 1) % size == 0 {
                    every
                } else {
                    Duration::ZERO
                }
            }
        };

        let body = job_body(&mut rng, index);
        let sent = Instant::now();
        let answer = match conn.as_mut().filter(|c| !c.server_closed()) {
            Some(held) => held.roundtrip("POST", "/jobs", Some(&body)),
            None => HttpConnection::connect(&config.addr).and_then(|mut fresh| {
                let answer = fresh.roundtrip("POST", "/jobs", Some(&body));
                conn = Some(fresh);
                answer
            }),
        };
        report.submit_latency.record_duration(sent.elapsed());
        match answer {
            Ok((202, body)) => {
                if let Some(id) = body.get("job").and_then(Value::as_u64) {
                    report.acked.push(id);
                    acked_at.insert(id, Instant::now());
                } else {
                    *report.rejected.entry("transport".into()).or_insert(0) += 1;
                }
            }
            Ok((status, body)) => {
                *report
                    .rejected
                    .entry(taxonomy_key(status, &body))
                    .or_insert(0) += 1;
            }
            Err(_) => {
                // Socket-level failure: drop the connection so the next
                // submission reconnects (the server may have restarted).
                conn = None;
                *report.rejected.entry("transport".into()).or_insert(0) += 1;
            }
        }
    }
    report.trace_seconds = started.elapsed().as_secs_f64();
    report.acked_per_second = if report.trace_seconds > 0.0 {
        report.acked.len() as f64 / report.trace_seconds
    } else {
        0.0
    };

    // Wait phase: every 202 is a promise; poll each acked id to a
    // terminal state within the budget, shrugging off transport errors
    // (a restarting server answers again shortly).
    if config.wait_timeout > Duration::ZERO && !acked_at.is_empty() {
        let deadline = Instant::now() + config.wait_timeout;
        let mut pending: Vec<u64> = report.acked.clone();
        let mut backoff = Backoff::new(
            config.poll_every,
            config.poll_every.saturating_mul(8).max(config.poll_every),
            config.seed,
        );
        while !pending.is_empty() && Instant::now() < deadline {
            pending.retain(|&id| {
                let path = format!("/jobs/{id}");
                let answer = match conn.as_mut().filter(|c| !c.server_closed()) {
                    Some(held) => held.roundtrip("GET", &path, None),
                    None => HttpConnection::connect(&config.addr).and_then(|mut fresh| {
                        let answer = fresh.roundtrip("GET", &path, None);
                        conn = Some(fresh);
                        answer
                    }),
                };
                let Ok((200, doc)) = answer else {
                    if answer.is_err() {
                        conn = None;
                    }
                    return true; // keep polling through errors/503s
                };
                match doc.get("status").and_then(Value::as_str) {
                    Some("done") => {
                        report.completed += 1;
                        if let Some(at) = acked_at.get(&id) {
                            report.e2e_latency.record_duration(at.elapsed());
                        }
                        false
                    }
                    Some("failed") => {
                        report.failed += 1;
                        if let Some(at) = acked_at.get(&id) {
                            report.e2e_latency.record_duration(at.elapsed());
                        }
                        false
                    }
                    _ => true,
                }
            });
            if !pending.is_empty() {
                std::thread::sleep(backoff.next_delay());
            }
        }
        report.unfinished = pending;
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use crate::{Server, ServerConfig};

    /// Every job body the mix can emit must parse as a valid `JobSpec` —
    /// a loadgen that offers invalid jobs measures the 400 path, not
    /// overload.
    #[test]
    fn generated_job_bodies_are_valid_specs() {
        let mut rng = Rng(42);
        for index in 0..200 {
            let body = job_body(&mut rng, index);
            JobSpec::from_json(&body).expect("mix emits only valid jobs");
        }
    }

    /// The job mix and schedule are deterministic in the seed.
    #[test]
    fn job_mix_is_deterministic_in_the_seed() {
        let bodies = |seed: u64| {
            let mut rng = Rng(seed);
            (0..50)
                .map(|i| job_body(&mut rng, i).to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(bodies(7), bodies(7));
        assert_ne!(bodies(7), bodies(8), "different seeds, different mixes");
    }

    /// A burst trace against a tiny live server: every submission gets a
    /// definite outcome (ack or taxonomy entry, no silent drops), and the
    /// wait phase drives every promise to a terminal state.
    #[test]
    fn burst_trace_accounts_for_every_submission() {
        let server = Server::start(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 4,
            ..Default::default()
        })
        .unwrap();
        let report = run(&LoadgenConfig {
            addr: server.addr().to_string(),
            jobs: 12,
            pattern: Pattern::Burst {
                size: 6,
                every: Duration::from_millis(50),
            },
            seed: 3,
            wait_timeout: Duration::from_secs(60),
            poll_every: Duration::from_millis(10),
        })
        .unwrap();

        assert_eq!(
            report.acked.len() as u64 + report.rejected_total(),
            12,
            "every submission is accounted for: {:?}",
            report.rejected
        );
        assert!(
            !report.acked.is_empty(),
            "a burst of 6 into capacity 4+2 workers acks some"
        );
        assert_eq!(
            report.unfinished,
            Vec::<u64>::new(),
            "every ack reached terminal"
        );
        assert_eq!(report.completed + report.failed, report.acked.len());
        assert_eq!(report.e2e_latency.count(), report.acked.len() as u64);
        // Refusals, if any, carry the server's taxonomy.
        for reason in report.rejected.keys() {
            assert!(
                [
                    "queue_full",
                    "backlog_exceeded",
                    "no_shards_available",
                    "transport"
                ]
                .contains(&reason.as_str()),
                "unexpected refusal class {reason}"
            );
        }
        let record = report.to_value();
        assert!(record.get("submit_latency").is_some());
        server.shutdown();
    }

    /// A router-level `no_shards_available` 503 is filed under its own
    /// reason — not `http_503`, not `transport` — and the reconnect path
    /// (the generator's held connection was closed under it) files it
    /// identically.
    #[test]
    fn router_sheds_land_in_their_own_taxonomy_bucket() {
        use crate::http::{read_request, write_response_with};
        use std::io::BufReader;
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Two connections, one shed each: the first response carries
        // `Connection: close`, so the second submission must reconnect.
        let router = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                if let Ok(Some(_)) = read_request(&mut reader) {
                    let body = Value::object()
                        .with("error", "no live shard available (submission)")
                        .with("reason", "no_shards_available");
                    write_response_with(&mut stream, 503, &body, true, Some(1)).unwrap();
                }
            }
        });

        let report = run(&LoadgenConfig {
            addr,
            jobs: 2,
            pattern: Pattern::Burst {
                size: 2,
                every: Duration::from_millis(1),
            },
            seed: 5,
            wait_timeout: Duration::ZERO,
            ..Default::default()
        })
        .unwrap();
        router.join().unwrap();
        assert_eq!(
            report.rejected.get("no_shards_available"),
            Some(&2),
            "both sheds (fresh + reconnect) share the router bucket: {:?}",
            report.rejected
        );
        assert!(!report.rejected.contains_key("http_503"));
        assert!(!report.rejected.contains_key("transport"));
    }

    /// A router mid-membership-cutover sheds with `503 rebalancing`;
    /// those land in their own taxonomy bucket so a rebalance leg's
    /// BENCH_server.json record shows exactly how many submissions the
    /// flip turned away.
    #[test]
    fn rebalancing_sheds_land_in_their_own_taxonomy_bucket() {
        use crate::http::{read_request, write_response_with};
        use std::io::BufReader;
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let router = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            for _ in 0..2 {
                let Ok(Some(_)) = read_request(&mut reader) else {
                    break;
                };
                let body = Value::object()
                    .with(
                        "error",
                        "router is rebalancing shard membership; retry shortly",
                    )
                    .with("reason", "rebalancing");
                write_response_with(&mut stream, 503, &body, false, Some(1)).unwrap();
            }
        });

        let report = run(&LoadgenConfig {
            addr,
            jobs: 2,
            pattern: Pattern::Burst {
                size: 2,
                every: Duration::from_millis(1),
            },
            seed: 11,
            wait_timeout: Duration::ZERO,
            ..Default::default()
        })
        .unwrap();
        router.join().unwrap();
        assert_eq!(
            report.rejected.get("rebalancing"),
            Some(&2),
            "rebalance sheds get their own bucket: {:?}",
            report.rejected
        );
        let record = report.to_value();
        assert_eq!(
            record
                .get("rejected")
                .and_then(|r| r.get("rebalancing"))
                .and_then(Value::as_u64),
            Some(2),
            "the bucket survives into the bench record: {record}"
        );
    }

    /// Configuration errors are errors; wire trouble is not.
    #[test]
    fn invalid_patterns_are_rejected() {
        let bad_rate = LoadgenConfig {
            pattern: Pattern::Poisson { rate: 0.0 },
            ..Default::default()
        };
        assert!(run(&bad_rate).is_err());
        let bad_burst = LoadgenConfig {
            pattern: Pattern::Burst {
                size: 0,
                every: Duration::from_millis(1),
            },
            ..Default::default()
        };
        assert!(run(&bad_burst).is_err());

        // Nobody listening: not an error — a report full of `transport`.
        let nobody = LoadgenConfig {
            addr: "127.0.0.1:1".into(),
            jobs: 3,
            pattern: Pattern::Burst {
                size: 3,
                every: Duration::from_millis(1),
            },
            wait_timeout: Duration::ZERO,
            ..Default::default()
        };
        let report = run(&nobody).unwrap();
        assert_eq!(report.rejected.get("transport"), Some(&3));
    }
}
