//! Journal shipping: the spool a shard streams its admissions and
//! terminal states into, and the replay the router runs when that shard
//! dies.
//!
//! Each shard appends one JSON line per event to
//! `<spool_dir>/shard-<id>.jsonl`:
//!
//! ```text
//! {"event":"submit","job":3,"spec":{...the raw job body...}}
//! {"event":"evict","job":3}                      // admission was revoked (queue full)
//! {"event":"done","job":3,"seconds":0.2,"result":{...}}
//! {"event":"failed","job":4,"error":"..."}
//! ```
//!
//! The `submit` line is written **before** the job id enters the run
//! queue (and therefore strictly before the `202` ack leaves the shard),
//! so a SIGKILLed shard can never owe an acked job the spool does not
//! know about. `done` lines carry the full result, so jobs that finished
//! on a dead shard stay servable from the spool alone. A plain
//! `write(2)` is durability enough here: spool replay guards against
//! *process* death (the write syscall completing makes the line visible
//! to the router regardless of what happens to the shard afterwards);
//! *machine*-crash durability remains the fsynced shard journal's job.
//!
//! [`replay`] folds a spool file into the dead shard's outstanding debt:
//! jobs with a terminal line are served as-is, acked-but-unfinished jobs
//! are re-submitted to surviving shards. Torn or malformed lines (a
//! shard killed mid-write) are skipped — a torn `submit` line means the
//! ack never left, so nothing is owed.
//!
//! The same replay powers **membership handoffs** (`router::admin_join`
//! / `admin_leave`): a join streams each donor's pending records whose
//! ring owner moved to the newcomer, a graceful leave streams the
//! departing shard's whole spool onto the survivors, and a recovered
//! shard rejoins by replaying its own stale spool through the handoff
//! staging table. Spool records are the unit of streaming in every
//! case — handoff needs no second journal format.

use crate::job::JobSpec;
use crate::store::{JobRecord, JobStatus};
use sspc_common::json::Value;
use sspc_common::{Error, Result};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Where shard `shard`'s spool file lives under `dir`.
pub fn spool_path(dir: &Path, shard: u16) -> PathBuf {
    dir.join(format!("shard-{shard}.jsonl"))
}

/// Append-only writer for one shard's spool file. Shipping never fails
/// the request that triggered it — a spool write error is counted (and
/// surfaced through `/healthz`) instead, because refusing jobs over a
/// *failover aid* would turn a router-side problem into shard downtime.
pub struct SpoolWriter {
    file: Mutex<File>,
    failures: AtomicU64,
}

impl SpoolWriter {
    /// Creates `dir` if needed and opens (appending) this shard's spool.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when the directory or file cannot be
    /// created.
    pub fn open(dir: &Path, shard: u16) -> Result<SpoolWriter> {
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::InvalidParameter(format!("spool dir {}: {e}", dir.display())))?;
        let path = spool_path(dir, shard);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| Error::InvalidParameter(format!("spool {}: {e}", path.display())))?;
        Ok(SpoolWriter {
            file: Mutex::new(file),
            failures: AtomicU64::new(0),
        })
    }

    /// Appends one event line; errors are counted, never propagated.
    pub fn ship(&self, event: &Value) {
        let Ok(mut line) = event.to_string_checked() else {
            self.failures.fetch_add(1, Ordering::Relaxed);
            return;
        };
        line.push('\n');
        let mut file = self.file.lock().expect("spool poisoned");
        if file.write_all(line.as_bytes()).is_err() {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// How many ship attempts failed (serialization or I/O).
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }
}

/// The `submit` event for job `id` with its raw (already-validated) body.
pub fn submit_event(id: u64, raw: &Value) -> Value {
    Value::object()
        .with("event", "submit")
        .with("job", id)
        .with("spec", raw.clone())
}

/// The `evict` event: job `id`'s admission was revoked (queue refused
/// it after the store insert), so its `submit` line is void.
pub fn evict_event(id: u64) -> Value {
    Value::object().with("event", "evict").with("job", id)
}

/// The `done` event carrying the full result, so a finished job on a
/// dead shard stays servable from the spool.
pub fn done_event(id: u64, result: &Value, seconds: f64) -> Value {
    Value::object()
        .with("event", "done")
        .with("job", id)
        .with("seconds", seconds)
        .with("result", result.clone())
}

/// The `failed` event with the job's terminal error.
pub fn failed_event(id: u64, error: &str) -> Value {
    Value::object()
        .with("event", "failed")
        .with("job", id)
        .with("error", error)
}

/// What a dead shard owes, folded from its spool file.
#[derive(Debug, Default)]
pub struct SpoolReplay {
    /// Acked-but-unfinished jobs, in admission order: `(old id, raw
    /// spec)` — these must be re-submitted to surviving shards.
    pub pending: Vec<(u64, Value)>,
    /// Jobs that reached a terminal state on the dead shard: `(old id,
    /// full status document)` — these are served from the router as-is.
    pub terminal: Vec<(u64, Value)>,
}

/// Folds `path` into the dead shard's debt. A missing file is an empty
/// debt (the shard never shipped anything); malformed or torn lines are
/// skipped.
pub fn replay(path: &Path) -> SpoolReplay {
    let Ok(file) = File::open(path) else {
        return SpoolReplay::default();
    };
    let mut specs: BTreeMap<u64, Value> = BTreeMap::new();
    let mut finished: BTreeMap<u64, Value> = BTreeMap::new();
    for line in BufReader::new(file).lines() {
        let Ok(line) = line else { break };
        let Ok(event) = Value::parse(&line) else {
            continue;
        };
        let Some(id) = event.get("job").and_then(Value::as_u64) else {
            continue;
        };
        match event.get("event").and_then(Value::as_str) {
            Some("submit") => {
                if let Some(spec) = event.get("spec") {
                    specs.insert(id, spec.clone());
                }
            }
            Some("evict") => {
                specs.remove(&id);
            }
            Some("done") => {
                let (Some(result), Some(seconds)) = (
                    event.get("result"),
                    event.get("seconds").and_then(Value::as_f64),
                ) else {
                    continue;
                };
                if let Some(doc) = terminal_doc(
                    id,
                    specs.get(&id),
                    JobStatus::Done {
                        result: result.clone(),
                        seconds,
                    },
                ) {
                    finished.insert(id, doc);
                }
            }
            Some("failed") => {
                let Some(error) = event.get("error").and_then(Value::as_str) else {
                    continue;
                };
                if let Some(doc) = terminal_doc(
                    id,
                    specs.get(&id),
                    JobStatus::Failed {
                        error: error.into(),
                    },
                ) {
                    finished.insert(id, doc);
                }
            }
            _ => {}
        }
    }
    for id in finished.keys() {
        specs.remove(id);
    }
    SpoolReplay {
        pending: specs.into_iter().collect(),
        terminal: finished.into_iter().collect(),
    }
}

/// Rebuilds the status document a shard would have served for a
/// terminal job, from its spooled spec + terminal event. `None` when the
/// spec is missing or no longer parses (nothing useful can be served).
fn terminal_doc(id: u64, raw: Option<&Value>, status: JobStatus) -> Option<Value> {
    let raw = raw?;
    let spec = JobSpec::from_json(raw).ok()?;
    let record = JobRecord {
        spec,
        raw: raw.clone(),
        status,
        submitted_at: 0.0,
        finished_at: None,
    };
    Some(record.to_value(id, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sspc-spool-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn job_body(seed: u64) -> Value {
        Value::parse(&format!(
            r#"{{"k":2,"dataset":{{"generate":{{"n":32,"d":6,"dims":3,"seed":{}}}}},"algorithms":"harp","runs":1,"seed":7}}"#,
            seed + 1
        ))
        .unwrap()
    }

    #[test]
    fn replay_of_missing_file_is_empty() {
        let folded = replay(Path::new("/nonexistent/shard-0.jsonl"));
        assert!(folded.pending.is_empty());
        assert!(folded.terminal.is_empty());
    }

    #[test]
    fn replay_folds_submits_evicts_and_terminals() {
        let dir = temp_dir("fold");
        let writer = SpoolWriter::open(&dir, 1).unwrap();
        let base = 1u64 << 48;
        writer.ship(&submit_event(base + 1, &job_body(1)));
        writer.ship(&submit_event(base + 2, &job_body(2)));
        writer.ship(&submit_event(base + 3, &job_body(3)));
        writer.ship(&submit_event(base + 4, &job_body(4)));
        writer.ship(&evict_event(base + 2));
        let result = Value::object().with("labels", Value::Arr(vec![]));
        writer.ship(&done_event(base + 1, &result, 0.25));
        writer.ship(&failed_event(base + 3, "boom"));
        assert_eq!(writer.failures(), 0);

        let folded = replay(&spool_path(&dir, 1));
        // Only job 4 is still owed: 1 finished, 2 was evicted, 3 failed.
        assert_eq!(
            folded.pending.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![base + 4]
        );
        let ids: Vec<u64> = folded.terminal.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![base + 1, base + 3]);
        let done = &folded.terminal[0].1;
        assert_eq!(done.get("status").and_then(Value::as_str), Some("done"));
        assert_eq!(done.get("job").and_then(Value::as_u64), Some(base + 1));
        assert!(done.get("result").is_some());
        let failed = &folded.terminal[1].1;
        assert_eq!(failed.get("status").and_then(Value::as_str), Some("failed"));
        assert_eq!(failed.get("error").and_then(Value::as_str), Some("boom"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_skips_torn_and_malformed_lines() {
        let dir = temp_dir("torn");
        let path = spool_path(&dir, 0);
        let mut file = File::create(&path).unwrap();
        let good = submit_event(7, &job_body(7)).to_string_checked().unwrap();
        writeln!(file, "{good}").unwrap();
        writeln!(file, "not json at all").unwrap();
        // A torn write: the line a shard was killed in the middle of.
        write!(file, "{{\"event\":\"submit\",\"job\":8,\"sp").unwrap();
        drop(file);
        let folded = replay(&path);
        assert_eq!(
            folded.pending.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![7]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
