//! Multi-node sharding: a consistent-hash router tier in front of N
//! shard servers.
//!
//! The router is a thin HTTP proxy speaking the exact same protocol as a
//! single shard — clients (including [`crate::client::Client`], the CLI,
//! and the load generator) point at the router unchanged:
//!
//! ```text
//!                       POST /jobs ──ring──▶ shard 0  (serve --shard-id 0)
//!   client ──▶ router   GET /jobs/<id> ────▶ shard_of(id)
//!                       GET /jobs ──scatter▶ every live shard
//!                       GET /healthz ─fan-in▶ every shard, merged
//! ```
//!
//! **Routing.** Each shard stamps its id into the top 16 bits of every
//! job id it assigns ([`id_base`]), so `GET /jobs/<id>` routes by
//! [`shard_of`] — any job is findable without fan-out. `POST /jobs` picks
//! a shard from a deterministic consistent-hash [`Ring`] keyed by a
//! submission counter; when the preferred shard is unreachable the
//! router walks the ring's candidate order instead of failing.
//!
//! **Liveness + failover.** A prober thread health-checks every shard
//! over keep-alive connections with jittered backoff (reusing
//! [`crate::backoff`]). [`RouterConfig::fail_after`] consecutive
//! failures (probe or proxy) declare a shard dead: it leaves the ring
//! and its shipped journal ([`spool`]) is replayed — jobs that already
//! reached a terminal state are served from the router's own table, and
//! acked-but-unfinished jobs are re-submitted to surviving shards with
//! their old id remapped to the new one. Every `202`-acked job
//! therefore still completes, and keeps its original id from the
//! client's point of view. A shard that comes back is re-added to the
//! ring; already-failed-over ids keep being served from the table
//! (either copy computes the identical result — execution is
//! deterministic).
//!
//! **Overload composition.** Shard `503`s (`queue_full`,
//! `backlog_exceeded`, `connections_exhausted`, `shutting_down`,
//! `store_degraded`) pass through the router unchanged, including their
//! `Retry-After` hint. The router adds exactly two reasons of its own:
//! `no_shards_available` (no live shard could take the request) and
//! `shard_unavailable` (the owning shard is dead and the spool owes no
//! record of that id).
//!
//! **Limits.** `GET /jobs` merges *live* shards only — terminal results
//! held for a dead shard are reachable by id, not by listing. And a
//! duplicate admission is possible when a shard dies between processing
//! a `POST` and answering it: the orphaned copy completes harmlessly
//! (results are deterministic) but occupies a second id.

pub mod ring;
pub mod spool;

use crate::backoff::Backoff;
use crate::http::{read_request, write_response, write_response_with, HttpConnection};
use crate::service::{DEFAULT_LIST_LIMIT, MAX_LIST_LIMIT, STATUS_NAMES};
use ring::Ring;
use sspc_common::json::Value;
use sspc_common::{Error, Result};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The lowest job id shard `shard` assigns: shard ids live in the top
/// 16 bits of the 64-bit id space, so ids route without any lookup.
/// Shard 0's ids are unchanged from a single-node deployment.
pub fn id_base(shard: u16) -> u64 {
    u64::from(shard) << 48
}

/// Which shard assigned job `id` (the top 16 bits).
pub fn shard_of(id: u64) -> u16 {
    (id >> 48) as u16
}

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks a free port (see [`Router::addr`]).
    pub addr: String,
    /// The shard fleet: `(shard id, address)` pairs. Ids must be
    /// distinct and each shard must run `serve --shard-id <id>` so its
    /// job ids carry the right prefix.
    pub shards: Vec<(u16, String)>,
    /// Directory the shards ship their journals into (see [`spool`]).
    /// `None` disables failover replay: a dead shard's unfinished jobs
    /// answer `503 shard_unavailable` instead of completing elsewhere.
    pub spool_dir: Option<PathBuf>,
    /// How often each live shard is health-probed.
    pub probe_interval: Duration,
    /// Consecutive probe/proxy failures before a shard is declared dead
    /// and failed over.
    pub fail_after: u32,
    /// Maximum concurrently open client connections; everything over the
    /// cap is shed with `503` + `Retry-After`, like a shard does.
    pub max_connections: usize,
    /// Pause between handoff records streamed during a membership change
    /// (join/leave), bounding the handoff's impact on in-flight traffic.
    /// Zero (the default) streams flat out. Overridable via the
    /// `SSPC_HANDOFF_THROTTLE_MS` environment variable.
    pub handoff_throttle: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:7870".into(),
            shards: Vec::new(),
            spool_dir: None,
            probe_interval: Duration::from_secs(1),
            fail_after: 3,
            max_connections: 256,
            handoff_throttle: Duration::ZERO,
        }
    }
}

/// A shard's runtime membership state (ISSUE 9): `joining → active →
/// leaving → gone`. `Joining` shards are being handed their keys and are
/// not yet routable; `Leaving` shards still serve reads but take no new
/// submissions while their keys drain; `Gone` shards have left the
/// roster entirely. Liveness (`Shard::alive`) is orthogonal — an
/// `Active` shard that stops answering probes renders as `down`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Membership {
    Joining = 0,
    Active = 1,
    Leaving = 2,
    Gone = 3,
}

impl Membership {
    fn from_u8(raw: u8) -> Membership {
        match raw {
            0 => Membership::Joining,
            2 => Membership::Leaving,
            3 => Membership::Gone,
            _ => Membership::Active,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Membership::Joining => "joining",
            Membership::Active => "active",
            Membership::Leaving => "leaving",
            Membership::Gone => "gone",
        }
    }
}

/// One shard as the router sees it.
struct Shard {
    id: u16,
    addr: String,
    /// On the ring and eligible for proxying. Cleared when declared
    /// dead, set again when a probe succeeds.
    alive: AtomicBool,
    /// Consecutive probe/proxy failures; reset by any success.
    failures: AtomicU32,
    /// This shard's spool has been replayed (set at most once; a
    /// rejoined shard's old ids keep being served from the owed table).
    failed_over: AtomicBool,
    /// Where in `joining → active → leaving → gone` this shard sits.
    membership: AtomicU8,
}

impl Shard {
    fn new(id: u16, addr: String, membership: Membership) -> Shard {
        Shard {
            id,
            addr,
            alive: AtomicBool::new(true),
            failures: AtomicU32::new(0),
            failed_over: AtomicBool::new(false),
            membership: AtomicU8::new(membership as u8),
        }
    }

    fn membership(&self) -> Membership {
        Membership::from_u8(self.membership.load(Ordering::SeqCst))
    }

    fn set_membership(&self, m: Membership) {
        self.membership.store(m as u8, Ordering::SeqCst);
    }

    /// The state rendered in `/healthz` and the CLI health table:
    /// membership, except that an unreachable shard reads `down`.
    fn display_state(&self) -> &'static str {
        if self.alive.load(Ordering::SeqCst) {
            self.membership().name()
        } else {
            "down"
        }
    }
}

/// What the router owes for a job whose original shard died.
enum Owed {
    /// The job finished on the dead shard; serve its spooled document.
    Terminal(Value),
    /// The job was re-submitted to a survivor under a new id.
    Remapped { shard: u16, new_id: u64 },
}

#[derive(Default)]
struct RouterMetrics {
    routed: AtomicU64,
    shed: AtomicU64,
    failovers: AtomicU64,
    replayed: AtomicU64,
    connections: AtomicU64,
    /// Completed membership handoffs (joins + graceful leaves).
    handoffs: AtomicU64,
    /// Spool records streamed to a new owner by membership handoffs.
    handed_off: AtomicU64,
}

struct RouterState {
    /// The live roster. Mutable at runtime (ISSUE 9): admin join pushes,
    /// admin leave removes; every reader takes a snapshot.
    shards: RwLock<Vec<Arc<Shard>>>,
    ring: Mutex<Ring>,
    spool_dir: Option<PathBuf>,
    /// Jobs the router answers for directly, keyed by their *original*
    /// id.
    owed: Mutex<HashMap<u64, Owed>>,
    /// Serializes failover replays and makes `ensure_failed_over`
    /// blocking: a reader never sees a half-replayed shard.
    replay_lock: Mutex<()>,
    /// Serializes membership changes (join / leave / prober rejoin).
    membership_lock: Mutex<()>,
    /// The per-key handoff staging table: remaps and terminal docs a
    /// membership handoff has streamed but not yet cut over. The lock is
    /// taken per key while streaming and once at cutover — never across
    /// a whole handoff — so status reads and failover replays never
    /// block behind a long transfer. Until cutover merges these into
    /// `owed`, reads keep being served by the old owner.
    handoff: Mutex<HashMap<u64, Owed>>,
    /// True only inside the cutover critical section; submissions during
    /// the flip answer `503` `reason: "rebalancing"`.
    rebalancing: AtomicBool,
    handoff_throttle: Duration,
    route_counter: AtomicU64,
    metrics: RouterMetrics,
    fail_after: u32,
    max_connections: usize,
    shutting_down: AtomicBool,
    draining: AtomicBool,
    started: Instant,
}

impl RouterState {
    /// A point-in-time snapshot of the roster.
    fn roster(&self) -> Vec<Arc<Shard>> {
        self.shards.read().expect("roster poisoned").clone()
    }

    fn shard(&self, id: u16) -> Option<Arc<Shard>> {
        self.shards
            .read()
            .expect("roster poisoned")
            .iter()
            .find(|s| s.id == id)
            .cloned()
    }

    fn shards_alive(&self) -> usize {
        self.shards
            .read()
            .expect("roster poisoned")
            .iter()
            .filter(|s| s.alive.load(Ordering::SeqCst))
            .count()
    }

    fn owes(&self, id: u64) -> bool {
        self.owed.lock().expect("owed poisoned").contains_key(&id)
    }
}

/// A running router; like [`crate::Server`], dropping the handle does
/// not stop it — call [`Router::shutdown`] (tests) or
/// [`Router::begin_drain`] + [`Router::drain`] (operator shutdown).
pub struct Router {
    addr: SocketAddr,
    state: Arc<RouterState>,
    acceptor: JoinHandle<()>,
    prober: JoinHandle<()>,
}

impl Router {
    /// Binds and starts the router: acceptor plus the shard prober.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when no shards are configured, shard
    /// ids repeat, or the address cannot be bound.
    pub fn start(config: &RouterConfig) -> Result<Router> {
        if config.shards.is_empty() {
            return Err(Error::InvalidParameter(
                "router needs at least one shard".into(),
            ));
        }
        let mut ids: Vec<u16> = config.shards.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != config.shards.len() {
            return Err(Error::InvalidParameter(
                "duplicate shard ids in router config".into(),
            ));
        }
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| Error::InvalidParameter(format!("cannot bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::InvalidParameter(format!("local_addr: {e}")))?;
        let shards = config
            .shards
            .iter()
            .map(|(id, addr)| Arc::new(Shard::new(*id, addr.clone(), Membership::Active)))
            .collect();
        let handoff_throttle = std::env::var("SSPC_HANDOFF_THROTTLE_MS")
            .ok()
            .and_then(|ms| ms.parse::<u64>().ok())
            .map_or(config.handoff_throttle, Duration::from_millis);
        let state = Arc::new(RouterState {
            shards: RwLock::new(shards),
            ring: Mutex::new(Ring::new(ids, Ring::DEFAULT_VNODES)),
            spool_dir: config.spool_dir.clone(),
            owed: Mutex::new(HashMap::new()),
            replay_lock: Mutex::new(()),
            membership_lock: Mutex::new(()),
            handoff: Mutex::new(HashMap::new()),
            rebalancing: AtomicBool::new(false),
            handoff_throttle,
            route_counter: AtomicU64::new(0),
            metrics: RouterMetrics::default(),
            fail_after: config.fail_after.max(1),
            max_connections: config.max_connections.max(1),
            shutting_down: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            started: Instant::now(),
        });
        let acceptor_state = Arc::clone(&state);
        let acceptor = std::thread::Builder::new()
            .name("sspc-router-acceptor".into())
            .spawn(move || acceptor_loop(&listener, &acceptor_state))
            .expect("spawn router acceptor");
        let prober_state = Arc::clone(&state);
        let probe_interval = config.probe_interval;
        let prober = std::thread::Builder::new()
            .name("sspc-router-prober".into())
            .spawn(move || prober_loop(&prober_state, probe_interval))
            .expect("spawn router prober");
        Ok(Router {
            addr,
            state,
            acceptor,
            prober,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the acceptor exits — i.e. until [`Router::shutdown`]
    /// from another thread or process death.
    pub fn wait(self) {
        let _ = self.acceptor.join();
        let _ = self.prober.join();
    }

    /// Lame duck: `/healthz` reports `status: "draining"`, new
    /// submissions get `503 shutting_down`, reads keep being served.
    /// Idempotent; there is no way back.
    pub fn begin_drain(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
    }

    /// Waits up to `timeout` for open client connections to finish
    /// after [`Router::begin_drain`], then stops. Returns whether the
    /// connection count reached zero in time. (The router holds no job
    /// state — shards keep executing whatever was admitted — so an
    /// expired timeout loses nothing.)
    #[must_use = "a false return means clients were still connected at the deadline"]
    pub fn drain(self, timeout: Duration) -> bool {
        self.begin_drain();
        let deadline = Instant::now() + timeout;
        let drained = loop {
            if self.state.metrics.connections.load(Ordering::SeqCst) == 0 {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        self.shutdown();
        drained
    }

    /// Stops accepting and joins the acceptor and prober threads.
    pub fn shutdown(self) {
        self.state.shutting_down.store(true, Ordering::SeqCst);
        // Wake the acceptor out of `accept()` with a loopback connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        let _ = self.prober.join();
    }
}

fn error_body(msg: impl Into<String>) -> Value {
    Value::object().with("error", msg.into())
}

/// A router-level shed: `503 no_shards_available` + a short retry hint.
fn no_shards(state: &RouterState, context: &str) -> (u16, Value, Option<u64>) {
    state.metrics.shed.fetch_add(1, Ordering::Relaxed);
    (
        503,
        error_body(format!("no live shard available ({context})"))
            .with("reason", "no_shards_available"),
        Some(1),
    )
}

/// Per-handler cache of keep-alive connections to shards.
type ShardConns = HashMap<u16, HttpConnection>;

/// Proxies one request to `shard` over the handler's cached keep-alive
/// connection, reconnecting once when a *reused* connection turns out to
/// be stale (the shard idle-closed it). Returns the shard's status,
/// body, and `Retry-After` so 503s pass through unchanged. An `Err` is a
/// transport-level failure on a fresh connection — the caller should
/// count it toward the shard's death.
fn proxy(
    conns: &mut ShardConns,
    shard: &Shard,
    method: &str,
    path: &str,
    body: Option<&Value>,
) -> Result<(u16, Value, Option<u64>)> {
    let mut reused = true;
    if let std::collections::hash_map::Entry::Vacant(slot) = conns.entry(shard.id) {
        reused = false;
        slot.insert(HttpConnection::connect(&shard.addr)?);
    }
    let conn = conns.get_mut(&shard.id).expect("just inserted");
    let answer = match conn.roundtrip(method, path, body) {
        Ok(answer) => answer,
        Err(e) => {
            conns.remove(&shard.id);
            if !reused {
                return Err(e);
            }
            // The cached connection was stale; one fresh attempt. (For a
            // POST this risks a duplicate admission if the shard had in
            // fact processed the first attempt — the orphaned copy
            // completes harmlessly, results being deterministic.)
            let mut fresh = HttpConnection::connect(&shard.addr)?;
            let answer = fresh.roundtrip(method, path, body)?;
            conns.insert(shard.id, fresh);
            answer
        }
    };
    let conn = conns.get_mut(&shard.id).expect("present after roundtrip");
    let retry_after = conn.retry_after();
    if conn.server_closed() {
        conns.remove(&shard.id);
    }
    shard.failures.store(0, Ordering::SeqCst);
    Ok((answer.0, answer.1, retry_after))
}

/// Counts one failure against `shard`; at `fail_after` consecutive
/// failures the shard is declared dead — removed from the ring and its
/// spool replayed onto the survivors.
fn note_shard_failure(state: &RouterState, shard: &Shard) {
    let failures = shard.failures.fetch_add(1, Ordering::SeqCst) + 1;
    if failures >= state.fail_after && shard.alive.swap(false, Ordering::SeqCst) {
        state.ring.lock().expect("ring poisoned").remove(shard.id);
        state.metrics.failovers.fetch_add(1, Ordering::Relaxed);
        ensure_failed_over(state, shard);
    }
}

/// Replays a dead shard's spool exactly once, blocking concurrent
/// callers until the table is complete: terminal jobs become
/// [`Owed::Terminal`], acked-but-unfinished jobs are re-submitted to
/// surviving shards and become [`Owed::Remapped`].
fn ensure_failed_over(state: &RouterState, shard: &Shard) {
    let _serialize = state.replay_lock.lock().expect("replay lock poisoned");
    if shard.failed_over.load(Ordering::SeqCst) {
        return;
    }
    let Some(dir) = &state.spool_dir else {
        shard.failed_over.store(true, Ordering::SeqCst);
        return;
    };
    let debt = spool::replay(&spool::spool_path(dir, shard.id));
    for (id, doc) in debt.terminal {
        state
            .owed
            .lock()
            .expect("owed poisoned")
            .insert(id, Owed::Terminal(doc));
    }
    for (old_id, raw) in debt.pending {
        if let Some((survivor, new_id)) = resubmit(state, old_id, &raw) {
            state.metrics.replayed.fetch_add(1, Ordering::Relaxed);
            state.owed.lock().expect("owed poisoned").insert(
                old_id,
                Owed::Remapped {
                    shard: survivor,
                    new_id,
                },
            );
        }
    }
    shard.failed_over.store(true, Ordering::SeqCst);
}

/// Re-submits one spooled job to the ring's surviving candidates for
/// its old id, with a few bounded passes for transient `503`s. Returns
/// the survivor and the new id, or `None` when nobody would take it.
fn resubmit(state: &RouterState, old_id: u64, raw: &Value) -> Option<(u16, u64)> {
    let ring = state.ring.lock().expect("ring poisoned").clone();
    resubmit_on(state, &ring, old_id, raw, None)
}

/// [`resubmit`] against an explicit ring (a graceful leave resubmits on
/// the *post-leave* ring before the cutover publishes it), optionally
/// excluding one shard (the leaver).
fn resubmit_on(
    state: &RouterState,
    ring: &Ring,
    old_id: u64,
    raw: &Value,
    exclude: Option<u16>,
) -> Option<(u16, u64)> {
    for attempt in 0..3 {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(50));
        }
        for shard_id in ring.candidates(old_id) {
            if exclude == Some(shard_id) {
                continue;
            }
            let Some(shard) = state.shard(shard_id) else {
                continue;
            };
            if !shard.alive.load(Ordering::SeqCst) {
                continue;
            }
            let Ok((status, body)) = crate::http::request(&shard.addr, "POST", "/jobs", Some(raw))
            else {
                continue;
            };
            if status == 202 {
                if let Some(new_id) = body.get("job").and_then(Value::as_u64) {
                    return Some((shard_id, new_id));
                }
            }
        }
    }
    None
}

/// `POST /jobs`: walk the ring's candidate order for the next
/// submission key; the first live shard that answers — with *any* HTTP
/// status — wins, and its answer (including `503` + `Retry-After`)
/// passes through unchanged.
fn submit(state: &RouterState, conns: &mut ShardConns, body: &[u8]) -> (u16, Value, Option<u64>) {
    if state.draining.load(Ordering::SeqCst) {
        return (
            503,
            error_body("router is draining; not accepting new jobs")
                .with("reason", "shutting_down"),
            Some(1),
        );
    }
    if state.rebalancing.load(Ordering::SeqCst) {
        // The cutover critical section of a membership change: routing
        // is mid-flip, so the honest answer is "ask again in a moment" —
        // retry-safe (nothing saw the job), like `queue_full`.
        state.metrics.shed.fetch_add(1, Ordering::Relaxed);
        return (
            503,
            error_body("router is rebalancing shard membership; retry shortly")
                .with("reason", "rebalancing"),
            Some(1),
        );
    }
    let parsed = std::str::from_utf8(body)
        .map_err(|_| Error::InvalidParameter("body is not UTF-8".into()))
        .and_then(Value::parse);
    let raw = match parsed {
        Ok(raw) => raw,
        Err(e) => return (400, error_body(e.to_string()), None),
    };
    let key = state.route_counter.fetch_add(1, Ordering::SeqCst);
    let candidates = state.ring.lock().expect("ring poisoned").candidates(key);
    for shard_id in candidates {
        let Some(shard) = state.shard(shard_id) else {
            continue;
        };
        if !shard.alive.load(Ordering::SeqCst) || shard.membership() != Membership::Active {
            // A leaving shard is still on the ring until its cutover but
            // takes no new submissions — its keys are draining.
            continue;
        }
        match proxy(conns, &shard, "POST", "/jobs", Some(&raw)) {
            Ok(answer) => {
                state.metrics.routed.fetch_add(1, Ordering::Relaxed);
                return answer;
            }
            Err(_) => note_shard_failure(state, &shard),
        }
    }
    no_shards(state, "submission")
}

/// `GET /jobs/<id>`: route by the id's shard prefix; when the owning
/// shard is dead, serve from the failover table (terminal results
/// directly, remapped jobs proxied with the `job` field rewritten back
/// to the id the client was acked with).
fn job_status(
    state: &RouterState,
    conns: &mut ShardConns,
    path: &str,
) -> (u16, Value, Option<u64>) {
    let id_text = &path["/jobs/".len()..];
    let Ok(id) = id_text.parse::<u64>() else {
        return (404, error_body(format!("bad job id `{id_text}`")), None);
    };
    if let Some(answer) = serve_owed(state, conns, id) {
        return answer;
    }
    let shard_id = shard_of(id);
    let Some(shard) = state.shard(shard_id) else {
        // The prefix's shard has left the roster; anything it still owed
        // was folded into the owed table by its leave — already checked.
        return (404, error_body(format!("no job {id}")), None);
    };
    if shard.alive.load(Ordering::SeqCst) {
        match proxy(conns, &shard, "GET", path, None) {
            Ok(answer) => {
                state.metrics.routed.fetch_add(1, Ordering::Relaxed);
                return answer;
            }
            Err(_) => note_shard_failure(state, &shard),
        }
    }
    if !shard.alive.load(Ordering::SeqCst) {
        // Dead: make sure its spool has been folded, then try the owed
        // table once more.
        ensure_failed_over(state, &shard);
        if let Some(answer) = serve_owed(state, conns, id) {
            return answer;
        }
        // Last resort: a handoff may have already streamed this job to
        // its new owner without reaching cutover (the donor died
        // mid-handoff). The staged copy is real and deterministic.
        if let Some(answer) = serve_staged(state, conns, id) {
            return answer;
        }
    }
    (
        503,
        error_body(format!(
            "shard {shard_id} is unavailable; status of job {id} is unknown"
        ))
        .with("reason", "shard_unavailable")
        .with("job", id),
        Some(1),
    )
}

/// Serves job `id` from the handoff staging table — only consulted when
/// the owning shard is dead and the owed table has nothing (a donor
/// SIGKILLed mid-handoff before cutover).
fn serve_staged(
    state: &RouterState,
    conns: &mut ShardConns,
    id: u64,
) -> Option<(u16, Value, Option<u64>)> {
    let (survivor, new_id) = {
        let staged = state.handoff.lock().expect("handoff poisoned");
        match staged.get(&id)? {
            Owed::Terminal(doc) => return Some((200, doc.clone(), None)),
            Owed::Remapped { shard, new_id } => (*shard, *new_id),
        }
    };
    let shard = state.shard(survivor)?;
    if !shard.alive.load(Ordering::SeqCst) {
        return None;
    }
    match proxy(conns, &shard, "GET", &format!("/jobs/{new_id}"), None) {
        Ok((status, doc, ra)) => Some((status, rewrite_job_id(doc, id), ra)),
        Err(_) => {
            note_shard_failure(state, &shard);
            None
        }
    }
}

/// Serves job `id` from the failover table, if the router owes it.
fn serve_owed(
    state: &RouterState,
    conns: &mut ShardConns,
    id: u64,
) -> Option<(u16, Value, Option<u64>)> {
    let (survivor, new_id) = {
        let owed = state.owed.lock().expect("owed poisoned");
        match owed.get(&id)? {
            Owed::Terminal(doc) => return Some((200, doc.clone(), None)),
            Owed::Remapped { shard, new_id } => (*shard, *new_id),
        }
    };
    let shard = state.shard(survivor)?;
    if !shard.alive.load(Ordering::SeqCst) {
        // The survivor died too; its own failover remaps `new_id` in
        // turn. One level of indirection per death, resolved lazily.
        ensure_failed_over(state, &shard);
        let chained = serve_owed(state, conns, new_id);
        if let Some((status, doc, ra)) = chained {
            return Some((status, rewrite_job_id(doc, id), ra));
        }
    }
    match proxy(conns, &shard, "GET", &format!("/jobs/{new_id}"), None) {
        Ok((status, doc, ra)) => Some((status, rewrite_job_id(doc, id), ra)),
        Err(_) => {
            note_shard_failure(state, &shard);
            None
        }
    }
}

/// Rewrites the `job` field back to the id the client knows.
fn rewrite_job_id(doc: Value, id: u64) -> Value {
    if doc.get("job").is_some() {
        doc.with("job", id)
    } else {
        doc
    }
}

/// `GET /jobs`: validate the query exactly like a shard would, scatter
/// it to every live shard, and merge newest-first under the same
/// `limit` cap.
fn list(
    state: &RouterState,
    conns: &mut ShardConns,
    query: &[(String, String)],
) -> (u16, Value, Option<u64>) {
    let mut status: Option<&str> = None;
    let mut limit = DEFAULT_LIST_LIMIT;
    for (key, value) in query {
        match key.as_str() {
            "status" => {
                if !STATUS_NAMES.contains(&value.as_str()) {
                    return (
                        400,
                        error_body(format!(
                            "unknown status `{value}` (one of: {})",
                            STATUS_NAMES.join(", ")
                        )),
                        None,
                    );
                }
                status = Some(value.as_str());
            }
            "limit" => match value.parse::<usize>() {
                Ok(n) => limit = n.min(MAX_LIST_LIMIT),
                Err(_) => return (400, error_body(format!("bad limit `{value}`")), None),
            },
            other => {
                return (
                    400,
                    error_body(format!(
                        "unknown query parameter `{other}` (accepted: status, limit)"
                    )),
                    None,
                );
            }
        }
    }
    let mut forward = format!("/jobs?limit={limit}");
    if let Some(status) = status {
        forward.push_str(&format!("&status={status}"));
    }
    let mut merged: Vec<Value> = Vec::new();
    let mut total = 0u64;
    let mut answered = false;
    for shard in state.roster() {
        if !shard.alive.load(Ordering::SeqCst) {
            continue;
        }
        match proxy(conns, &shard, "GET", &forward, None) {
            Ok((200, body, _)) => {
                answered = true;
                total += body.get("total").and_then(Value::as_u64).unwrap_or(0);
                if let Some(Value::Arr(jobs)) = body.get("jobs") {
                    merged.extend(jobs.iter().cloned());
                }
            }
            Ok((other_status, body, ra)) => return (other_status, body, ra),
            Err(_) => note_shard_failure(state, &shard),
        }
    }
    if !answered {
        return no_shards(state, "listing");
    }
    state.metrics.routed.fetch_add(1, Ordering::Relaxed);
    // Newest first across shards; ids from different shards interleave
    // by their full (prefixed) value, which still sorts each shard's
    // jobs newest-first.
    merged.sort_by(|a, b| {
        let ka = a.get("job").and_then(Value::as_u64).unwrap_or(0);
        let kb = b.get("job").and_then(Value::as_u64).unwrap_or(0);
        kb.cmp(&ka)
    });
    merged.truncate(limit);
    (
        200,
        Value::object()
            .with("jobs", Value::Arr(merged))
            .with("total", total),
        None,
    )
}

/// Reads `path` (e.g. `["latency", "job", "p99_ms"]`) out of a doc.
fn lookup<'a>(doc: &'a Value, path: &[&str]) -> Option<&'a Value> {
    let mut at = doc;
    for key in path {
        at = at.get(key)?;
    }
    Some(at)
}

fn sum_u64(docs: &[&Value], path: &[&str]) -> u64 {
    docs.iter()
        .filter_map(|d| lookup(d, path).and_then(Value::as_u64))
        .sum()
}

fn sum_f64(docs: &[&Value], path: &[&str]) -> f64 {
    docs.iter()
        .filter_map(|d| lookup(d, path).and_then(Value::as_f64))
        .sum()
}

fn max_f64(docs: &[&Value], path: &[&str]) -> f64 {
    docs.iter()
        .filter_map(|d| lookup(d, path).and_then(Value::as_f64))
        .fold(0.0, f64::max)
}

/// `GET /healthz`: fan in every shard's health document. Reachable
/// shards appear verbatim under `shards.<id>`; dead or unreachable ones
/// appear as `{"status": "down", ...}`. Counters sum; latency
/// percentiles report the worst shard; `status` degrades if any shard
/// is not `ok`.
fn healthz(state: &RouterState, conns: &mut ShardConns) -> (u16, Value, Option<u64>) {
    let mut shard_docs: Vec<(u16, &'static str, Option<Value>)> = Vec::new();
    for shard in state.roster() {
        let doc = if shard.alive.load(Ordering::SeqCst) {
            proxy(conns, &shard, "GET", "/healthz", None)
                .ok()
                .filter(|(status, _, _)| *status == 200)
                .map(|(_, doc, _)| doc)
        } else {
            None
        };
        if doc.is_none() && shard.alive.load(Ordering::SeqCst) {
            note_shard_failure(state, &shard);
        }
        shard_docs.push((shard.id, shard.display_state(), doc));
    }
    let reachable: Vec<&Value> = shard_docs
        .iter()
        .filter_map(|(_, _, d)| d.as_ref())
        .collect();
    let draining = state.draining.load(Ordering::SeqCst);
    let any_down = shard_docs.iter().any(|(_, _, d)| d.is_none());
    let all_ok = !any_down
        && reachable
            .iter()
            .all(|d| d.get("status").and_then(Value::as_str) == Some("ok"));
    let status = if draining {
        "draining"
    } else if all_ok {
        "ok"
    } else {
        "degraded"
    };
    let ready = !draining
        && reachable
            .iter()
            .any(|d| d.get("ready").and_then(Value::as_bool) == Some(true));

    let mut jobs = Value::object();
    for counter in [
        "submitted",
        "recovered",
        "rejected_queue_full",
        "rejected_invalid",
        "rejected_backlog",
        "rejected_draining",
        "completed",
        "failed",
    ] {
        jobs = jobs.with(counter, sum_u64(&reachable, &["jobs", counter]));
    }

    // Per-algorithm throughput sums across shards; the rate is
    // recomputed from the summed numerator/denominator rather than
    // averaging per-shard rates.
    let mut algorithms = Value::object();
    let mut names: Vec<String> = Vec::new();
    for doc in &reachable {
        if let Some(per) = doc.get("algorithms").and_then(Value::as_object) {
            for name in per.keys() {
                if !names.contains(name) {
                    names.push(name.clone());
                }
            }
        }
    }
    for name in names {
        let jobs_sum = sum_u64(&reachable, &["algorithms", &name, "jobs"]);
        let restarts = sum_f64(&reachable, &["algorithms", &name, "restarts"]);
        let busy = sum_f64(&reachable, &["algorithms", &name, "busy_seconds"]);
        let rate = if busy > 0.0 { restarts / busy } else { 0.0 };
        algorithms = algorithms.with(
            name,
            Value::object()
                .with("jobs", jobs_sum)
                .with("restarts", restarts)
                .with("busy_seconds", busy)
                .with("restarts_per_busy_second", rate),
        );
    }

    let router = Value::object()
        .with("shards", state.roster().len() as u64)
        .with("shards_alive", state.shards_alive() as u64)
        .with("routed", state.metrics.routed.load(Ordering::Relaxed))
        .with("shed", state.metrics.shed.load(Ordering::Relaxed))
        .with("failovers", state.metrics.failovers.load(Ordering::Relaxed))
        .with(
            "replayed_jobs",
            state.metrics.replayed.load(Ordering::Relaxed),
        )
        .with(
            "owed_jobs",
            state.owed.lock().expect("owed poisoned").len() as u64,
        )
        .with("handoffs", state.metrics.handoffs.load(Ordering::Relaxed))
        .with(
            "handed_off_jobs",
            state.metrics.handed_off.load(Ordering::Relaxed),
        )
        .with("rebalancing", state.rebalancing.load(Ordering::SeqCst))
        .with("uptime_seconds", state.started.elapsed().as_secs_f64());

    let queue = Value::object()
        .with("depth", sum_u64(&reachable, &["queue", "depth"]))
        .with("capacity", sum_u64(&reachable, &["queue", "capacity"]));
    let latency = Value::object()
        .with(
            "queue_wait",
            merge_latency_section(&reachable, "queue_wait"),
        )
        .with("job", merge_latency_section(&reachable, "job"));
    drop(reachable);

    let mut shards_value = Value::object();
    for (id, membership, doc) in shard_docs {
        let entry = match doc {
            Some(doc) => doc,
            None => {
                let addr = state.shard(id).map(|s| s.addr.clone()).unwrap_or_default();
                Value::object()
                    .with("status", "down")
                    .with("reachable", false)
                    .with("addr", addr)
            }
        };
        shards_value = shards_value.with(id.to_string(), entry.with("membership", membership));
    }

    let doc = Value::object()
        .with("status", status)
        .with("ready", ready)
        .with("router", router)
        .with("shards", shards_value)
        .with("jobs", jobs)
        .with("queue", queue)
        .with("latency", latency)
        .with("algorithms", algorithms);
    (200, doc, None)
}

/// Merges one latency section: counts add; percentiles take the worst
/// shard (a merged p99 cannot be *better* than any member's, and
/// without raw samples the honest summary is the upper envelope).
fn merge_latency_section(docs: &[&Value], section: &str) -> Value {
    Value::object()
        .with("count", sum_u64(docs, &["latency", section, "count"]))
        .with("p50_ms", max_f64(docs, &["latency", section, "p50_ms"]))
        .with("p95_ms", max_f64(docs, &["latency", section, "p95_ms"]))
        .with("p99_ms", max_f64(docs, &["latency", section, "p99_ms"]))
}

/// One handoff stream step: the `handoff.stream` fault point (an armed
/// `err` aborts the membership change; `crash` kills the router there,
/// which the crash-torture sweep exploits) plus the optional pacing
/// throttle that bounds a handoff's pressure on in-flight traffic.
fn stream_gate(state: &RouterState) -> sspc_common::Result<()> {
    sspc_common::fault::point("handoff.stream")?;
    if !state.handoff_throttle.is_zero() {
        std::thread::sleep(state.handoff_throttle);
    }
    Ok(())
}

/// POSTs one spool record to `addr` with a few bounded passes for
/// transient `503`s, returning the new id it was acked under.
fn handoff_post(addr: &str, raw: &Value) -> Option<u64> {
    for attempt in 0..3 {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(50));
        }
        let Ok((status, body)) = crate::http::request(addr, "POST", "/jobs", Some(raw)) else {
            continue;
        };
        if status == 202 {
            if let Some(new_id) = body.get("job").and_then(Value::as_u64) {
                return Some(new_id);
            }
        }
    }
    None
}

/// Stages one handed-off record under the per-key handoff lock. Returns
/// whether the key was newly staged.
fn stage(state: &RouterState, old_id: u64, entry: Owed) -> bool {
    let mut staged = state.handoff.lock().expect("handoff poisoned");
    if staged.contains_key(&old_id) {
        return false;
    }
    staged.insert(old_id, entry);
    true
}

/// Does the (alive) shard still answer for `id`? A restarted shard with
/// a state dir recovered its journal and does; one without lost the job
/// — that orphan is what the rejoin handoff rescues.
fn shard_knows(shard: &Shard, id: u64) -> bool {
    matches!(
        crate::http::request(&shard.addr, "GET", &format!("/jobs/{id}"), None),
        Ok((200, _))
    )
}

/// The cutover: flips routing atomically under the `rebalancing` flag
/// (submissions during the flip answer `503 rebalancing`), merging the
/// staged handoff table into `owed`. Failover entries win ties — both
/// copies compute identical results, and the failover one is already
/// being served.
fn cutover(state: &RouterState, flip: impl FnOnce(&mut Ring)) -> sspc_common::Result<()> {
    sspc_common::fault::point("handoff.cutover")?;
    state.rebalancing.store(true, Ordering::SeqCst);
    flip(&mut state.ring.lock().expect("ring poisoned"));
    let staged: Vec<(u64, Owed)> = state
        .handoff
        .lock()
        .expect("handoff poisoned")
        .drain()
        .collect();
    {
        let mut owed = state.owed.lock().expect("owed poisoned");
        for (id, entry) in staged {
            owed.entry(id).or_insert(entry);
        }
    }
    state.rebalancing.store(false, Ordering::SeqCst);
    state.metrics.handoffs.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// Streams a recovered/new shard's **own stale spool** through the
/// handoff path: spool records the shard no longer answers for (killed
/// before finishing, restarted without its state) are re-submitted to
/// the shard and staged, so no previously-acked job is silently lost on
/// rejoin. Returns `(planned, moved)` record counts.
fn handoff_stale_spool(state: &RouterState, joiner: &Shard) -> sspc_common::Result<(u64, u64)> {
    let Some(dir) = &state.spool_dir else {
        return Ok((0, 0));
    };
    let stale = spool::replay(&spool::spool_path(dir, joiner.id));
    let mut planned = 0u64;
    let mut moved = 0u64;
    for (old_id, doc) in stale.terminal {
        if state.owes(old_id) || shard_knows(joiner, old_id) {
            continue;
        }
        planned += 1;
        stream_gate(state)?;
        if stage(state, old_id, Owed::Terminal(doc)) {
            moved += 1;
        }
    }
    for (old_id, raw) in stale.pending {
        if state.owes(old_id) || shard_knows(joiner, old_id) {
            continue;
        }
        planned += 1;
        stream_gate(state)?;
        let Some(new_id) = handoff_post(&joiner.addr, &raw) else {
            return Err(Error::InvalidParameter(format!(
                "shard {} refused handoff of its stale job {old_id}",
                joiner.id
            )));
        };
        if stage(
            state,
            old_id,
            Owed::Remapped {
                shard: joiner.id,
                new_id,
            },
        ) {
            moved += 1;
        }
    }
    Ok((planned, moved))
}

/// The join handoff: replay the joiner's stale spool, then stream every
/// donor spool record whose ring owner the join moves onto the newcomer
/// (the rebalance plan — exactly the keys whose owner changed), then cut
/// over. Reads are served by the old owners throughout; only the cutover
/// publishes the staged remaps and the new ring.
fn handoff_join(state: &RouterState, joiner: &Shard) -> sspc_common::Result<(u64, u64)> {
    let (mut planned, mut moved) = handoff_stale_spool(state, joiner)?;
    if let Some(dir) = &state.spool_dir {
        let before = state.ring.lock().expect("ring poisoned").clone();
        let mut after = before.clone();
        after.add(joiner.id);
        for donor in state.roster() {
            if donor.id == joiner.id
                || !donor.alive.load(Ordering::SeqCst)
                || donor.membership() != Membership::Active
            {
                continue;
            }
            let debt = spool::replay(&spool::spool_path(dir, donor.id));
            let pending_ids: Vec<u64> = debt.pending.iter().map(|(id, _)| *id).collect();
            let plan = ring::rebalance_plan(&before, &after, &pending_ids);
            let moving: std::collections::BTreeSet<u64> = plan
                .iter()
                .filter(|m| m.to == joiner.id)
                .map(|m| m.key)
                .collect();
            for (old_id, raw) in debt.pending {
                if !moving.contains(&old_id) || state.owes(old_id) {
                    continue;
                }
                planned += 1;
                stream_gate(state)?;
                let Some(new_id) = handoff_post(&joiner.addr, &raw) else {
                    return Err(Error::InvalidParameter(format!(
                        "shard {} refused handoff of job {old_id} from shard {}",
                        joiner.id, donor.id
                    )));
                };
                if stage(
                    state,
                    old_id,
                    Owed::Remapped {
                        shard: joiner.id,
                        new_id,
                    },
                ) {
                    moved += 1;
                }
            }
        }
    }
    cutover(state, |ring| ring.add(joiner.id))?;
    state.metrics.handed_off.fetch_add(moved, Ordering::Relaxed);
    joiner.set_membership(Membership::Active);
    Ok((planned, moved))
}

/// The graceful-leave handoff — the join in reverse: every record in the
/// leaver's spool moves off it (terminal docs into the owed table,
/// pending jobs re-submitted onto the post-leave ring), then the cutover
/// removes the leaver. Reads are served by the leaver until cutover.
fn handoff_leave(state: &RouterState, leaver: &Shard) -> sspc_common::Result<(u64, u64)> {
    let dir = state.spool_dir.as_ref().ok_or_else(|| {
        Error::InvalidParameter(
            "graceful leave requires a spool (--spool-dir); without one the shard's \
             acked jobs cannot be handed off"
                .into(),
        )
    })?;
    let before = state.ring.lock().expect("ring poisoned").clone();
    let mut after = before.clone();
    after.remove(leaver.id);
    let debt = spool::replay(&spool::spool_path(dir, leaver.id));
    let mut planned = 0u64;
    let mut moved = 0u64;
    for (old_id, doc) in debt.terminal {
        if state.owes(old_id) {
            continue;
        }
        planned += 1;
        stream_gate(state)?;
        if stage(state, old_id, Owed::Terminal(doc)) {
            moved += 1;
        }
    }
    for (old_id, raw) in debt.pending {
        if state.owes(old_id) {
            continue;
        }
        planned += 1;
        stream_gate(state)?;
        let Some((survivor, new_id)) = resubmit_on(state, &after, old_id, &raw, Some(leaver.id))
        else {
            return Err(Error::InvalidParameter(format!(
                "no surviving shard would take job {old_id} from leaving shard {}",
                leaver.id
            )));
        };
        if stage(
            state,
            old_id,
            Owed::Remapped {
                shard: survivor,
                new_id,
            },
        ) {
            moved += 1;
        }
    }
    cutover(state, |ring| ring.remove(leaver.id))?;
    // Second sweep: a submission proxied to the leaver just before it
    // was marked `leaving` may have acked after the first spool read.
    // After cutover no new work can reach the leaver, so replaying the
    // spool once more catches every straggler.
    let debt = spool::replay(&spool::spool_path(dir, leaver.id));
    for (old_id, doc) in debt.terminal {
        if !state.owes(old_id) {
            planned += 1;
            moved += 1;
            let mut owed = state.owed.lock().expect("owed poisoned");
            owed.entry(old_id).or_insert(Owed::Terminal(doc));
        }
    }
    for (old_id, raw) in debt.pending {
        if state.owes(old_id) {
            continue;
        }
        planned += 1;
        let Some((survivor, new_id)) = resubmit_on(state, &after, old_id, &raw, Some(leaver.id))
        else {
            return Err(Error::InvalidParameter(format!(
                "no surviving shard would take straggler job {old_id} from leaving shard {}",
                leaver.id
            )));
        };
        moved += 1;
        let mut owed = state.owed.lock().expect("owed poisoned");
        owed.entry(old_id).or_insert(Owed::Remapped {
            shard: survivor,
            new_id,
        });
    }
    state.metrics.handed_off.fetch_add(moved, Ordering::Relaxed);
    Ok((planned, moved))
}

/// `POST /admin/shards` — runtime join. Body: `{"shard": <id>, "addr":
/// "<host:port>"}`. The shard is health-checked, added to the roster as
/// `joining`, handed the keys the rebalance plan moves onto it, and cut
/// over to `active`. On any handoff failure the join rolls back
/// completely (roster and staging), leaving routing untouched.
fn admin_join(state: &RouterState, body: &[u8]) -> (u16, Value, Option<u64>) {
    let parsed = std::str::from_utf8(body)
        .map_err(|_| Error::InvalidParameter("body is not UTF-8".into()))
        .and_then(Value::parse);
    let raw = match parsed {
        Ok(raw) => raw,
        Err(e) => return (400, error_body(e.to_string()), None),
    };
    let (Some(id), Some(addr)) = (
        raw.get("shard")
            .and_then(Value::as_u64)
            .and_then(|id| u16::try_from(id).ok()),
        raw.get("addr").and_then(Value::as_str),
    ) else {
        return (
            400,
            error_body(r#"join body must be {"shard": <0..=65535>, "addr": "host:port"}"#),
            None,
        );
    };
    let _op = state
        .membership_lock
        .lock()
        .expect("membership lock poisoned");
    if state.shard(id).is_some() {
        return (
            409,
            error_body(format!("shard {id} is already in the roster")),
            None,
        );
    }
    if crate::http::request(addr, "GET", "/healthz", None).is_err() {
        return (
            502,
            error_body(format!("shard {id} at {addr} is not answering /healthz")),
            Some(1),
        );
    }
    let joiner = Arc::new(Shard::new(id, addr.to_string(), Membership::Joining));
    state
        .shards
        .write()
        .expect("roster poisoned")
        .push(Arc::clone(&joiner));
    let started = Instant::now();
    match handoff_join(state, &joiner) {
        Ok((planned, moved)) => (
            200,
            Value::object()
                .with("shard", u64::from(id))
                .with("addr", addr)
                .with("membership", "active")
                .with("planned", planned)
                .with("moved", moved)
                .with("handoff_seconds", started.elapsed().as_secs_f64()),
            None,
        ),
        Err(e) => {
            // Roll back: the joiner never became routable, so dropping it
            // and the staged records restores the pre-join state exactly.
            state
                .shards
                .write()
                .expect("roster poisoned")
                .retain(|s| s.id != id);
            state.handoff.lock().expect("handoff poisoned").clear();
            (
                502,
                error_body(format!("join of shard {id} aborted: {e}")),
                Some(1),
            )
        }
    }
}

/// `DELETE /admin/shards/<id>` — runtime leave. Graceful by default
/// (`leaving` → keys handed off → `gone`); `?mode=dead` skips the
/// handoff and runs the failover replay instead (for a shard that is
/// already unreachable).
fn admin_leave(
    state: &RouterState,
    path: &str,
    query: &[(String, String)],
) -> (u16, Value, Option<u64>) {
    let id_text = &path["/admin/shards/".len()..];
    let Ok(id) = id_text.parse::<u16>() else {
        return (404, error_body(format!("bad shard id `{id_text}`")), None);
    };
    let mode = query
        .iter()
        .find(|(k, _)| k == "mode")
        .map_or("graceful", |(_, v)| v.as_str());
    if mode != "graceful" && mode != "dead" {
        return (
            400,
            error_body(format!("unknown mode `{mode}` (graceful or dead)")),
            None,
        );
    }
    let _op = state
        .membership_lock
        .lock()
        .expect("membership lock poisoned");
    let Some(shard) = state.shard(id) else {
        return (
            404,
            error_body(format!("no shard {id} in the roster")),
            None,
        );
    };
    {
        let ring = state.ring.lock().expect("ring poisoned");
        if ring.len() == 1 && ring.contains(id) {
            return (
                400,
                error_body(format!("shard {id} is the last routable shard")),
                None,
            );
        }
    }
    if mode == "dead" || !shard.alive.load(Ordering::SeqCst) {
        // Dead removal: fold the spool like a failover would (idempotent
        // if the prober already did), then forget the shard.
        if shard.alive.swap(false, Ordering::SeqCst) {
            state.ring.lock().expect("ring poisoned").remove(id);
            state.metrics.failovers.fetch_add(1, Ordering::Relaxed);
        }
        ensure_failed_over(state, &shard);
        shard.set_membership(Membership::Gone);
        state
            .shards
            .write()
            .expect("roster poisoned")
            .retain(|s| s.id != id);
        return (
            200,
            Value::object()
                .with("shard", u64::from(id))
                .with("mode", "dead")
                .with("membership", "gone"),
            None,
        );
    }
    shard.set_membership(Membership::Leaving);
    let started = Instant::now();
    match handoff_leave(state, &shard) {
        Ok((planned, moved)) => {
            shard.set_membership(Membership::Gone);
            state
                .shards
                .write()
                .expect("roster poisoned")
                .retain(|s| s.id != id);
            (
                200,
                Value::object()
                    .with("shard", u64::from(id))
                    .with("mode", "graceful")
                    .with("membership", "gone")
                    .with("planned", planned)
                    .with("moved", moved)
                    .with("handoff_seconds", started.elapsed().as_secs_f64()),
                None,
            )
        }
        Err(e) => {
            // Roll back to active: the ring never changed, so the shard
            // simply resumes taking new work.
            state.handoff.lock().expect("handoff poisoned").clear();
            shard.set_membership(Membership::Active);
            (
                502,
                error_body(format!("graceful leave of shard {id} aborted: {e}")),
                Some(1),
            )
        }
    }
}

fn route_request(
    state: &RouterState,
    conns: &mut ShardConns,
    request: &crate::http::Request,
) -> (u16, Value, Option<u64>) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/jobs") => submit(state, conns, &request.body),
        ("GET", "/jobs") => list(state, conns, &request.query),
        ("GET", path) if path.starts_with("/jobs/") => job_status(state, conns, path),
        ("GET", "/healthz") => healthz(state, conns),
        ("POST", "/admin/shards") => admin_join(state, &request.body),
        ("DELETE", path) if path.starts_with("/admin/shards/") => {
            admin_leave(state, path, &request.query)
        }
        (_, "/jobs" | "/healthz" | "/admin/shards") => {
            (405, error_body("method not allowed"), None)
        }
        (_, path) if path.starts_with("/jobs/") || path.starts_with("/admin/shards/") => {
            (405, error_body("method not allowed"), None)
        }
        _ => (404, error_body("no such endpoint"), None),
    }
}

/// Decrements the connection gauge on every handler exit path.
struct ConnGuard(Arc<RouterState>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.metrics.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

fn acceptor_loop(listener: &TcpListener, state: &Arc<RouterState>) {
    for stream in listener.incoming() {
        if state.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        if state.metrics.connections.load(Ordering::SeqCst) >= state.max_connections as u64 {
            state.metrics.shed.fetch_add(1, Ordering::Relaxed);
            let _ = stream.set_write_timeout(Some(crate::http::IO_TIMEOUT));
            let body = error_body(format!(
                "router connection limit reached ({} active), retry later",
                state.max_connections
            ))
            .with("reason", "connections_exhausted");
            let _ = write_response_with(&mut stream, 503, &body, true, Some(1));
            continue;
        }
        state.metrics.connections.fetch_add(1, Ordering::SeqCst);
        let guard = ConnGuard(Arc::clone(state));
        let handler_state = Arc::clone(state);
        let spawned = std::thread::Builder::new()
            .name("sspc-router-handler".into())
            .spawn(move || {
                let _guard = guard;
                handle_connection(stream, &handler_state);
            });
        if spawned.is_err() {
            // The guard moved into the dropped closure, so the gauge is
            // already back down; nothing to answer the peer with — the
            // stream is gone too.
            state.metrics.shed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Serves one client connection; the per-thread `conns` map keeps
/// keep-alive connections to each shard warm across this client's
/// requests.
fn handle_connection(mut stream: TcpStream, state: &RouterState) {
    if stream
        .set_read_timeout(Some(crate::http::IO_TIMEOUT))
        .is_err()
        || stream
            .set_write_timeout(Some(crate::http::IO_TIMEOUT))
            .is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut conns: ShardConns = HashMap::new();
    loop {
        match read_request(&mut reader) {
            Ok(Some(request)) => {
                let close = request.close || state.shutting_down.load(Ordering::SeqCst);
                let (status, body, retry_after) = route_request(state, &mut conns, &request);
                let retry_after = (status == 503).then(|| retry_after.unwrap_or(1));
                let written = write_response_with(&mut stream, status, &body, close, retry_after);
                if written.is_err() || close {
                    break;
                }
            }
            Ok(None) => break,
            Err(e) => {
                let _ = write_response(&mut stream, 400, &error_body(e.to_string()), true);
                break;
            }
        }
    }
}

/// Rejoins a revived shard through the handoff path: its stale spool is
/// replayed (records it no longer answers for get staged and published
/// into the owed table), *then* the cutover puts it back on the ring.
/// The failover latch resets so a second death replays again.
fn rejoin(state: &RouterState, shard: &Shard) {
    let _op = state
        .membership_lock
        .lock()
        .expect("membership lock poisoned");
    if shard.alive.load(Ordering::SeqCst) {
        return;
    }
    let rejoined = handoff_stale_spool(state, shard)
        .and_then(|(_, moved)| cutover(state, |ring| ring.add(shard.id)).map(|()| moved));
    match rejoined {
        Ok(moved) => {
            state.metrics.handed_off.fetch_add(moved, Ordering::Relaxed);
            shard.failures.store(0, Ordering::SeqCst);
            shard.failed_over.store(false, Ordering::SeqCst);
            shard.set_membership(Membership::Active);
            shard.alive.store(true, Ordering::SeqCst);
        }
        Err(_) => {
            // Leave the shard down; the next successful probe retries
            // the rejoin from scratch.
            state.handoff.lock().expect("handoff poisoned").clear();
        }
    }
}

/// Health-probes every shard over keep-alive connections. Live shards
/// are probed each `interval`; failing shards back off with jitter
/// (capped at 8× the interval) and rejoin the ring — through the stale
/// spool handoff — on the first successful probe. The roster is
/// re-snapshotted each tick so runtime joins and leaves are picked up.
fn prober_loop(state: &Arc<RouterState>, interval: Duration) {
    let mut conns: ShardConns = HashMap::new();
    let mut backoffs: HashMap<u16, Backoff> = HashMap::new();
    let mut due: HashMap<u16, Instant> = HashMap::new();
    while !state.shutting_down.load(Ordering::SeqCst) {
        let now = Instant::now();
        for shard in state.roster() {
            backoffs.entry(shard.id).or_insert_with(|| {
                Backoff::new(
                    interval,
                    interval.saturating_mul(8),
                    0x7072_6f62_u64 ^ u64::from(shard.id),
                )
            });
            if *due.entry(shard.id).or_insert(now) > now {
                continue;
            }
            match proxy(&mut conns, &shard, "GET", "/healthz", None) {
                Ok(_) => {
                    backoffs.insert(
                        shard.id,
                        Backoff::new(
                            interval,
                            interval.saturating_mul(8),
                            0x7072_6f62_u64 ^ u64::from(shard.id),
                        ),
                    );
                    if !shard.alive.load(Ordering::SeqCst) {
                        rejoin(state, &shard);
                    }
                    due.insert(shard.id, now + interval);
                }
                Err(_) => {
                    note_shard_failure(state, &shard);
                    let delay = backoffs
                        .get_mut(&shard.id)
                        .map(Backoff::next_delay)
                        .unwrap_or(interval);
                    due.insert(shard.id, now + delay);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::service::{Server, ServerConfig};

    fn shard_config(shard_id: u16, workers: usize, spool_dir: Option<PathBuf>) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            queue_capacity: 64,
            shard_id,
            spool_dir,
            ..ServerConfig::default()
        }
    }

    fn router_over(shards: &[(&Server, u16)], spool_dir: Option<PathBuf>) -> Router {
        Router::start(&RouterConfig {
            addr: "127.0.0.1:0".into(),
            shards: shards
                .iter()
                .map(|(server, id)| (*id, server.addr().to_string()))
                .collect(),
            spool_dir,
            probe_interval: Duration::from_millis(100),
            fail_after: 1,
            ..RouterConfig::default()
        })
        .unwrap()
    }

    fn job_body(seed: u64) -> Value {
        Value::parse(&format!(
            r#"{{"k":2,"dataset":{{"generate":{{"n":32,"d":6,"dims":3,"seed":{}}}}},"algorithms":"harp","runs":1,"seed":7}}"#,
            seed + 1
        ))
        .unwrap()
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sspc-router-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn submissions_spread_and_ids_route_back() {
        let a = Server::start(&shard_config(0, 1, None)).unwrap();
        let b = Server::start(&shard_config(1, 1, None)).unwrap();
        let router = router_over(&[(&a, 0), (&b, 1)], None);
        let addr = router.addr().to_string();

        let mut acked = Vec::new();
        for seed in 0..8 {
            let (status, body) =
                crate::http::request(&addr, "POST", "/jobs", Some(&job_body(seed))).unwrap();
            assert_eq!(status, 202, "submit: {body:?}");
            acked.push(body.get("job").and_then(Value::as_u64).unwrap());
        }
        let shards_hit: std::collections::BTreeSet<u16> =
            acked.iter().map(|&id| shard_of(id)).collect();
        assert_eq!(
            shards_hit.into_iter().collect::<Vec<_>>(),
            vec![0, 1],
            "8 submissions should land on both shards"
        );
        let mut client = Client::new(&addr);
        for &id in &acked {
            let doc = client
                .wait_for(id, Duration::from_millis(5), Duration::from_secs(60))
                .unwrap();
            assert_eq!(doc.get("status").and_then(Value::as_str), Some("done"));
            assert_eq!(doc.get("job").and_then(Value::as_u64), Some(id));
        }
        router.shutdown();
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn healthz_fans_in_and_list_scatters() {
        let a = Server::start(&shard_config(0, 1, None)).unwrap();
        let b = Server::start(&shard_config(1, 1, None)).unwrap();
        let router = router_over(&[(&a, 0), (&b, 1)], None);
        let addr = router.addr().to_string();

        let mut client = Client::new(&addr);
        let mut ids = Vec::new();
        for seed in 0..6 {
            ids.push(client.submit(&job_body(seed)).unwrap());
        }
        for &id in &ids {
            client
                .wait_for(id, Duration::from_millis(5), Duration::from_secs(60))
                .unwrap();
        }

        let health = client.healthz().unwrap();
        assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(health.get("ready").and_then(Value::as_bool), Some(true));
        let shards = health.get("shards").and_then(Value::as_object).unwrap();
        assert_eq!(shards.len(), 2);
        assert!(shards.contains_key("0") && shards.contains_key("1"));
        let router_section = health.get("router").unwrap();
        assert_eq!(
            router_section.get("shards_alive").and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(
            lookup(&health, &["jobs", "completed"]).and_then(Value::as_u64),
            Some(6)
        );
        // Sum of both shards' default queue capacity.
        assert_eq!(
            lookup(&health, &["queue", "capacity"]).and_then(Value::as_u64),
            Some(128)
        );

        let listed = client.list_jobs(Some("done"), Some(10)).unwrap();
        assert_eq!(listed.get("total").and_then(Value::as_u64), Some(6));
        let jobs = listed.get("jobs").and_then(Value::as_array).unwrap();
        assert_eq!(jobs.len(), 6);
        let sorted_desc = jobs.windows(2).all(|w| {
            w[0].get("job").and_then(Value::as_u64) >= w[1].get("job").and_then(Value::as_u64)
        });
        assert!(sorted_desc, "merged listing is newest-first");
        router.shutdown();
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn shard_overload_reasons_pass_through_unchanged() {
        // One shard, zero workers, queue of 1: the second submission is
        // a genuine shard-side queue_full and must arrive verbatim.
        let config = ServerConfig {
            queue_capacity: 1,
            ..shard_config(0, 0, None)
        };
        let shard = Server::start(&config).unwrap();
        let router = router_over(&[(&shard, 0)], None);
        let addr = router.addr().to_string();
        let (status, _) = crate::http::request(&addr, "POST", "/jobs", Some(&job_body(1))).unwrap();
        assert_eq!(status, 202);
        let (status, body) =
            crate::http::request(&addr, "POST", "/jobs", Some(&job_body(2))).unwrap();
        assert_eq!(status, 503);
        assert_eq!(
            body.get("reason").and_then(Value::as_str),
            Some("queue_full"),
            "shard 503 reason must pass through: {body:?}"
        );
        router.shutdown();
        shard.shutdown();
    }

    #[test]
    fn no_live_shard_sheds_with_router_reason() {
        // A shard address nobody listens on: bind, learn the port, drop.
        let dead_addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let router = Router::start(&RouterConfig {
            addr: "127.0.0.1:0".into(),
            shards: vec![(0, dead_addr)],
            fail_after: 1,
            probe_interval: Duration::from_secs(60),
            ..RouterConfig::default()
        })
        .unwrap();
        let addr = router.addr().to_string();
        let (status, body) =
            crate::http::request(&addr, "POST", "/jobs", Some(&job_body(1))).unwrap();
        assert_eq!(status, 503);
        assert_eq!(
            body.get("reason").and_then(Value::as_str),
            Some("no_shards_available"),
            "router shed: {body:?}"
        );
        let (status, health) = crate::http::request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            health.get("status").and_then(Value::as_str),
            Some("degraded")
        );
        assert_eq!(health.get("ready").and_then(Value::as_bool), Some(false));
        router.shutdown();
    }

    #[test]
    fn dead_shard_jobs_fail_over_and_keep_their_ids() {
        let spool = temp_dir("failover");
        // Shard 0 has no workers: everything it acks stays queued —
        // acked-but-unfinished debt. Shard 1 can actually work.
        let stuck = Server::start(&shard_config(0, 0, Some(spool.clone()))).unwrap();
        let healthy = Server::start(&shard_config(1, 2, Some(spool.clone()))).unwrap();
        let router = router_over(&[(&stuck, 0), (&healthy, 1)], Some(spool.clone()));
        let addr = router.addr().to_string();

        let mut client = Client::new(&addr);
        let mut ids = Vec::new();
        for seed in 0..8 {
            ids.push(client.submit(&job_body(seed)).unwrap());
        }
        let on_stuck: Vec<u64> = ids
            .iter()
            .copied()
            .filter(|&id| shard_of(id) == 0)
            .collect();
        assert!(
            !on_stuck.is_empty(),
            "some of 8 submissions must land on shard 0"
        );

        stuck.shutdown();
        // Every acked job — including those acked by the now-dead shard
        // — completes, and answers under its original id.
        for &id in &ids {
            let doc = client
                .wait_for(id, Duration::from_millis(5), Duration::from_secs(60))
                .unwrap();
            assert_eq!(
                doc.get("status").and_then(Value::as_str),
                Some("done"),
                "job {id}: {doc:?}"
            );
            assert_eq!(doc.get("job").and_then(Value::as_u64), Some(id));
            assert!(doc.get("result").is_some());
        }
        let health = client.healthz().unwrap();
        assert_eq!(
            lookup(&health, &["router", "replayed_jobs"]).and_then(Value::as_u64),
            Some(on_stuck.len() as u64)
        );
        router.shutdown();
        healthy.shutdown();
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn runtime_join_and_graceful_leave_keep_every_acked_id_servable() {
        let spool = temp_dir("membership");
        let a = Server::start(&shard_config(0, 1, Some(spool.clone()))).unwrap();
        let b = Server::start(&shard_config(1, 1, Some(spool.clone()))).unwrap();
        let router = router_over(&[(&a, 0), (&b, 1)], Some(spool.clone()));
        let addr = router.addr().to_string();
        let mut client = Client::new(&addr);

        // First wave is acked by the static two-shard roster.
        let mut ids = Vec::new();
        for seed in 0..6 {
            ids.push(client.submit(&job_body(seed)).unwrap());
        }

        // Runtime join of shard 2 while the first wave may still run.
        let c = Server::start(&shard_config(2, 1, Some(spool.clone()))).unwrap();
        let join_body = Value::object()
            .with("shard", 2u64)
            .with("addr", c.addr().to_string());
        let (status, joined) =
            crate::http::request(&addr, "POST", "/admin/shards", Some(&join_body)).unwrap();
        assert_eq!(status, 200, "join: {joined:?}");
        assert_eq!(
            joined.get("membership").and_then(Value::as_str),
            Some("active")
        );
        assert!(joined.get("handoff_seconds").is_some());

        // A duplicate join of the same shard id is refused.
        let (status, _) =
            crate::http::request(&addr, "POST", "/admin/shards", Some(&join_body)).unwrap();
        assert_eq!(status, 409);

        // The joiner takes (some of) the second wave.
        for seed in 6..18 {
            ids.push(client.submit(&job_body(seed)).unwrap());
        }
        assert!(
            ids.iter().any(|&id| shard_of(id) == 2),
            "the joiner owns part of the keyspace: {ids:?}"
        );
        let health = client.healthz().unwrap();
        let shards = health.get("shards").and_then(Value::as_object).unwrap();
        assert_eq!(shards.len(), 3, "roster grew: {health}");
        assert_eq!(
            lookup(&health, &["shards", "2", "membership"]).and_then(Value::as_str),
            Some("active")
        );

        // Graceful leave of shard 1, possibly mid-flight: its keys hand
        // off to the survivors.
        let (status, left) =
            crate::http::request(&addr, "DELETE", "/admin/shards/1", None).unwrap();
        assert_eq!(status, 200, "leave: {left:?}");
        assert_eq!(left.get("membership").and_then(Value::as_str), Some("gone"));

        // Every acked id — including those acked by the departed shard —
        // still completes under its original id.
        for &id in &ids {
            let doc = client
                .wait_for(id, Duration::from_millis(5), Duration::from_secs(60))
                .unwrap_or_else(|e| panic!("job {id} after membership churn: {e}"));
            assert_eq!(
                doc.get("status").and_then(Value::as_str),
                Some("done"),
                "job {id}: {doc:?}"
            );
            assert_eq!(doc.get("job").and_then(Value::as_u64), Some(id));
        }

        // The roster shrank, nothing ever failed over, and both
        // membership changes went through the handoff path.
        let health = client.healthz().unwrap();
        let shards = health.get("shards").and_then(Value::as_object).unwrap();
        assert_eq!(shards.len(), 2, "roster shrank: {health}");
        assert_eq!(
            lookup(&health, &["router", "failovers"]).and_then(Value::as_u64),
            Some(0),
            "membership churn is not failover: {health}"
        );
        assert_eq!(
            lookup(&health, &["router", "handoffs"]).and_then(Value::as_u64),
            Some(2),
            "one join cutover + one leave cutover: {health}"
        );
        router.shutdown();
        a.shutdown();
        b.shutdown();
        c.shutdown();
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn dead_mode_leave_runs_failover_and_forgets_the_shard() {
        let spool = temp_dir("deadleave");
        // Shard 0 acks but never works; shard 1 does the work.
        let stuck = Server::start(&shard_config(0, 0, Some(spool.clone()))).unwrap();
        let healthy = Server::start(&shard_config(1, 2, Some(spool.clone()))).unwrap();
        let router = router_over(&[(&stuck, 0), (&healthy, 1)], Some(spool.clone()));
        let addr = router.addr().to_string();
        let mut client = Client::new(&addr);
        let ids: Vec<u64> = (0..8)
            .map(|s| client.submit(&job_body(s)).unwrap())
            .collect();
        assert!(ids.iter().any(|&id| shard_of(id) == 0));

        stuck.shutdown();
        let (status, gone) =
            crate::http::request(&addr, "DELETE", "/admin/shards/0?mode=dead", None).unwrap();
        assert_eq!(status, 200, "dead removal: {gone:?}");
        assert_eq!(gone.get("mode").and_then(Value::as_str), Some("dead"));
        for &id in &ids {
            let doc = client
                .wait_for(id, Duration::from_millis(5), Duration::from_secs(60))
                .unwrap();
            assert_eq!(doc.get("status").and_then(Value::as_str), Some("done"));
            assert_eq!(doc.get("job").and_then(Value::as_u64), Some(id));
        }
        let health = client.healthz().unwrap();
        let shards = health.get("shards").and_then(Value::as_object).unwrap();
        assert_eq!(shards.len(), 1, "the dead shard is forgotten: {health}");

        // Removing the last shard is refused.
        let (status, refused) =
            crate::http::request(&addr, "DELETE", "/admin/shards/1", None).unwrap();
        assert_eq!(status, 400, "last shard: {refused:?}");
        router.shutdown();
        healthy.shutdown();
        let _ = std::fs::remove_dir_all(&spool);
    }
}
