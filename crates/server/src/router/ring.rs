//! Deterministic consistent-hash ring over shard ids.
//!
//! The ring places [`Ring::DEFAULT_VNODES`] virtual nodes per shard on a
//! 64-bit circle (points come from a splitmix64 mix of the shard id and
//! the replica index — no RNG, no per-process state, so every router
//! instance agrees on the layout). Routing a key walks clockwise to the
//! first virtual node at or after the key's hash.
//!
//! Two invariants make this the right structure for shard failover, and
//! both are proptested below:
//!
//! * **balance** — with enough virtual nodes every shard owns a
//!   comparable slice of the key space;
//! * **minimal disruption** — removing a shard only moves the keys that
//!   routed *to it* (its virtual nodes vanish; every other point is
//!   untouched), and adding a shard only moves keys *onto* the newcomer.

use std::collections::BTreeSet;

/// The same finalizer used by [`crate::backoff`]: cheap, well mixed, and
/// deterministic across processes — exactly what ring placement needs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Where shard `shard`'s `replica`-th virtual node sits on the circle.
fn vnode_point(shard: u16, replica: u64) -> u64 {
    splitmix64((u64::from(shard) << 32) ^ replica ^ 0x5370_6c69_7452_696e)
}

/// Where a routing key lands on the circle.
fn key_point(key: u64) -> u64 {
    splitmix64(key ^ 0x4b65_7950_6f69_6e74)
}

/// A consistent-hash ring over shard ids. Mutating it (shard death,
/// rejoin) is cheap enough to do under a lock on the failover path.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Virtual nodes sorted by circle position; ties broken by shard id
    /// so iteration order is fully deterministic.
    vnodes: Vec<(u64, u16)>,
    shards: BTreeSet<u16>,
    vnodes_per_shard: usize,
}

impl Ring {
    /// Virtual nodes per shard: enough that 2–8 shards balance within a
    /// small constant factor, small enough that rebuilds are free.
    pub const DEFAULT_VNODES: usize = 64;

    /// Builds a ring over `shards` with `vnodes_per_shard` virtual nodes
    /// each (0 is clamped to 1). Duplicate shard ids collapse.
    pub fn new(shards: impl IntoIterator<Item = u16>, vnodes_per_shard: usize) -> Ring {
        let mut ring = Ring {
            vnodes: Vec::new(),
            shards: BTreeSet::new(),
            vnodes_per_shard: vnodes_per_shard.max(1),
        };
        for shard in shards {
            ring.add(shard);
        }
        ring
    }

    /// Adds a shard (no-op when already present). Only keys that now hash
    /// to the newcomer move; every existing point is untouched.
    pub fn add(&mut self, shard: u16) {
        if !self.shards.insert(shard) {
            return;
        }
        for replica in 0..self.vnodes_per_shard as u64 {
            let point = (vnode_point(shard, replica), shard);
            let at = self.vnodes.partition_point(|p| *p < point);
            self.vnodes.insert(at, point);
        }
    }

    /// Removes a shard (no-op when absent). Only keys that routed to it
    /// move — to whichever shard owns the next point clockwise.
    pub fn remove(&mut self, shard: u16) {
        if self.shards.remove(&shard) {
            self.vnodes.retain(|&(_, s)| s != shard);
        }
    }

    /// Whether `shard` is currently on the ring.
    pub fn contains(&self, shard: u16) -> bool {
        self.shards.contains(&shard)
    }

    /// Shards currently on the ring, ascending.
    pub fn shards(&self) -> Vec<u16> {
        self.shards.iter().copied().collect()
    }

    /// Number of shards on the ring.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring has no shards at all.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard owning `key`: the first virtual node at or after the
    /// key's circle position, wrapping at the top. `None` on an empty
    /// ring.
    pub fn route(&self, key: u64) -> Option<u16> {
        let point = key_point(key);
        let at = self.vnodes.partition_point(|&(p, _)| p < point);
        self.vnodes
            .get(at)
            .or_else(|| self.vnodes.first())
            .map(|&(_, shard)| shard)
    }

    /// Every shard in preference order for `key`: the owner first, then
    /// each further shard in the order their virtual nodes appear
    /// clockwise. Failover walks this list so a dead owner's keys land
    /// deterministically.
    pub fn candidates(&self, key: u64) -> Vec<u16> {
        let point = key_point(key);
        let start = self.vnodes.partition_point(|&(p, _)| p < point);
        let mut seen = BTreeSet::new();
        let mut order = Vec::new();
        for i in 0..self.vnodes.len() {
            let (_, shard) = self.vnodes[(start + i) % self.vnodes.len()];
            if seen.insert(shard) {
                order.push(shard);
                if order.len() == self.shards.len() {
                    break;
                }
            }
        }
        order
    }

    /// The first virtual node at or after `point` (wrapping), as an index
    /// into `vnodes`. `None` on an empty ring.
    fn successor(&self, point: u64) -> Option<usize> {
        if self.vnodes.is_empty() {
            return None;
        }
        let at = self.vnodes.partition_point(|&(p, _)| p < point);
        Some(at % self.vnodes.len())
    }
}

/// One key the membership change moves: where it routed before, where it
/// routes after.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MovedKey {
    /// The routing key (a job id on the failover/handoff paths).
    pub key: u64,
    /// The shard that owned the key on the old ring.
    pub from: u16,
    /// The shard that owns the key on the new ring.
    pub to: u16,
}

/// The rebalance plan for a ring delta: exactly the keys of `keys` whose
/// owner changes between `before` and `after`, with both owners. Every
/// other key is untouched — this is the minimal-disruption property made
/// operational, and the plan-level proptest below holds it to a
/// plan-vs-`route()` oracle.
///
/// The plan is computed from the ring **delta**, not by re-routing every
/// key twice: a key can only move when its clockwise successor vnode
/// changed — the successor on `after` is a vnode `before` did not have
/// (a join claimed the arc), or the successor on `before` is a vnode
/// `after` no longer has (a leave released it). Keys whose successor
/// vnode survives in both rings are skipped without a second lookup.
pub fn rebalance_plan(before: &Ring, after: &Ring, keys: &[u64]) -> Vec<MovedKey> {
    let mut plan = Vec::new();
    for &key in keys {
        let point = key_point(key);
        let (Some(b), Some(a)) = (before.successor(point), after.successor(point)) else {
            continue;
        };
        let succ_before = before.vnodes[b];
        let succ_after = after.vnodes[a];
        // Delta test: an unchanged successor arc cannot move the key.
        if succ_before == succ_after {
            continue;
        }
        let from = succ_before.1;
        let to = succ_after.1;
        if from != to {
            plan.push(MovedKey { key, from, to });
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn shares(ring: &Ring, keys: u64) -> BTreeMap<u16, u64> {
        let mut counts = BTreeMap::new();
        for key in 0..keys {
            *counts.entry(ring.route(key).unwrap()).or_insert(0) += 1;
        }
        counts
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = Ring::new([], Ring::DEFAULT_VNODES);
        assert!(ring.is_empty());
        assert_eq!(ring.route(7), None);
        assert!(ring.candidates(7).is_empty());
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = Ring::new([3], Ring::DEFAULT_VNODES);
        for key in 0..256 {
            assert_eq!(ring.route(key), Some(3));
        }
    }

    /// The ISSUE's explicit sizes: at N ∈ {2, 3, 8} every shard's share
    /// of 4096 keys stays within a factor of two of fair.
    #[test]
    fn balance_at_fixed_sizes() {
        for n in [2u16, 3, 8] {
            let ring = Ring::new(0..n, Ring::DEFAULT_VNODES);
            let counts = shares(&ring, 4096);
            assert_eq!(counts.len(), n as usize, "every shard owns keys");
            let fair = 4096 / u64::from(n);
            for (&shard, &count) in &counts {
                assert!(
                    count >= fair / 2 && count <= fair * 2,
                    "shard {shard} of {n} owns {count} keys (fair {fair})"
                );
            }
        }
    }

    #[test]
    fn identical_inputs_build_identical_rings() {
        let a = Ring::new([5, 9, 2], Ring::DEFAULT_VNODES);
        let b = Ring::new([2, 5, 9], Ring::DEFAULT_VNODES);
        for key in 0..1024 {
            assert_eq!(a.route(key), b.route(key));
        }
    }

    proptest! {
        /// Balance holds for arbitrary shard id sets, not just 0..n:
        /// every shard owns at least a quarter and at most four times its
        /// fair share of 4096 keys.
        #[test]
        fn balance_for_arbitrary_ids(ids in prop::collection::vec(any::<u16>(), 2..9)) {
            let mut distinct: Vec<u16> = ids.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assume!(distinct.len() >= 2);
            let ring = Ring::new(distinct.iter().copied(), Ring::DEFAULT_VNODES);
            let counts = shares(&ring, 4096);
            prop_assert_eq!(counts.len(), distinct.len());
            let fair = 4096 / distinct.len() as u64;
            for (&shard, &count) in &counts {
                prop_assert!(
                    count >= fair / 4 && count <= fair * 4,
                    "shard {} owns {} keys (fair {})", shard, count, fair
                );
            }
        }

        /// Removing a shard moves exactly the keys that routed to it:
        /// every other key keeps its owner.
        #[test]
        fn removal_moves_only_the_departing_shards_keys(
            ids in prop::collection::vec(any::<u16>(), 2..9),
            victim_index in 0usize..8,
            keys in prop::collection::vec(0u64..1_000_000, 64..257),
        ) {
            let mut distinct: Vec<u16> = ids.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assume!(distinct.len() >= 2);
            let victim = distinct[victim_index % distinct.len()];
            let before = Ring::new(distinct.iter().copied(), Ring::DEFAULT_VNODES);
            let mut after = before.clone();
            after.remove(victim);
            for &key in &keys {
                let owner = before.route(key).unwrap();
                if owner != victim {
                    prop_assert_eq!(after.route(key), Some(owner));
                } else {
                    prop_assert!(after.route(key) != Some(victim));
                }
            }
        }

        /// Adding a shard only moves keys onto the newcomer: a key that
        /// does not route to the new shard keeps its previous owner.
        #[test]
        fn addition_moves_keys_only_onto_the_newcomer(
            ids in prop::collection::vec(any::<u16>(), 2..9),
            newcomer in any::<u16>(),
            keys in prop::collection::vec(0u64..1_000_000, 64..257),
        ) {
            let mut distinct: Vec<u16> = ids.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assume!(distinct.len() >= 2 && !distinct.contains(&newcomer));
            let before = Ring::new(distinct.iter().copied(), Ring::DEFAULT_VNODES);
            let mut after = before.clone();
            after.add(newcomer);
            for &key in &keys {
                let now = after.route(key).unwrap();
                if now != newcomer {
                    prop_assert_eq!(Some(now), before.route(key));
                }
            }
        }

        /// The plan-level oracle (ISSUE 9): across a random roster and a
        /// random join/leave sequence, `rebalance_plan` names **exactly**
        /// the keys whose `route()` owner changed — no key moved that the
        /// routes say stayed, no key stayed that the routes say moved,
        /// and every moved key's `from`/`to` match the two routes. And
        /// each step moves at most `⌈keys/N⌉·2` keys (N = shards on the
        /// larger of the two rings): a join claims at most the
        /// newcomer's balanced share, a leave releases at most the
        /// departer's.
        #[test]
        fn rebalance_plan_is_exactly_the_owner_delta_and_bounded(
            ids in prop::collection::vec(0u16..16, 2..6),
            steps in prop::collection::vec((any::<bool>(), 0u16..16), 1..6),
        ) {
            let mut distinct: Vec<u16> = ids.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assume!(distinct.len() >= 2);
            let keys: Vec<u64> = (0..4096).collect();
            let mut ring = Ring::new(distinct.iter().copied(), Ring::DEFAULT_VNODES);
            for (join, shard) in steps {
                let before = ring.clone();
                if join {
                    ring.add(shard);
                } else {
                    if ring.len() == 1 && ring.contains(shard) {
                        continue; // keep the ring routable
                    }
                    ring.remove(shard);
                }
                let plan = rebalance_plan(&before, &ring, &keys);
                let planned: std::collections::BTreeMap<u64, (u16, u16)> =
                    plan.iter().map(|m| (m.key, (m.from, m.to))).collect();
                prop_assert_eq!(planned.len(), plan.len(), "no key planned twice");
                for &key in &keys {
                    let was = before.route(key).unwrap();
                    let now = ring.route(key).unwrap();
                    match planned.get(&key) {
                        Some(&(from, to)) => {
                            prop_assert_ne!(was, now, "planned key {} did not move", key);
                            prop_assert_eq!((from, to), (was, now));
                        }
                        None => prop_assert_eq!(was, now, "unplanned key {} moved", key),
                    }
                }
                let n = before.len().max(ring.len());
                let bound = 2 * keys.len().div_ceil(n);
                prop_assert!(
                    plan.len() <= bound,
                    "{} keys moved across {} shards (bound {})",
                    plan.len(), n, bound
                );
            }
        }

        /// `candidates` starts with the owner and enumerates every shard
        /// exactly once, deterministically.
        #[test]
        fn candidates_enumerate_every_shard_owner_first(
            ids in prop::collection::vec(any::<u16>(), 2..9),
            key in 0u64..1_000_000,
        ) {
            let mut distinct: Vec<u16> = ids.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assume!(distinct.len() >= 2);
            let ring = Ring::new(distinct.iter().copied(), Ring::DEFAULT_VNODES);
            let order = ring.candidates(key);
            prop_assert_eq!(order.len(), distinct.len());
            prop_assert_eq!(order.first().copied(), ring.route(key));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, distinct);
        }
    }
}
