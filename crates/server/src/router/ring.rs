//! Deterministic consistent-hash ring over shard ids.
//!
//! The ring places [`Ring::DEFAULT_VNODES`] virtual nodes per shard on a
//! 64-bit circle (points come from a splitmix64 mix of the shard id and
//! the replica index — no RNG, no per-process state, so every router
//! instance agrees on the layout). Routing a key walks clockwise to the
//! first virtual node at or after the key's hash.
//!
//! Two invariants make this the right structure for shard failover, and
//! both are proptested below:
//!
//! * **balance** — with enough virtual nodes every shard owns a
//!   comparable slice of the key space;
//! * **minimal disruption** — removing a shard only moves the keys that
//!   routed *to it* (its virtual nodes vanish; every other point is
//!   untouched), and adding a shard only moves keys *onto* the newcomer.

use std::collections::BTreeSet;

/// The same finalizer used by [`crate::backoff`]: cheap, well mixed, and
/// deterministic across processes — exactly what ring placement needs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Where shard `shard`'s `replica`-th virtual node sits on the circle.
fn vnode_point(shard: u16, replica: u64) -> u64 {
    splitmix64((u64::from(shard) << 32) ^ replica ^ 0x5370_6c69_7452_696e)
}

/// Where a routing key lands on the circle.
fn key_point(key: u64) -> u64 {
    splitmix64(key ^ 0x4b65_7950_6f69_6e74)
}

/// A consistent-hash ring over shard ids. Mutating it (shard death,
/// rejoin) is cheap enough to do under a lock on the failover path.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Virtual nodes sorted by circle position; ties broken by shard id
    /// so iteration order is fully deterministic.
    vnodes: Vec<(u64, u16)>,
    shards: BTreeSet<u16>,
    vnodes_per_shard: usize,
}

impl Ring {
    /// Virtual nodes per shard: enough that 2–8 shards balance within a
    /// small constant factor, small enough that rebuilds are free.
    pub const DEFAULT_VNODES: usize = 64;

    /// Builds a ring over `shards` with `vnodes_per_shard` virtual nodes
    /// each (0 is clamped to 1). Duplicate shard ids collapse.
    pub fn new(shards: impl IntoIterator<Item = u16>, vnodes_per_shard: usize) -> Ring {
        let mut ring = Ring {
            vnodes: Vec::new(),
            shards: BTreeSet::new(),
            vnodes_per_shard: vnodes_per_shard.max(1),
        };
        for shard in shards {
            ring.add(shard);
        }
        ring
    }

    /// Adds a shard (no-op when already present). Only keys that now hash
    /// to the newcomer move; every existing point is untouched.
    pub fn add(&mut self, shard: u16) {
        if !self.shards.insert(shard) {
            return;
        }
        for replica in 0..self.vnodes_per_shard as u64 {
            let point = (vnode_point(shard, replica), shard);
            let at = self.vnodes.partition_point(|p| *p < point);
            self.vnodes.insert(at, point);
        }
    }

    /// Removes a shard (no-op when absent). Only keys that routed to it
    /// move — to whichever shard owns the next point clockwise.
    pub fn remove(&mut self, shard: u16) {
        if self.shards.remove(&shard) {
            self.vnodes.retain(|&(_, s)| s != shard);
        }
    }

    /// Whether `shard` is currently on the ring.
    pub fn contains(&self, shard: u16) -> bool {
        self.shards.contains(&shard)
    }

    /// Shards currently on the ring, ascending.
    pub fn shards(&self) -> Vec<u16> {
        self.shards.iter().copied().collect()
    }

    /// Number of shards on the ring.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring has no shards at all.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard owning `key`: the first virtual node at or after the
    /// key's circle position, wrapping at the top. `None` on an empty
    /// ring.
    pub fn route(&self, key: u64) -> Option<u16> {
        let point = key_point(key);
        let at = self.vnodes.partition_point(|&(p, _)| p < point);
        self.vnodes
            .get(at)
            .or_else(|| self.vnodes.first())
            .map(|&(_, shard)| shard)
    }

    /// Every shard in preference order for `key`: the owner first, then
    /// each further shard in the order their virtual nodes appear
    /// clockwise. Failover walks this list so a dead owner's keys land
    /// deterministically.
    pub fn candidates(&self, key: u64) -> Vec<u16> {
        let point = key_point(key);
        let start = self.vnodes.partition_point(|&(p, _)| p < point);
        let mut seen = BTreeSet::new();
        let mut order = Vec::new();
        for i in 0..self.vnodes.len() {
            let (_, shard) = self.vnodes[(start + i) % self.vnodes.len()];
            if seen.insert(shard) {
                order.push(shard);
                if order.len() == self.shards.len() {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn shares(ring: &Ring, keys: u64) -> BTreeMap<u16, u64> {
        let mut counts = BTreeMap::new();
        for key in 0..keys {
            *counts.entry(ring.route(key).unwrap()).or_insert(0) += 1;
        }
        counts
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = Ring::new([], Ring::DEFAULT_VNODES);
        assert!(ring.is_empty());
        assert_eq!(ring.route(7), None);
        assert!(ring.candidates(7).is_empty());
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = Ring::new([3], Ring::DEFAULT_VNODES);
        for key in 0..256 {
            assert_eq!(ring.route(key), Some(3));
        }
    }

    /// The ISSUE's explicit sizes: at N ∈ {2, 3, 8} every shard's share
    /// of 4096 keys stays within a factor of two of fair.
    #[test]
    fn balance_at_fixed_sizes() {
        for n in [2u16, 3, 8] {
            let ring = Ring::new(0..n, Ring::DEFAULT_VNODES);
            let counts = shares(&ring, 4096);
            assert_eq!(counts.len(), n as usize, "every shard owns keys");
            let fair = 4096 / u64::from(n);
            for (&shard, &count) in &counts {
                assert!(
                    count >= fair / 2 && count <= fair * 2,
                    "shard {shard} of {n} owns {count} keys (fair {fair})"
                );
            }
        }
    }

    #[test]
    fn identical_inputs_build_identical_rings() {
        let a = Ring::new([5, 9, 2], Ring::DEFAULT_VNODES);
        let b = Ring::new([2, 5, 9], Ring::DEFAULT_VNODES);
        for key in 0..1024 {
            assert_eq!(a.route(key), b.route(key));
        }
    }

    proptest! {
        /// Balance holds for arbitrary shard id sets, not just 0..n:
        /// every shard owns at least a quarter and at most four times its
        /// fair share of 4096 keys.
        #[test]
        fn balance_for_arbitrary_ids(ids in prop::collection::vec(any::<u16>(), 2..9)) {
            let mut distinct: Vec<u16> = ids.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assume!(distinct.len() >= 2);
            let ring = Ring::new(distinct.iter().copied(), Ring::DEFAULT_VNODES);
            let counts = shares(&ring, 4096);
            prop_assert_eq!(counts.len(), distinct.len());
            let fair = 4096 / distinct.len() as u64;
            for (&shard, &count) in &counts {
                prop_assert!(
                    count >= fair / 4 && count <= fair * 4,
                    "shard {} owns {} keys (fair {})", shard, count, fair
                );
            }
        }

        /// Removing a shard moves exactly the keys that routed to it:
        /// every other key keeps its owner.
        #[test]
        fn removal_moves_only_the_departing_shards_keys(
            ids in prop::collection::vec(any::<u16>(), 2..9),
            victim_index in 0usize..8,
            keys in prop::collection::vec(0u64..1_000_000, 64..257),
        ) {
            let mut distinct: Vec<u16> = ids.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assume!(distinct.len() >= 2);
            let victim = distinct[victim_index % distinct.len()];
            let before = Ring::new(distinct.iter().copied(), Ring::DEFAULT_VNODES);
            let mut after = before.clone();
            after.remove(victim);
            for &key in &keys {
                let owner = before.route(key).unwrap();
                if owner != victim {
                    prop_assert_eq!(after.route(key), Some(owner));
                } else {
                    prop_assert!(after.route(key) != Some(victim));
                }
            }
        }

        /// Adding a shard only moves keys onto the newcomer: a key that
        /// does not route to the new shard keeps its previous owner.
        #[test]
        fn addition_moves_keys_only_onto_the_newcomer(
            ids in prop::collection::vec(any::<u16>(), 2..9),
            newcomer in any::<u16>(),
            keys in prop::collection::vec(0u64..1_000_000, 64..257),
        ) {
            let mut distinct: Vec<u16> = ids.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assume!(distinct.len() >= 2 && !distinct.contains(&newcomer));
            let before = Ring::new(distinct.iter().copied(), Ring::DEFAULT_VNODES);
            let mut after = before.clone();
            after.add(newcomer);
            for &key in &keys {
                let now = after.route(key).unwrap();
                if now != newcomer {
                    prop_assert_eq!(Some(now), before.route(key));
                }
            }
        }

        /// `candidates` starts with the owner and enumerates every shard
        /// exactly once, deterministically.
        #[test]
        fn candidates_enumerate_every_shard_owner_first(
            ids in prop::collection::vec(any::<u16>(), 2..9),
            key in 0u64..1_000_000,
        ) {
            let mut distinct: Vec<u16> = ids.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assume!(distinct.len() >= 2);
            let ring = Ring::new(distinct.iter().copied(), Ring::DEFAULT_VNODES);
            let order = ring.candidates(key);
            prop_assert_eq!(order.len(), distinct.len());
            prop_assert_eq!(order.first().copied(), ring.route(key));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, distinct);
        }
    }
}
