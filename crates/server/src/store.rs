//! The job-store layer: where submitted jobs and their results live.
//!
//! `service.rs` used to keep every job in an inline `Mutex<HashMap>`;
//! this module extracts that into an explicit, swappable seam — the
//! [`JobStore`] trait — with two implementations:
//!
//! * [`MemoryStore`] — the original behavior: everything in one
//!   process-lifetime map;
//! * [`DiskStore`] — the same map, **journaled**: every submission and
//!   every terminal transition is appended as one JSON line to
//!   `<state-dir>/journal.jsonl` with an fsync
//!   ([`sspc_common::io::append_line_durable`]), replayed on startup
//!   (completed results come back bit-identically; interrupted
//!   `queued`/`running` jobs are re-enqueued), and compacted on boot into
//!   a journal holding only live records
//!   ([`sspc_common::io::write_atomic`]).
//!
//! Both stores share the same [eviction policy](EvictionPolicy) layered
//! on top of the map: finished jobs expire `result_ttl` after completion
//! (checked lazily on every read and on submission), and `max_jobs` caps
//! the store by evicting the oldest *finished* jobs first — queued and
//! running jobs are never evicted. Evictions are journaled too, so a
//! restart does not resurrect them.
//!
//! # Journal format
//!
//! One JSON object per line, in event order:
//!
//! ```json
//! {"event":"submit","job":3,"at":1721901000.5,"spec":{...}}
//! {"event":"done","job":3,"at":1721901002.1,"seconds":1.37,"result":{...}}
//! {"event":"failed","job":4,"at":1721901003.0,"error":"..."}
//! {"event":"evict","job":3}
//! ```
//!
//! `spec` is the client's original submission document, so replay
//! revalidates through the same [`JobSpec::from_json`] path as a live
//! submission. A torn final line (a crash mid-append) is tolerated and
//! dropped; corruption anywhere else is a startup error. The parser's
//! nesting-depth limit bounds replay recursion on hostile state files.
//!
//! # Degraded mode
//!
//! A journal write that fails at runtime (disk full, volume gone) flips
//! the disk store **read-only** instead of taking the process down:
//! existing documents keep being served, but new submissions are refused
//! ([`JobStore::degraded`], surfaced as `/healthz` readiness and 503s),
//! and a completion whose `done` line could not be journaled is demoted
//! to `failed` — serving a result that a restart would forget would be a
//! silent lie. A restart (with the disk repaired) recovers.

use crate::job::JobSpec;
use sspc_common::io::{append_line_durable, write_atomic};
use sspc_common::json::Value;
use sspc_common::{Error, Result};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Lifecycle of one job.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// Executing on a worker right now.
    Running,
    /// Finished successfully.
    Done {
        /// The result document served under the job's `result` key.
        result: Value,
        /// Wall-clock execution seconds.
        seconds: f64,
    },
    /// Finished with an error.
    Failed {
        /// The failure message served under the job's `error` key.
        error: String,
    },
}

impl JobStatus {
    /// The wire name (`queued` / `running` / `done` / `failed`).
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done { .. } => "done",
            JobStatus::Failed { .. } => "failed",
        }
    }

    fn is_finished(&self) -> bool {
        matches!(self, JobStatus::Done { .. } | JobStatus::Failed { .. })
    }
}

/// One tracked job: the parsed spec, the client's original submission
/// document (what the disk store journals), and the current status.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Parsed, validated spec (what workers execute).
    pub spec: JobSpec,
    /// The original submission JSON (what replay re-parses).
    pub raw: Value,
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Submission wall-clock time (seconds since the Unix epoch).
    pub submitted_at: f64,
    /// Terminal-transition wall-clock time; `None` until finished.
    pub finished_at: Option<f64>,
}

impl JobRecord {
    /// The status document served by `GET /jobs/<id>`; `result` appears
    /// only once done (and only when `with_result`), `error` only once
    /// failed. Built purely from journaled fields, so the document is
    /// byte-identical before and after a restart.
    pub fn to_value(&self, id: u64, with_result: bool) -> Value {
        let algorithms: Vec<Value> = self
            .spec
            .algorithms
            .iter()
            .map(|a| Value::from(a.as_str()))
            .collect();
        let mut v = Value::object()
            .with("job", id)
            .with("algorithms", algorithms)
            .with("runs", self.spec.runs)
            .with("seed", self.spec.seed)
            .with("status", self.status.name());
        match &self.status {
            JobStatus::Done { result, seconds } => {
                v = v.with("seconds", *seconds);
                if with_result {
                    v = v.with("result", result.clone());
                }
            }
            JobStatus::Failed { error } => {
                v = v.with("error", error.as_str());
            }
            JobStatus::Queued | JobStatus::Running => {}
        }
        v
    }
}

/// When finished jobs leave the store.
#[derive(Debug, Clone, Default)]
pub struct EvictionPolicy {
    /// Evict a finished job this long after it finished. `None` keeps
    /// results forever (the pre-PR-5 behavior).
    pub result_ttl: Option<Duration>,
    /// Hard cap on stored jobs; exceeding it evicts the oldest *finished*
    /// jobs first. Queued/running jobs are never evicted, so the store
    /// can transiently exceed the cap when everything in it is live work.
    pub max_jobs: Option<usize>,
}

/// Where jobs and results live — the swappable seam between the service
/// and its persistence. All methods take `&self`; implementations are
/// internally synchronized (the service shares one store across the
/// acceptor, handler, and worker threads).
pub trait JobStore: Send + Sync {
    /// Tracks a new job as `queued`.
    ///
    /// # Errors
    ///
    /// Journal-write failures (disk store); the service answers `500`.
    fn insert(&self, id: u64, spec: JobSpec, raw: Value) -> Result<()>;

    /// Forgets a job whose queue push was refused (it was never really
    /// admitted).
    fn forget(&self, id: u64);

    /// Marks the job `running` and returns the spec to execute; `None`
    /// when the job has vanished (evicted between pop and begin).
    fn begin(&self, id: u64) -> Option<JobSpec>;

    /// Records a successful completion.
    fn complete(&self, id: u64, result: Value, seconds: f64);

    /// Records a failure.
    fn fail(&self, id: u64, error: String);

    /// The rendered status document (with the result payload), or `None`
    /// for unknown/evicted/expired ids. Expiry is checked lazily here, so
    /// a TTL-expired job 404s even if no sweep ran since it expired.
    fn get(&self, id: u64) -> Option<Value>;

    /// Summaries (no result payloads), newest first, optionally filtered
    /// by status name, capped at `limit`. Returns `(total_matching,
    /// capped_items)` so clients can detect truncation.
    fn list(&self, status: Option<&str>, limit: usize) -> (usize, Vec<Value>);

    /// The `/healthz` `store` section: kind, held-job count, eviction
    /// counter, and the configured limits.
    fn stats(&self) -> Value;

    /// True once the store has entered read-only degraded mode (the disk
    /// store after a runtime journal-write failure): reads keep working,
    /// new submissions must be refused. Memory stores never degrade.
    fn degraded(&self) -> bool {
        false
    }
}

/// Wall-clock seconds since the Unix epoch (journaled timestamps).
fn now_epoch() -> f64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0.0, |d| d.as_secs_f64())
}

/// The job map plus an index of finished jobs ordered by finish time.
///
/// The index keys are `(finished_at.to_bits(), id)` — epoch seconds are
/// non-negative, so the IEEE bit pattern is order-preserving and the set
/// iterates oldest-finished first. It makes TTL expiry O(expired · log n)
/// per call instead of a full-map scan, and cap eviction O(log n) per
/// evicted job.
#[derive(Default)]
struct CoreState {
    jobs: BTreeMap<u64, JobRecord>,
    finished: std::collections::BTreeSet<(u64, u64)>,
}

impl CoreState {
    fn index_finished(&mut self, id: u64, at: f64) {
        self.finished.insert((at.to_bits(), id));
    }

    /// Removes a job and its finished-index entry (if any).
    fn remove(&mut self, id: u64) -> Option<JobRecord> {
        let record = self.jobs.remove(&id)?;
        if let Some(at) = record.finished_at {
            self.finished.remove(&(at.to_bits(), id));
        }
        Some(record)
    }

    /// Rebuilds the finished index from the map (journal replay).
    fn reindex(&mut self) {
        self.finished = self
            .jobs
            .iter()
            .filter_map(|(id, r)| r.finished_at.map(|at| (at.to_bits(), *id)))
            .collect();
    }
}

/// The in-memory core both stores share: the job state, the eviction
/// policy, and the eviction counter. Mutation methods return the ids
/// they evicted so the disk store can journal them.
struct Core {
    state: Mutex<CoreState>,
    policy: EvictionPolicy,
    evicted: AtomicU64,
}

impl Core {
    fn new(policy: EvictionPolicy) -> Core {
        Core {
            state: Mutex::new(CoreState::default()),
            policy,
            evicted: AtomicU64::new(0),
        }
    }

    /// Drops TTL-expired finished jobs — oldest first off the finished
    /// index, stopping at the first unexpired one. Called on every read
    /// and write entry point, so expiry needs no background thread.
    fn expire_locked(&self, state: &mut CoreState) -> Vec<u64> {
        let Some(ttl) = self.policy.result_ttl else {
            return Vec::new();
        };
        let deadline = now_epoch() - ttl.as_secs_f64();
        let mut dead = Vec::new();
        while let Some(&(bits, id)) = state.finished.first() {
            if f64::from_bits(bits) > deadline {
                break;
            }
            state.finished.remove(&(bits, id));
            state.jobs.remove(&id);
            dead.push(id);
        }
        self.evicted.fetch_add(dead.len() as u64, Ordering::Relaxed);
        dead
    }

    /// Enforces `max_jobs` by evicting the oldest-*finished* jobs (by
    /// finish time, not submission order — an early-submitted job may
    /// have finished last). Called after every insert.
    fn cap_locked(&self, state: &mut CoreState) -> Vec<u64> {
        let Some(max) = self.policy.max_jobs else {
            return Vec::new();
        };
        let mut dead = Vec::new();
        while state.jobs.len() > max {
            let Some(&(bits, id)) = state.finished.first() else {
                break; // everything left is queued/running: never evicted
            };
            state.finished.remove(&(bits, id));
            state.jobs.remove(&id);
            dead.push(id);
        }
        self.evicted.fetch_add(dead.len() as u64, Ordering::Relaxed);
        dead
    }

    fn insert(&self, id: u64, record: JobRecord) -> Vec<u64> {
        let mut state = self.state.lock().expect("store poisoned");
        let mut dead = self.expire_locked(&mut state);
        state.jobs.insert(id, record);
        dead.extend(self.cap_locked(&mut state));
        dead
    }

    fn forget(&self, id: u64) -> bool {
        self.state
            .lock()
            .expect("store poisoned")
            .remove(id)
            .is_some()
    }

    fn begin(&self, id: u64) -> Option<JobSpec> {
        let mut state = self.state.lock().expect("store poisoned");
        let record = state.jobs.get_mut(&id)?;
        record.status = JobStatus::Running;
        Some(record.spec.clone())
    }

    fn finish(&self, id: u64, status: JobStatus) -> Option<f64> {
        let mut guard = self.state.lock().expect("store poisoned");
        let state = &mut *guard;
        let at = now_epoch();
        let record = state.jobs.get_mut(&id)?;
        // A re-finish (the disk store demoting an unjournalable `done` to
        // `failed`) must replace, not duplicate, the finished-index entry.
        let previous = record.finished_at.replace(at);
        record.status = status;
        if let Some(prev) = previous {
            state.finished.remove(&(prev.to_bits(), id));
        }
        state.index_finished(id, at);
        Some(at)
    }

    fn get(&self, id: u64) -> (Option<Value>, Vec<u64>) {
        let mut state = self.state.lock().expect("store poisoned");
        let dead = self.expire_locked(&mut state);
        (state.jobs.get(&id).map(|r| r.to_value(id, true)), dead)
    }

    fn list(&self, status: Option<&str>, limit: usize) -> ((usize, Vec<Value>), Vec<u64>) {
        let mut state = self.state.lock().expect("store poisoned");
        let dead = self.expire_locked(&mut state);
        let matching = |r: &&JobRecord| status.is_none_or(|s| r.status.name() == s);
        let total = state.jobs.values().filter(matching).count();
        let items: Vec<Value> = state
            .jobs
            .iter()
            .rev() // newest first: a capped listing shows recent work
            .filter(|(_, r)| matching(r))
            .take(limit)
            .map(|(id, r)| r.to_value(*id, false))
            .collect();
        ((total, items), dead)
    }

    fn stats(&self, kind: &str) -> Value {
        let mut state = self.state.lock().expect("store poisoned");
        let _ = self.expire_locked(&mut state);
        let mut v = Value::object()
            .with("kind", kind)
            .with("jobs", state.jobs.len())
            .with("evicted", self.evicted.load(Ordering::Relaxed));
        if let Some(ttl) = self.policy.result_ttl {
            v = v.with("result_ttl_seconds", ttl.as_secs_f64());
        }
        if let Some(max) = self.policy.max_jobs {
            v = v.with("max_jobs", max);
        }
        v
    }
}

/// The original store: jobs live (and die) with the process.
pub struct MemoryStore {
    core: Core,
}

impl MemoryStore {
    /// An empty in-memory store under the given eviction policy.
    pub fn new(policy: EvictionPolicy) -> MemoryStore {
        MemoryStore {
            core: Core::new(policy),
        }
    }
}

impl JobStore for MemoryStore {
    fn insert(&self, id: u64, spec: JobSpec, raw: Value) -> Result<()> {
        let _ = self.core.insert(
            id,
            JobRecord {
                spec,
                raw,
                status: JobStatus::Queued,
                submitted_at: now_epoch(),
                finished_at: None,
            },
        );
        Ok(())
    }

    fn forget(&self, id: u64) {
        self.core.forget(id);
    }

    fn begin(&self, id: u64) -> Option<JobSpec> {
        self.core.begin(id)
    }

    fn complete(&self, id: u64, result: Value, seconds: f64) {
        self.core.finish(id, JobStatus::Done { result, seconds });
    }

    fn fail(&self, id: u64, error: String) {
        self.core.finish(id, JobStatus::Failed { error });
    }

    fn get(&self, id: u64) -> Option<Value> {
        self.core.get(id).0
    }

    fn list(&self, status: Option<&str>, limit: usize) -> (usize, Vec<Value>) {
        self.core.list(status, limit).0
    }

    fn stats(&self) -> Value {
        self.core.stats("memory")
    }
}

/// What [`DiskStore::open`] recovered from the journal.
pub struct Recovery {
    /// The store, replayed and compacted, ready to serve.
    pub store: DiskStore,
    /// Jobs that were `queued`/`running` at the kill, in submission
    /// order — the service re-enqueues them.
    pub pending: Vec<u64>,
    /// The next job id to assign (max replayed id + 1).
    pub next_id: u64,
}

/// The durable store: the in-memory map plus an fsynced append-only
/// journal, replayed and compacted on open.
pub struct DiskStore {
    core: Core,
    journal: Mutex<File>,
    path: PathBuf,
    lock_path: PathBuf,
    /// Set (and never cleared — a restart recovers) by the first runtime
    /// journal-write failure: the store is then read-only.
    degraded: AtomicBool,
}

const JOURNAL_FILE: &str = "journal.jsonl";
const LOCK_FILE: &str = "lock";

/// Claims `<dir>/lock` for this process. Two live processes on one state
/// directory would corrupt each other (the second boot's compaction
/// renames the journal out from under the first's append fd, silently
/// dropping its acknowledged events), so a second open fails loudly. A
/// lock left by a dead process (crash) or by this same process (an
/// in-process restart) is taken over.
fn acquire_dir_lock(dir: &Path) -> Result<PathBuf> {
    let lock_path = dir.join(LOCK_FILE);
    let pid = std::process::id();
    for _ in 0..2 {
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock_path)
        {
            Ok(mut file) => {
                use std::io::Write;
                let _ = write!(file, "{pid}");
                return Ok(lock_path);
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder: Option<u32> = std::fs::read_to_string(&lock_path)
                    .ok()
                    .and_then(|s| s.trim().parse().ok());
                let stale = match holder {
                    Some(p) if p == pid => true, // our own earlier instance
                    // With procfs, a dead holder is detectable; without
                    // it, stay conservative and refuse.
                    Some(p) => {
                        Path::new("/proc/self").exists()
                            && !Path::new(&format!("/proc/{p}")).exists()
                    }
                    None => true, // unreadable/empty: a torn write
                };
                if !stale {
                    return Err(Error::InvalidParameter(format!(
                        "state dir {} is locked by running process {} \
                         (two servers must not share a state dir; remove `{}` if this is wrong)",
                        dir.display(),
                        holder.unwrap_or(0),
                        lock_path.display()
                    )));
                }
                let _ = std::fs::remove_file(&lock_path);
            }
            Err(e) => {
                return Err(Error::InvalidParameter(format!(
                    "cannot lock state dir {}: {e}",
                    dir.display()
                )))
            }
        }
    }
    Err(Error::InvalidParameter(format!(
        "cannot lock state dir {} (lock file keeps reappearing)",
        dir.display()
    )))
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        // Release the dir lock only if it is still ours.
        let ours = std::fs::read_to_string(&self.lock_path)
            .ok()
            .is_some_and(|s| s.trim() == std::process::id().to_string());
        if ours {
            let _ = std::fs::remove_file(&self.lock_path);
        }
    }
}

impl DiskStore {
    /// Opens (creating if needed) the state directory, claims its lock
    /// file, replays the journal, compacts it, and returns the store
    /// plus what recovery found.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when the directory is locked by
    /// another live process, on I/O failures, or on a corrupt journal
    /// (anything but a torn final line).
    pub fn open(dir: &Path, policy: EvictionPolicy) -> Result<Recovery> {
        std::fs::create_dir_all(dir).map_err(|e| {
            Error::InvalidParameter(format!("cannot create state dir {}: {e}", dir.display()))
        })?;
        let lock_path = acquire_dir_lock(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let mut jobs = BTreeMap::new();
        // Ids must never be reused, even for jobs that were evicted and
        // compacted away — a client may still hold an old id, and serving
        // it a different job's document would be silent corruption. The
        // id floor comes from the compacted journal's meta line AND the
        // max id of every submit event replayed (evicted or not).
        let mut id_floor = 1;
        if path.exists() {
            id_floor = replay(&path, &mut jobs)?;
        }
        let next_id = id_floor.max(jobs.keys().next_back().map_or(1, |id| id + 1));

        // Interrupted work re-runs: anything not finished was queued or
        // running at the kill and goes back on the queue as `queued`.
        let mut pending = Vec::new();
        for (id, record) in &mut jobs {
            if !record.status.is_finished() {
                record.status = JobStatus::Queued;
                pending.push(*id);
            }
        }

        // Results that expired while the service was down stay dead.
        let core = Core::new(policy);
        {
            let mut held = core.state.lock().expect("store poisoned");
            held.jobs = jobs;
            held.reindex();
            let _ = core.expire_locked(&mut held);
            core.evicted.store(0, Ordering::Relaxed); // counters are process-lifetime
        }

        // Boot-time compaction: rewrite the journal with only live
        // records (plus the meta line carrying the id floor), atomically,
        // then append from there.
        sspc_common::fault::point("journal.compact")?;
        let compacted = render_journal(&core.state.lock().expect("store poisoned").jobs, next_id);
        write_atomic(&path, compacted.as_bytes())?;
        let journal = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| {
                Error::InvalidParameter(format!("cannot open journal {}: {e}", path.display()))
            })?;
        Ok(Recovery {
            store: DiskStore {
                core,
                journal: Mutex::new(journal),
                path,
                lock_path,
                degraded: AtomicBool::new(false),
            },
            pending,
            next_id,
        })
    }

    /// Appends one event line to an already-locked journal, fsynced — or
    /// refuses immediately when the store has already degraded (the
    /// journal is then read-only). A write failure flips the store into
    /// degraded mode; the caller decides what the in-memory state should
    /// say about the event that could not be made durable (see
    /// `complete`).
    fn append_locked(&self, journal: &mut File, event: &Value) -> Result<()> {
        if self.degraded.load(Ordering::SeqCst) {
            return Err(Error::InvalidParameter(
                "job store is degraded (an earlier journal write failed); \
                 restart the server to recover"
                    .into(),
            ));
        }
        let result = sspc_common::fault::point("journal.append")
            .and_then(|()| append_line_durable(journal, &event.to_string()));
        if let Err(e) = &result {
            self.degrade(e);
        }
        result
    }

    /// Enters read-only degraded mode (idempotent; reported once).
    fn degrade(&self, cause: &Error) {
        if !self.degraded.swap(true, Ordering::SeqCst) {
            eprintln!(
                "sspc-server: journal write failed ({}): {cause} — store is now \
                 read-only (degraded); restart the server to recover",
                self.path.display()
            );
        }
    }

    fn append(&self, event: &Value) {
        let mut journal = self.journal.lock().expect("journal poisoned");
        // Best-effort (used for `forget` evict lines): a failure has
        // already degraded the store; on replay the forgotten job simply
        // reappears queued and re-runs, which is harmless duplicate work.
        let _ = self.append_locked(&mut journal, event);
    }

    /// Journals a batch of evictions as one write + one fsync. Lazy TTL
    /// expiry can surface thousands of evictions on a single read after
    /// an idle period; per-line fsyncs would stall that request (and
    /// every other journal writer) for seconds.
    fn append_evictions(&self, dead: &[u64]) {
        if dead.is_empty() || self.degraded.load(Ordering::SeqCst) {
            // Degraded: the in-memory eviction already happened, and the
            // stale on-disk records are part of the documented degraded
            // contract (a restart resurrects what the journal still has).
            return;
        }
        let mut block = String::new();
        for id in dead {
            block.push_str(
                &Value::object()
                    .with("event", "evict")
                    .with("job", *id)
                    .to_string(),
            );
            block.push('\n');
        }
        use std::io::Write;
        let mut journal = self.journal.lock().expect("journal poisoned");
        if let Err(e) = journal
            .write_all(block.as_bytes())
            .and_then(|()| journal.sync_data())
        {
            self.degrade(&Error::InvalidParameter(format!("durable append: {e}")));
        }
    }
}

impl JobStore for DiskStore {
    fn insert(&self, id: u64, spec: JobSpec, raw: Value) -> Result<()> {
        let at = now_epoch();
        // Journal first: a job the journal never saw must not be
        // admitted, or a restart would silently drop it.
        let event = Value::object()
            .with("event", "submit")
            .with("job", id)
            .with("at", at)
            .with("spec", raw.clone());
        {
            let mut journal = self.journal.lock().expect("journal poisoned");
            self.append_locked(&mut journal, &event)?;
        }
        let dead = self.core.insert(
            id,
            JobRecord {
                spec,
                raw,
                status: JobStatus::Queued,
                submitted_at: at,
                finished_at: None,
            },
        );
        self.append_evictions(&dead);
        Ok(())
    }

    fn forget(&self, id: u64) {
        if self.core.forget(id) {
            self.append(&Value::object().with("event", "evict").with("job", id));
        }
    }

    fn begin(&self, id: u64) -> Option<JobSpec> {
        // `running` is transient and deliberately not journaled: on
        // replay it is indistinguishable from `queued` (re-enqueue).
        self.core.begin(id)
    }

    fn complete(&self, id: u64, result: Value, seconds: f64) {
        // Hold the journal lock ACROSS the state transition and the
        // append. A concurrent evicter only sees the job as finished
        // (evictable) after `finish` runs — which happens while we hold
        // the journal lock — so its `evict` line necessarily lands after
        // our `done` line and the on-disk order matches memory order.
        // (A done-after-evict journal would refuse to replay cleanly.)
        let mut journal = self.journal.lock().expect("journal poisoned");
        let Some(at) = self.core.finish(
            id,
            JobStatus::Done {
                result: result.clone(),
                seconds,
            },
        ) else {
            return;
        };
        let event = Value::object()
            .with("event", "done")
            .with("job", id)
            .with("at", at)
            .with("seconds", seconds)
            .with("result", result);
        if let Err(e) = self.append_locked(&mut journal, &event) {
            // The result could not be made durable: a restart would
            // forget it, so serving it now would be a silent lie. Demote
            // the job to failed with the cause; the store is degraded.
            let _ = self.core.finish(
                id,
                JobStatus::Failed {
                    error: format!("result not durable (journal write failed): {e}"),
                },
            );
        }
    }

    fn fail(&self, id: u64, error: String) {
        // Same lock-across-transition discipline as `complete`.
        let mut journal = self.journal.lock().expect("journal poisoned");
        let Some(at) = self.core.finish(
            id,
            JobStatus::Failed {
                error: error.clone(),
            },
        ) else {
            return;
        };
        let event = Value::object()
            .with("event", "failed")
            .with("job", id)
            .with("at", at)
            .with("error", error);
        // A failed `failed` append degrades the store; the in-memory
        // status stays failed, and a restart re-runs the job instead.
        let _ = self.append_locked(&mut journal, &event);
    }

    fn get(&self, id: u64) -> Option<Value> {
        let (value, dead) = self.core.get(id);
        self.append_evictions(&dead);
        value
    }

    fn list(&self, status: Option<&str>, limit: usize) -> (usize, Vec<Value>) {
        let (out, dead) = self.core.list(status, limit);
        self.append_evictions(&dead);
        out
    }

    fn stats(&self) -> Value {
        self.core
            .stats("disk")
            .with("degraded", self.degraded.load(Ordering::SeqCst))
    }

    fn degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }
}

/// Replays a journal file into a job map. Returns the id floor: one past
/// the highest job id the journal has ever named (including evicted
/// jobs), combined with any compaction-time `meta` line — ids below it
/// must never be assigned again.
fn replay(path: &Path, jobs: &mut BTreeMap<u64, JobRecord>) -> Result<u64> {
    let file = File::open(path).map_err(|e| {
        Error::InvalidParameter(format!("cannot open journal {}: {e}", path.display()))
    })?;
    let reader = std::io::BufReader::new(file);
    let lines: Vec<String> = reader
        .lines()
        .collect::<std::io::Result<_>>()
        .map_err(|e| Error::InvalidParameter(format!("journal {}: {e}", path.display())))?;
    let last = lines.len().saturating_sub(1);
    let mut id_floor = 1u64;
    for (no, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = match Value::parse(line) {
            Ok(v) => v,
            // A torn final line is the signature of a crash mid-append:
            // the record was never acknowledged, dropping it is correct.
            Err(_) if no == last => break,
            Err(e) => {
                return Err(Error::InvalidParameter(format!(
                    "journal {} line {}: {e}",
                    path.display(),
                    no + 1
                )))
            }
        };
        if event.get("event").and_then(Value::as_str) == Some("meta") {
            if let Some(floor) = event.get("next_id").and_then(Value::as_u64) {
                id_floor = id_floor.max(floor);
            }
            continue;
        }
        let id = apply_event(&event, jobs).map_err(|e| {
            Error::InvalidParameter(format!("journal {} line {}: {e}", path.display(), no + 1))
        })?;
        id_floor = id_floor.max(id + 1);
    }
    Ok(id_floor)
}

/// Applies one journal event; returns the job id it named.
fn apply_event(event: &Value, jobs: &mut BTreeMap<u64, JobRecord>) -> Result<u64> {
    let bad = |msg: &str| Error::InvalidParameter(msg.to_string());
    let id = event
        .get("job")
        .and_then(Value::as_u64)
        .ok_or_else(|| bad("event without a job id"))?;
    let at = event.get("at").and_then(Value::as_f64).unwrap_or(0.0);
    match event.get("event").and_then(Value::as_str) {
        Some("submit") => {
            let raw = event
                .get("spec")
                .ok_or_else(|| bad("submit without spec"))?;
            let record = match JobSpec::from_json(raw) {
                Ok(spec) => JobRecord {
                    spec,
                    raw: raw.clone(),
                    status: JobStatus::Queued,
                    submitted_at: at,
                    finished_at: None,
                },
                // A spec the current schema rejects (journal written by
                // an older build): keep the job visible as failed rather
                // than refusing to boot or silently dropping it. The
                // synthetic spec only backs the status document.
                Err(e) => JobRecord {
                    spec: JobSpec::placeholder(),
                    raw: raw.clone(),
                    status: JobStatus::Failed {
                        error: format!("unreplayable spec: {e}"),
                    },
                    submitted_at: at,
                    finished_at: Some(at),
                },
            };
            jobs.insert(id, record);
        }
        // Terminal events for a job not in the map are stale, not
        // corrupt: the job was evicted, and the writer's terminal line
        // happened to land after the evict line. Dropping them is the
        // same outcome in either order — the job is gone.
        Some("done") => {
            if let Some(record) = jobs.get_mut(&id) {
                record.status = JobStatus::Done {
                    result: event
                        .get("result")
                        .ok_or_else(|| bad("done without result"))?
                        .clone(),
                    seconds: event.get("seconds").and_then(Value::as_f64).unwrap_or(0.0),
                };
                record.finished_at = Some(at);
            }
        }
        Some("failed") => {
            if let Some(record) = jobs.get_mut(&id) {
                record.status = JobStatus::Failed {
                    error: event
                        .get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string(),
                };
                record.finished_at = Some(at);
            }
        }
        Some("evict") => {
            jobs.remove(&id);
        }
        _ => return Err(bad("unknown event")),
    }
    Ok(id)
}

/// Renders the compacted journal: a meta line carrying the id floor
/// (compaction drops evicted submits, but their ids must stay burned),
/// then one submit line per live record plus its terminal line when
/// finished, in id order.
fn render_journal(jobs: &BTreeMap<u64, JobRecord>, next_id: u64) -> String {
    let mut out = String::new();
    let meta = Value::object()
        .with("event", "meta")
        .with("next_id", next_id);
    out.push_str(&meta.to_string());
    out.push('\n');
    for (id, record) in jobs {
        let submit = Value::object()
            .with("event", "submit")
            .with("job", *id)
            .with("at", record.submitted_at)
            .with("spec", record.raw.clone());
        out.push_str(&submit.to_string());
        out.push('\n');
        let at = record.finished_at.unwrap_or(0.0);
        match &record.status {
            JobStatus::Done { result, seconds } => {
                let done = Value::object()
                    .with("event", "done")
                    .with("job", *id)
                    .with("at", at)
                    .with("seconds", *seconds)
                    .with("result", result.clone());
                out.push_str(&done.to_string());
                out.push('\n');
            }
            JobStatus::Failed { error } => {
                let failed = Value::object()
                    .with("event", "failed")
                    .with("job", *id)
                    .with("at", at)
                    .with("error", error.as_str());
                out.push_str(&failed.to_string());
                out.push('\n');
            }
            JobStatus::Queued | JobStatus::Running => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_raw() -> (JobSpec, Value) {
        let raw = Value::object()
            .with("k", 2u64)
            .with(
                "dataset",
                Value::object().with(
                    "generate",
                    Value::object()
                        .with("n", 30u64)
                        .with("d", 6u64)
                        .with("dims", 3u64),
                ),
            )
            .with("algorithms", "harp");
        (JobSpec::from_json(&raw).unwrap(), raw)
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sspc_store_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_store_lifecycle_and_listing() {
        let store = MemoryStore::new(EvictionPolicy::default());
        let (spec, raw) = spec_raw();
        store.insert(1, spec.clone(), raw.clone()).unwrap();
        store.insert(2, spec.clone(), raw.clone()).unwrap();
        assert_eq!(store.begin(1).unwrap().algorithms, vec!["harp"]);
        store.complete(1, Value::object().with("x", 1u64), 0.5);
        store.fail(2, "boom".into());

        let one = store.get(1).unwrap();
        assert_eq!(one.get("status").and_then(Value::as_str), Some("done"));
        assert_eq!(one.get("seconds").and_then(Value::as_f64), Some(0.5));
        assert!(one.get("result").is_some());
        let two = store.get(2).unwrap();
        assert_eq!(two.get("status").and_then(Value::as_str), Some("failed"));
        assert_eq!(two.get("error").and_then(Value::as_str), Some("boom"));
        assert!(store.get(3).is_none());

        // Listing: newest first, filterable, capped, result-free.
        let (total, items) = store.list(None, 10);
        assert_eq!(total, 2);
        assert_eq!(items[0].get("job").and_then(Value::as_u64), Some(2));
        assert!(items[0].get("result").is_none());
        let (total, items) = store.list(Some("done"), 10);
        assert_eq!((total, items.len()), (1, 1));
        let (total, items) = store.list(None, 1);
        assert_eq!((total, items.len()), (2, 1));

        store.forget(1);
        assert!(store.get(1).is_none());
        let stats = store.stats();
        assert_eq!(stats.get("kind").and_then(Value::as_str), Some("memory"));
        assert_eq!(stats.get("jobs").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn max_jobs_evicts_oldest_finished_only() {
        let store = MemoryStore::new(EvictionPolicy {
            result_ttl: None,
            max_jobs: Some(2),
        });
        let (spec, raw) = spec_raw();
        for id in 1..=2 {
            store.insert(id, spec.clone(), raw.clone()).unwrap();
        }
        store.complete(1, Value::object(), 0.1);
        // Job 3 pushes the store past the cap: job 1 (oldest finished)
        // goes; job 2 (still queued) is untouchable.
        store.insert(3, spec.clone(), raw.clone()).unwrap();
        assert!(store.get(1).is_none());
        assert!(store.get(2).is_some());
        assert!(store.get(3).is_some());
        assert_eq!(
            store.stats().get("evicted").and_then(Value::as_u64),
            Some(1)
        );
        // All unfinished: the cap is allowed to overflow.
        store.insert(4, spec, raw).unwrap();
        let (total, _) = store.list(None, 10);
        assert_eq!(total, 3);
    }

    #[test]
    fn ttl_expires_lazily_on_read() {
        let store = MemoryStore::new(EvictionPolicy {
            result_ttl: Some(Duration::from_millis(30)),
            max_jobs: None,
        });
        let (spec, raw) = spec_raw();
        store.insert(1, spec, raw).unwrap();
        store.complete(1, Value::object(), 0.1);
        assert!(store.get(1).is_some(), "fresh result still served");
        std::thread::sleep(Duration::from_millis(60));
        assert!(store.get(1).is_none(), "expired result evicted on read");
        assert_eq!(
            store.stats().get("evicted").and_then(Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn disk_store_replays_results_bit_identically() {
        let dir = temp_dir("replay");
        let result = Value::object().with("objective", 0.30000000000000004).with(
            "xs",
            vec![Value::Num(1.0 / 3.0), Value::Num(f64::MIN_POSITIVE)],
        );
        let rendered_before;
        {
            let recovery = DiskStore::open(&dir, EvictionPolicy::default()).unwrap();
            assert_eq!(recovery.next_id, 1);
            assert!(recovery.pending.is_empty());
            let store = recovery.store;
            let (spec, raw) = spec_raw();
            store.insert(1, spec.clone(), raw.clone()).unwrap();
            store.begin(1);
            store.complete(1, result.clone(), 1.25);
            store.insert(2, spec.clone(), raw.clone()).unwrap();
            store.fail(2, "exploded".into());
            store.insert(3, spec, raw).unwrap(); // queued at "kill"
            rendered_before = store.get(1).unwrap().to_string();
        }
        let recovery = DiskStore::open(&dir, EvictionPolicy::default()).unwrap();
        assert_eq!(recovery.next_id, 4);
        assert_eq!(recovery.pending, vec![3]);
        let store = recovery.store;
        assert_eq!(
            store.get(1).unwrap().to_string(),
            rendered_before,
            "served document must be byte-identical across restart"
        );
        assert_eq!(
            store
                .get(2)
                .unwrap()
                .get("error")
                .and_then(Value::as_str)
                .unwrap(),
            "exploded"
        );
        assert_eq!(
            store.get(3).unwrap().get("status").and_then(Value::as_str),
            Some("queued")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The truncation-sweep satellite: cut the journal at EVERY byte
    /// offset inside its final record — the widest possible family of
    /// torn-tail crashes. Each cut must either recover (the unfinished
    /// suffix dropped) or refuse with a clean error; it must never
    /// panic, never invent a job, and never lose or alter the
    /// already-durable job 1.
    #[test]
    fn journal_truncation_sweep_recovers_or_refuses_cleanly() {
        let dir = temp_dir("truncate_sweep");
        let baseline;
        {
            let store = DiskStore::open(&dir, EvictionPolicy::default())
                .unwrap()
                .store;
            let (spec, raw) = spec_raw();
            store.insert(1, spec.clone(), raw.clone()).unwrap();
            store.begin(1);
            // Awkward floats on purpose: byte-identity must survive the
            // sweep's repeated replay+compact cycles too.
            store.complete(1, Value::object().with("objective", 0.1 + 0.2), 0.5);
            baseline = store.get(1).unwrap().to_string();
            store.insert(2, spec, raw).unwrap(); // the record under attack
        }
        let journal_path = dir.join(JOURNAL_FILE);
        let full = std::fs::read(&journal_path).unwrap();
        // head = meta + submit 1 + done 1; tail = submit 2 (with '\n').
        let head_len = full[..full.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .expect("multi-line journal")
            + 1;
        let (head, tail) = full.split_at(head_len);

        for cut in 0..=tail.len() {
            std::fs::write(&journal_path, [head, &tail[..cut]].concat()).unwrap();
            let opened =
                std::panic::catch_unwind(|| DiskStore::open(&dir, EvictionPolicy::default()))
                    .unwrap_or_else(|_| panic!("cut {cut}: open panicked"));
            match opened {
                Ok(recovery) => {
                    let store = recovery.store;
                    assert_eq!(
                        store.get(1).unwrap().to_string(),
                        baseline,
                        "cut {cut}: durable job 1 drifted"
                    );
                    // Job 2's submit line parses only when whole (the
                    // trailing newline is optional for the last line);
                    // any strict prefix is torn and must vanish.
                    let whole = cut >= tail.len() - 1;
                    assert_eq!(store.get(2).is_some(), whole, "cut {cut}");
                    assert_eq!(recovery.pending, if whole { vec![2] } else { vec![] });
                    assert!(store.get(3).is_none(), "cut {cut}: invented a job");
                }
                Err(e) => {
                    // Refusal is acceptable — but it must name the
                    // journal, not be a bare panic-turned-error.
                    assert!(
                        e.to_string().contains("journal"),
                        "cut {cut}: unhelpful refusal: {e}"
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_journals_evictions_and_compacts() {
        let dir = temp_dir("compact");
        {
            let recovery = DiskStore::open(
                &dir,
                EvictionPolicy {
                    result_ttl: None,
                    max_jobs: Some(1),
                },
            )
            .unwrap();
            let store = recovery.store;
            let (spec, raw) = spec_raw();
            store.insert(1, spec.clone(), raw.clone()).unwrap();
            store.complete(1, Value::object(), 0.1);
            store.insert(2, spec, raw).unwrap(); // evicts job 1
            store.complete(2, Value::object(), 0.1);
        }
        // Journal now holds submit(1), done(1), submit(2), evict(1),
        // done(2). Replay must not resurrect job 1, and compaction
        // shrinks the journal to the meta line plus job 2's two lines.
        let recovery = DiskStore::open(&dir, EvictionPolicy::default()).unwrap();
        assert!(recovery.store.get(1).is_none());
        assert!(recovery.store.get(2).is_some());
        assert_eq!(recovery.next_id, 3, "evicted ids stay burned");
        let journal = std::fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
        assert_eq!(journal.lines().count(), 3, "{journal}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Ids are never reused, even when eviction + compaction erase every
    /// trace of the jobs that held them — a client polling an old id must
    /// get a 404, never another job's document.
    #[test]
    fn job_ids_are_never_reused_across_restarts() {
        let dir = temp_dir("id_reuse");
        let ttl = EvictionPolicy {
            result_ttl: Some(Duration::from_nanos(1)),
            max_jobs: None,
        };
        {
            let recovery = DiskStore::open(&dir, ttl.clone()).unwrap();
            let (spec, raw) = spec_raw();
            recovery.store.insert(1, spec.clone(), raw.clone()).unwrap();
            recovery.store.complete(1, Value::object(), 0.1);
            recovery.store.insert(2, spec, raw).unwrap();
            recovery.store.complete(2, Value::object(), 0.1);
        }
        // Boot 2: both results have outlived the 1ns TTL; the store comes
        // up empty and compaction writes a journal with no job lines.
        {
            let recovery = DiskStore::open(&dir, ttl.clone()).unwrap();
            assert!(recovery.store.get(1).is_none());
            assert!(recovery.store.get(2).is_none());
            assert_eq!(recovery.next_id, 3, "empty store must not reset ids");
        }
        // Boot 3: only the meta line is left to carry the floor.
        let recovery = DiskStore::open(&dir, ttl).unwrap();
        assert_eq!(recovery.next_id, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The cap evicts by *finish time*, not submission order: an early
    /// job that finished last outlives a late job that finished first.
    #[test]
    fn cap_evicts_by_finish_time_not_submission_order() {
        let store = MemoryStore::new(EvictionPolicy {
            result_ttl: None,
            max_jobs: Some(2),
        });
        let (spec, raw) = spec_raw();
        for id in 1..=2 {
            store.insert(id, spec.clone(), raw.clone()).unwrap();
        }
        // Job 2 finishes first; job 1 finishes measurably later.
        store.complete(2, Value::object(), 0.1);
        std::thread::sleep(Duration::from_millis(15));
        store.complete(1, Value::object(), 0.1);
        store.insert(3, spec, raw).unwrap();
        assert!(store.get(2).is_none(), "oldest-finished is the one evicted");
        assert!(store.get(1).is_some());
        assert!(store.get(3).is_some());
    }

    #[test]
    fn torn_final_line_is_dropped_corruption_elsewhere_is_fatal() {
        let dir = temp_dir("torn");
        std::fs::create_dir_all(&dir).unwrap();
        let (_, raw) = spec_raw();
        let submit = Value::object()
            .with("event", "submit")
            .with("job", 1u64)
            .with("at", 5.0)
            .with("spec", raw);
        let path = dir.join(JOURNAL_FILE);
        // Torn tail: the crash-mid-append shape — recoverable.
        std::fs::write(&path, format!("{submit}\n{{\"event\":\"do")).unwrap();
        let recovery = DiskStore::open(&dir, EvictionPolicy::default()).unwrap();
        assert_eq!(recovery.pending, vec![1]);
        drop(recovery);
        // Corruption in the middle: refuse to boot on a half-trusted map.
        std::fs::write(&path, format!("not json\n{submit}\n")).unwrap();
        let err = match DiskStore::open(&dir, EvictionPolicy::default()) {
            Ok(_) => panic!("corrupt journal accepted"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("line 1"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Two live stores must never share a state dir; locks from dead or
    /// same-process holders are taken over.
    #[test]
    fn state_dir_lock_refuses_a_second_live_holder() {
        let dir = temp_dir("lock");
        std::fs::create_dir_all(&dir).unwrap();
        // A lock naming a live foreign process refuses (use our own pid
        // written as if by another holder? — our pid is the same-process
        // takeover case, so fake a live holder with pid 1, which always
        // exists when procfs does).
        if Path::new("/proc/1").exists() {
            std::fs::write(dir.join(LOCK_FILE), "1").unwrap();
            let err = match DiskStore::open(&dir, EvictionPolicy::default()) {
                Ok(_) => panic!("locked dir accepted"),
                Err(e) => e.to_string(),
            };
            assert!(err.contains("locked by running process"), "{err}");
        }
        // A stale lock from a dead pid is taken over.
        std::fs::write(dir.join(LOCK_FILE), "4294967295").unwrap();
        let recovery = DiskStore::open(&dir, EvictionPolicy::default()).unwrap();
        assert_eq!(
            std::fs::read_to_string(dir.join(LOCK_FILE)).unwrap(),
            std::process::id().to_string()
        );
        // Dropping the store releases the lock; reopening works.
        drop(recovery);
        assert!(!dir.join(LOCK_FILE).exists());
        let _ = DiskStore::open(&dir, EvictionPolicy::default()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A terminal line that landed after the evict line for the same job
    /// (the write-race shape older journals can contain) replays as a
    /// no-op — never as a boot-refusing corruption error.
    #[test]
    fn stale_terminal_events_after_evict_replay_cleanly() {
        let dir = temp_dir("stale_terminal");
        std::fs::create_dir_all(&dir).unwrap();
        let (_, raw) = spec_raw();
        let submit = Value::object()
            .with("event", "submit")
            .with("job", 1u64)
            .with("at", 5.0)
            .with("spec", raw);
        let evict = Value::object().with("event", "evict").with("job", 1u64);
        let done = Value::object()
            .with("event", "done")
            .with("job", 1u64)
            .with("at", 6.0)
            .with("seconds", 0.5)
            .with("result", Value::object());
        std::fs::write(
            dir.join(JOURNAL_FILE),
            format!("{submit}\n{evict}\n{done}\n"),
        )
        .unwrap();
        let recovery = DiskStore::open(&dir, EvictionPolicy::default()).unwrap();
        assert!(recovery.store.get(1).is_none(), "evicted stays evicted");
        assert_eq!(recovery.next_id, 2, "the id stays burned");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreplayable_specs_surface_as_failed_jobs() {
        let dir = temp_dir("unreplayable");
        std::fs::create_dir_all(&dir).unwrap();
        let submit = Value::object()
            .with("event", "submit")
            .with("job", 7u64)
            .with("at", 5.0)
            .with("spec", Value::object().with("not_a_job", true));
        std::fs::write(dir.join(JOURNAL_FILE), format!("{submit}\n")).unwrap();
        let recovery = DiskStore::open(&dir, EvictionPolicy::default()).unwrap();
        assert!(recovery.pending.is_empty(), "failed jobs are not re-run");
        let doc = recovery.store.get(7).unwrap();
        assert_eq!(doc.get("status").and_then(Value::as_str), Some("failed"));
        assert!(doc
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("unreplayable"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
