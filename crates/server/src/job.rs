//! Job specifications and their execution.
//!
//! A job is one run of the paper's Sec. 5 protocol: a dataset (a file on
//! the server's disk, or a synthetic-generator spec evaluated server-side),
//! a roster of algorithms with scoped parameter overrides, a restart count
//! and a base seed. Execution flows through the same two `sspc-api` entry
//! points every other frontend uses — [`best_of`] for single-algorithm
//! `cluster` jobs, [`compare_algorithms`] for `compare` jobs — so a result
//! fetched over the wire is the result an in-process call would produce.

use sspc_api::registry::{AnyClusterer, ParamMap};
use sspc_api::{best_of, compare_algorithms, AlgorithmReport, Clustering, ObjectiveSense};
use sspc_common::io::read_labels;
use sspc_common::json::Value;
use sspc_common::{ClusterId, Dataset, DimId, Error, ObjectId, Result, Supervision};
use sspc_datagen::{generate, GeneratorConfig};
use sspc_metrics::{evaluate_partition, OutlierPolicy, PartitionEvaluation};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::BufReader;

/// What protocol the job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One algorithm, best-of-N restarts via [`best_of`]; the result
    /// carries the winning assignment and selected dimensions.
    Cluster,
    /// A roster via [`compare_algorithms`]: one report per algorithm.
    Compare,
}

/// Where the job's dataset comes from.
#[derive(Debug, Clone)]
pub enum DatasetSource {
    /// A delimited matrix on the server's filesystem.
    Path(String),
    /// A synthetic dataset generated server-side (config + seed); its
    /// planted ground truth is available for evaluation.
    Generate(Box<GeneratorConfig>, u64),
}

/// A validated job submission.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Protocol to run.
    pub kind: JobKind,
    /// Dataset source.
    pub source: DatasetSource,
    /// Target cluster count handed to every algorithm.
    pub k: usize,
    /// Registry names, in execution order.
    pub algorithms: Vec<String>,
    /// Per-algorithm parameter overrides (scoped `alg.key=v` format).
    pub scoped: BTreeMap<String, ParamMap>,
    /// Restarts per algorithm (deterministic algorithms still run once).
    pub runs: usize,
    /// Base seed for the restart derivation.
    pub seed: u64,
    /// Score winners against the generator's planted truth.
    pub use_generated_truth: bool,
    /// Score winners against a label file on the server's filesystem.
    pub truth_path: Option<String>,
    /// Labeled objects/dimensions handed to every algorithm (only SSPC
    /// exploits them — the paper's setup).
    pub supervision: Supervision,
    /// Include per-object assignments in the result payload.
    pub include_assignment: bool,
    /// Wall-clock deadline for the job body: the worker installs a
    /// cooperative cancellation deadline (`sspc_common::cancel`) this many
    /// seconds after execution starts, and the iteration loops fail the
    /// job with `deadline exceeded` at their next check. `None` = no limit.
    pub timeout_secs: Option<f64>,
}

fn bad(msg: impl Into<String>) -> Error {
    Error::InvalidParameter(msg.into())
}

/// `key` as usize with a default, rejecting non-integral values.
fn field_usize(v: &Value, key: &str, default: usize) -> Result<usize> {
    match v.get(key) {
        None => Ok(default),
        Some(x) => x
            .as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| bad(format!("`{key}` must be a non-negative integer"))),
    }
}

fn field_f64(v: &Value, key: &str, default: f64) -> Result<f64> {
    match v.get(key) {
        None => Ok(default),
        Some(x) => x
            .as_f64()
            .ok_or_else(|| bad(format!("`{key}` must be a number"))),
    }
}

fn field_bool(v: &Value, key: &str, default: bool) -> Result<bool> {
    match v.get(key) {
        None => Ok(default),
        Some(x) => x
            .as_bool()
            .ok_or_else(|| bad(format!("`{key}` must be true or false"))),
    }
}

fn check_known_keys(v: &Value, context: &str, known: &[&str]) -> Result<()> {
    let Some(map) = v.as_object() else {
        return Err(bad(format!("{context} must be a JSON object")));
    };
    for key in map.keys() {
        if !known.contains(&key.as_str()) {
            return Err(bad(format!(
                "{context} does not accept `{key}` (accepted: {})",
                known.join(", ")
            )));
        }
    }
    Ok(())
}

impl JobSpec {
    /// Parses and validates a job submission document.
    ///
    /// Schema (all keys except `k`, `dataset` and `algorithms` optional):
    ///
    /// ```json
    /// {
    ///   "type": "compare",
    ///   "dataset": {"path": "data.tsv"}
    ///           or {"generate": {"n":500,"d":50,"k":4,"dims":8,"outliers":0.1,"seed":7}},
    ///   "k": 4,
    ///   "algorithms": ["sspc", "proclus"],
    ///   "params": "proclus.l=6,doc.w=2.5",
    ///   "runs": 5,
    ///   "seed": 1,
    ///   "truth": true,
    ///   "truth_path": "truth.tsv",
    ///   "supervision": {"objects": [[3, 0]], "dims": [[17, 1]]},
    ///   "include_assignment": false,
    ///   "timeout_secs": 30
    /// }
    /// ```
    ///
    /// `truth: true` is only meaningful for generated datasets (the planted
    /// truth); file-backed datasets use `truth_path`. `params` uses the
    /// same scoped `algorithm.key=value` grammar as `sspc-cli compare`
    /// ([`ParamMap::parse_scoped`]).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] naming the offending key on any schema
    /// violation.
    pub fn from_json(v: &Value) -> Result<JobSpec> {
        check_known_keys(
            v,
            "a job",
            &[
                "type",
                "dataset",
                "k",
                "algorithms",
                "algorithm",
                "params",
                "runs",
                "seed",
                "truth",
                "truth_path",
                "supervision",
                "include_assignment",
                "timeout_secs",
            ],
        )?;

        let kind = match v.get("type").map(|t| t.as_str()) {
            None => JobKind::Compare,
            Some(Some("compare")) => JobKind::Compare,
            Some(Some("cluster")) => JobKind::Cluster,
            Some(other) => {
                return Err(bad(format!(
                    "`type` must be \"cluster\" or \"compare\", got {}",
                    other.map_or_else(|| "a non-string".to_string(), |s| format!("\"{s}\""))
                )))
            }
        };

        let k = field_usize(v, "k", 0)?;
        if k == 0 {
            return Err(bad("`k` (cluster count) is required and must be positive"));
        }

        let source = Self::parse_source(
            v.get("dataset").ok_or_else(|| {
                bad("`dataset` is required: {\"path\": ...} or {\"generate\": ...}")
            })?,
            k,
        )?;

        let algorithms = Self::parse_algorithms(v, kind)?;

        let scoped = match v.get("params") {
            None => BTreeMap::new(),
            Some(Value::Str(spec)) => ParamMap::parse_scoped(spec)?,
            Some(_) => {
                return Err(bad(
                    "`params` must be a scoped string like \"proclus.l=6,doc.w=2.5\"",
                ))
            }
        };

        let use_generated_truth = field_bool(v, "truth", false)?;
        let truth_path = match v.get("truth_path") {
            None => None,
            Some(Value::Str(p)) => Some(p.clone()),
            Some(_) => return Err(bad("`truth_path` must be a string")),
        };
        if use_generated_truth && truth_path.is_some() {
            return Err(bad("give either `truth` or `truth_path`, not both"));
        }
        if use_generated_truth && !matches!(source, DatasetSource::Generate(..)) {
            return Err(bad(
                "`truth: true` needs a generated dataset (file-backed jobs use `truth_path`)",
            ));
        }

        let supervision = match v.get("supervision") {
            None => Supervision::none(),
            Some(s) => Self::parse_supervision(s)?,
        };

        let timeout_secs = match v.get("timeout_secs") {
            None => None,
            Some(x) => {
                let secs = x
                    .as_f64()
                    .filter(|&s| s > 0.0 && std::time::Duration::try_from_secs_f64(s).is_ok())
                    .ok_or_else(|| {
                        bad("`timeout_secs` must be a positive, finite number of seconds")
                    })?;
                Some(secs)
            }
        };

        Ok(JobSpec {
            kind,
            source,
            k,
            algorithms,
            scoped,
            runs: field_usize(v, "runs", 5)?.max(1),
            seed: v.get("seed").map_or(Ok(1), |s| {
                s.as_u64()
                    .ok_or_else(|| bad("`seed` must be a non-negative integer"))
            })?,
            use_generated_truth,
            truth_path,
            supervision,
            include_assignment: field_bool(v, "include_assignment", kind == JobKind::Cluster)?,
            timeout_secs,
        })
    }

    /// The spec's estimated execution cost in abstract units:
    /// `n · d · k · runs · |algorithms|`, the dominant term of one
    /// assignment/refit pass across the roster. File-backed datasets,
    /// whose shape is unknown until the worker opens them, assume the
    /// generator defaults (1000 × 100). The admission controller
    /// multiplies these units by the measured seconds-per-unit rate to
    /// estimate backlog seconds; the floor of 1 keeps even a degenerate
    /// spec visible in the backlog gauge.
    pub fn cost_units(&self) -> u64 {
        let (n, d) = match &self.source {
            DatasetSource::Generate(config, _) => (config.n, config.d),
            DatasetSource::Path(_) => (1000, 100),
        };
        (n as u64)
            .saturating_mul(d as u64)
            .saturating_mul(self.k as u64)
            .saturating_mul(self.runs as u64)
            .saturating_mul(self.algorithms.len() as u64)
            .max(1)
    }

    /// A synthetic spec backing journal records whose original submission
    /// no longer validates (written by an older build): it only ever
    /// renders a `failed` status document and is never executed.
    pub(crate) fn placeholder() -> JobSpec {
        JobSpec {
            kind: JobKind::Compare,
            source: DatasetSource::Path(String::new()),
            k: 0,
            algorithms: Vec::new(),
            scoped: BTreeMap::new(),
            runs: 0,
            seed: 0,
            use_generated_truth: false,
            truth_path: None,
            supervision: Supervision::none(),
            include_assignment: false,
            timeout_secs: None,
        }
    }

    fn parse_source(v: &Value, job_k: usize) -> Result<DatasetSource> {
        check_known_keys(v, "`dataset`", &["path", "generate"])?;
        match (v.get("path"), v.get("generate")) {
            (Some(Value::Str(p)), None) => Ok(DatasetSource::Path(p.clone())),
            (None, Some(spec)) => {
                check_known_keys(
                    spec,
                    "`dataset.generate`",
                    &["n", "d", "k", "dims", "outliers", "seed"],
                )?;
                let config = GeneratorConfig {
                    n: field_usize(spec, "n", 1000)?,
                    d: field_usize(spec, "d", 100)?,
                    // The generator's class count defaults to the job's k:
                    // the common case asks the algorithms for as many
                    // clusters as were planted.
                    k: field_usize(spec, "k", job_k)?,
                    avg_cluster_dims: field_usize(spec, "dims", 10)?,
                    outlier_fraction: field_f64(spec, "outliers", 0.0)?,
                    ..Default::default()
                };
                config.validate()?;
                let seed = spec.get("seed").map_or(Ok(1), |s| {
                    s.as_u64().ok_or_else(|| {
                        bad("`dataset.generate.seed` must be a non-negative integer")
                    })
                })?;
                Ok(DatasetSource::Generate(Box::new(config), seed))
            }
            _ => Err(bad(
                "`dataset` must have exactly one of `path` or `generate`",
            )),
        }
    }

    fn parse_algorithms(v: &Value, kind: JobKind) -> Result<Vec<String>> {
        let names: Vec<String> = match (v.get("algorithm"), v.get("algorithms")) {
            (Some(Value::Str(one)), None) => vec![one.clone()],
            (None, Some(Value::Str(list))) => list
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(String::from)
                .collect(),
            (None, Some(Value::Arr(items))) => items
                .iter()
                .map(|x| {
                    x.as_str()
                        .map(String::from)
                        .ok_or_else(|| bad("`algorithms` entries must be strings"))
                })
                .collect::<Result<_>>()?,
            (Some(_), Some(_)) => {
                return Err(bad("give either `algorithm` or `algorithms`, not both"))
            }
            _ => {
                return Err(bad(
                    "`algorithms` is required: an array of registry names or a \
                     comma-separated string (or `algorithm` for a single one)",
                ))
            }
        };
        if names.is_empty() {
            return Err(bad("`algorithms` names no algorithms"));
        }
        if kind == JobKind::Cluster && names.len() != 1 {
            return Err(bad("a `cluster` job takes exactly one algorithm"));
        }
        Ok(names)
    }

    fn parse_supervision(v: &Value) -> Result<Supervision> {
        check_known_keys(v, "`supervision`", &["objects", "dims"])?;
        fn pairs(v: Option<&Value>, what: &str) -> Result<Vec<(usize, usize)>> {
            let Some(v) = v else { return Ok(Vec::new()) };
            let items = v.as_array().ok_or_else(|| {
                bad(format!(
                    "`supervision.{what}` must be an array of [id, class] pairs"
                ))
            })?;
            items
                .iter()
                .map(|pair| {
                    let two = pair.as_array().filter(|a| a.len() == 2);
                    let id = two.and_then(|a| a[0].as_u64());
                    let class = two.and_then(|a| a[1].as_u64());
                    match (id, class) {
                        (Some(id), Some(class)) => Ok((id as usize, class as usize)),
                        _ => Err(bad(format!(
                            "`supervision.{what}` entries must be [id, class] integer pairs"
                        ))),
                    }
                })
                .collect()
        }
        let objects = pairs(v.get("objects"), "objects")?
            .into_iter()
            .map(|(o, c)| (ObjectId(o), ClusterId(c)))
            .collect();
        let dims = pairs(v.get("dims"), "dims")?
            .into_iter()
            .map(|(d, c)| (DimId(d), ClusterId(c)))
            .collect();
        Ok(Supervision::new(objects, dims))
    }

    /// Loads the dataset (reading or generating) and the optional ground
    /// truth to score against.
    ///
    /// # Errors
    ///
    /// I/O or generator failures, and label/object count mismatches.
    fn load(&self) -> Result<(Dataset, Option<Vec<Option<ClusterId>>>)> {
        match &self.source {
            DatasetSource::Path(path) => {
                let file = File::open(path)
                    .map_err(|e| bad(format!("cannot open dataset `{path}`: {e}")))?;
                let dataset = sspc_common::io::read_delimited(BufReader::new(file), '\t')?;
                let truth = match &self.truth_path {
                    None => None,
                    Some(tp) => {
                        let file = File::open(tp)
                            .map_err(|e| bad(format!("cannot open truth `{tp}`: {e}")))?;
                        Some(read_labels(BufReader::new(file), tp)?)
                    }
                };
                Ok((dataset, truth))
            }
            DatasetSource::Generate(config, seed) => {
                let data = generate(config, *seed)?;
                let truth = self
                    .use_generated_truth
                    .then(|| data.truth.assignment().to_vec());
                Ok((data.dataset, truth))
            }
        }
    }

    /// Runs the job to completion and renders its result document.
    ///
    /// # Errors
    ///
    /// Any load, roster-construction, clustering, or evaluation failure —
    /// reported to the submitter as the job's failure message.
    pub fn execute(&self) -> Result<JobOutcome> {
        sspc_common::fault::point("job.execute")?;
        let (dataset, truth) = self.load()?;
        let names: Vec<&str> = self.algorithms.iter().map(String::as_str).collect();
        let roster = AnyClusterer::roster(&names, self.k, &self.scoped)?;

        let reports: Vec<AlgorithmReport> = match self.kind {
            JobKind::Compare => compare_algorithms(
                &roster,
                &dataset,
                &self.supervision,
                truth.as_deref(),
                self.runs,
                self.seed,
            )?,
            JobKind::Cluster => {
                let outcome = best_of(
                    &roster[0],
                    &dataset,
                    &self.supervision,
                    self.runs,
                    self.seed,
                )?;
                let evaluation = match &truth {
                    Some(t) => Some(evaluate_partition(
                        t,
                        outcome.best.assignment(),
                        OutlierPolicy::AsCluster,
                    )?),
                    None => None,
                };
                vec![AlgorithmReport {
                    algorithm: self.algorithms[0].clone(),
                    best: outcome.best,
                    runs_executed: outcome.runs_executed,
                    total_seconds: outcome.total_seconds,
                    evaluation,
                }]
            }
        };

        let throughput = reports
            .iter()
            .map(|r| AlgorithmCost {
                algorithm: r.algorithm.clone(),
                restarts: r.runs_executed,
                busy_seconds: r.total_seconds,
            })
            .collect();
        let rendered: Vec<Value> = reports
            .iter()
            .map(|r| report_to_value(r, self.include_assignment))
            .collect();
        let result = match self.kind {
            JobKind::Cluster => rendered.into_iter().next().expect("one report"),
            JobKind::Compare => Value::object().with("reports", rendered),
        };
        Ok(JobOutcome { result, throughput })
    }
}

/// What one algorithm cost to run — the unit the server's throughput
/// counters aggregate.
#[derive(Debug, Clone)]
pub struct AlgorithmCost {
    /// Registry name.
    pub algorithm: String,
    /// Restarts actually executed.
    pub restarts: usize,
    /// Wall-clock seconds summed over those restarts.
    pub busy_seconds: f64,
}

/// A finished job: the JSON result document plus per-algorithm costs.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The document served under the job's `result` key.
    pub result: Value,
    /// Per-algorithm execution costs for the health counters.
    pub throughput: Vec<AlgorithmCost>,
}

fn sense_str(sense: ObjectiveSense) -> &'static str {
    match sense {
        ObjectiveSense::HigherIsBetter => "higher_is_better",
        ObjectiveSense::LowerIsBetter => "lower_is_better",
    }
}

fn assignment_to_value(best: &Clustering) -> Value {
    Value::Arr(
        best.assignment()
            .iter()
            .map(|label| match label {
                Some(c) => Value::Num(c.index() as f64),
                None => Value::Null,
            })
            .collect(),
    )
}

fn dims_to_value(best: &Clustering) -> Value {
    Value::Arr(
        best.all_selected_dims()
            .iter()
            .map(|dims| Value::Arr(dims.iter().map(|j| Value::from(j.index())).collect()))
            .collect(),
    )
}

fn evaluation_to_value(e: &PartitionEvaluation) -> Value {
    Value::object()
        .with("ari", e.ari)
        .with("nmi", e.nmi)
        .with("purity", e.purity)
}

/// Renders one [`AlgorithmReport`] as the wire document. Numbers use
/// shortest-roundtrip formatting, so the objective and metric values a
/// client parses back are bit-identical to the in-process ones.
pub fn report_to_value(r: &AlgorithmReport, include_assignment: bool) -> Value {
    let mut v = Value::object()
        .with("algorithm", r.algorithm.as_str())
        .with("objective", r.best.objective())
        .with("sense", sense_str(r.best.sense()))
        .with("clusters", r.best.n_clusters())
        .with("outliers", r.best.n_outliers())
        .with("runs", r.runs_executed)
        .with("seconds", r.total_seconds);
    if let Some(it) = r.best.iterations() {
        v = v.with("iterations", it);
    }
    if let Some(e) = &r.evaluation {
        v = v.with("evaluation", evaluation_to_value(e));
    }
    if include_assignment {
        v = v
            .with("assignment", assignment_to_value(&r.best))
            .with("dims", dims_to_value(&r.best));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_compare() -> Value {
        Value::object()
            .with("k", 2u64)
            .with(
                "dataset",
                Value::object().with(
                    "generate",
                    Value::object()
                        .with("n", 40u64)
                        .with("d", 8u64)
                        .with("dims", 4u64)
                        .with("seed", 3u64),
                ),
            )
            .with("algorithms", "clarans,harp")
            .with("runs", 2u64)
            .with("truth", true)
    }

    #[test]
    fn parses_and_executes_a_generate_compare_job() {
        let spec = JobSpec::from_json(&minimal_compare()).unwrap();
        assert_eq!(spec.kind, JobKind::Compare);
        assert_eq!(spec.algorithms, vec!["clarans", "harp"]);
        assert!(spec.use_generated_truth);
        assert!(!spec.include_assignment);
        let DatasetSource::Generate(config, seed) = &spec.source else {
            panic!("expected a generate source");
        };
        assert_eq!((config.n, config.d, config.k, *seed), (40, 8, 2, 3));

        let outcome = spec.execute().unwrap();
        let reports = outcome.result.get("reports").unwrap().as_array().unwrap();
        assert_eq!(reports.len(), 2);
        for r in reports {
            assert!(r.get("evaluation").is_some(), "truth requested");
            assert!(r.get("assignment").is_none(), "not requested");
        }
        assert_eq!(outcome.throughput.len(), 2);
        assert_eq!(outcome.throughput[1].restarts, 1, "harp is deterministic");
    }

    #[test]
    fn cluster_jobs_return_the_assignment() {
        let job = Value::object()
            .with("type", "cluster")
            .with("k", 2u64)
            .with(
                "dataset",
                Value::object().with(
                    "generate",
                    Value::object()
                        .with("n", 30u64)
                        .with("d", 6u64)
                        .with("dims", 3u64),
                ),
            )
            .with("algorithm", "clarans")
            .with("runs", 1u64);
        let spec = JobSpec::from_json(&job).unwrap();
        assert_eq!(spec.kind, JobKind::Cluster);
        assert!(spec.include_assignment, "cluster default");
        let outcome = spec.execute().unwrap();
        let assignment = outcome
            .result
            .get("assignment")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(assignment.len(), 30);
        assert_eq!(
            outcome.result.get("algorithm").and_then(Value::as_str),
            Some("clarans")
        );
    }

    #[test]
    fn scoped_params_flow_into_the_roster() {
        let job = minimal_compare().with("params", "clarans.num-local=1");
        let spec = JobSpec::from_json(&job).unwrap();
        assert!(spec.scoped.contains_key("clarans"));
        // A scope outside the roster is caught at execution (roster build).
        let job = minimal_compare().with("params", "doc.w=2.0");
        let spec = JobSpec::from_json(&job).unwrap();
        assert!(spec.execute().is_err());
    }

    #[test]
    fn supervision_parses_into_labels() {
        let job = minimal_compare().with(
            "supervision",
            Value::object()
                .with(
                    "objects",
                    vec![Value::Arr(vec![Value::Num(3.0), Value::Num(0.0)])],
                )
                .with(
                    "dims",
                    vec![Value::Arr(vec![Value::Num(5.0), Value::Num(1.0)])],
                ),
        );
        let spec = JobSpec::from_json(&job).unwrap();
        assert_eq!(
            spec.supervision.labeled_objects(),
            &[(ObjectId(3), ClusterId(0))]
        );
        assert_eq!(spec.supervision.labeled_dims(), &[(DimId(5), ClusterId(1))]);
    }

    #[test]
    fn rejects_schema_violations_with_named_keys() {
        let cases: Vec<(Value, &str)> = vec![
            (Value::object(), "`k`"),
            (minimal_compare().with("k", 0u64), "`k`"),
            (minimal_compare().with("frobnicate", 1u64), "frobnicate"),
            (minimal_compare().with("type", "sort"), "`type`"),
            (
                minimal_compare().with("algorithms", Value::Arr(vec![])),
                "no algorithms",
            ),
            (minimal_compare().with("params", 7u64), "`params`"),
            (
                minimal_compare()
                    .with("truth_path", "x")
                    .with("truth", true),
                "not both",
            ),
            (
                minimal_compare()
                    .with("dataset", Value::object().with("path", "x"))
                    .with("truth", true),
                "generated",
            ),
            (
                minimal_compare().with("type", "cluster"),
                "exactly one algorithm",
            ),
            (
                minimal_compare().with("supervision", Value::object().with("objects", 1u64)),
                "supervision",
            ),
        ];
        for (job, needle) in cases {
            let err = JobSpec::from_json(&job).unwrap_err().to_string();
            assert!(err.contains(needle), "`{err}` should mention {needle}");
        }
        // Malformed dataset objects.
        let bad_ds = Value::object()
            .with("k", 2u64)
            .with("algorithms", "harp")
            .with(
                "dataset",
                Value::object()
                    .with("path", "x")
                    .with("generate", Value::object()),
            );
        assert!(JobSpec::from_json(&bad_ds).is_err());
    }

    #[test]
    fn missing_dataset_file_fails_at_execution() {
        let job = Value::object()
            .with("k", 2u64)
            .with("algorithms", "harp")
            .with(
                "dataset",
                Value::object().with("path", "/nonexistent/x.tsv"),
            );
        let spec = JobSpec::from_json(&job).unwrap();
        let err = spec.execute().unwrap_err().to_string();
        assert!(err.contains("/nonexistent/x.tsv"), "{err}");
    }
}
