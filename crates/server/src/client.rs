//! Blocking client for the batch service — what `sspc-cli submit`/`poll`
//! and the end-to-end tests speak.

use crate::http::request;
use sspc_common::json::Value;
use sspc_common::{Error, Result};
use std::time::{Duration, Instant};

/// Submits a job document and returns the assigned job id.
///
/// # Errors
///
/// [`Error::InvalidParameter`] on connection failures or any non-`202`
/// answer (the server's `error` text is included — `400` for invalid
/// jobs, `503` for a full queue).
pub fn submit(addr: &str, job: &Value) -> Result<u64> {
    let (status, body) = request(addr, "POST", "/jobs", Some(job))?;
    if status != 202 {
        return Err(Error::InvalidParameter(format!(
            "submit refused with {status}: {}",
            body.get("error").and_then(Value::as_str).unwrap_or("?")
        )));
    }
    body.get("job")
        .and_then(Value::as_u64)
        .ok_or_else(|| Error::InvalidParameter("202 without a job id".into()))
}

/// Fetches a job's status document (`status` ∈ `queued` / `running` /
/// `done` / `failed`; `result` present once done).
///
/// # Errors
///
/// [`Error::InvalidParameter`] on connection failures or unknown ids.
pub fn job_status(addr: &str, id: u64) -> Result<Value> {
    let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), None)?;
    if status != 200 {
        return Err(Error::InvalidParameter(format!(
            "job {id} lookup failed with {status}: {}",
            body.get("error").and_then(Value::as_str).unwrap_or("?")
        )));
    }
    Ok(body)
}

/// Polls until the job leaves the queue/running states and returns its
/// final document (`done` **or** `failed` — inspect `status`).
///
/// # Errors
///
/// Lookup failures, or [`Error::NoConvergence`] after `timeout`.
pub fn wait_for(addr: &str, id: u64, poll_every: Duration, timeout: Duration) -> Result<Value> {
    let started = Instant::now();
    loop {
        let status = job_status(addr, id)?;
        match status.get("status").and_then(Value::as_str) {
            Some("done" | "failed") => return Ok(status),
            _ => {
                if started.elapsed() > timeout {
                    return Err(Error::NoConvergence(format!(
                        "job {id} still not finished after {:.1}s",
                        timeout.as_secs_f64()
                    )));
                }
                std::thread::sleep(poll_every);
            }
        }
    }
}

/// Fetches the `/healthz` document (queue depth, job counters,
/// per-algorithm throughput).
///
/// # Errors
///
/// Connection failures or a non-`200` answer.
pub fn healthz(addr: &str) -> Result<Value> {
    let (status, body) = request(addr, "GET", "/healthz", None)?;
    if status != 200 {
        return Err(Error::InvalidParameter(format!(
            "healthz returned {status}"
        )));
    }
    Ok(body)
}
