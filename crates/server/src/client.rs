//! Blocking client for the batch service — what `sspc-cli submit`/`poll`
//! and the end-to-end tests speak.
//!
//! [`Client`] holds one keep-alive [`HttpConnection`] and reuses it
//! across calls, so a `submit --wait` polling loop costs one TCP connect
//! total instead of one per poll. When a reused connection turns out to
//! be dead (the server restarted, or closed it after the idle timeout),
//! **idempotent GETs are retried once** on a fresh connection instead of
//! surfacing the transient error; POSTs are never retried (a submission
//! must not be duplicated).
//!
//! The module-level free functions ([`submit`], [`job_status`], …) are
//! one-shot conveniences over a throwaway [`Client`].
//!
//! # Retry discipline
//!
//! All waiting rides [`crate::backoff::Backoff`] — capped exponential
//! with deterministic jitter. A `503` whose body says `"reason":
//! "queue_full"` is the one rejection the server proves it did **not**
//! admit (the id was forgotten before answering), so [`Client::submit`]
//! retries it a few times, honoring the `Retry-After` header the server
//! attaches. The router's `no_shards_available` shed carries the same
//! guarantee — no shard saw the job — so it is retried identically (a
//! shard may come back within the backoff window). Every other non-`202`
//! (including `store_degraded` and `shutting_down` 503s, where
//! re-submitting may duplicate work or is pointless) surfaces
//! immediately. Transport-level POST failures are never retried.

use crate::backoff::Backoff;
use crate::http::HttpConnection;
use sspc_common::json::Value;
use sspc_common::{Error, Result};
use std::time::{Duration, Instant};

/// Submit attempts per [`Client::submit`] call: the initial POST plus
/// three queue-full retries.
const SUBMIT_ATTEMPTS: u32 = 4;

/// A reusable connection to one server address.
pub struct Client {
    addr: String,
    conn: Option<HttpConnection>,
    last_retry_after: Option<u64>,
}

impl Client {
    /// A client for `addr` (connects lazily on the first call).
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            conn: None,
            last_retry_after: None,
        }
    }

    /// One exchange, reusing the held connection when possible. A dropped
    /// keep-alive connection is retried once on a fresh socket for
    /// idempotent GETs; POST failures surface immediately.
    fn call(&mut self, method: &str, path: &str, body: Option<&Value>) -> Result<(u16, Value)> {
        let (mut conn, reused) = match self.conn.take() {
            Some(conn) if !conn.server_closed() => (conn, true),
            _ => (HttpConnection::connect(&self.addr)?, false),
        };
        let outcome = conn.roundtrip(method, path, body);
        let outcome = match outcome {
            Err(_) if reused && method == "GET" => {
                // The held connection died between exchanges (restart or
                // idle close) — transparent single retry, fresh socket.
                conn = HttpConnection::connect(&self.addr)?;
                conn.roundtrip(method, path, body)
            }
            other => other,
        };
        self.last_retry_after = conn.retry_after();
        if outcome.is_ok() && !conn.server_closed() {
            self.conn = Some(conn);
        }
        outcome
    }

    /// Submits a job document and returns the assigned job id.
    ///
    /// A `503` with `"reason": "queue_full"` (the one refusal a shard
    /// guarantees left no trace, so re-POSTing cannot duplicate the job),
    /// `"reason": "no_shards_available"` (the router's shed: no shard
    /// saw the job at all, and one may come back shortly), or
    /// `"reason": "rebalancing"` (the router is mid-cutover of a shard
    /// membership change — over in milliseconds) is retried up to three
    /// times with jittered exponential backoff, sleeping at least the
    /// server's `Retry-After` hint.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] on connection failures or any
    /// non-`202` answer (the server's `error` text is included — `400`
    /// for invalid jobs, `503` for a full queue that stayed full).
    pub fn submit(&mut self, job: &Value) -> Result<u64> {
        let mut backoff = Backoff::new(Duration::from_millis(50), Duration::from_secs(2), 0x5b);
        for attempt in 1..=SUBMIT_ATTEMPTS {
            let (status, body) = self.call("POST", "/jobs", Some(job))?;
            if status == 202 {
                return body
                    .get("job")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| Error::InvalidParameter("202 without a job id".into()));
            }
            let retryable = status == 503
                && matches!(
                    body.get("reason").and_then(Value::as_str),
                    Some("queue_full" | "no_shards_available" | "rebalancing")
                );
            if !retryable || attempt == SUBMIT_ATTEMPTS {
                return Err(Error::InvalidParameter(format!(
                    "submit refused with {status}: {}",
                    body.get("error").and_then(Value::as_str).unwrap_or("?")
                )));
            }
            let hint = Duration::from_secs(self.last_retry_after.unwrap_or(0));
            std::thread::sleep(backoff.next_delay().max(hint));
        }
        unreachable!("submit loop returns on every path")
    }

    /// Fetches a job's status document (`status` ∈ `queued` / `running` /
    /// `done` / `failed`; `result` present once done).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] on connection failures or unknown ids
    /// (including results already evicted by TTL or the job cap).
    pub fn job_status(&mut self, id: u64) -> Result<Value> {
        let (status, body) = self.call("GET", &format!("/jobs/{id}"), None)?;
        if status != 200 {
            return Err(Error::InvalidParameter(format!(
                "job {id} lookup failed with {status}: {}",
                body.get("error").and_then(Value::as_str).unwrap_or("?")
            )));
        }
        Ok(body)
    }

    /// Lists job summaries, optionally filtered by status name and capped
    /// at `limit` (the server applies its own cap when `None`). The
    /// answer carries `jobs` (newest first) and `total` (matching count
    /// before the cap).
    ///
    /// # Errors
    ///
    /// Connection failures or a non-`200` answer (e.g. `400` for an
    /// unknown status name).
    pub fn list_jobs(&mut self, status: Option<&str>, limit: Option<usize>) -> Result<Value> {
        let mut query = Vec::new();
        if let Some(status) = status {
            query.push(format!("status={status}"));
        }
        if let Some(limit) = limit {
            query.push(format!("limit={limit}"));
        }
        let path = if query.is_empty() {
            "/jobs".to_string()
        } else {
            format!("/jobs?{}", query.join("&"))
        };
        let (code, body) = self.call("GET", &path, None)?;
        if code != 200 {
            return Err(Error::InvalidParameter(format!(
                "listing failed with {code}: {}",
                body.get("error").and_then(Value::as_str).unwrap_or("?")
            )));
        }
        Ok(body)
    }

    /// Polls until the job leaves the queue/running states and returns
    /// its final document (`done` **or** `failed` — inspect `status`).
    /// All polls ride the same keep-alive connection; the interval starts
    /// at `poll_every` and backs off (jittered, seeded by the job id so
    /// concurrent waiters decorrelate) up to `8 × poll_every`.
    ///
    /// A draining server answers status polls for provably-stuck queued
    /// jobs with `503` `reason: shutting_down`; that is terminal for this
    /// wait — the job will never run in that process — so the poll loop
    /// **fails fast** with a clear error instead of burning the rest of
    /// its timeout against a server that is going away.
    ///
    /// # Errors
    ///
    /// Lookup failures, a draining server
    /// ([`Error::InvalidParameter`] mentioning the drain), or
    /// [`Error::NoConvergence`] after `timeout`.
    pub fn wait_for(&mut self, id: u64, poll_every: Duration, timeout: Duration) -> Result<Value> {
        let started = Instant::now();
        let mut backoff = Backoff::new(poll_every, poll_every.saturating_mul(8), id);
        loop {
            let (code, body) = self.call("GET", &format!("/jobs/{id}"), None)?;
            if code == 503 && body.get("reason").and_then(Value::as_str) == Some("shutting_down") {
                return Err(Error::InvalidParameter(format!(
                    "server is draining; job {id} will not finish there: {}",
                    body.get("error").and_then(Value::as_str).unwrap_or("?")
                )));
            }
            if code != 200 {
                return Err(Error::InvalidParameter(format!(
                    "job {id} lookup failed with {code}: {}",
                    body.get("error").and_then(Value::as_str).unwrap_or("?")
                )));
            }
            match body.get("status").and_then(Value::as_str) {
                Some("done" | "failed") => return Ok(body),
                _ => {
                    if started.elapsed() > timeout {
                        return Err(Error::NoConvergence(format!(
                            "job {id} still not finished after {:.1}s",
                            timeout.as_secs_f64()
                        )));
                    }
                    std::thread::sleep(backoff.next_delay());
                }
            }
        }
    }

    /// Fetches the `/healthz` document (queue depth, job counters, store
    /// stats, per-algorithm throughput).
    ///
    /// # Errors
    ///
    /// Connection failures or a non-`200` answer.
    pub fn healthz(&mut self) -> Result<Value> {
        let (status, body) = self.call("GET", "/healthz", None)?;
        if status != 200 {
            return Err(Error::InvalidParameter(format!(
                "healthz returned {status}"
            )));
        }
        Ok(body)
    }

    /// Joins a shard to a running router's roster at runtime
    /// (`POST /admin/shards`): the router health-checks the shard, hands
    /// it the keys the ring delta moves onto it, and cuts routing over.
    /// Returns the router's join summary (`planned`, `moved`,
    /// `handoff_seconds`).
    ///
    /// # Errors
    ///
    /// Connection failures, `409` for a duplicate shard id, `502` when
    /// the shard is unreachable or the handoff aborted (the join is
    /// rolled back).
    pub fn add_shard(&mut self, shard: u16, shard_addr: &str) -> Result<Value> {
        let body = Value::object()
            .with("shard", u64::from(shard))
            .with("addr", shard_addr);
        let (status, answer) = self.call("POST", "/admin/shards", Some(&body))?;
        if status != 200 {
            return Err(Error::InvalidParameter(format!(
                "join of shard {shard} refused with {status}: {}",
                answer.get("error").and_then(Value::as_str).unwrap_or("?")
            )));
        }
        Ok(answer)
    }

    /// Removes a shard from a running router's roster
    /// (`DELETE /admin/shards/<id>`). Graceful by default — the shard's
    /// keys are handed off before it leaves; `dead: true` skips the
    /// handoff and folds the shard's spool through the failover path
    /// instead (for a shard that is already unreachable).
    ///
    /// # Errors
    ///
    /// Connection failures, `404` for an unknown shard, `400` when it is
    /// the last routable shard, `502` when a graceful handoff aborted
    /// (the shard stays in the roster).
    pub fn remove_shard(&mut self, shard: u16, dead: bool) -> Result<Value> {
        let path = if dead {
            format!("/admin/shards/{shard}?mode=dead")
        } else {
            format!("/admin/shards/{shard}")
        };
        let (status, answer) = self.call("DELETE", &path, None)?;
        if status != 200 {
            return Err(Error::InvalidParameter(format!(
                "removal of shard {shard} refused with {status}: {}",
                answer.get("error").and_then(Value::as_str).unwrap_or("?")
            )));
        }
        Ok(answer)
    }
}

/// One-shot [`Client::submit`].
///
/// # Errors
///
/// See [`Client::submit`].
pub fn submit(addr: &str, job: &Value) -> Result<u64> {
    Client::new(addr).submit(job)
}

/// One-shot [`Client::job_status`].
///
/// # Errors
///
/// See [`Client::job_status`].
pub fn job_status(addr: &str, id: u64) -> Result<Value> {
    Client::new(addr).job_status(id)
}

/// [`Client::wait_for`] on a fresh client (the polling loop itself still
/// reuses one connection).
///
/// # Errors
///
/// See [`Client::wait_for`].
pub fn wait_for(addr: &str, id: u64, poll_every: Duration, timeout: Duration) -> Result<Value> {
    Client::new(addr).wait_for(id, poll_every, timeout)
}

/// One-shot [`Client::healthz`].
///
/// # Errors
///
/// See [`Client::healthz`].
pub fn healthz(addr: &str) -> Result<Value> {
    Client::new(addr).healthz()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{read_request, write_response, write_response_with};
    use std::io::BufReader;
    use std::net::TcpListener;

    /// A scripted server: serves `per_connection` keep-alive exchanges on
    /// each accepted connection, then closes it cold (no `Connection:
    /// close` header — the drop the retry logic must absorb). Returns the
    /// number of connections accepted.
    fn flaky_server(listener: TcpListener, per_connection: usize, connections: usize) -> usize {
        let mut accepted = 0;
        for _ in 0..connections {
            let Ok((mut stream, _)) = listener.accept() else {
                break;
            };
            accepted += 1;
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            for _ in 0..per_connection {
                match read_request(&mut reader) {
                    Ok(Some(req)) => {
                        let body = Value::object().with("status", "done").with("job", 1u64);
                        let _ = write_response(&mut stream, 200, &body, false);
                        let _ = req;
                    }
                    _ => break,
                }
            }
            // Cold close: the client's next write/read on this socket
            // fails mid-exchange.
        }
        accepted
    }

    /// The satellite contract: a GET over a dropped keep-alive connection
    /// is retried once on a fresh socket instead of surfacing a transient
    /// error to `submit --wait`.
    #[test]
    fn idempotent_gets_retry_once_on_a_dropped_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || flaky_server(listener, 1, 2));

        let mut client = Client::new(&addr);
        // Exchange 1 succeeds and the connection is kept...
        client.job_status(1).unwrap();
        // ...but the server hangs up after it. The next GET hits the dead
        // socket, reconnects, and succeeds — no error escapes.
        client.job_status(1).unwrap();
        drop(client);
        assert_eq!(
            server.join().unwrap(),
            2,
            "retry opened a second connection"
        );
    }

    /// A fresh-connection failure is NOT retried (nothing was reused),
    /// and POSTs are never retried.
    #[test]
    fn no_retry_on_fresh_connections_or_posts() {
        // Nobody listening: the very first GET fails without a retry loop.
        let mut client = Client::new("127.0.0.1:1");
        assert!(client.job_status(1).is_err());

        // A server that dies after one exchange: the POST on the reused
        // connection errors out rather than re-submitting.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || flaky_server(listener, 1, 1));
        let mut client = Client::new(&addr);
        client.job_status(1).unwrap();
        let job = Value::object().with("k", 1u64);
        assert!(client.submit(&job).is_err(), "POST must not be retried");
        drop(client);
        server.join().unwrap();
    }

    /// A scripted server answering each request on one keep-alive
    /// connection from `script` (status, body, `Retry-After` seconds).
    /// Returns the number of requests served.
    fn scripted_server(
        listener: TcpListener,
        script: Vec<(u16, Value, Option<u64>)>,
    ) -> std::thread::JoinHandle<usize> {
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut served = 0;
            for (status, body, retry_after) in script {
                match read_request(&mut reader) {
                    Ok(Some(_)) => {
                        write_response_with(&mut stream, status, &body, false, retry_after)
                            .unwrap();
                        served += 1;
                    }
                    _ => break,
                }
            }
            served
        })
    }

    /// The retry-discipline contract: queue-full 503s (and only those)
    /// are retried with backoff, honoring `Retry-After`, and the retries
    /// ride the same keep-alive connection.
    #[test]
    fn submit_retries_queue_full_503s_until_accepted() {
        let queue_full = Value::object()
            .with("error", "queue full (capacity 2); retry later")
            .with("reason", "queue_full");
        let accepted = Value::object().with("job", 9u64).with("queue_depth", 1u64);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = scripted_server(
            listener,
            vec![
                (503, queue_full.clone(), Some(0)),
                (503, queue_full, Some(0)),
                (202, accepted, None),
            ],
        );

        let mut client = Client::new(&addr);
        let job = Value::object().with("k", 1u64);
        assert_eq!(client.submit(&job).unwrap(), 9);
        drop(client);
        assert_eq!(server.join().unwrap(), 3, "two retries then acceptance");
    }

    /// The drain fail-fast contract: a `503 shutting_down` status poll
    /// ends the wait immediately with a "draining" error instead of
    /// polling until the timeout.
    #[test]
    fn wait_for_fails_fast_when_the_server_is_draining() {
        let queued = Value::object().with("job", 3u64).with("status", "queued");
        let draining = Value::object()
            .with(
                "error",
                "server is draining; queued job 3 will not run here",
            )
            .with("reason", "shutting_down")
            .with("job", 3u64);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = scripted_server(
            listener,
            vec![(200, queued, None), (503, draining, Some(1))],
        );

        let mut client = Client::new(&addr);
        let started = Instant::now();
        let err = client
            .wait_for(3, Duration::from_millis(5), Duration::from_secs(30))
            .unwrap_err()
            .to_string();
        assert!(err.contains("draining"), "error names the drain: {err}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "failed fast, not at the 30s timeout"
        );
        drop(client);
        assert_eq!(server.join().unwrap(), 2, "one poll, then the fail-fast");
    }

    /// The router satellite: `no_shards_available` means no shard saw
    /// the job, so it is retried exactly like `queue_full` — and a shard
    /// coming back within the backoff window rescues the submission.
    #[test]
    fn submit_retries_router_no_shards_503s_like_queue_full() {
        let shed = Value::object()
            .with("error", "no live shard available (submission)")
            .with("reason", "no_shards_available");
        let accepted = Value::object().with("job", 4u64).with("queue_depth", 1u64);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = scripted_server(
            listener,
            vec![
                (503, shed.clone(), Some(0)),
                (503, shed, Some(0)),
                (202, accepted, None),
            ],
        );

        let mut client = Client::new(&addr);
        let job = Value::object().with("k", 1u64);
        assert_eq!(client.submit(&job).unwrap(), 4);
        drop(client);
        assert_eq!(server.join().unwrap(), 3, "two retries then acceptance");
    }

    /// The membership satellite: a `503 rebalancing` (the router is
    /// mid-cutover of a shard join/leave) is retried exactly like
    /// `queue_full` — the flip is over in milliseconds, so backing off
    /// and re-POSTing lands the job on the new ring.
    #[test]
    fn submit_retries_router_rebalancing_503s_like_queue_full() {
        let rebalancing = Value::object()
            .with(
                "error",
                "router is rebalancing shard membership; retry shortly",
            )
            .with("reason", "rebalancing");
        let accepted = Value::object().with("job", 7u64).with("queue_depth", 1u64);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = scripted_server(
            listener,
            vec![
                (503, rebalancing.clone(), Some(0)),
                (503, rebalancing, Some(0)),
                (202, accepted, None),
            ],
        );

        let mut client = Client::new(&addr);
        let job = Value::object().with("k", 1u64);
        assert_eq!(client.submit(&job).unwrap(), 7);
        drop(client);
        assert_eq!(server.join().unwrap(), 3, "two retries then acceptance");
    }

    /// 503s whose reason is not `queue_full`/`no_shards_available`/
    /// `rebalancing` (the server may have admitted or cannot accept the
    /// job) surface immediately.
    #[test]
    fn submit_does_not_retry_other_503_reasons() {
        let degraded = Value::object()
            .with("error", "job store is degraded")
            .with("reason", "store_degraded");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = scripted_server(listener, vec![(503, degraded, Some(1))]);

        let mut client = Client::new(&addr);
        let job = Value::object().with("k", 1u64);
        let err = client.submit(&job).unwrap_err().to_string();
        assert!(
            err.contains("degraded"),
            "error carries the server text: {err}"
        );
        drop(client);
        assert_eq!(server.join().unwrap(), 1, "no retry was attempted");
    }
}
