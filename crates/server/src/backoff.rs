//! Capped exponential backoff with deterministic jitter — the retry
//! discipline shared by `client::Client` (queue-full resubmits, status
//! polling in `wait_for`).
//!
//! Jitter matters because the service is a shared resource: a herd of
//! clients that all saw the same 503 (or all poll the same interval)
//! would otherwise re-arrive in lockstep. Jitter is **deterministic** —
//! a splitmix64 stream seeded by the caller (the job id, for polling) —
//! so different waiters decorrelate while any single test run replays
//! exactly.

use std::time::Duration;

/// A capped exponential backoff schedule with deterministic jitter.
///
/// Each [`next_delay`](Backoff::next_delay) draws the current step
/// jittered into `[step/2, step)`, then doubles the step up to the cap.
#[derive(Debug)]
pub struct Backoff {
    step: Duration,
    cap: Duration,
    state: u64,
}

impl Backoff {
    /// A schedule starting at `base` and doubling up to `cap` (raised to
    /// `base` if smaller), with the jitter stream seeded by `seed`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            step: base,
            cap: cap.max(base),
            state: seed,
        }
    }

    /// The next delay to sleep: the current step scaled by a
    /// deterministic factor in `[0.5, 1.0)`; the unjittered step then
    /// doubles, saturating at the cap.
    pub fn next_delay(&mut self) -> Duration {
        let step = self.step;
        self.step = step.saturating_mul(2).min(self.cap);
        // splitmix64: cheap, seedable, and good enough to decorrelate
        // sleepers — statistical quality beyond that is irrelevant here.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        step.mul_f64(0.5 + 0.5 * unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(seed: u64, n: usize) -> Vec<Duration> {
        let mut b = Backoff::new(Duration::from_millis(100), Duration::from_secs(2), seed);
        (0..n).map(|_| b.next_delay()).collect()
    }

    #[test]
    fn delays_are_deterministic_in_the_seed() {
        assert_eq!(schedule(7, 8), schedule(7, 8));
        assert_ne!(
            schedule(7, 8),
            schedule(8, 8),
            "different seeds decorrelate"
        );
    }

    #[test]
    fn delays_grow_exponentially_within_jitter_bands_up_to_the_cap() {
        let delays = schedule(42, 10);
        let mut step = Duration::from_millis(100);
        let cap = Duration::from_secs(2);
        for (i, d) in delays.iter().enumerate() {
            assert!(
                *d >= step / 2 && *d < step,
                "delay {i} = {d:?} outside [{:?}, {step:?})",
                step / 2
            );
            step = step.saturating_mul(2).min(cap);
        }
        // The tail is capped: every late delay sits in [cap/2, cap).
        assert!(delays[9] >= cap / 2 && delays[9] < cap);
    }

    #[test]
    fn base_larger_than_cap_is_tolerated() {
        let mut b = Backoff::new(Duration::from_secs(5), Duration::from_secs(1), 1);
        let d = b.next_delay();
        assert!(d >= Duration::from_millis(2500) && d < Duration::from_secs(5));
    }
}
