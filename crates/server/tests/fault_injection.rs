//! Armed-fault integration tests (`--features fault-injection`): the
//! panic-isolation worker domain end to end over a real socket, and the
//! degraded-store lifecycle a runtime journal-write failure triggers.
//!
//! The fault table is process-global, so every test that arms it holds
//! [`armed_lock`] for its whole body and disarms on drop — tests stay
//! correct under the default parallel test runner.

#![cfg(feature = "fault-injection")]

use sspc_common::fault;
use sspc_common::json::Value;
use sspc_server::client::Client;
use sspc_server::store::{DiskStore, EvictionPolicy, JobStore};
use sspc_server::{Server, ServerConfig};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static ARMED: Mutex<()> = Mutex::new(());

/// Serializes armed sections across tests and guarantees `disarm` even
/// when the test body panics (a poisoned `ARMED` is fine — the table
/// itself was still cleared).
struct ArmedSection(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for ArmedSection {
    fn drop(&mut self) {
        fault::disarm();
    }
}

fn armed_lock() -> ArmedSection {
    ArmedSection(
        ARMED
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    )
}

fn tiny_job(seed: u64) -> Value {
    Value::object()
        .with("k", 2u64)
        .with(
            "dataset",
            Value::object().with(
                "generate",
                Value::object()
                    .with("n", 30u64)
                    .with("d", 6u64)
                    .with("dims", 3u64)
                    .with("seed", seed),
            ),
        )
        .with("algorithms", "harp")
        .with("runs", 1u64)
}

/// The panic-isolation tentpole under an injected panic: the first job's
/// body panics inside the worker, the job ends `failed` with the payload
/// in its error, and the SAME worker thread (pool of 1, no restart)
/// completes the next job. `/healthz` counts the panic and still shows
/// every worker alive.
#[test]
fn injected_panic_fails_the_job_but_not_the_worker() {
    let _armed = armed_lock();
    let server = Server::start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 8,
        ..Default::default()
    })
    .unwrap();
    let mut client = Client::new(server.addr().to_string());

    fault::arm("job.execute:1:panic");
    let id = client.submit(&tiny_job(1)).unwrap();
    let failed = client
        .wait_for(id, Duration::from_millis(10), Duration::from_secs(60))
        .unwrap();
    assert_eq!(failed.get("status").and_then(Value::as_str), Some("failed"));
    let msg = failed.get("error").and_then(Value::as_str).unwrap();
    assert!(msg.contains("job panicked"), "{msg}");
    assert!(msg.contains("fault injected: job.execute"), "{msg}");

    fault::disarm();
    let id = client.submit(&tiny_job(2)).unwrap();
    let done = client
        .wait_for(id, Duration::from_millis(10), Duration::from_secs(60))
        .unwrap();
    assert_eq!(done.get("status").and_then(Value::as_str), Some("done"));

    let health = client.healthz().unwrap();
    assert_eq!(health.get("jobs_panicked").and_then(Value::as_u64), Some(1));
    assert_eq!(health.get("workers_alive").and_then(Value::as_u64), Some(1));
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
    server.shutdown();
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sspc_fault_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec_raw() -> (sspc_server::JobSpec, Value) {
    let raw = tiny_job(3);
    (sspc_server::JobSpec::from_json(&raw).unwrap(), raw)
}

/// The graceful-degradation tentpole at the store layer: a journal write
/// that fails at runtime demotes the unjournalable result, flips the
/// store read-only (new inserts refused), and a restart recovers — the
/// job whose result was never durable re-runs instead of being served a
/// lie.
#[test]
fn journal_write_failure_degrades_the_store_until_restart() {
    let _armed = armed_lock();
    let dir = temp_dir("degraded");
    {
        let store = DiskStore::open(&dir, EvictionPolicy::default())
            .unwrap()
            .store;
        let (spec, raw) = spec_raw();
        store.insert(1, spec.clone(), raw.clone()).unwrap();
        store.begin(1);
        assert!(!store.degraded());

        fault::arm("journal.append:1:err");
        store.complete(1, Value::object().with("objective", 1.5), 0.4);
        assert!(store.degraded(), "failed append flips the degraded flag");
        let doc = store.get(1).unwrap();
        assert_eq!(doc.get("status").and_then(Value::as_str), Some("failed"));
        let msg = doc.get("error").and_then(Value::as_str).unwrap();
        assert!(msg.contains("result not durable"), "{msg}");
        assert_eq!(
            store.stats().get("degraded").and_then(Value::as_bool),
            Some(true)
        );

        // Degraded means read-only: the next insert is refused even
        // though the armed fault has already been consumed.
        fault::disarm();
        let err = store.insert(2, spec, raw).unwrap_err().to_string();
        assert!(err.contains("degraded"), "{err}");
    }
    // Restart recovers: job 1's done line never reached the journal, so
    // the job replays as interrupted work and re-runs.
    let recovery = DiskStore::open(&dir, EvictionPolicy::default()).unwrap();
    assert_eq!(recovery.pending, vec![1]);
    assert!(!recovery.store.degraded());
    assert_eq!(
        recovery
            .store
            .get(1)
            .unwrap()
            .get("status")
            .and_then(Value::as_str),
        Some("queued")
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The degraded server keeps serving reads but answers new submissions
/// with a non-retryable `503 store_degraded` — liveness without
/// readiness, reported by `/healthz`.
#[test]
fn degraded_server_rejects_submissions_but_keeps_serving_reads() {
    let _armed = armed_lock();
    let dir = temp_dir("degraded_server");
    let server = Server::start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 8,
        state_dir: Some(dir.clone()),
        ..Default::default()
    })
    .unwrap();
    let mut client = Client::new(server.addr().to_string());

    let id = client.submit(&tiny_job(4)).unwrap();
    let done = client
        .wait_for(id, Duration::from_millis(10), Duration::from_secs(60))
        .unwrap();
    assert_eq!(done.get("status").and_then(Value::as_str), Some("done"));

    // Fail the next journal append: the submit's own journal-first write
    // errors, so the job is refused AND the store degrades.
    fault::arm("journal.append:1:err");
    let err = client.submit(&tiny_job(5)).unwrap_err().to_string();
    assert!(err.contains("503"), "{err}");
    fault::disarm();

    // Reads still work (liveness); submissions stay refused with the
    // non-retryable reason (no readiness); health reports the split.
    assert_eq!(
        client
            .job_status(id)
            .unwrap()
            .get("status")
            .and_then(Value::as_str),
        Some("done")
    );
    let err = client.submit(&tiny_job(6)).unwrap_err().to_string();
    assert!(err.contains("degraded"), "{err}");
    let health = client.healthz().unwrap();
    assert_eq!(
        health.get("status").and_then(Value::as_str),
        Some("degraded")
    );
    assert_eq!(health.get("ready").and_then(Value::as_bool), Some(false));
    assert_eq!(
        health.get("store_degraded").and_then(Value::as_bool),
        Some(true)
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
