//! End-to-end tests over a real socket: a submitted job's wire result must
//! be **identical** to the equivalent in-process `sspc_api` call, the
//! error paths (malformed submissions, backpressure) must answer with the
//! right statuses without wedging the service, and the PR-5 store layer
//! must deliver its contracts — restart recovery (results byte-identical,
//! interrupted jobs re-run), TTL/cap eviction, and keep-alive connection
//! reuse.

use sspc_api::compare_algorithms;
use sspc_api::registry::{AnyClusterer, ParamMap};
use sspc_common::json::Value;
use sspc_common::{ClusterId, Supervision};
use sspc_datagen::{generate, GeneratorConfig};
use sspc_server::{client, client::Client, Server, ServerConfig};
use std::path::PathBuf;
use std::time::Duration;

fn start(workers: usize, queue_capacity: usize) -> (Server, String) {
    let server = Server::start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_capacity,
        ..Default::default()
    })
    .expect("bind a loopback port");
    let addr = server.addr().to_string();
    (server, addr)
}

fn temp_state_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sspc_e2e_state_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The experiment a job and the in-process reference both run.
const N: usize = 120;
const D: usize = 16;
const K: usize = 3;
const DIMS: usize = 5;
const DATA_SEED: u64 = 7;
const JOB_SEED: u64 = 11;
const RUNS: usize = 2;
const ALGORITHMS: [&str; 3] = ["sspc", "clarans", "harp"];
const PARAMS: &str = "clarans.num-local=1";

fn compare_job() -> Value {
    Value::object()
        .with("k", K as u64)
        .with(
            "dataset",
            Value::object().with(
                "generate",
                Value::object()
                    .with("n", N as u64)
                    .with("d", D as u64)
                    .with("dims", DIMS as u64)
                    .with("seed", DATA_SEED),
            ),
        )
        .with("algorithms", ALGORITHMS.join(","))
        .with("params", PARAMS)
        .with("runs", RUNS as u64)
        .with("seed", JOB_SEED)
        .with("truth", true)
        .with("include_assignment", true)
}

/// Submit over the socket, poll to completion, and check the result equals
/// a direct [`compare_algorithms`] call — algorithm by algorithm, field by
/// field, down to the f64 bits (shortest-roundtrip JSON) and the full
/// per-object assignment.
#[test]
fn socket_compare_job_matches_in_process_result() {
    let (server, addr) = start(2, 16);
    let id = client::submit(&addr, &compare_job()).unwrap();
    let done = client::wait_for(
        &addr,
        id,
        Duration::from_millis(25),
        Duration::from_secs(120),
    )
    .expect("job finishes");
    assert_eq!(done.get("status").and_then(Value::as_str), Some("done"));
    let wire_reports = done
        .get("result")
        .and_then(|r| r.get("reports"))
        .and_then(Value::as_array)
        .expect("reports array")
        .to_vec();

    // The reference: same dataset, same roster, same protocol, in-process.
    let data = generate(
        &GeneratorConfig {
            n: N,
            d: D,
            k: K,
            avg_cluster_dims: DIMS,
            ..Default::default()
        },
        DATA_SEED,
    )
    .unwrap();
    let scoped = ParamMap::parse_scoped(PARAMS).unwrap();
    let roster = AnyClusterer::roster(&ALGORITHMS, K, &scoped).unwrap();
    let reference = compare_algorithms(
        &roster,
        &data.dataset,
        &Supervision::none(),
        Some(data.truth.assignment()),
        RUNS,
        JOB_SEED,
    )
    .unwrap();

    assert_eq!(wire_reports.len(), reference.len());
    for (wire, local) in wire_reports.iter().zip(&reference) {
        let name = local.algorithm.as_str();
        assert_eq!(wire.get("algorithm").and_then(Value::as_str), Some(name));
        let wire_objective = wire.get("objective").and_then(Value::as_f64).unwrap();
        assert_eq!(
            wire_objective.to_bits(),
            local.best.objective().to_bits(),
            "{name}: objective drifted across the wire"
        );
        assert_eq!(
            wire.get("clusters").and_then(Value::as_u64),
            Some(local.best.n_clusters() as u64),
            "{name}"
        );
        assert_eq!(
            wire.get("outliers").and_then(Value::as_u64),
            Some(local.best.n_outliers() as u64),
            "{name}"
        );
        assert_eq!(
            wire.get("runs").and_then(Value::as_u64),
            Some(local.runs_executed as u64),
            "{name}"
        );

        let eval = local.evaluation.expect("truth supplied");
        let wire_eval = wire.get("evaluation").expect("truth supplied");
        for (key, value) in [
            ("ari", eval.ari),
            ("nmi", eval.nmi),
            ("purity", eval.purity),
        ] {
            let wire_value = wire_eval.get(key).and_then(Value::as_f64).unwrap();
            assert_eq!(
                wire_value.to_bits(),
                value.to_bits(),
                "{name}: {key} drifted across the wire"
            );
        }

        let wire_assignment: Vec<Option<ClusterId>> = wire
            .get("assignment")
            .and_then(Value::as_array)
            .expect("assignment requested")
            .iter()
            .map(|v| v.as_u64().map(|c| ClusterId(c as usize)))
            .collect();
        assert_eq!(
            wire_assignment,
            local.best.assignment().to_vec(),
            "{name}: assignment drifted across the wire"
        );
    }

    // The health counters saw exactly this one job.
    let health = client::healthz(&addr).unwrap();
    let jobs = health.get("jobs").unwrap();
    assert_eq!(jobs.get("submitted").and_then(Value::as_u64), Some(1));
    assert_eq!(jobs.get("completed").and_then(Value::as_u64), Some(1));
    assert_eq!(jobs.get("failed").and_then(Value::as_u64), Some(0));
    let harp = health.get("algorithms").unwrap().get("harp").unwrap();
    assert_eq!(harp.get("restarts").and_then(Value::as_u64), Some(1));
    server.shutdown();
}

/// A job on a dataset file written to disk: the path + `truth_path` route.
#[test]
fn file_backed_cluster_job_roundtrips() {
    let dir = std::env::temp_dir();
    let data_path = dir.join(format!("sspc_e2e_{}_data.tsv", std::process::id()));
    let truth_path = dir.join(format!("sspc_e2e_{}_truth.tsv", std::process::id()));
    let data = generate(
        &GeneratorConfig {
            n: 80,
            d: 10,
            k: 2,
            avg_cluster_dims: 4,
            ..Default::default()
        },
        5,
    )
    .unwrap();
    let mut buf = Vec::new();
    sspc_common::io::write_delimited(&data.dataset, &mut buf, '\t').unwrap();
    std::fs::write(&data_path, buf).unwrap();
    let mut buf = Vec::new();
    sspc_common::io::write_labels(&mut buf, data.truth.assignment()).unwrap();
    std::fs::write(&truth_path, buf).unwrap();

    let (server, addr) = start(1, 8);
    let job = Value::object()
        .with("type", "cluster")
        .with("k", 2u64)
        .with(
            "dataset",
            Value::object().with("path", data_path.to_string_lossy().into_owned()),
        )
        .with("truth_path", truth_path.to_string_lossy().into_owned())
        .with("algorithm", "clarans")
        .with("runs", 2u64)
        .with("seed", 9u64);
    let id = client::submit(&addr, &job).unwrap();
    let done = client::wait_for(
        &addr,
        id,
        Duration::from_millis(25),
        Duration::from_secs(60),
    )
    .unwrap();
    assert_eq!(done.get("status").and_then(Value::as_str), Some("done"));
    let result = done.get("result").unwrap();
    assert_eq!(
        result
            .get("assignment")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(80)
    );
    assert!(result.get("evaluation").is_some());
    server.shutdown();
    let _ = std::fs::remove_file(&data_path);
    let _ = std::fs::remove_file(&truth_path);
}

/// Invalid submissions answer 400 with a useful message; unknown routes
/// and ids 404; wrong methods 405. The service keeps serving afterwards.
#[test]
fn malformed_requests_get_4xx_answers() {
    let (server, addr) = start(1, 8);

    // Not JSON at all: raw bytes straight down the socket (announcing
    // close, so read_to_string returns as soon as the server answers).
    {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        stream
            .write_all(b"POST /jobs HTTP/1.1\r\ncontent-length: 4\r\nconnection: close\r\n\r\n}{!!")
            .unwrap();
        let mut answer = String::new();
        stream.read_to_string(&mut answer).unwrap();
        assert!(answer.starts_with("HTTP/1.1 400"), "{answer}");
    }

    // A JSON document that is not an object.
    let (status, body) =
        sspc_server::http::request(&addr, "POST", "/jobs", Some(&Value::Str("}{".into()))).unwrap();
    assert_eq!(status, 400);
    assert!(body.get("error").is_some());

    // JSON, but schema-invalid (missing k/dataset/algorithms).
    let (status, body) =
        sspc_server::http::request(&addr, "POST", "/jobs", Some(&Value::object())).unwrap();
    assert_eq!(status, 400);
    let msg = body.get("error").and_then(Value::as_str).unwrap();
    assert!(msg.contains("`k`"), "{msg}");

    // Unknown algorithm passes the schema, fails at execution → job fails.
    let job = compare_job()
        .with("algorithms", "kmeans")
        .with("params", "");
    let id = client::submit(&addr, &job).unwrap();
    let done = client::wait_for(
        &addr,
        id,
        Duration::from_millis(10),
        Duration::from_secs(30),
    )
    .unwrap();
    assert_eq!(done.get("status").and_then(Value::as_str), Some("failed"));
    let msg = done.get("error").and_then(Value::as_str).unwrap();
    assert!(msg.contains("unknown algorithm"), "{msg}");

    // Unknown routes, ids, and methods.
    let (status, _) = sspc_server::http::request(&addr, "GET", "/nope", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = sspc_server::http::request(&addr, "GET", "/jobs/999", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = sspc_server::http::request(&addr, "DELETE", "/jobs/1", None).unwrap();
    assert_eq!(status, 405);
    let (status, _) = sspc_server::http::request(&addr, "POST", "/healthz", None).unwrap();
    assert_eq!(status, 405);

    // The counters recorded the three invalid submissions and the service
    // still answers.
    let health = client::healthz(&addr).unwrap();
    let jobs = health.get("jobs").unwrap();
    assert_eq!(
        jobs.get("rejected_invalid").and_then(Value::as_u64),
        Some(3)
    );
    assert_eq!(jobs.get("failed").and_then(Value::as_u64), Some(1));
    server.shutdown();
}

/// A small, fast, deterministic job for the store-layer tests.
fn tiny_job(seed: u64) -> Value {
    Value::object()
        .with("k", 2u64)
        .with(
            "dataset",
            Value::object().with(
                "generate",
                Value::object()
                    .with("n", 30u64)
                    .with("d", 6u64)
                    .with("dims", 3u64)
                    .with("seed", seed),
            ),
        )
        .with("algorithms", "harp")
        .with("runs", 1u64)
}

fn start_disk(workers: usize, dir: &std::path::Path) -> (Server, String) {
    let server = Server::start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_capacity: 16,
        state_dir: Some(dir.to_path_buf()),
        ..Default::default()
    })
    .expect("bind a loopback port");
    let addr = server.addr().to_string();
    (server, addr)
}

/// The tentpole's restart contract, end to end over real sockets and a
/// real kill/restart cycle: a completed job's result polled after restart
/// is **byte-identical** to the pre-restart response, and a job queued at
/// kill time re-runs to completion after restart.
#[test]
fn restart_recovery_preserves_results_and_reruns_interrupted_jobs() {
    let dir = temp_state_dir("recovery");

    // Life 1: run a job to completion, capture its exact wire document.
    let (server, addr) = start_disk(1, &dir);
    let mut client = Client::new(&addr);
    let id = client.submit(&tiny_job(7)).unwrap();
    let before = client
        .wait_for(id, Duration::from_millis(20), Duration::from_secs(60))
        .unwrap();
    assert_eq!(before.get("status").and_then(Value::as_str), Some("done"));
    server.shutdown();

    // Life 2: no workers — a freshly submitted job stays queued and the
    // process "dies" with it in flight.
    let (server, addr) = start_disk(0, &dir);
    let mut client = Client::new(&addr);
    let interrupted = client.submit(&tiny_job(8)).unwrap();
    assert_eq!(
        client
            .job_status(interrupted)
            .unwrap()
            .get("status")
            .and_then(Value::as_str),
        Some("queued")
    );
    // The completed result from life 1 is already being served again.
    assert_eq!(
        client.job_status(id).unwrap().to_string(),
        before.to_string()
    );
    server.shutdown();

    // Life 3: recovery re-enqueues the interrupted job and it completes.
    let (server, addr) = start_disk(1, &dir);
    let mut client = Client::new(&addr);
    let after = client
        .wait_for(
            interrupted,
            Duration::from_millis(20),
            Duration::from_secs(60),
        )
        .unwrap();
    assert_eq!(after.get("status").and_then(Value::as_str), Some("done"));
    let health = client.healthz().unwrap();
    assert_eq!(
        health
            .get("jobs")
            .unwrap()
            .get("recovered")
            .and_then(Value::as_u64),
        Some(1)
    );
    assert_eq!(
        health
            .get("store")
            .unwrap()
            .get("kind")
            .and_then(Value::as_str),
        Some("disk")
    );
    // The byte-identity core of the acceptance criteria.
    assert_eq!(
        client.job_status(id).unwrap().to_string(),
        before.to_string(),
        "result drifted across restart"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// TTL eviction: a finished result outlives its TTL only until the next
/// read, then 404s; the eviction is counted in `/healthz`.
#[test]
fn ttl_evicts_finished_results() {
    let ttl = Duration::from_millis(100);
    let server = Server::start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 8,
        result_ttl: Some(ttl),
        ..Default::default()
    })
    .unwrap();
    let mut client = Client::new(server.addr().to_string());
    let id = client.submit(&tiny_job(3)).unwrap();
    let done = client
        .wait_for(id, Duration::from_millis(10), Duration::from_secs(60))
        .unwrap();
    assert_eq!(done.get("status").and_then(Value::as_str), Some("done"));

    std::thread::sleep(ttl + Duration::from_millis(300));
    let err = client.job_status(id).unwrap_err().to_string();
    assert!(err.contains("404"), "{err}");
    let store = client.healthz().unwrap().get("store").unwrap().clone();
    assert_eq!(store.get("evicted").and_then(Value::as_u64), Some(1));
    assert_eq!(store.get("jobs").and_then(Value::as_u64), Some(0));
    assert_eq!(
        store.get("result_ttl_seconds").and_then(Value::as_f64),
        Some(0.1)
    );
    server.shutdown();
}

/// `max_jobs` eviction: fully deterministic — the store never exceeds
/// the cap, and the oldest finished job is the one that goes.
#[test]
fn max_jobs_evicts_oldest_finished() {
    let server = Server::start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 8,
        max_jobs: Some(1),
        ..Default::default()
    })
    .unwrap();
    let mut client = Client::new(server.addr().to_string());
    let first = client.submit(&tiny_job(1)).unwrap();
    client
        .wait_for(first, Duration::from_millis(10), Duration::from_secs(60))
        .unwrap();
    let second = client.submit(&tiny_job(2)).unwrap();
    client
        .wait_for(second, Duration::from_millis(10), Duration::from_secs(60))
        .unwrap();
    // Submitting the second job pushed the store past the cap; the first
    // (finished) job was evicted, the second survived.
    assert!(client.job_status(first).is_err());
    assert!(client.job_status(second).is_ok());
    let store = client.healthz().unwrap().get("store").unwrap().clone();
    assert_eq!(store.get("max_jobs").and_then(Value::as_u64), Some(1));
    assert_eq!(store.get("evicted").and_then(Value::as_u64), Some(1));
    server.shutdown();
}

/// Keep-alive over the full service: one `Client` drives a submission,
/// the whole polling loop, a listing, and two health checks over ONE TCP
/// connection — asserted via the server's own accepted-connection
/// counter.
#[test]
fn polling_reuses_one_connection() {
    let (server, addr) = start(1, 8);
    let mut client = Client::new(&addr);
    let id = client.submit(&tiny_job(5)).unwrap();
    let done = client
        .wait_for(id, Duration::from_millis(10), Duration::from_secs(60))
        .unwrap();
    assert_eq!(done.get("status").and_then(Value::as_str), Some("done"));
    let listing = client.list_jobs(Some("done"), Some(10)).unwrap();
    assert_eq!(listing.get("total").and_then(Value::as_u64), Some(1));
    let _ = client.healthz().unwrap();
    let health = client.healthz().unwrap();
    assert_eq!(
        health.get("connections_accepted").and_then(Value::as_u64),
        Some(1),
        "every request should have ridden the same socket"
    );
    server.shutdown();
}

/// The `GET /jobs` satellite: `?status=` filters, `?limit=` caps (with
/// `total` reporting the uncapped count), and bad parameters answer 400.
#[test]
fn listing_filters_and_caps() {
    let (server, addr) = start(0, 8); // no workers: jobs stay queued
    let mut client = Client::new(&addr);
    for seed in 0..3 {
        client.submit(&tiny_job(seed)).unwrap();
    }
    let all = client.list_jobs(None, None).unwrap();
    assert_eq!(all.get("total").and_then(Value::as_u64), Some(3));
    let jobs = all.get("jobs").and_then(Value::as_array).unwrap();
    assert_eq!(jobs.len(), 3);
    // Newest first.
    assert_eq!(jobs[0].get("job").and_then(Value::as_u64), Some(3));
    assert!(jobs[0].get("result").is_none());

    let queued = client.list_jobs(Some("queued"), Some(2)).unwrap();
    assert_eq!(queued.get("total").and_then(Value::as_u64), Some(3));
    assert_eq!(
        queued.get("jobs").and_then(Value::as_array).unwrap().len(),
        2
    );
    let done = client.list_jobs(Some("done"), None).unwrap();
    assert_eq!(done.get("total").and_then(Value::as_u64), Some(0));

    let (status, body) =
        sspc_server::http::request(&addr, "GET", "/jobs?status=bogus", None).unwrap();
    assert_eq!(status, 400);
    assert!(body
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("bogus"));
    let (status, _) = sspc_server::http::request(&addr, "GET", "/jobs?limit=x", None).unwrap();
    assert_eq!(status, 400);
    let (status, _) = sspc_server::http::request(&addr, "GET", "/jobs?frob=1", None).unwrap();
    assert_eq!(status, 400);
    server.shutdown();
}

/// Backpressure: with no workers draining, the queue fills to capacity and
/// the next submission is refused with 503 — it does **not** block or grow
/// the queue without bound.
#[test]
fn full_queue_answers_503_backpressure() {
    let (server, addr) = start(0, 2);
    let job = compare_job();
    assert!(client::submit(&addr, &job).is_ok());
    assert!(client::submit(&addr, &job).is_ok());

    // Raw connection so the Retry-After header is observable (the
    // Client would eat the 503 into its retry loop).
    let mut conn = sspc_server::http::HttpConnection::connect(&addr).unwrap();
    let (status, body) = conn.roundtrip("POST", "/jobs", Some(&job)).unwrap();
    assert_eq!(status, 503);
    assert_eq!(body.get("queue_depth").and_then(Value::as_u64), Some(2));
    assert_eq!(body.get("queue_capacity").and_then(Value::as_u64), Some(2));
    assert_eq!(
        body.get("reason").and_then(Value::as_str),
        Some("queue_full"),
        "the one reason a client may re-POST"
    );
    let retry_after = conn.retry_after().expect("every 503 carries Retry-After");
    assert!(
        (1..=60).contains(&retry_after),
        "Retry-After {retry_after} outside its clamp"
    );

    // The refused job left no trace; the two accepted ones are queued.
    let health = client::healthz(&addr).unwrap();
    assert_eq!(
        health
            .get("queue")
            .unwrap()
            .get("depth")
            .and_then(Value::as_u64),
        Some(2)
    );
    let jobs = health.get("jobs").unwrap();
    assert_eq!(jobs.get("submitted").and_then(Value::as_u64), Some(2));
    assert_eq!(
        jobs.get("rejected_queue_full").and_then(Value::as_u64),
        Some(1)
    );
    let (_, listing) = sspc_server::http::request(&addr, "GET", "/jobs", None).unwrap();
    assert_eq!(
        listing
            .get("jobs")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(2)
    );
    server.shutdown();
}

/// The deadline tentpole, end to end with no fault-injection feature: a
/// job whose `timeout_secs` has already passed by its first cooperative
/// cancellation check fails with a descriptive error, the worker thread
/// survives to complete the next job, and `/healthz` counts the
/// cancellation — all on one server, no restart.
#[test]
fn deadline_exceeded_jobs_fail_without_killing_the_worker() {
    let (server, addr) = start(1, 8);
    let mut client = Client::new(&addr);

    // ~1µs budget: expired before the first restart loop iteration runs.
    let id = client
        .submit(&tiny_job(1).with("timeout_secs", 1e-6))
        .unwrap();
    let done = client
        .wait_for(id, Duration::from_millis(10), Duration::from_secs(60))
        .unwrap();
    assert_eq!(done.get("status").and_then(Value::as_str), Some("failed"));
    let msg = done.get("error").and_then(Value::as_str).unwrap();
    assert!(msg.contains("deadline exceeded"), "{msg}");

    // The same worker (pool of 1) completes the next, un-deadlined job —
    // and the deadline guard was uninstalled between jobs.
    let id = client.submit(&tiny_job(2)).unwrap();
    let done = client
        .wait_for(id, Duration::from_millis(10), Duration::from_secs(60))
        .unwrap();
    assert_eq!(done.get("status").and_then(Value::as_str), Some("done"));

    let health = client.healthz().unwrap();
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(
        health.get("jobs_deadline_exceeded").and_then(Value::as_u64),
        Some(1)
    );
    assert_eq!(health.get("jobs_panicked").and_then(Value::as_u64), Some(0));
    assert_eq!(health.get("workers_alive").and_then(Value::as_u64), Some(1));
    let jobs = health.get("jobs").unwrap();
    assert_eq!(jobs.get("failed").and_then(Value::as_u64), Some(1));
    assert_eq!(jobs.get("completed").and_then(Value::as_u64), Some(1));
    server.shutdown();
}

/// The ingress bound: with `max_connections = 2` and both slots held by
/// idle keep-alive connections, a third connection is shed with an
/// **inline** `503` + `Retry-After` (`reason: connections_exhausted`) —
/// visible backpressure, never a silent drop — and a slot freed by a
/// close is reusable again.
#[test]
fn connection_cap_sheds_with_503_and_recovers() {
    let server = Server::start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 8,
        max_connections: 2,
        ..Default::default()
    })
    .unwrap();
    let addr = server.addr().to_string();

    // Two handlers occupy both slots (first exchange forces the accept).
    let mut first = Client::new(&addr);
    let mut second = Client::new(&addr);
    first.healthz().unwrap();
    second.healthz().unwrap();
    let health = first.healthz().unwrap();
    assert_eq!(
        health.get("connections_active").and_then(Value::as_u64),
        Some(2)
    );
    assert_eq!(
        health.get("connections_limit").and_then(Value::as_u64),
        Some(2)
    );

    // The third connection is answered 503 + Retry-After and closed. The
    // shed races the accept loop, so allow a few attempts for the gauge
    // to be observed at the cap.
    let mut shed = None;
    for _ in 0..20 {
        match client::healthz(&addr) {
            Ok(_) => std::thread::sleep(Duration::from_millis(5)),
            Err(e) => {
                shed = Some(e.to_string());
                break;
            }
        }
    }
    let shed = shed.expect("a third connection was eventually shed");
    assert!(shed.contains("503"), "shed with a 503, got: {shed}");

    // Releasing a slot makes room again.
    drop(second);
    let mut third = None;
    for _ in 0..50 {
        if let Ok(h) = client::healthz(&addr) {
            third = Some(h);
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let health = third.expect("freed slot is reusable");
    let rejected = health
        .get("connections_rejected")
        .and_then(Value::as_u64)
        .unwrap();
    assert!(rejected >= 1, "the shed connection was counted");
    drop(first);
    server.shutdown();
}

/// The drain lifecycle end to end: running work finishes, `/healthz`
/// flips to `draining` (not ready), new submissions get `503
/// shutting_down`, reads keep working, and `drain()` returns `true`
/// within the deadline.
#[test]
fn drain_finishes_running_jobs_and_refuses_new_ones() {
    let (server, addr) = start(1, 8);
    let mut client = Client::new(&addr);
    let id = client.submit(&tiny_job(5)).unwrap();

    server.begin_drain();

    // Lame-duck surface: health says draining, submissions are refused
    // with the drain reason, reads still answer.
    let health = client.healthz().unwrap();
    assert_eq!(
        health.get("status").and_then(Value::as_str),
        Some("draining")
    );
    assert_eq!(health.get("ready").and_then(Value::as_bool), Some(false));
    let err = client.submit(&tiny_job(6)).unwrap_err().to_string();
    assert!(err.contains("503"), "refused: {err}");
    assert!(
        err.contains("draining") || err.contains("shutting"),
        "{err}"
    );
    let jobs = client.healthz().unwrap();
    assert!(
        jobs.get("jobs")
            .unwrap()
            .get("rejected_draining")
            .and_then(Value::as_u64)
            .unwrap()
            >= 1
    );

    // The admitted job still completes, and the drain observes it.
    let done = client
        .wait_for(id, Duration::from_millis(10), Duration::from_secs(60))
        .unwrap();
    assert_eq!(done.get("status").and_then(Value::as_str), Some("done"));
    drop(client);
    assert!(
        server.drain(Duration::from_secs(30)),
        "drain completed within the deadline"
    );
}

/// `wait_for` against a draining server with no workers left fails fast
/// on the real server's `503 shutting_down` (the scripted-server variant
/// of this lives in the client unit tests).
#[test]
fn wait_for_fails_fast_on_a_draining_server() {
    // workers = 0: nothing will ever run the queued job (the CLI refuses
    // this; the library allows it precisely for drills like this one).
    let server = Server::start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 0,
        queue_capacity: 8,
        ..Default::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    let mut client = Client::new(&addr);
    let id = client.submit(&tiny_job(9)).unwrap();

    server.begin_drain();
    let started = std::time::Instant::now();
    let err = client
        .wait_for(id, Duration::from_millis(10), Duration::from_secs(60))
        .unwrap_err()
        .to_string();
    assert!(err.contains("draining"), "fail-fast names the drain: {err}");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "did not poll out the full 60s timeout"
    );
    drop(client);
    assert!(server.drain(Duration::from_secs(10)), "nothing was running");
}

/// Cost-aware admission: with a microscopic backlog budget and no workers
/// to drain it, the first job is admitted (an idle server accepts
/// anything) and the second is shed with `503 backlog_exceeded` carrying
/// the estimate — deterministically, because the cost-rate prior is fixed.
#[test]
fn backlog_budget_sheds_submissions_deterministically() {
    let server = Server::start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 0,
        queue_capacity: 8,
        // tiny_job costs 30·6·2·1·1 = 360 units ⇒ 360µs at the 1µs/unit
        // prior, comfortably over a 100µs budget.
        max_backlog_seconds: Some(0.0001),
        ..Default::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    let mut client = Client::new(&addr);

    let first = client.submit(&tiny_job(1));
    assert!(first.is_ok(), "an idle server admits the first job");
    let err = client.submit(&tiny_job(2)).unwrap_err().to_string();
    assert!(err.contains("backlog"), "shed names the budget: {err}");

    let health = client.healthz().unwrap();
    let admission = health.get("admission").unwrap();
    assert_eq!(
        admission.get("backlog_cost_units").and_then(Value::as_u64),
        Some(360)
    );
    assert!(
        admission
            .get("estimated_backlog_seconds")
            .and_then(Value::as_f64)
            .unwrap()
            > 0.0001
    );
    assert_eq!(
        health
            .get("jobs")
            .unwrap()
            .get("rejected_backlog")
            .and_then(Value::as_u64),
        Some(1)
    );
    drop(client);
    server.shutdown();
}

/// Latency observability end to end: after a completed job, `/healthz`
/// reports non-empty queue-wait and job-latency percentile blocks.
#[test]
fn healthz_reports_latency_percentiles_after_a_job() {
    let (server, addr) = start(1, 8);
    let mut client = Client::new(&addr);
    let id = client.submit(&tiny_job(3)).unwrap();
    client
        .wait_for(id, Duration::from_millis(10), Duration::from_secs(60))
        .unwrap();

    let health = client.healthz().unwrap();
    let latency = health.get("latency").expect("latency block present");
    for block in ["queue_wait", "job"] {
        let stats = latency.get(block).unwrap();
        assert_eq!(
            stats.get("count").and_then(Value::as_u64),
            Some(1),
            "{block} counted the job"
        );
        let p50 = stats.get("p50_ms").and_then(Value::as_f64).unwrap();
        let p99 = stats.get("p99_ms").and_then(Value::as_f64).unwrap();
        assert!(p50 >= 0.0 && p99 >= p50, "{block}: p50={p50} p99={p99}");
    }
    // One in-flight request: this very healthz GET.
    assert_eq!(
        health.get("requests_in_flight").and_then(Value::as_u64),
        Some(1)
    );
    drop(client);
    server.shutdown();
}

/// The membership satellite, end to end over real sockets: the router's
/// `/healthz` per-shard table carries a membership state for every
/// shard — `active` for routable members, `down` once one dies, and a
/// runtime joiner shows up `active` after its handoff.
#[test]
fn router_healthz_reports_membership_states() {
    use sspc_server::{Router, RouterConfig};

    let shard = |id: u16| {
        Server::start(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 8,
            shard_id: id,
            ..Default::default()
        })
        .unwrap()
    };
    let a = shard(0);
    let b = shard(1);
    let router = Router::start(&RouterConfig {
        addr: "127.0.0.1:0".into(),
        shards: vec![(0, a.addr().to_string()), (1, b.addr().to_string())],
        probe_interval: Duration::from_secs(60), // only proxy traffic notices deaths
        fail_after: 1,
        ..Default::default()
    })
    .unwrap();
    let mut client = Client::new(router.addr().to_string());

    let membership = |health: &Value, id: &str| -> String {
        health
            .get("shards")
            .and_then(|s| s.get(id))
            .and_then(|doc| doc.get("membership"))
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let health = client.healthz().unwrap();
    assert_eq!(membership(&health, "0"), "active", "{health}");
    assert_eq!(membership(&health, "1"), "active", "{health}");

    // A runtime joiner ends up `active` once its handoff cuts over.
    let c = shard(2);
    let joined = client.add_shard(2, &c.addr().to_string()).unwrap();
    assert_eq!(
        joined.get("membership").and_then(Value::as_str),
        Some("active"),
        "{joined}"
    );
    let health = client.healthz().unwrap();
    assert_eq!(membership(&health, "2"), "active", "{health}");

    // A dead shard renders `down`, not merely absent. The healthz fan-in
    // itself notices the refused connection (fail_after=1), though the
    // dying shard may answer one last in-flight probe mid-drain.
    b.shutdown();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let health = loop {
        let health = client.healthz().unwrap();
        if membership(&health, "1") == "down" {
            break health;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "shard 1 never went down: {health}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(membership(&health, "0"), "active", "{health}");

    drop(client);
    router.shutdown();
    a.shutdown();
    c.shutdown();
}
