//! Optimal cluster-to-class matching via the Hungarian algorithm.
//!
//! Produced cluster ids are arbitrary, so scoring anything per-cluster
//! (dimension selection, per-class accuracy) first requires aligning the
//! produced clusters with the planted classes. We use the maximum-weight
//! assignment on the contingency table — the standard choice — computed
//! exactly with the O(n³) Hungarian (Kuhn–Munkres) algorithm. `k` is tiny
//! in every experiment, so exactness costs nothing.

use sspc_common::{Error, Result};

/// Solves the assignment problem: given a `rows × cols` weight matrix
/// (row-major), find a one-to-one matching of rows to columns maximizing
/// total weight. When the matrix is rectangular, the smaller side is fully
/// matched.
///
/// Returns `assignment[row] = Some(col)` for matched rows.
///
/// # Errors
///
/// Returns [`Error::InvalidShape`] when the weight slice does not have
/// `rows × cols` entries, or [`Error::InvalidParameter`] on non-finite
/// weights.
pub fn max_weight_assignment(
    weights: &[f64],
    rows: usize,
    cols: usize,
) -> Result<Vec<Option<usize>>> {
    if weights.len() != rows * cols {
        return Err(Error::InvalidShape(format!(
            "weight matrix needs {} entries for {rows}×{cols}, got {}",
            rows * cols,
            weights.len()
        )));
    }
    if weights.iter().any(|w| !w.is_finite()) {
        return Err(Error::InvalidParameter("weights must be finite".into()));
    }
    if rows == 0 || cols == 0 {
        return Ok(vec![None; rows]);
    }

    // Pad to a square cost matrix; Hungarian minimizes, so negate weights
    // (shifted so all costs are non-negative, which the potentials handle
    // anyway but keeps the arithmetic tame).
    let n = rows.max(cols);
    let max_w = weights.iter().cloned().fold(f64::MIN, f64::max);
    let cost = |r: usize, c: usize| -> f64 {
        if r < rows && c < cols {
            max_w - weights[r * cols + c]
        } else {
            max_w // dummy row/col: uniform cost, never distorts the optimum
        }
    };

    // Standard O(n³) Hungarian with potentials (Jonker-style shortest
    // augmenting paths). 1-based internal arrays as in the classical
    // formulation.
    let inf = f64::INFINITY;
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row matched to col (1-based)
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![None; rows];
    for (j, &i) in p.iter().enumerate().take(n + 1).skip(1) {
        if i >= 1 && i - 1 < rows && j - 1 < cols {
            assignment[i - 1] = Some(j - 1);
        }
    }
    Ok(assignment)
}

/// Matches produced clusters (rows) to reference classes (columns) by
/// maximizing total overlap, using a contingency table's counts as weights.
///
/// Returns `matching[cluster] = Some(class)`.
///
/// # Errors
///
/// Propagates [`max_weight_assignment`] failures.
pub fn match_clusters_to_classes(table: &crate::ContingencyTable) -> Result<Vec<Option<usize>>> {
    // Rows of the contingency table are the reference (U); produced
    // clusters are the columns (V). Transpose into cluster-major weights.
    let rows = table.n_cols();
    let cols = table.n_rows();
    let mut weights = vec![0.0; rows * cols];
    for (u_row, v_col, count) in table.cells() {
        weights[v_col * cols + u_row] = count as f64;
    }
    max_weight_assignment(&weights, rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn brute_force_best(weights: &[f64], rows: usize, cols: usize) -> f64 {
        // Enumerate all injective row→col maps (small sizes only).
        fn rec(weights: &[f64], cols: usize, row: usize, rows: usize, used: &mut Vec<bool>) -> f64 {
            if row == rows {
                return 0.0;
            }
            let mut best = f64::NEG_INFINITY;
            // Option: leave this row unmatched only if rows > cols handled
            // by padding; for brute force, allow skipping when no cols left.
            let free = used.iter().filter(|&&u| !u).count();
            if free == 0 || rows - row > free {
                // must skip some rows
                best = best.max(rec(weights, cols, row + 1, rows, used));
            }
            for c in 0..cols {
                if !used[c] {
                    used[c] = true;
                    let sub = rec(weights, cols, row + 1, rows, used);
                    best = best.max(weights[row * cols + c] + sub);
                    used[c] = false;
                }
            }
            best
        }
        let mut used = vec![false; cols];
        rec(weights, cols, 0, rows, &mut used)
    }

    fn assignment_weight(weights: &[f64], cols: usize, assignment: &[Option<usize>]) -> f64 {
        assignment
            .iter()
            .enumerate()
            .filter_map(|(r, c)| c.map(|c| weights[r * cols + c]))
            .sum()
    }

    #[test]
    fn identity_matrix_matches_diagonal() {
        let w = vec![
            1.0, 0.0, 0.0, //
            0.0, 1.0, 0.0, //
            0.0, 0.0, 1.0,
        ];
        let a = max_weight_assignment(&w, 3, 3).unwrap();
        assert_eq!(a, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn picks_off_diagonal_when_better() {
        let w = vec![
            1.0, 10.0, //
            10.0, 1.0,
        ];
        let a = max_weight_assignment(&w, 2, 2).unwrap();
        assert_eq!(a, vec![Some(1), Some(0)]);
    }

    #[test]
    fn rectangular_matrices_match_smaller_side() {
        let w = vec![
            5.0, 1.0, 1.0, //
            1.0, 5.0, 1.0,
        ];
        let a = max_weight_assignment(&w, 2, 3).unwrap();
        assert_eq!(a, vec![Some(0), Some(1)]);

        let w_t = vec![
            5.0, 1.0, //
            1.0, 5.0, //
            1.0, 1.0,
        ];
        let a = max_weight_assignment(&w_t, 3, 2).unwrap();
        let matched: Vec<_> = a.iter().filter(|c| c.is_some()).collect();
        assert_eq!(matched.len(), 2);
        assert_eq!(a[0], Some(0));
        assert_eq!(a[1], Some(1));
        assert_eq!(a[2], None);
    }

    #[test]
    fn rejects_bad_shapes_and_nan() {
        assert!(max_weight_assignment(&[1.0; 5], 2, 3).is_err());
        assert!(max_weight_assignment(&[1.0, f64::NAN, 0.0, 1.0], 2, 2).is_err());
    }

    #[test]
    fn empty_dimensions() {
        assert_eq!(
            max_weight_assignment(&[], 0, 0).unwrap(),
            Vec::<Option<usize>>::new()
        );
        assert_eq!(max_weight_assignment(&[], 2, 0).unwrap(), vec![None, None]);
    }

    #[test]
    fn contingency_matching_aligns_permuted_labels() {
        use crate::{ContingencyTable, OutlierPolicy};
        use sspc_common::ClusterId;
        // truth classes 0,1,2 / produced clusters are a permutation (2,0,1)
        let u: Vec<_> = [0, 0, 1, 1, 2, 2]
            .iter()
            .map(|&l| Some(ClusterId(l)))
            .collect();
        let v: Vec<_> = [2, 2, 0, 0, 1, 1]
            .iter()
            .map(|&l| Some(ClusterId(l)))
            .collect();
        let t = ContingencyTable::build(&u, &v, OutlierPolicy::Exclude).unwrap();
        let m = match_clusters_to_classes(&t).unwrap();
        // Produced cluster 2 (first seen → compacted index 0) ↔ class 0 …
        // Verify via total matched overlap instead of raw indices:
        let total: u64 = m
            .iter()
            .enumerate()
            .filter_map(|(cl, class)| class.map(|cls| t.count(cls, cl)))
            .sum();
        assert_eq!(total, 6, "perfect permutation should fully match");
    }

    proptest! {
        #[test]
        fn prop_hungarian_matches_brute_force(
            rows in 1usize..5,
            cols in 1usize..5,
            seed in 0u64..1000,
        ) {
            use rand::Rng;
            let mut rng = sspc_common::rng::seeded_rng(seed);
            let weights: Vec<f64> = (0..rows * cols)
                .map(|_| rng.gen_range(0.0..10.0))
                .collect();
            let a = max_weight_assignment(&weights, rows, cols).unwrap();
            // Validity: injective.
            let mut seen = std::collections::HashSet::new();
            for c in a.iter().flatten() {
                prop_assert!(seen.insert(*c));
            }
            let got = assignment_weight(&weights, cols, &a);
            let best = brute_force_best(&weights, rows, cols);
            prop_assert!((got - best).abs() < 1e-9, "got {got}, best {best}");
        }
    }
}
