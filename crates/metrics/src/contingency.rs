use crate::OutlierPolicy;
use sspc_common::{ClusterId, Error, Result};
use std::collections::HashMap;

/// A dense contingency table between two partitions U × V.
///
/// Rows index U-clusters, columns index V-clusters, after compacting the
/// (possibly sparse) cluster ids that actually occur. Under
/// [`OutlierPolicy::AsCluster`] the outlier set of each partition occupies
/// one extra row/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContingencyTable {
    counts: Vec<u64>,
    rows: usize,
    cols: usize,
    row_sums: Vec<u64>,
    col_sums: Vec<u64>,
    total: u64,
}

impl ContingencyTable {
    /// Builds the table from two assignments of equal length.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] on length mismatch or when nothing
    /// survives the outlier policy.
    pub fn build(
        u: &[Option<ClusterId>],
        v: &[Option<ClusterId>],
        policy: OutlierPolicy,
    ) -> Result<Self> {
        if u.len() != v.len() {
            return Err(Error::InvalidShape(format!(
                "partitions cover {} and {} objects",
                u.len(),
                v.len()
            )));
        }
        // Compact the labels that actually occur; `None` maps to a dedicated
        // index under AsCluster and is skipped under Exclude.
        let mut u_index: HashMap<Option<ClusterId>, usize> = HashMap::new();
        let mut v_index: HashMap<Option<ClusterId>, usize> = HashMap::new();
        let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(u.len());
        for (cu, cv) in u.iter().zip(v.iter()) {
            if policy == OutlierPolicy::Exclude && (cu.is_none() || cv.is_none()) {
                continue;
            }
            let next_u = u_index.len();
            let ui = *u_index.entry(*cu).or_insert(next_u);
            let next_v = v_index.len();
            let vi = *v_index.entry(*cv).or_insert(next_v);
            pairs.push((ui, vi));
        }
        if pairs.is_empty() {
            return Err(Error::InvalidShape(
                "no objects survive the outlier policy".into(),
            ));
        }
        let rows = u_index.len();
        let cols = v_index.len();
        let mut counts = vec![0u64; rows * cols];
        for (ui, vi) in pairs {
            counts[ui * cols + vi] += 1;
        }
        let mut row_sums = vec![0u64; rows];
        let mut col_sums = vec![0u64; cols];
        let mut total = 0u64;
        for r in 0..rows {
            for c in 0..cols {
                let x = counts[r * cols + c];
                row_sums[r] += x;
                col_sums[c] += x;
                total += x;
            }
        }
        Ok(ContingencyTable {
            counts,
            rows,
            cols,
            row_sums,
            col_sums,
            total,
        })
    }

    /// Number of U-clusters (rows).
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of V-clusters (columns).
    pub fn n_cols(&self) -> usize {
        self.cols
    }

    /// The count in cell `(row, col)`.
    pub fn count(&self, row: usize, col: usize) -> u64 {
        self.counts[row * self.cols + col]
    }

    /// Iterator over `(row, col, count)` for all cells.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        (0..self.rows)
            .flat_map(move |r| (0..self.cols).map(move |c| (r, c, self.counts[r * self.cols + c])))
    }

    /// Per-row totals (U-cluster sizes).
    pub fn row_sums(&self) -> &[u64] {
        &self.row_sums
    }

    /// Per-column totals (V-cluster sizes).
    pub fn col_sums(&self) -> &[u64] {
        &self.col_sums
    }

    /// Total number of objects counted.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(labels: &[i64]) -> Vec<Option<ClusterId>> {
        labels
            .iter()
            .map(|&l| (l >= 0).then_some(ClusterId(l as usize)))
            .collect()
    }

    #[test]
    fn builds_dense_table() {
        let u = ids(&[0, 0, 1, 1, 1]);
        let v = ids(&[0, 1, 1, 1, 0]);
        let t = ContingencyTable::build(&u, &v, OutlierPolicy::Exclude).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.total(), 5);
        assert_eq!(t.row_sums(), &[2, 3]);
        assert_eq!(t.col_sums(), &[2, 3]);
        // U=0 ∩ V=0 = {obj0} → 1; U=1 ∩ V=1 = {obj2, obj3} → 2.
        assert_eq!(t.count(0, 0), 1);
        assert_eq!(t.count(1, 1), 2);
    }

    #[test]
    fn exclude_drops_rows_with_outliers() {
        let u = ids(&[0, -1, 1]);
        let v = ids(&[0, 0, -1]);
        let t = ContingencyTable::build(&u, &v, OutlierPolicy::Exclude).unwrap();
        assert_eq!(t.total(), 1);
    }

    #[test]
    fn as_cluster_gives_outliers_a_slot() {
        let u = ids(&[0, -1, 0, -1]);
        let v = ids(&[0, 0, 0, 0]);
        let t = ContingencyTable::build(&u, &v, OutlierPolicy::AsCluster).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.n_cols(), 1);
        assert_eq!(t.total(), 4);
    }

    #[test]
    fn sparse_cluster_ids_are_compacted() {
        let u = ids(&[7, 7, 42]);
        let v = ids(&[100, 100, 100]);
        let t = ContingencyTable::build(&u, &v, OutlierPolicy::Exclude).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.n_cols(), 1);
    }

    #[test]
    fn all_outliers_is_an_error_under_exclude() {
        let u = ids(&[-1, -1]);
        let v = ids(&[0, 1]);
        assert!(ContingencyTable::build(&u, &v, OutlierPolicy::Exclude).is_err());
    }

    #[test]
    fn cells_iterate_all_entries() {
        let u = ids(&[0, 1]);
        let v = ids(&[0, 1]);
        let t = ContingencyTable::build(&u, &v, OutlierPolicy::Exclude).unwrap();
        let total: u64 = t.cells().map(|(_, _, c)| c).sum();
        assert_eq!(total, 2);
        assert_eq!(t.cells().count(), 4);
    }
}
