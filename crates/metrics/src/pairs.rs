use sspc_common::{ClusterId, Error, Result};

/// How outlier objects (`None` assignments) participate in pair counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutlierPolicy {
    /// Objects that are an outlier in **either** partition are dropped
    /// before counting pairs. This mirrors the paper's practice of scoring
    /// only the clustered structure (labeled objects are also removed before
    /// scoring in the semi-supervised runs — that removal is done by the
    /// experiment harness, not here).
    #[default]
    Exclude,
    /// Outliers form one ordinary extra cluster per partition. Penalizes
    /// algorithms for discarding real members, rewards genuine outlier
    /// agreement.
    AsCluster,
}

/// Pair-counting summary of two partitions of the same objects.
///
/// Using the paper's notation: over all unordered object pairs,
/// `a` = same cluster in both U and V, `b` = same in U only,
/// `c` = same in V only, `d` = different in both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairCounts {
    /// Pairs together in both partitions.
    pub a: u64,
    /// Pairs together in U, apart in V.
    pub b: u64,
    /// Pairs apart in U, together in V.
    pub c: u64,
    /// Pairs apart in both partitions.
    pub d: u64,
}

impl PairCounts {
    /// Counts pairs between partitions `u` (reference / real clusters) and
    /// `v` (produced clusters).
    ///
    /// Runs in O(n + |U|·|V|) via the contingency table rather than O(n²)
    /// pair enumeration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidShape`] if the slices differ in length or
    /// fewer than two objects survive the outlier policy.
    pub fn count(
        u: &[Option<ClusterId>],
        v: &[Option<ClusterId>],
        policy: OutlierPolicy,
    ) -> Result<Self> {
        if u.len() != v.len() {
            return Err(Error::InvalidShape(format!(
                "partitions cover {} and {} objects",
                u.len(),
                v.len()
            )));
        }
        let table = crate::ContingencyTable::build(u, v, policy)?;
        let n = table.total();
        if n < 2 {
            return Err(Error::InvalidShape(format!(
                "need at least 2 objects to count pairs, got {n}"
            )));
        }

        let pairs = |x: u64| x * x.saturating_sub(1) / 2;
        let a: u64 = table.cells().map(|(_, _, count)| pairs(count)).sum();
        let same_u: u64 = table.row_sums().iter().map(|&s| pairs(s)).sum();
        let same_v: u64 = table.col_sums().iter().map(|&s| pairs(s)).sum();
        let total_pairs = pairs(n);
        let b = same_u - a;
        let c = same_v - a;
        let d = total_pairs - a - b - c;
        Ok(PairCounts { a, b, c, d })
    }

    /// Total number of unordered pairs counted.
    pub fn total(&self) -> u64 {
        self.a + self.b + self.c + self.d
    }
}

/// The Adjusted Rand Index exactly as defined in the paper (Eq. 5):
///
/// ```text
/// ARI(U, V) = 2(ad − bc) / ((a+b)(b+d) + (a+c)(c+d))
/// ```
///
/// 1 for identical partitions, ≈0 for a random partition. (This is the
/// classic Hubert 1977 normalization used by Yeung & Ruzzo; it differs
/// slightly from the Hubert–Arabie expected-value form, provided as
/// [`hubert_arabie_ari`] for cross-checking — the two agree closely on
/// balanced partitions.)
///
/// # Errors
///
/// Propagates [`PairCounts::count`] failures. A degenerate case where the
/// denominator is zero (e.g. both partitions put everything in one cluster)
/// returns 0.
pub fn adjusted_rand_index(
    u: &[Option<ClusterId>],
    v: &[Option<ClusterId>],
    policy: OutlierPolicy,
) -> Result<f64> {
    let pc = PairCounts::count(u, v, policy)?;
    let (a, b, c, d) = (pc.a as f64, pc.b as f64, pc.c as f64, pc.d as f64);
    let denom = (a + b) * (b + d) + (a + c) * (c + d);
    if denom == 0.0 {
        return Ok(0.0);
    }
    Ok(2.0 * (a * d - b * c) / denom)
}

/// The Hubert–Arabie ARI: `(RI − E[RI]) / (max RI − E[RI])` in its
/// pair-count form. Provided for cross-checking against the paper's Eq. 5.
///
/// # Errors
///
/// Propagates [`PairCounts::count`] failures; degenerate denominators give 0.
pub fn hubert_arabie_ari(
    u: &[Option<ClusterId>],
    v: &[Option<ClusterId>],
    policy: OutlierPolicy,
) -> Result<f64> {
    let pc = PairCounts::count(u, v, policy)?;
    let (a, b, c, d) = (pc.a as f64, pc.b as f64, pc.c as f64, pc.d as f64);
    let n = a + b + c + d;
    let expected = (a + b) * (a + c) / n;
    let max = 0.5 * ((a + b) + (a + c));
    let denom = max - expected;
    if denom.abs() < f64::EPSILON {
        return Ok(0.0);
    }
    Ok((a - expected) / denom)
}

/// The plain Rand index `(a + d) / (a + b + c + d)`.
///
/// # Errors
///
/// Propagates [`PairCounts::count`] failures.
pub fn rand_index(
    u: &[Option<ClusterId>],
    v: &[Option<ClusterId>],
    policy: OutlierPolicy,
) -> Result<f64> {
    let pc = PairCounts::count(u, v, policy)?;
    Ok((pc.a + pc.d) as f64 / pc.total() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(labels: &[i64]) -> Vec<Option<ClusterId>> {
        labels
            .iter()
            .map(|&l| (l >= 0).then_some(ClusterId(l as usize)))
            .collect()
    }

    #[test]
    fn identical_partitions_score_one() {
        let u = ids(&[0, 0, 1, 1, 2, 2]);
        let ari = adjusted_rand_index(&u, &u, OutlierPolicy::Exclude).unwrap();
        assert!((ari - 1.0).abs() < 1e-12);
        assert!((rand_index(&u, &u, OutlierPolicy::Exclude).unwrap() - 1.0).abs() < 1e-12);
        assert!((hubert_arabie_ari(&u, &u, OutlierPolicy::Exclude).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pair_counts_match_hand_enumeration() {
        // U: {0,1},{2,3}; V: {0,1,2},{3}
        let u = ids(&[0, 0, 1, 1]);
        let v = ids(&[0, 0, 0, 1]);
        let pc = PairCounts::count(&u, &v, OutlierPolicy::Exclude).unwrap();
        // pairs: (01): same both → a. (02): diff U, same V → c. (03): diff both → d.
        // (12): diff U, same V → c. (13): diff both → d. (23): same U, diff V → b.
        assert_eq!(
            pc,
            PairCounts {
                a: 1,
                b: 1,
                c: 2,
                d: 2
            }
        );
        assert_eq!(pc.total(), 6);
    }

    #[test]
    fn label_renaming_is_invariant() {
        let u = ids(&[0, 0, 1, 1, 2]);
        let v = ids(&[2, 2, 0, 0, 1]);
        let ari = adjusted_rand_index(&u, &v, OutlierPolicy::Exclude).unwrap();
        assert!((ari - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exclude_policy_drops_outliers_from_either_side() {
        let u = ids(&[0, 0, 1, 1, -1]);
        let v = ids(&[0, 0, 1, -1, 1]);
        // Surviving objects: 0,1,2 → U: {0,1},{2}; V: {0,1},{2} → identical.
        let ari = adjusted_rand_index(&u, &v, OutlierPolicy::Exclude).unwrap();
        assert!((ari - 1.0).abs() < 1e-12);
    }

    #[test]
    fn as_cluster_policy_counts_outliers() {
        let u = ids(&[0, 0, -1, -1]);
        let v = ids(&[0, 0, -1, -1]);
        let ari = adjusted_rand_index(&u, &v, OutlierPolicy::AsCluster).unwrap();
        assert!((ari - 1.0).abs() < 1e-12);
        // Disagreeing outliers hurt under AsCluster…
        let w = ids(&[0, -1, 0, -1]);
        let ari2 = adjusted_rand_index(&u, &w, OutlierPolicy::AsCluster).unwrap();
        assert!(ari2 < 1.0);
    }

    #[test]
    fn mismatched_lengths_and_tiny_inputs_error() {
        let u = ids(&[0, 1]);
        let v = ids(&[0]);
        assert!(PairCounts::count(&u, &v, OutlierPolicy::Exclude).is_err());
        let u = ids(&[0, -1]);
        let v = ids(&[0, -1]);
        assert!(PairCounts::count(&u, &v, OutlierPolicy::Exclude).is_err());
    }

    #[test]
    fn single_cluster_vs_singletons_is_degenerate_zero() {
        let u = ids(&[0, 0, 0, 0]);
        let v = ids(&[0, 1, 2, 3]);
        let ari = adjusted_rand_index(&u, &v, OutlierPolicy::Exclude).unwrap();
        assert_eq!(ari, 0.0);
    }

    #[test]
    fn random_partition_scores_near_zero() {
        use rand::Rng;
        let mut rng = sspc_common::rng::seeded_rng(4);
        let n = 2000;
        let u: Vec<Option<ClusterId>> = (0..n)
            .map(|_| Some(ClusterId(rng.gen_range(0..4))))
            .collect();
        let v: Vec<Option<ClusterId>> = (0..n)
            .map(|_| Some(ClusterId(rng.gen_range(0..4))))
            .collect();
        let ari = adjusted_rand_index(&u, &v, OutlierPolicy::Exclude).unwrap();
        assert!(ari.abs() < 0.02, "got {ari}");
    }

    proptest! {
        #[test]
        fn prop_ari_symmetric(labels_u in prop::collection::vec(0usize..5, 10..60),
                              labels_v in prop::collection::vec(0usize..5, 10..60)) {
            let n = labels_u.len().min(labels_v.len());
            let u: Vec<_> = labels_u[..n].iter().map(|&l| Some(ClusterId(l))).collect();
            let v: Vec<_> = labels_v[..n].iter().map(|&l| Some(ClusterId(l))).collect();
            let ab = adjusted_rand_index(&u, &v, OutlierPolicy::Exclude).unwrap();
            let ba = adjusted_rand_index(&v, &u, OutlierPolicy::Exclude).unwrap();
            prop_assert!((ab - ba).abs() < 1e-12);
        }

        #[test]
        fn prop_ari_bounded_above_by_one(labels_u in prop::collection::vec(0usize..4, 5..50),
                                          labels_v in prop::collection::vec(0usize..4, 5..50)) {
            let n = labels_u.len().min(labels_v.len());
            let u: Vec<_> = labels_u[..n].iter().map(|&l| Some(ClusterId(l))).collect();
            let v: Vec<_> = labels_v[..n].iter().map(|&l| Some(ClusterId(l))).collect();
            let ari = adjusted_rand_index(&u, &v, OutlierPolicy::Exclude).unwrap();
            prop_assert!(ari <= 1.0 + 1e-12);
        }

        #[test]
        fn prop_pair_counts_total_is_n_choose_2(labels in prop::collection::vec(0usize..6, 2..80)) {
            let u: Vec<_> = labels.iter().map(|&l| Some(ClusterId(l))).collect();
            let v: Vec<_> = labels.iter().rev().map(|&l| Some(ClusterId(l))).collect();
            let pc = PairCounts::count(&u, &v, OutlierPolicy::Exclude).unwrap();
            let n = labels.len() as u64;
            prop_assert_eq!(pc.total(), n * (n - 1) / 2);
        }

        #[test]
        fn prop_both_ari_forms_agree_in_sign_for_strong_structure(
            k in 2usize..5, per in 5usize..20
        ) {
            // Identical partitions with k clusters of equal size.
            let mut labels = Vec::new();
            for c in 0..k {
                labels.extend(std::iter::repeat_n(Some(ClusterId(c)), per));
            }
            let a1 = adjusted_rand_index(&labels, &labels, OutlierPolicy::Exclude).unwrap();
            let a2 = hubert_arabie_ari(&labels, &labels, OutlierPolicy::Exclude).unwrap();
            prop_assert!((a1 - 1.0).abs() < 1e-9);
            prop_assert!((a2 - 1.0).abs() < 1e-9);
        }
    }
}
