//! Outlier-detection quality (paper Sec. 5.2: "the amount of objects
//! detected as outliers also highly resembles the actual amount of outliers
//! in the datasets").

use sspc_common::{ClusterId, Error, Result};

/// Precision / recall of outlier detection, plus the raw counts the paper
/// reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierQuality {
    /// Of objects reported as outliers, the fraction that truly are.
    pub precision: f64,
    /// Of true outliers, the fraction reported.
    pub recall: f64,
    /// Number of true outliers.
    pub true_outliers: usize,
    /// Number of reported outliers.
    pub reported_outliers: usize,
}

impl OutlierQuality {
    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let denom = self.precision + self.recall;
        if denom == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / denom
        }
    }
}

/// Scores reported outliers (`None` entries of `produced`) against true
/// outliers (`None` entries of `truth`).
///
/// Conventions for empty sets: precision is 1 when nothing was reported,
/// recall is 1 when there are no true outliers — "no false alarms" and
/// "nothing to find" are both perfect scores.
///
/// # Errors
///
/// Returns [`Error::InvalidShape`] on length mismatch.
pub fn outlier_quality(
    truth: &[Option<ClusterId>],
    produced: &[Option<ClusterId>],
) -> Result<OutlierQuality> {
    if truth.len() != produced.len() {
        return Err(Error::InvalidShape(format!(
            "partitions cover {} and {} objects",
            truth.len(),
            produced.len()
        )));
    }
    let mut true_outliers = 0usize;
    let mut reported = 0usize;
    let mut hits = 0usize;
    for (t, p) in truth.iter().zip(produced.iter()) {
        let is_true = t.is_none();
        let is_reported = p.is_none();
        true_outliers += is_true as usize;
        reported += is_reported as usize;
        hits += (is_true && is_reported) as usize;
    }
    let precision = if reported == 0 {
        1.0
    } else {
        hits as f64 / reported as f64
    };
    let recall = if true_outliers == 0 {
        1.0
    } else {
        hits as f64 / true_outliers as f64
    };
    Ok(OutlierQuality {
        precision,
        recall,
        true_outliers,
        reported_outliers: reported,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(labels: &[i64]) -> Vec<Option<ClusterId>> {
        labels
            .iter()
            .map(|&l| (l >= 0).then_some(ClusterId(l as usize)))
            .collect()
    }

    #[test]
    fn exact_detection() {
        let truth = ids(&[0, -1, 1, -1]);
        let q = outlier_quality(&truth, &truth).unwrap();
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.true_outliers, 2);
        assert_eq!(q.reported_outliers, 2);
        assert_eq!(q.f1(), 1.0);
    }

    #[test]
    fn over_reporting_hurts_precision() {
        let truth = ids(&[0, -1, 1, 1]);
        let produced = ids(&[0, -1, -1, 1]);
        let q = outlier_quality(&truth, &produced).unwrap();
        assert_eq!(q.precision, 0.5);
        assert_eq!(q.recall, 1.0);
    }

    #[test]
    fn under_reporting_hurts_recall() {
        let truth = ids(&[-1, -1, 0, 0]);
        let produced = ids(&[-1, 0, 0, 0]);
        let q = outlier_quality(&truth, &produced).unwrap();
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 0.5);
    }

    #[test]
    fn empty_sets_are_perfect() {
        let truth = ids(&[0, 1]);
        let q = outlier_quality(&truth, &truth).unwrap();
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f1(), 1.0);
    }

    #[test]
    fn disjoint_reports_score_zero_f1() {
        let truth = ids(&[-1, 0]);
        let produced = ids(&[0, -1]);
        let q = outlier_quality(&truth, &produced).unwrap();
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.f1(), 0.0);
    }

    #[test]
    fn length_mismatch_errors() {
        assert!(outlier_quality(&ids(&[0]), &ids(&[0, 1])).is_err());
    }
}
