//! Evaluation metrics for the SSPC reproduction.
//!
//! * [`PairCounts`] / [`adjusted_rand_index`] — the paper's accuracy metric
//!   (Eq. 5), plus the standard Hubert–Arabie ARI and the plain Rand index
//!   for cross-checking.
//! * [`ContingencyTable`] — the cluster × class contingency table behind
//!   the pair counts.
//! * [`matching`] — optimal cluster-to-class assignment (Hungarian
//!   algorithm), needed to score dimension selection when cluster ids are
//!   arbitrary.
//! * [`dims`] — precision / recall / F1 of selected dimensions against the
//!   planted relevant dimensions.
//! * [`outliers`] — precision / recall of outlier detection.
//! * [`evaluate`] — the one-call, outlier-aware bundle (ARI + NMI +
//!   purity) the experiment runner and CLI score every algorithm with.
//!
//! All partition-level metrics take assignments as `&[Option<ClusterId>]`,
//! where `None` marks an outlier; an [`OutlierPolicy`] controls how outlier
//! objects enter the pair counting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod contingency;
pub mod dims;
pub mod evaluate;
pub mod info;
pub mod matching;
pub mod outliers;
mod pairs;

pub use contingency::ContingencyTable;
pub use evaluate::{evaluate_partition, PartitionEvaluation};
pub use pairs::{adjusted_rand_index, hubert_arabie_ari, rand_index, OutlierPolicy, PairCounts};
