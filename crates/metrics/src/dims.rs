//! Dimension-selection quality: how well an algorithm's selected dimensions
//! match the planted relevant dimensions.
//!
//! The produced clusters are first aligned with the reference classes
//! ([`crate::matching`]); each matched pair then contributes its selected
//! vs. true dimension sets to micro-averaged precision / recall / F1.

use crate::{matching, ContingencyTable, OutlierPolicy};
use sspc_common::{ClusterId, DimId, Result};
use std::collections::HashSet;

/// Micro-averaged dimension-selection quality over matched clusters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DimQuality {
    /// Of all selected dimensions (over matched clusters), the fraction that
    /// are truly relevant to the matched class.
    pub precision: f64,
    /// Of all truly relevant dimensions (over matched classes), the fraction
    /// that were selected.
    pub recall: f64,
    /// Number of produced clusters that were matched to a class.
    pub matched_clusters: usize,
}

impl DimQuality {
    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let denom = self.precision + self.recall;
        if denom == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / denom
        }
    }
}

/// Scores dimension selection.
///
/// * `truth_assignment` / `truth_dims` — the planted structure:
///   per-object class (or `None`) and per-class relevant dimensions.
/// * `produced_assignment` / `produced_dims` — the algorithm's output:
///   per-object cluster (or `None`) and per-cluster selected dimensions,
///   indexed by `ClusterId` value.
///
/// # Errors
///
/// Propagates contingency/matching failures (length mismatches, empty
/// overlap).
pub fn dim_selection_quality(
    truth_assignment: &[Option<ClusterId>],
    truth_dims: &[Vec<DimId>],
    produced_assignment: &[Option<ClusterId>],
    produced_dims: &[Vec<DimId>],
) -> Result<DimQuality> {
    let table = ContingencyTable::build(
        truth_assignment,
        produced_assignment,
        OutlierPolicy::Exclude,
    )?;

    // The contingency table compacts ids; rebuild the compaction maps the
    // same way (first-occurrence order over surviving objects).
    let (u_order, v_order) = occurrence_orders(truth_assignment, produced_assignment);
    let matching = matching::match_clusters_to_classes(&table)?;

    let mut selected_and_relevant = 0usize;
    let mut selected_total = 0usize;
    let mut relevant_total = 0usize;
    let mut matched = 0usize;
    for (v_compact, class_compact) in matching.iter().enumerate() {
        let Some(class_compact) = class_compact else {
            continue;
        };
        let cluster = v_order[v_compact];
        let class = u_order[*class_compact];
        let sel = produced_dims
            .get(cluster.index())
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        let rel: HashSet<DimId> = truth_dims
            .get(class.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .copied()
            .collect();
        matched += 1;
        selected_total += sel.len();
        relevant_total += rel.len();
        selected_and_relevant += sel.iter().filter(|j| rel.contains(j)).count();
    }

    let precision = if selected_total == 0 {
        0.0
    } else {
        selected_and_relevant as f64 / selected_total as f64
    };
    let recall = if relevant_total == 0 {
        0.0
    } else {
        selected_and_relevant as f64 / relevant_total as f64
    };
    Ok(DimQuality {
        precision,
        recall,
        matched_clusters: matched,
    })
}

/// First-occurrence orders of U and V labels over objects surviving
/// [`OutlierPolicy::Exclude`] — matching [`ContingencyTable::build`]'s
/// internal compaction.
fn occurrence_orders(
    u: &[Option<ClusterId>],
    v: &[Option<ClusterId>],
) -> (Vec<ClusterId>, Vec<ClusterId>) {
    let mut u_order = Vec::new();
    let mut v_order = Vec::new();
    for (cu, cv) in u.iter().zip(v.iter()) {
        let (Some(cu), Some(cv)) = (cu, cv) else {
            continue;
        };
        if !u_order.contains(cu) {
            u_order.push(*cu);
        }
        if !v_order.contains(cv) {
            v_order.push(*cv);
        }
    }
    (u_order, v_order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(labels: &[i64]) -> Vec<Option<ClusterId>> {
        labels
            .iter()
            .map(|&l| (l >= 0).then_some(ClusterId(l as usize)))
            .collect()
    }

    fn dims(sets: &[&[usize]]) -> Vec<Vec<DimId>> {
        sets.iter()
            .map(|s| s.iter().map(|&j| DimId(j)).collect())
            .collect()
    }

    #[test]
    fn perfect_selection_scores_one() {
        let assign = ids(&[0, 0, 1, 1]);
        let truth_dims = dims(&[&[0, 1], &[2, 3]]);
        let q = dim_selection_quality(&assign, &truth_dims, &assign, &truth_dims).unwrap();
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f1(), 1.0);
        assert_eq!(q.matched_clusters, 2);
    }

    #[test]
    fn handles_permuted_cluster_ids() {
        let truth = ids(&[0, 0, 1, 1]);
        let produced = ids(&[1, 1, 0, 0]); // swapped labels
        let truth_dims = dims(&[&[0, 1], &[2, 3]]);
        // produced cluster 1 ↔ class 0, so its dims must be class 0's.
        let produced_dims = dims(&[&[2, 3], &[0, 1]]);
        let q = dim_selection_quality(&truth, &truth_dims, &produced, &produced_dims).unwrap();
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
    }

    #[test]
    fn partial_overlap_scores_fractionally() {
        let assign = ids(&[0, 0, 1, 1]);
        let truth_dims = dims(&[&[0, 1, 2, 3], &[4, 5, 6, 7]]);
        // Each cluster selects half right, plus one wrong.
        let produced_dims = dims(&[&[0, 1, 9], &[4, 5, 9]]);
        let q = dim_selection_quality(&assign, &truth_dims, &assign, &produced_dims).unwrap();
        assert!((q.precision - 4.0 / 6.0).abs() < 1e-12);
        assert!((q.recall - 4.0 / 8.0).abs() < 1e-12);
        let f1 = q.f1();
        assert!((f1 - 2.0 * (4.0 / 6.0) * 0.5 / (4.0 / 6.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn empty_selection_scores_zero() {
        let assign = ids(&[0, 0, 1, 1]);
        let truth_dims = dims(&[&[0], &[1]]);
        let produced_dims = dims(&[&[], &[]]);
        let q = dim_selection_quality(&assign, &truth_dims, &assign, &produced_dims).unwrap();
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.f1(), 0.0);
    }

    #[test]
    fn extra_unmatched_clusters_are_ignored() {
        let truth = ids(&[0, 0, 0, 1, 1, 1]);
        // Three produced clusters; the third is spurious and smaller.
        let produced = ids(&[0, 0, 2, 1, 1, 1]);
        let truth_dims = dims(&[&[0, 1], &[2, 3]]);
        let produced_dims = dims(&[&[0, 1], &[2, 3], &[7, 8, 9]]);
        let q = dim_selection_quality(&truth, &truth_dims, &produced, &produced_dims).unwrap();
        assert_eq!(q.matched_clusters, 2);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
    }
}
