//! Information-theoretic clustering metrics: mutual information, NMI,
//! homogeneity / completeness / V-measure, and purity.
//!
//! The paper evaluates with ARI only; these are provided because the
//! gene-expression literature the paper targets (e.g. Yeung & Ruzzo, the
//! source of the paper's ARI) routinely reports NMI and purity alongside,
//! and cross-metric agreement is a useful sanity check on experiment
//! harnesses.

use crate::{ContingencyTable, OutlierPolicy};
use sspc_common::{ClusterId, Result};

/// Entropy (nats) of a discrete distribution given as counts.
fn entropy(counts: &[u64], total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Mutual information (nats) between two partitions.
///
/// # Errors
///
/// Propagates contingency-table failures.
pub fn mutual_information(
    u: &[Option<ClusterId>],
    v: &[Option<ClusterId>],
    policy: OutlierPolicy,
) -> Result<f64> {
    let t = ContingencyTable::build(u, v, policy)?;
    let n = t.total() as f64;
    let mut mi = 0.0;
    for (r, c, count) in t.cells() {
        if count == 0 {
            continue;
        }
        let p_rc = count as f64 / n;
        let p_r = t.row_sums()[r] as f64 / n;
        let p_c = t.col_sums()[c] as f64 / n;
        mi += p_rc * (p_rc / (p_r * p_c)).ln();
    }
    Ok(mi.max(0.0))
}

/// Normalized mutual information, `MI / √(H(U)·H(V))` — 1 for identical
/// partitions, 0 for independent ones. Degenerate single-cluster
/// partitions (zero entropy) score 0.
///
/// # Errors
///
/// Propagates contingency-table failures.
pub fn normalized_mutual_information(
    u: &[Option<ClusterId>],
    v: &[Option<ClusterId>],
    policy: OutlierPolicy,
) -> Result<f64> {
    let t = ContingencyTable::build(u, v, policy)?;
    let h_u = entropy(t.row_sums(), t.total());
    let h_v = entropy(t.col_sums(), t.total());
    if h_u == 0.0 || h_v == 0.0 {
        return Ok(0.0);
    }
    let mi = mutual_information(u, v, policy)?;
    Ok((mi / (h_u * h_v).sqrt()).clamp(0.0, 1.0))
}

/// Homogeneity, completeness and their harmonic mean (V-measure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VMeasure {
    /// 1 when every produced cluster contains members of one class only.
    pub homogeneity: f64,
    /// 1 when every class falls entirely inside one produced cluster.
    pub completeness: f64,
}

impl VMeasure {
    /// The harmonic mean of homogeneity and completeness.
    pub fn v_measure(&self) -> f64 {
        let s = self.homogeneity + self.completeness;
        if s == 0.0 {
            0.0
        } else {
            2.0 * self.homogeneity * self.completeness / s
        }
    }
}

/// Computes homogeneity/completeness of produced partition `v` against
/// reference `u` (Rosenberg & Hirschberg's definitions via conditional
/// entropies). Degenerate zero-entropy sides score 1 by convention.
///
/// # Errors
///
/// Propagates contingency-table failures.
pub fn v_measure(
    u: &[Option<ClusterId>],
    v: &[Option<ClusterId>],
    policy: OutlierPolicy,
) -> Result<VMeasure> {
    let t = ContingencyTable::build(u, v, policy)?;
    let n = t.total() as f64;
    let h_u = entropy(t.row_sums(), t.total());
    let h_v = entropy(t.col_sums(), t.total());

    // H(U|V) and H(V|U) from the joint.
    let mut h_u_given_v = 0.0;
    let mut h_v_given_u = 0.0;
    for (r, c, count) in t.cells() {
        if count == 0 {
            continue;
        }
        let p_rc = count as f64 / n;
        let p_c = t.col_sums()[c] as f64 / n;
        let p_r = t.row_sums()[r] as f64 / n;
        h_u_given_v -= p_rc * (p_rc / p_c).ln();
        h_v_given_u -= p_rc * (p_rc / p_r).ln();
    }

    let homogeneity = if h_u == 0.0 {
        1.0
    } else {
        (1.0 - h_u_given_v / h_u).clamp(0.0, 1.0)
    };
    let completeness = if h_v == 0.0 {
        1.0
    } else {
        (1.0 - h_v_given_u / h_v).clamp(0.0, 1.0)
    };
    Ok(VMeasure {
        homogeneity,
        completeness,
    })
}

/// Purity: the fraction of objects whose produced cluster's majority class
/// matches their own. 1 is perfect; singleton clusters trivially maximize
/// it, so read alongside ARI/NMI.
///
/// # Errors
///
/// Propagates contingency-table failures.
pub fn purity(
    u: &[Option<ClusterId>],
    v: &[Option<ClusterId>],
    policy: OutlierPolicy,
) -> Result<f64> {
    let t = ContingencyTable::build(u, v, policy)?;
    let mut majority_total = 0u64;
    for c in 0..t.n_cols() {
        let best = (0..t.n_rows()).map(|r| t.count(r, c)).max().unwrap_or(0);
        majority_total += best;
    }
    Ok(majority_total as f64 / t.total() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(labels: &[i64]) -> Vec<Option<ClusterId>> {
        labels
            .iter()
            .map(|&l| (l >= 0).then_some(ClusterId(l as usize)))
            .collect()
    }

    #[test]
    fn identical_partitions_max_all_metrics() {
        let u = ids(&[0, 0, 1, 1, 2, 2]);
        let nmi = normalized_mutual_information(&u, &u, OutlierPolicy::Exclude).unwrap();
        assert!((nmi - 1.0).abs() < 1e-12);
        let vm = v_measure(&u, &u, OutlierPolicy::Exclude).unwrap();
        assert!((vm.v_measure() - 1.0).abs() < 1e-12);
        assert!((purity(&u, &u, OutlierPolicy::Exclude).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_score_near_zero_nmi() {
        // A checkerboard: U splits by half, V alternates — independent.
        let u = ids(&[0, 0, 0, 0, 1, 1, 1, 1]);
        let v = ids(&[0, 1, 0, 1, 0, 1, 0, 1]);
        let nmi = normalized_mutual_information(&u, &v, OutlierPolicy::Exclude).unwrap();
        assert!(nmi < 1e-9, "got {nmi}");
        let mi = mutual_information(&u, &v, OutlierPolicy::Exclude).unwrap();
        assert!(mi < 1e-9);
    }

    #[test]
    fn homogeneity_vs_completeness_asymmetry() {
        // V splits each class in two: perfectly homogeneous, incomplete.
        let u = ids(&[0, 0, 0, 0, 1, 1, 1, 1]);
        let v = ids(&[0, 0, 1, 1, 2, 2, 3, 3]);
        let vm = v_measure(&u, &v, OutlierPolicy::Exclude).unwrap();
        assert!((vm.homogeneity - 1.0).abs() < 1e-12);
        assert!(vm.completeness < 0.8);
        // Purity is still perfect under over-splitting (its known bias).
        assert!((purity(&u, &v, OutlierPolicy::Exclude).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_cluster_degenerates() {
        let u = ids(&[0, 0, 1, 1]);
        let v = ids(&[0, 0, 0, 0]);
        assert_eq!(
            normalized_mutual_information(&u, &v, OutlierPolicy::Exclude).unwrap(),
            0.0
        );
        let vm = v_measure(&u, &v, OutlierPolicy::Exclude).unwrap();
        assert_eq!(vm.completeness, 1.0, "one cluster holds each class fully");
        assert_eq!(vm.homogeneity, 0.0);
    }

    #[test]
    fn purity_counts_majorities() {
        // Cluster 0 of V: 2×class0 + 1×class1 → majority 2.
        // Cluster 1 of V: 2×class1 → majority 2. Purity 4/5.
        let u = ids(&[0, 0, 1, 1, 1]);
        let v = ids(&[0, 0, 0, 1, 1]);
        assert!((purity(&u, &v, OutlierPolicy::Exclude).unwrap() - 0.8).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_nmi_symmetric_and_bounded(
            lu in prop::collection::vec(0usize..4, 8..60),
            lv in prop::collection::vec(0usize..4, 8..60),
        ) {
            let n = lu.len().min(lv.len());
            let u: Vec<_> = lu[..n].iter().map(|&l| Some(ClusterId(l))).collect();
            let v: Vec<_> = lv[..n].iter().map(|&l| Some(ClusterId(l))).collect();
            let ab = normalized_mutual_information(&u, &v, OutlierPolicy::Exclude).unwrap();
            let ba = normalized_mutual_information(&v, &u, OutlierPolicy::Exclude).unwrap();
            prop_assert!((ab - ba).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&ab));
        }

        #[test]
        fn prop_v_measure_components_bounded(
            lu in prop::collection::vec(0usize..4, 8..60),
            lv in prop::collection::vec(0usize..4, 8..60),
        ) {
            let n = lu.len().min(lv.len());
            let u: Vec<_> = lu[..n].iter().map(|&l| Some(ClusterId(l))).collect();
            let v: Vec<_> = lv[..n].iter().map(|&l| Some(ClusterId(l))).collect();
            let vm = v_measure(&u, &v, OutlierPolicy::Exclude).unwrap();
            prop_assert!((0.0..=1.0).contains(&vm.homogeneity));
            prop_assert!((0.0..=1.0).contains(&vm.completeness));
            prop_assert!((0.0..=1.0).contains(&vm.v_measure()));
        }

        #[test]
        fn prop_purity_at_least_largest_class_share(
            labels in prop::collection::vec(0usize..3, 10..50),
        ) {
            let u: Vec<_> = labels.iter().map(|&l| Some(ClusterId(l))).collect();
            let v: Vec<_> = labels.iter().map(|_| Some(ClusterId(0))).collect();
            // All-in-one clustering: purity equals the largest class share.
            let p = purity(&u, &v, OutlierPolicy::Exclude).unwrap();
            let mut counts = [0u64; 3];
            for &l in &labels {
                counts[l] += 1;
            }
            let share = *counts.iter().max().unwrap() as f64 / labels.len() as f64;
            prop_assert!((p - share).abs() < 1e-12);
        }
    }
}
