//! One-call, outlier-aware evaluation of a produced partition against
//! ground truth.
//!
//! The paper's Sec. 5 tables report several external metrics per algorithm;
//! the experiment runner and the CLI both need the same bundle (ARI, NMI,
//! purity) computed under one consistent [`OutlierPolicy`]. This module is
//! that single entry point — callers that need individual metrics or
//! different policies can still reach the underlying functions directly.

use crate::info::{normalized_mutual_information, purity};
use crate::{adjusted_rand_index, OutlierPolicy};
use sspc_common::{ClusterId, Result};

/// The bundled external metrics of one produced partition against a
/// reference partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionEvaluation {
    /// Adjusted Rand index (the paper's Eq. 5 variant), in `[-1, 1]`.
    pub ari: f64,
    /// Normalized mutual information, in `[0, 1]`.
    pub nmi: f64,
    /// Purity, in `(0, 1]`.
    pub purity: f64,
}

/// Evaluates `produced` against `truth` under one outlier policy, returning
/// ARI, NMI and purity together.
///
/// `None` entries mark outliers on either side; `policy` controls how they
/// enter every metric (the consistent choice across algorithms with and
/// without outlier lists is [`OutlierPolicy::AsCluster`], which makes
/// discarding real members cost accuracy).
///
/// # Errors
///
/// Propagates metric failures (assignment length mismatch, empty
/// partitions).
pub fn evaluate_partition(
    truth: &[Option<ClusterId>],
    produced: &[Option<ClusterId>],
    policy: OutlierPolicy,
) -> Result<PartitionEvaluation> {
    Ok(PartitionEvaluation {
        ari: adjusted_rand_index(truth, produced, policy)?,
        nmi: normalized_mutual_information(truth, produced, policy)?,
        purity: purity(truth, produced, policy)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(raw: &[i64]) -> Vec<Option<ClusterId>> {
        raw.iter()
            .map(|&v| (v >= 0).then_some(ClusterId(v as usize)))
            .collect()
    }

    #[test]
    fn perfect_partition_scores_one_everywhere() {
        let truth = labels(&[0, 0, 1, 1, 2, 2]);
        let e = evaluate_partition(&truth, &truth, OutlierPolicy::AsCluster).unwrap();
        assert_eq!(e.ari, 1.0);
        assert_eq!(e.nmi, 1.0);
        assert_eq!(e.purity, 1.0);
    }

    #[test]
    fn outlier_policy_reaches_all_metrics() {
        let truth = labels(&[0, 0, 1, 1]);
        let produced = labels(&[0, -1, 1, 1]);
        let as_cluster = evaluate_partition(&truth, &produced, OutlierPolicy::AsCluster).unwrap();
        let exclude = evaluate_partition(&truth, &produced, OutlierPolicy::Exclude).unwrap();
        // Ignoring the outlier object leaves a perfect sub-partition;
        // treating it as its own cluster does not.
        assert_eq!(exclude.ari, 1.0);
        assert!(as_cluster.ari < 1.0);
        assert!(as_cluster.nmi < 1.0);
    }

    #[test]
    fn mismatched_lengths_propagate_errors() {
        let truth = labels(&[0, 0, 1]);
        let produced = labels(&[0, 0]);
        assert!(evaluate_partition(&truth, &produced, OutlierPolicy::AsCluster).is_err());
    }
}
