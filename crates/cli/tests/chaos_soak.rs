//! Chaos soak (`--features fault-injection`): burst-load a real
//! `sspc-cli serve` process that is **armed to abort mid-run**
//! (`SSPC_FAULT=job.execute:N:crash`), then restart it clean and hold the
//! service to its promises:
//!
//! * every submission got a definite answer — an ack or a taxonomy entry,
//!   never a silent drop — and the error rate is bounded by what the
//!   crash explains (nothing fails *before* the abort);
//! * **zero lost acknowledged jobs**: every `202`-acked id reaches a
//!   terminal state after recovery, within a deadline;
//! * results completed before the chaos are served **byte-identically**
//!   after it;
//! * open handler connections never exceed the `--max-conns` cap, even
//!   while the load generator is hammering the service;
//! * the soak's throughput, latency percentiles, and error taxonomy are
//!   appended to `BENCH_server.json` for trend tracking.

#![cfg(feature = "fault-injection")]

use sspc_common::json::Value;
use sspc_server::client::Client;
use sspc_server::loadgen::{self, LoadgenConfig, Pattern};
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Baseline jobs executed before the chaos: 4 executions, so arming the
/// 12th execution aborts the server midway through the burst.
const BASELINE_JOBS: u64 = 4;
const CRASH_AT_EXECUTION: u64 = 12;
const BURST_JOBS: usize = 30;
const CONN_CAP: usize = 8;

fn tiny_job(seed: u64) -> Value {
    Value::object()
        .with("k", 2u64)
        .with(
            "dataset",
            Value::object().with(
                "generate",
                Value::object()
                    .with("n", 30u64)
                    .with("d", 6u64)
                    .with("dims", 3u64)
                    .with("seed", seed),
            ),
        )
        .with("algorithms", "harp")
        .with("runs", 1u64)
}

struct ServerProc {
    child: Child,
    addr_rx: mpsc::Receiver<String>,
    stderr_thread: std::thread::JoinHandle<String>,
}

impl ServerProc {
    fn spawn(state_dir: &Path, fault: Option<&str>) -> ServerProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_sspc-cli"));
        cmd.args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--max-conns",
            &CONN_CAP.to_string(),
            "--state-dir",
        ])
        .arg(state_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
        match fault {
            Some(spec) => cmd.env("SSPC_FAULT", spec),
            None => cmd.env_remove("SSPC_FAULT"),
        };
        let mut child = cmd.spawn().expect("spawn sspc-cli serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let (tx, addr_rx) = mpsc::channel();
        let stderr_thread = std::thread::spawn(move || {
            let mut transcript = String::new();
            for line in std::io::BufReader::new(stderr).lines() {
                let Ok(line) = line else { break };
                if let Some(rest) = line.strip_prefix("sspc-server listening on ") {
                    if let Some(addr) = rest.split_whitespace().next() {
                        let _ = tx.send(addr.to_string());
                    }
                }
                transcript.push_str(&line);
                transcript.push('\n');
            }
            transcript
        });
        ServerProc {
            child,
            addr_rx,
            stderr_thread,
        }
    }

    fn addr(&self) -> String {
        self.addr_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("server announces its address")
    }

    /// Reaps the (already dead or killed) process and returns stderr.
    fn finish(mut self) -> String {
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.stderr_thread.join().expect("stderr drain")
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sspc_soak_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_out_path() -> PathBuf {
    std::env::var_os("BENCH_SERVER_OUT").map_or_else(
        || {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("BENCH_server.json")
        },
        PathBuf::from,
    )
}

#[test]
fn chaos_soak_survives_a_mid_burst_crash_without_losing_acked_jobs() {
    let dir = temp_dir("burst");

    // Life 1: armed to abort at the Nth job execution. The baseline jobs
    // burn the first executions and pin down durable pre-chaos state.
    let server = ServerProc::spawn(
        &dir,
        Some(&format!("job.execute:{CRASH_AT_EXECUTION}:crash")),
    );
    let addr = server.addr();
    let mut client = Client::new(&addr);
    let mut baseline = Vec::new();
    for seed in 0..BASELINE_JOBS {
        let id = client.submit(&tiny_job(seed)).unwrap();
        let done = client
            .wait_for(id, Duration::from_millis(10), Duration::from_secs(120))
            .unwrap();
        assert_eq!(done.get("status").and_then(Value::as_str), Some("done"));
        baseline.push((id, client.job_status(id).unwrap().to_string()));
    }
    // The connection cap holds while the service is healthy.
    let health = client.healthz().unwrap();
    let active = health
        .get("connections_active")
        .and_then(Value::as_u64)
        .unwrap();
    assert!(
        active <= CONN_CAP as u64,
        "connections_active {active} over the {CONN_CAP} cap"
    );
    drop(client);

    // The burst. The server aborts partway through; the open-loop
    // generator shrugs (transport entries) and keeps offering load. No
    // wait phase — the server is dead by the end.
    let report = loadgen::run(&LoadgenConfig {
        addr: addr.clone(),
        jobs: BURST_JOBS,
        pattern: Pattern::Burst {
            size: 10,
            every: Duration::from_millis(100),
        },
        seed: 42,
        wait_timeout: Duration::ZERO,
        poll_every: Duration::from_millis(10),
    })
    .unwrap();

    // Every submission is accounted for, and the taxonomy only contains
    // classes the crash explains — overload shedding or a dead socket,
    // never invalid jobs or silent drops.
    assert_eq!(
        report.acked.len() as u64 + report.rejected_total(),
        BURST_JOBS as u64,
        "soak lost track of submissions: {:?}",
        report.rejected
    );
    for reason in report.rejected.keys() {
        assert!(
            ["queue_full", "backlog_exceeded", "transport"].contains(&reason.as_str()),
            "unexplained refusal class `{reason}`: {:?}",
            report.rejected
        );
    }
    assert!(
        !report.acked.is_empty(),
        "the server died before acking anything — the fault armed too early"
    );

    // The server died at the armed point (not somewhere else), killed by
    // the workload the soak offered.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut server = server;
    let status = loop {
        if let Some(status) = server.child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "armed server survived the whole burst"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(!status.success(), "an aborted server cannot exit 0");
    let transcript = server.finish();
    assert!(
        transcript.contains("aborting at `job.execute`"),
        "died somewhere else:\n{transcript}"
    );

    // Life 2: clean restart on the same journal. Recovery deadline covers
    // re-running every interrupted/queued job.
    let recovery_started = Instant::now();
    let server = ServerProc::spawn(&dir, None);
    let addr = server.addr();
    let mut client = Client::new(&addr);

    // Zero lost acknowledged jobs: every 202 from life 1 reaches a
    // terminal state (the crash-interrupted one re-runs).
    let mut terminal = 0u64;
    for &id in &report.acked {
        let doc = client
            .wait_for(id, Duration::from_millis(10), Duration::from_secs(120))
            .unwrap_or_else(|e| panic!("acked job {id} never reached terminal state: {e}"));
        let status = doc.get("status").and_then(Value::as_str).unwrap();
        assert!(
            status == "done" || status == "failed",
            "job {id} ended as `{status}`"
        );
        terminal += 1;
    }
    assert_eq!(terminal, report.acked.len() as u64);
    let recovery = recovery_started.elapsed();
    assert!(
        recovery < Duration::from_secs(120),
        "recovery blew its deadline: {recovery:?}"
    );

    // No byte-level divergence: pre-chaos results are identical after it.
    for (id, before) in &baseline {
        assert_eq!(
            &client.job_status(*id).unwrap().to_string(),
            before,
            "baseline job {id} drifted across the crash"
        );
    }

    // The cap still holds after recovery, and the store is healthy.
    let health = client.healthz().unwrap();
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
    let active = health
        .get("connections_active")
        .and_then(Value::as_u64)
        .unwrap();
    assert!(active <= CONN_CAP as u64);

    // Append the soak record (throughput, percentiles, taxonomy) to the
    // bench ledger.
    let record = Value::object()
        .with("bench", "chaos_soak")
        .with("burst_jobs", BURST_JOBS as u64)
        .with("crash_at_execution", CRASH_AT_EXECUTION)
        .with("recovered_acked_jobs", terminal)
        .with("recovery_seconds", recovery.as_secs_f64())
        .with("report", report.to_value());
    if let Ok(line) = record.to_string_checked() {
        use std::io::Write;
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(bench_out_path())
        {
            let _ = writeln!(file, "{line}");
        }
    }

    drop(client);
    server.finish();
    let _ = std::fs::remove_dir_all(&dir);
}
