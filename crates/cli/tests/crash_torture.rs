//! Crash-torture sweep (`--features fault-injection`): for EVERY named
//! fault point in [`sspc_server::FAULT_POINTS`], crash a real `sspc-cli
//! serve` process at that point mid-workload (`SSPC_FAULT=<point>:1:crash`
//! aborts without unwinding — the closest stand-in for a power cut),
//! restart it clean, and assert the store contracts survived:
//!
//! * a result completed before the crash is served **byte-identically**
//!   after it;
//! * work that was queued or running at the crash re-runs to completion;
//! * job ids are never reused, no matter where the crash landed;
//! * the torn journal the crash may leave behind replays cleanly (no
//!   panic, no invented jobs — the restart itself is the assertion).

#![cfg(feature = "fault-injection")]

use sspc_common::json::Value;
use sspc_server::{client, client::Client, FAULT_POINTS, ROUTER_FAULT_POINTS};
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn tiny_job(seed: u64) -> Value {
    Value::object()
        .with("k", 2u64)
        .with(
            "dataset",
            Value::object().with(
                "generate",
                Value::object()
                    .with("n", 30u64)
                    .with("d", 6u64)
                    .with("dims", 3u64)
                    .with("seed", seed),
            ),
        )
        .with("algorithms", "harp")
        .with("runs", 1u64)
}

/// A real `sspc-cli serve` child process. Its stderr is drained on a
/// thread that announces the bound address (the `--addr 127.0.0.1:0`
/// port is only knowable from the startup line) and returns the full
/// transcript at join — an armed process may abort before, during, or
/// long after that line prints, so the address arrives (or never does)
/// through a channel.
struct ServerProc {
    child: Child,
    addr_rx: mpsc::Receiver<String>,
    stderr_thread: std::thread::JoinHandle<String>,
}

impl ServerProc {
    fn spawn(state_dir: &Path, fault: Option<&str>) -> ServerProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_sspc-cli"));
        cmd.args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--state-dir",
        ])
        .arg(state_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
        match fault {
            Some(spec) => cmd.env("SSPC_FAULT", spec),
            None => cmd.env_remove("SSPC_FAULT"),
        };
        let mut child = cmd.spawn().expect("spawn sspc-cli serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let (tx, addr_rx) = mpsc::channel();
        let stderr_thread = std::thread::spawn(move || {
            let mut transcript = String::new();
            for line in std::io::BufReader::new(stderr).lines() {
                let Ok(line) = line else { break };
                if let Some(rest) = line.strip_prefix("sspc-server listening on ") {
                    if let Some(addr) = rest.split_whitespace().next() {
                        let _ = tx.send(addr.to_string());
                    }
                }
                transcript.push_str(&line);
                transcript.push('\n');
            }
            transcript
        });
        ServerProc {
            child,
            addr_rx,
            stderr_thread,
        }
    }

    fn addr(&self) -> String {
        self.addr_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("server announces its address")
    }

    /// SIGKILL + reap: the mid-flight power cut between phases.
    fn kill(mut self) -> String {
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.stderr_thread.join().expect("stderr drain")
    }

    /// Waits (bounded) for the process to die on its own, poking it with
    /// submissions once it is reachable so runtime fault points get hit.
    /// Returns the stderr transcript.
    fn drive_until_death(mut self, deadline: Duration) -> String {
        let started = Instant::now();
        let mut addr = None;
        let mut seed = 1000;
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                assert!(!status.success(), "an aborted server cannot exit 0");
                break;
            }
            assert!(
                started.elapsed() < deadline,
                "armed server survived the whole workload"
            );
            if addr.is_none() {
                addr = self.addr_rx.try_recv().ok();
            }
            if let Some(addr) = &addr {
                // Every outcome is fine — refused, reset mid-response,
                // or even accepted; the next loop turn sees the abort.
                let _ = client::submit(addr, &tiny_job(seed));
                seed += 1;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.stderr_thread.join().expect("stderr drain")
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sspc_torture_{}_{}",
        std::process::id(),
        name.replace('.', "_")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The sweep. One pass per registered fault point, three server lives
/// per pass: (A) a clean life establishes durable state and is killed
/// mid-flight, (B) an armed life aborts at the point under test, (C) a
/// clean life must recover everything.
#[test]
fn crash_torture_sweep_recovers_at_every_fault_point() {
    for point in FAULT_POINTS {
        let dir = temp_dir(point);

        // Phase A: complete job 1 durably, leave job 2 in flight, and
        // cut the power.
        let server = ServerProc::spawn(&dir, None);
        let addr = server.addr();
        let mut c = Client::new(&addr);
        let job1 = c.submit(&tiny_job(1)).unwrap();
        let done = c
            .wait_for(job1, Duration::from_millis(10), Duration::from_secs(120))
            .unwrap();
        assert_eq!(
            done.get("status").and_then(Value::as_str),
            Some("done"),
            "{point}: phase A job"
        );
        let job1_doc = c.job_status(job1).unwrap().to_string();
        let job2 = c.submit(&tiny_job(2)).unwrap();
        drop(c);
        server.kill();

        // Phase B: an armed life. Boot-time points (compaction, atomic
        // replace) abort before the listener exists; runtime points need
        // the workload poke. Either way the process must die at the
        // armed point, not live through it.
        let armed = ServerProc::spawn(&dir, Some(&format!("{point}:1:crash")));
        let transcript = armed.drive_until_death(Duration::from_secs(120));
        assert!(
            transcript.contains(&format!("aborting at `{point}`")),
            "{point}: died somewhere else:\n{transcript}"
        );

        // Phase C: clean restart — the recovery contracts.
        let server = ServerProc::spawn(&dir, None);
        let addr = server.addr();
        let mut c = Client::new(&addr);
        assert_eq!(
            c.job_status(job1).unwrap().to_string(),
            job1_doc,
            "{point}: completed result drifted across the crash"
        );
        let after = c
            .wait_for(job2, Duration::from_millis(10), Duration::from_secs(120))
            .unwrap();
        assert_eq!(
            after.get("status").and_then(Value::as_str),
            Some("done"),
            "{point}: in-flight job was not recovered"
        );
        // Ids burned by ANY life (including ones the armed life admitted
        // right before aborting) must never come back.
        let fresh = c.submit(&tiny_job(3)).unwrap();
        assert!(
            fresh > job2,
            "{point}: id {fresh} reused at or below {job2}"
        );
        let health = c.healthz().unwrap();
        assert_eq!(
            health.get("status").and_then(Value::as_str),
            Some("ok"),
            "{point}: store came back degraded"
        );
        drop(c);
        server.kill();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A job heavy enough (~a second per run on a debug-build worker) that
/// a shard's queue stays full of acked-but-unfinished work for many
/// seconds — the pending debt a membership handoff streams.
fn chunky_job(seed: u64) -> Value {
    Value::object()
        .with("k", 3u64)
        .with(
            "dataset",
            Value::object().with(
                "generate",
                Value::object()
                    .with("n", 220u64)
                    .with("d", 16u64)
                    .with("dims", 5u64)
                    .with("seed", seed + 1),
            ),
        )
        .with("algorithms", "harp")
        .with("runs", 2u64)
        .with("seed", 7u64)
}

/// A spawned `sspc-cli` process with an arbitrary subcommand, announcing
/// `<prefix> listening on <addr>` on stderr. Unlike [`ServerProc`] this
/// one can arm a *router* (`route`) with `SSPC_FAULT`.
struct AnyProc {
    child: Child,
    addr_rx: mpsc::Receiver<String>,
    stderr_thread: std::thread::JoinHandle<String>,
}

impl AnyProc {
    fn spawn(prefix: &'static str, args: &[String], fault: Option<&str>) -> AnyProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_sspc-cli"));
        cmd.args(args).stdout(Stdio::null()).stderr(Stdio::piped());
        match fault {
            Some(spec) => cmd.env("SSPC_FAULT", spec),
            None => cmd.env_remove("SSPC_FAULT"),
        };
        let mut child = cmd.spawn().expect("spawn sspc-cli");
        let stderr = child.stderr.take().expect("piped stderr");
        let (tx, addr_rx) = mpsc::channel();
        let stderr_thread = std::thread::spawn(move || {
            let mut transcript = String::new();
            for line in std::io::BufReader::new(stderr).lines() {
                let Ok(line) = line else { break };
                if let Some(rest) = line.strip_prefix(prefix) {
                    if let Some(rest) = rest.strip_prefix(" listening on ") {
                        if let Some(addr) = rest.split_whitespace().next() {
                            let _ = tx.send(addr.to_string());
                        }
                    }
                }
                transcript.push_str(&line);
                transcript.push('\n');
            }
            transcript
        });
        AnyProc {
            child,
            addr_rx,
            stderr_thread,
        }
    }

    fn addr(&self) -> String {
        self.addr_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("process announces its address")
    }

    fn kill(mut self) -> String {
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.stderr_thread.join().expect("stderr drain")
    }

    /// Waits (bounded) for the process to die on its own; returns the
    /// stderr transcript.
    fn await_death(mut self, deadline: Duration) -> String {
        let started = Instant::now();
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                assert!(!status.success(), "an aborted router cannot exit 0");
                break;
            }
            assert!(
                started.elapsed() < deadline,
                "armed router survived the handoff"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        self.stderr_thread.join().expect("stderr drain")
    }
}

fn shard_proc(shard_id: u16, spool: &Path) -> AnyProc {
    let mut args: Vec<String> = [
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "1",
        "--shard-id",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    args.push(shard_id.to_string());
    args.push("--spool-dir".into());
    args.push(spool.to_string_lossy().into_owned());
    AnyProc::spawn("sspc-server", &args, None)
}

fn router_proc(roster: &str, spool: &Path, fault: Option<&str>) -> AnyProc {
    let args: Vec<String> = [
        "route",
        "--addr",
        "127.0.0.1:0",
        "--shards",
        roster,
        "--spool-dir",
        &spool.to_string_lossy(),
        "--probe-interval",
        "0.2",
        "--fail-after",
        "1",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    AnyProc::spawn("sspc-router", &args, fault)
}

/// The membership sweep: for each router-side handoff fault point,
/// three *router* lives over the same long-lived shards: (A) a clean
/// life acks a batch (the donor's share stays queued for many seconds —
/// chunky jobs, one worker), (B) an armed life aborts at the point
/// under test while joining a third shard mid-handoff, (C) a clean life
/// re-runs the same join to completion, after which every id acked in
/// life A completes under its original id — even once the donor is
/// SIGKILLed outright.
#[test]
fn membership_handoff_crash_sweep_recovers_at_every_router_fault_point() {
    use sspc_server::router::shard_of;

    for point in ROUTER_FAULT_POINTS {
        let spool = temp_dir(&format!("handoff_{point}"));
        let shard0 = shard_proc(0, &spool);
        let shard1 = shard_proc(1, &spool);
        let joiner = shard_proc(2, &spool);
        let roster = format!("0={},1={}", shard0.addr(), shard1.addr());
        let joiner_addr = joiner.addr();

        // Life A: ack a batch through a clean router. The donor (shard
        // 1) ends up with a queue of acked-but-unfinished chunky jobs.
        let router = router_proc(&roster, &spool, None);
        let addr = router.addr();
        let mut c = Client::new(&addr);
        let acked: Vec<u64> = (0..8)
            .map(|seed| c.submit(&chunky_job(seed)).unwrap())
            .collect();
        assert!(
            acked.iter().any(|&id| shard_of(id) == 1),
            "{point}: the donor owns part of the batch"
        );
        drop(c);
        router.kill();

        // Life B: an armed router. The join request drives it into the
        // handoff, where it must abort at exactly the armed point.
        let armed = router_proc(&roster, &spool, Some(&format!("{point}:1:crash")));
        let armed_addr = armed.addr();
        let _ = Client::new(&armed_addr).add_shard(2, &joiner_addr);
        let transcript = armed.await_death(Duration::from_secs(120));
        assert!(
            transcript.contains(&format!("aborting at `{point}`")),
            "{point}: died somewhere else:\n{transcript}"
        );

        // Life C: a clean router re-runs the same join (the joiner's
        // spool may now hold partial handoff acks from life B — the
        // rejoin-dedup path must absorb them), then the donor dies for
        // real.
        let router = router_proc(&roster, &spool, None);
        let addr = router.addr();
        let mut c = Client::new(&addr);
        let joined = c
            .add_shard(2, &joiner_addr)
            .unwrap_or_else(|e| panic!("{point}: clean re-join failed: {e}"));
        assert_eq!(
            joined.get("membership").and_then(Value::as_str),
            Some("active"),
            "{point}: {joined}"
        );
        shard1.kill();
        for &id in &acked {
            let doc = c
                .wait_for(id, Duration::from_millis(50), Duration::from_secs(300))
                .unwrap_or_else(|e| panic!("{point}: job {id} lost across the crash: {e}"));
            assert_eq!(
                doc.get("status").and_then(Value::as_str),
                Some("done"),
                "{point}: job {id}: {doc}"
            );
            assert_eq!(doc.get("job").and_then(Value::as_u64), Some(id));
        }
        drop(c);
        router.kill();
        shard0.kill();
        joiner.kill();
        let _ = std::fs::remove_dir_all(&spool);
    }
}
