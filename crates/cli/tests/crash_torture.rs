//! Crash-torture sweep (`--features fault-injection`): for EVERY named
//! fault point in [`sspc_server::FAULT_POINTS`], crash a real `sspc-cli
//! serve` process at that point mid-workload (`SSPC_FAULT=<point>:1:crash`
//! aborts without unwinding — the closest stand-in for a power cut),
//! restart it clean, and assert the store contracts survived:
//!
//! * a result completed before the crash is served **byte-identically**
//!   after it;
//! * work that was queued or running at the crash re-runs to completion;
//! * job ids are never reused, no matter where the crash landed;
//! * the torn journal the crash may leave behind replays cleanly (no
//!   panic, no invented jobs — the restart itself is the assertion).

#![cfg(feature = "fault-injection")]

use sspc_common::json::Value;
use sspc_server::{client, client::Client, FAULT_POINTS};
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn tiny_job(seed: u64) -> Value {
    Value::object()
        .with("k", 2u64)
        .with(
            "dataset",
            Value::object().with(
                "generate",
                Value::object()
                    .with("n", 30u64)
                    .with("d", 6u64)
                    .with("dims", 3u64)
                    .with("seed", seed),
            ),
        )
        .with("algorithms", "harp")
        .with("runs", 1u64)
}

/// A real `sspc-cli serve` child process. Its stderr is drained on a
/// thread that announces the bound address (the `--addr 127.0.0.1:0`
/// port is only knowable from the startup line) and returns the full
/// transcript at join — an armed process may abort before, during, or
/// long after that line prints, so the address arrives (or never does)
/// through a channel.
struct ServerProc {
    child: Child,
    addr_rx: mpsc::Receiver<String>,
    stderr_thread: std::thread::JoinHandle<String>,
}

impl ServerProc {
    fn spawn(state_dir: &Path, fault: Option<&str>) -> ServerProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_sspc-cli"));
        cmd.args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--state-dir",
        ])
        .arg(state_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
        match fault {
            Some(spec) => cmd.env("SSPC_FAULT", spec),
            None => cmd.env_remove("SSPC_FAULT"),
        };
        let mut child = cmd.spawn().expect("spawn sspc-cli serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let (tx, addr_rx) = mpsc::channel();
        let stderr_thread = std::thread::spawn(move || {
            let mut transcript = String::new();
            for line in std::io::BufReader::new(stderr).lines() {
                let Ok(line) = line else { break };
                if let Some(rest) = line.strip_prefix("sspc-server listening on ") {
                    if let Some(addr) = rest.split_whitespace().next() {
                        let _ = tx.send(addr.to_string());
                    }
                }
                transcript.push_str(&line);
                transcript.push('\n');
            }
            transcript
        });
        ServerProc {
            child,
            addr_rx,
            stderr_thread,
        }
    }

    fn addr(&self) -> String {
        self.addr_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("server announces its address")
    }

    /// SIGKILL + reap: the mid-flight power cut between phases.
    fn kill(mut self) -> String {
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.stderr_thread.join().expect("stderr drain")
    }

    /// Waits (bounded) for the process to die on its own, poking it with
    /// submissions once it is reachable so runtime fault points get hit.
    /// Returns the stderr transcript.
    fn drive_until_death(mut self, deadline: Duration) -> String {
        let started = Instant::now();
        let mut addr = None;
        let mut seed = 1000;
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                assert!(!status.success(), "an aborted server cannot exit 0");
                break;
            }
            assert!(
                started.elapsed() < deadline,
                "armed server survived the whole workload"
            );
            if addr.is_none() {
                addr = self.addr_rx.try_recv().ok();
            }
            if let Some(addr) = &addr {
                // Every outcome is fine — refused, reset mid-response,
                // or even accepted; the next loop turn sees the abort.
                let _ = client::submit(addr, &tiny_job(seed));
                seed += 1;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.stderr_thread.join().expect("stderr drain")
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sspc_torture_{}_{}",
        std::process::id(),
        name.replace('.', "_")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The sweep. One pass per registered fault point, three server lives
/// per pass: (A) a clean life establishes durable state and is killed
/// mid-flight, (B) an armed life aborts at the point under test, (C) a
/// clean life must recover everything.
#[test]
fn crash_torture_sweep_recovers_at_every_fault_point() {
    for point in FAULT_POINTS {
        let dir = temp_dir(point);

        // Phase A: complete job 1 durably, leave job 2 in flight, and
        // cut the power.
        let server = ServerProc::spawn(&dir, None);
        let addr = server.addr();
        let mut c = Client::new(&addr);
        let job1 = c.submit(&tiny_job(1)).unwrap();
        let done = c
            .wait_for(job1, Duration::from_millis(10), Duration::from_secs(120))
            .unwrap();
        assert_eq!(
            done.get("status").and_then(Value::as_str),
            Some("done"),
            "{point}: phase A job"
        );
        let job1_doc = c.job_status(job1).unwrap().to_string();
        let job2 = c.submit(&tiny_job(2)).unwrap();
        drop(c);
        server.kill();

        // Phase B: an armed life. Boot-time points (compaction, atomic
        // replace) abort before the listener exists; runtime points need
        // the workload poke. Either way the process must die at the
        // armed point, not live through it.
        let armed = ServerProc::spawn(&dir, Some(&format!("{point}:1:crash")));
        let transcript = armed.drive_until_death(Duration::from_secs(120));
        assert!(
            transcript.contains(&format!("aborting at `{point}`")),
            "{point}: died somewhere else:\n{transcript}"
        );

        // Phase C: clean restart — the recovery contracts.
        let server = ServerProc::spawn(&dir, None);
        let addr = server.addr();
        let mut c = Client::new(&addr);
        assert_eq!(
            c.job_status(job1).unwrap().to_string(),
            job1_doc,
            "{point}: completed result drifted across the crash"
        );
        let after = c
            .wait_for(job2, Duration::from_millis(10), Duration::from_secs(120))
            .unwrap();
        assert_eq!(
            after.get("status").and_then(Value::as_str),
            Some("done"),
            "{point}: in-flight job was not recovered"
        );
        // Ids burned by ANY life (including ones the armed life admitted
        // right before aborting) must never come back.
        let fresh = c.submit(&tiny_job(3)).unwrap();
        assert!(
            fresh > job2,
            "{point}: id {fresh} reused at or below {job2}"
        );
        let health = c.healthz().unwrap();
        assert_eq!(
            health.get("status").and_then(Value::as_str),
            Some("ok"),
            "{point}: store came back degraded"
        );
        drop(c);
        server.kill();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
