//! Graceful-drain smoke over a real process: SIGTERM a live `sspc-cli
//! serve`, observe the lame-duck window from outside (`/healthz` says
//! `draining`, new submissions get `503 shutting_down`), and assert the
//! process exits **0** within `--drain-timeout` with every admitted job
//! finished and a clean journal (the next life recovers nothing).

#![cfg(unix)]

use sspc_common::json::Value;
use sspc_server::client::Client;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// A job heavy enough (~hundreds of ms) that a queue of them keeps the
/// single worker busy through the whole drain window.
fn chunky_job(seed: u64) -> Value {
    Value::object()
        .with("k", 3u64)
        .with(
            "dataset",
            Value::object().with(
                "generate",
                Value::object()
                    .with("n", 200u64)
                    .with("d", 16u64)
                    .with("dims", 5u64)
                    .with("seed", seed),
            ),
        )
        .with("algorithms", "harp")
        .with("runs", 3u64)
}

struct ServerProc {
    child: Child,
    addr_rx: mpsc::Receiver<String>,
    stderr_thread: std::thread::JoinHandle<String>,
}

impl ServerProc {
    fn spawn(state_dir: &Path) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sspc-cli"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--drain-timeout",
                "60",
                "--state-dir",
            ])
            .arg(state_dir)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .env_remove("SSPC_FAULT")
            .spawn()
            .expect("spawn sspc-cli serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let (tx, addr_rx) = mpsc::channel();
        let stderr_thread = std::thread::spawn(move || {
            let mut transcript = String::new();
            for line in std::io::BufReader::new(stderr).lines() {
                let Ok(line) = line else { break };
                if let Some(rest) = line.strip_prefix("sspc-server listening on ") {
                    if let Some(addr) = rest.split_whitespace().next() {
                        let _ = tx.send(addr.to_string());
                    }
                }
                transcript.push_str(&line);
                transcript.push('\n');
            }
            transcript
        });
        ServerProc {
            child,
            addr_rx,
            stderr_thread,
        }
    }

    fn addr(&self) -> String {
        self.addr_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("server announces its address")
    }

    fn sigterm(&self) {
        let status = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("run kill");
        assert!(status.success(), "kill -TERM failed");
    }

    fn sigkill(mut self) -> String {
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.stderr_thread.join().expect("stderr drain")
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sspc_drain_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sigterm_drains_gracefully_and_exits_zero() {
    let dir = temp_dir("smoke");
    let mut server = ServerProc::spawn(&dir);
    let addr = server.addr();
    let mut client = Client::new(&addr);

    // Enough queued work that the 1-worker drain takes visible time.
    let acked: Vec<u64> = (0..8)
        .map(|s| client.submit(&chunky_job(s)).unwrap())
        .collect();

    server.sigterm();

    // The lame-duck window, observed from outside: /healthz flips to
    // draining (the supervision loop polls the signal every ~100ms).
    let flipped = Instant::now();
    let mut saw_draining = false;
    while flipped.elapsed() < Duration::from_secs(10) {
        match client.healthz() {
            Ok(h) if h.get("status").and_then(Value::as_str) == Some("draining") => {
                assert_eq!(h.get("ready").and_then(Value::as_bool), Some(false));
                saw_draining = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(saw_draining, "/healthz observed status draining mid-drain");

    // New submissions are refused with the drain reason.
    let err = client.submit(&chunky_job(99)).unwrap_err().to_string();
    assert!(
        err.contains("draining") || err.contains("shutting"),
        "refused with the drain reason: {err}"
    );
    drop(client);

    // The process exits ZERO within the drain budget — jobs finished.
    let deadline = Instant::now() + Duration::from_secs(90);
    let status = loop {
        if let Some(status) = server.child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "drain overran its budget");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "graceful drain exits 0, got {status:?}");
    let transcript = server.stderr_thread.join().expect("stderr drain");
    assert!(
        transcript.contains("drained cleanly"),
        "transcript narrates the drain:\n{transcript}"
    );

    // The journal is clean: the next life recovers nothing and serves
    // every admitted job as done.
    let server = ServerProc::spawn(&dir);
    let addr = server.addr();
    let mut client = Client::new(&addr);
    let health = client.healthz().unwrap();
    assert_eq!(
        health
            .get("jobs")
            .and_then(|j| j.get("recovered"))
            .and_then(Value::as_u64),
        Some(0),
        "a clean drain leaves nothing to recover"
    );
    for id in acked {
        let doc = client.job_status(id).unwrap();
        assert_eq!(
            doc.get("status").and_then(Value::as_str),
            Some("done"),
            "job {id} finished before the drain completed"
        );
    }
    drop(client);
    server.sigkill();
    let _ = std::fs::remove_dir_all(&dir);
}
