//! Kill-a-shard failover smoke over real processes: a router fronting
//! two `sspc-cli serve --shard-id` shards, a batch submitted through the
//! router, one shard SIGKILLed mid-run — and every acked job still
//! reaches `done` under its original id, with `result` documents
//! byte-identical to a single-node baseline run of the same specs.

#![cfg(unix)]

use sspc_common::json::Value;
use sspc_server::client::Client;
use sspc_server::router::shard_of;
use sspc_server::{Server, ServerConfig};
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

/// Deterministic and chunky enough (~hundreds of ms on one worker) that
/// a SIGKILL lands while some acked jobs are still queued or running.
fn job_body(seed: u64) -> Value {
    Value::object()
        .with("k", 3u64)
        .with(
            "dataset",
            Value::object().with(
                "generate",
                Value::object()
                    .with("n", 200u64)
                    .with("d", 16u64)
                    .with("dims", 5u64)
                    .with("seed", seed + 1),
            ),
        )
        .with("algorithms", "harp")
        .with("runs", 2u64)
        .with("seed", 7u64)
}

/// A spawned `sspc-cli` process that announces its address on stderr
/// (`<prefix> listening on <addr> ...`).
struct Proc {
    child: Child,
    addr_rx: mpsc::Receiver<String>,
    stderr_thread: std::thread::JoinHandle<String>,
}

impl Proc {
    fn spawn(prefix: &'static str, args: &[String]) -> Proc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_sspc-cli"))
            .args(args)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .env_remove("SSPC_FAULT")
            .spawn()
            .expect("spawn sspc-cli");
        let stderr = child.stderr.take().expect("piped stderr");
        let (tx, addr_rx) = mpsc::channel();
        let stderr_thread = std::thread::spawn(move || {
            let mut transcript = String::new();
            for line in std::io::BufReader::new(stderr).lines() {
                let Ok(line) = line else { break };
                if let Some(rest) = line.strip_prefix(prefix) {
                    if let Some(rest) = rest.strip_prefix(" listening on ") {
                        if let Some(addr) = rest.split_whitespace().next() {
                            let _ = tx.send(addr.to_string());
                        }
                    }
                }
                transcript.push_str(&line);
                transcript.push('\n');
            }
            transcript
        });
        Proc {
            child,
            addr_rx,
            stderr_thread,
        }
    }

    fn addr(&self) -> String {
        self.addr_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("process announces its address")
    }

    fn sigkill(mut self) -> String {
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.stderr_thread.join().expect("stderr drain")
    }
}

fn shard_proc(shard_id: u16, spool: &std::path::Path) -> Proc {
    let mut args: Vec<String> = [
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "1",
        "--shard-id",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    args.push(shard_id.to_string());
    args.push("--spool-dir".into());
    args.push(spool.to_string_lossy().into_owned());
    Proc::spawn("sspc-server", &args)
}

/// A result document with its wall-clock fields zeroed: `seconds` is
/// measured time and legitimately differs run to run, while everything
/// else (labels, objective, cluster counts) must be byte-identical
/// between a failover re-execution and the single-node baseline.
fn normalized(result: &Value) -> String {
    let mut doc = result.clone();
    if let Some(reports) = result.get("reports").and_then(Value::as_array) {
        let cleaned: Vec<Value> = reports
            .iter()
            .map(|report| report.clone().with("seconds", 0.0))
            .collect();
        doc = doc.with("reports", Value::Arr(cleaned));
    }
    doc.to_string_checked().unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sspc_failover_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn killed_shards_jobs_complete_on_survivors_with_identical_results() {
    let spool = temp_dir("spool");
    let shard0 = shard_proc(0, &spool);
    let shard1 = shard_proc(1, &spool);
    let roster = format!("0={},1={}", shard0.addr(), shard1.addr());
    let router = Proc::spawn(
        "sspc-router",
        &[
            "route",
            "--addr",
            "127.0.0.1:0",
            "--shards",
            &roster,
            "--spool-dir",
            &spool.to_string_lossy(),
            "--probe-interval",
            "0.2",
            "--fail-after",
            "1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>(),
    );
    let addr = router.addr();

    // Submit the batch through the router; remember which seed each
    // acked id carries so results can be matched against the baseline.
    let mut client = Client::new(&addr);
    let acked: Vec<(u64, u64)> = (0..8)
        .map(|seed| (client.submit(&job_body(seed)).unwrap(), seed))
        .collect();
    let on_shard1 = acked.iter().filter(|(id, _)| shard_of(*id) == 1).count();
    assert!(on_shard1 > 0, "the doomed shard owns part of the batch");
    assert!(on_shard1 < acked.len(), "a survivor owns the rest");

    // SIGKILL shard 1 mid-run: no drain, no goodbye — whatever it acked
    // is now the spool's problem.
    shard1.sigkill();

    // Every acked job still completes, under its original id. The first
    // poll of a dead-shard id triggers the failover replay.
    let mut results: Vec<(u64, String)> = Vec::new();
    for (id, seed) in acked {
        let doc = client
            .wait_for(id, Duration::from_millis(50), Duration::from_secs(120))
            .unwrap_or_else(|e| panic!("job {id} (seed {seed}) after failover: {e}"));
        assert_eq!(doc.get("status").and_then(Value::as_str), Some("done"));
        assert_eq!(doc.get("job").and_then(Value::as_u64), Some(id));
        let result = doc.get("result").expect("done jobs carry a result");
        results.push((seed, normalized(result)));
    }

    // The router's own account of the failover.
    let health = client.healthz().unwrap();
    assert_eq!(
        health
            .get("router")
            .and_then(|r| r.get("failovers"))
            .and_then(Value::as_u64),
        Some(1),
        "exactly one shard was failed over: {health}"
    );
    drop(client);

    // Single-node baseline: the same specs on a fresh in-process server
    // must produce byte-identical result documents.
    let baseline = Server::start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 64,
        ..Default::default()
    })
    .unwrap();
    let mut single = Client::new(baseline.addr().to_string());
    for (seed, recovered) in results {
        let id = single.submit(&job_body(seed)).unwrap();
        let doc = single
            .wait_for(id, Duration::from_millis(50), Duration::from_secs(120))
            .unwrap();
        let expected = normalized(doc.get("result").expect("baseline result"));
        assert_eq!(
            recovered, expected,
            "seed {seed}: failover result drifted from the single-node baseline"
        );
    }
    drop(single);
    baseline.shutdown();
    router.sigkill();
    shard0.sigkill();
    let _ = std::fs::remove_dir_all(&spool);
}
