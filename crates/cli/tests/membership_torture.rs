//! Membership torture over real processes: a live router fronting two
//! shards under open-loop loadgen traffic, a third shard **joined
//! mid-burst**, and the donor shard SIGKILLed **mid-handoff** (the
//! handoff is throttled via `SSPC_HANDOFF_THROTTLE_MS` so the kill
//! provably lands while records are still streaming). The contracts:
//!
//! * every job 202-acked before or during the churn completes under its
//!   **original id**;
//! * the explicitly-tracked jobs' results are **byte-identical** to a
//!   single-node baseline run of the same specs;
//! * the donor's death counts as exactly one failover, the join as
//!   exactly one handoff — membership churn is not failover.

#![cfg(unix)]

use sspc_common::json::Value;
use sspc_server::client::Client;
use sspc_server::loadgen;
use sspc_server::router::ring::{rebalance_plan, Ring};
use sspc_server::router::shard_of;
use sspc_server::{Server, ServerConfig};
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Deterministic and chunky enough (~a second on one debug-build
/// worker) that the donor still holds a queue of acked-but-unfinished
/// jobs when the handoff starts streaming.
fn job_body(seed: u64) -> Value {
    Value::object()
        .with("k", 3u64)
        .with(
            "dataset",
            Value::object().with(
                "generate",
                Value::object()
                    .with("n", 220u64)
                    .with("d", 16u64)
                    .with("dims", 5u64)
                    .with("seed", seed + 1),
            ),
        )
        .with("algorithms", "harp")
        .with("runs", 2u64)
        .with("seed", 7u64)
}

/// A spawned `sspc-cli` process announcing its address on stderr.
struct Proc {
    child: Child,
    addr_rx: mpsc::Receiver<String>,
    stderr_thread: std::thread::JoinHandle<String>,
}

impl Proc {
    fn spawn(prefix: &'static str, args: &[String], envs: &[(&str, &str)]) -> Proc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_sspc-cli"));
        cmd.args(args)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .env_remove("SSPC_FAULT")
            .env_remove("SSPC_HANDOFF_THROTTLE_MS");
        for (key, value) in envs {
            cmd.env(key, value);
        }
        let mut child = cmd.spawn().expect("spawn sspc-cli");
        let stderr = child.stderr.take().expect("piped stderr");
        let (tx, addr_rx) = mpsc::channel();
        let stderr_thread = std::thread::spawn(move || {
            let mut transcript = String::new();
            for line in std::io::BufReader::new(stderr).lines() {
                let Ok(line) = line else { break };
                if let Some(rest) = line.strip_prefix(prefix) {
                    if let Some(rest) = rest.strip_prefix(" listening on ") {
                        if let Some(addr) = rest.split_whitespace().next() {
                            let _ = tx.send(addr.to_string());
                        }
                    }
                }
                transcript.push_str(&line);
                transcript.push('\n');
            }
            transcript
        });
        Proc {
            child,
            addr_rx,
            stderr_thread,
        }
    }

    fn addr(&self) -> String {
        self.addr_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("process announces its address")
    }

    fn sigkill(mut self) -> String {
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.stderr_thread.join().expect("stderr drain")
    }
}

fn shard_proc(shard_id: u16, spool: &std::path::Path) -> Proc {
    let mut args: Vec<String> = [
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "1",
        "--shard-id",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    args.push(shard_id.to_string());
    args.push("--spool-dir".into());
    args.push(spool.to_string_lossy().into_owned());
    Proc::spawn("sspc-server", &args, &[])
}

/// Zeroes the wall-clock fields of a result document; everything else
/// must be byte-identical between a handed-off re-execution and the
/// single-node baseline.
fn normalized(result: &Value) -> String {
    let mut doc = result.clone();
    if let Some(reports) = result.get("reports").and_then(Value::as_array) {
        let cleaned: Vec<Value> = reports
            .iter()
            .map(|report| report.clone().with("seconds", 0.0))
            .collect();
        doc = doc.with("reports", Value::Arr(cleaned));
    }
    doc.to_string_checked().unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sspc_membership_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const DONOR: u16 = 1;
const JOINER: u16 = 2;
/// Per-record handoff pause: with at least [`MIN_MOVED`] donor records
/// to stream, the handoff takes ≥ `MIN_MOVED × THROTTLE_MS`, which is
/// the window the donor SIGKILL must land inside.
const THROTTLE_MS: u64 = 60;
const MIN_MOVED: usize = 4;

#[test]
fn join_under_traffic_with_donor_killed_mid_handoff_loses_no_acked_job() {
    let spool = temp_dir("spool");
    let shard0 = shard_proc(0, &spool);
    let shard1 = shard_proc(DONOR, &spool);
    let roster = format!("0={},{DONOR}={}", shard0.addr(), shard1.addr());
    let router = Proc::spawn(
        "sspc-router",
        &[
            "route",
            "--addr",
            "127.0.0.1:0",
            "--shards",
            &roster,
            "--spool-dir",
            &spool.to_string_lossy(),
            "--probe-interval",
            "0.2",
            "--fail-after",
            "1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>(),
        &[("SSPC_HANDOFF_THROTTLE_MS", &THROTTLE_MS.to_string())],
    );
    let addr = router.addr();

    // Submit tracked jobs until the ring delta guarantees the join will
    // move at least MIN_MOVED donor-acked keys to the joiner — that
    // lower-bounds the streaming time the SIGKILL must interrupt.
    let before = Ring::new([0, DONOR], Ring::DEFAULT_VNODES);
    let mut after = before.clone();
    after.add(JOINER);
    let mut client = Client::new(&addr);
    let mut acked: Vec<(u64, u64)> = Vec::new();
    for seed in 0..40 {
        acked.push((client.submit(&job_body(seed)).unwrap(), seed));
        let donor_ids: Vec<u64> = acked
            .iter()
            .map(|(id, _)| *id)
            .filter(|&id| shard_of(id) == DONOR)
            .collect();
        let moved = rebalance_plan(&before, &after, &donor_ids)
            .iter()
            .filter(|m| m.to == JOINER)
            .count();
        if moved >= MIN_MOVED && acked.len() >= 8 {
            break;
        }
    }
    assert!(
        acked.iter().any(|(id, _)| shard_of(*id) == 0),
        "a survivor owns part of the batch"
    );

    // Open-loop background traffic: the join happens mid-burst.
    let loadgen_addr = addr.clone();
    let loadgen_thread = std::thread::spawn(move || {
        loadgen::run(&loadgen::LoadgenConfig {
            addr: loadgen_addr,
            jobs: 16,
            pattern: loadgen::Pattern::Burst {
                size: 4,
                every: Duration::from_millis(100),
            },
            seed: 3,
            wait_timeout: Duration::from_secs(300),
            ..Default::default()
        })
        .unwrap()
    });

    // The join, from a second connection; it blocks through the whole
    // throttled handoff.
    let joiner = shard_proc(JOINER, &spool);
    let joiner_addr = joiner.addr();
    let join_router_addr = addr.clone();
    let join_thread = std::thread::spawn(move || {
        let summary = Client::new(&join_router_addr)
            .add_shard(JOINER, &joiner_addr)
            .expect("join survives the donor dying mid-handoff");
        (summary, Instant::now())
    });

    // SIGKILL the donor while the handoff is still streaming. Streaming
    // reads the donor's *spool*, not the donor itself, so the join must
    // finish anyway; the concurrent failover path may replay the same
    // records, and the cutover's or-insert merge keeps whichever landed
    // first (both produce identical results).
    std::thread::sleep(Duration::from_millis((THROTTLE_MS * 2).min(150)));
    shard1.sigkill();
    let donor_killed_at = Instant::now();

    let (summary, join_finished_at) = join_thread.join().expect("join thread");
    assert!(
        join_finished_at > donor_killed_at,
        "the donor must die while the handoff is still in progress \
         (join summary: {summary})"
    );
    assert!(
        summary.get("moved").and_then(Value::as_u64).unwrap_or(0) > 0,
        "the join moved keys: {summary}"
    );

    // Every tracked 202 completes under its original id.
    let mut results: Vec<(u64, String)> = Vec::new();
    for (id, seed) in &acked {
        let doc = client
            .wait_for(*id, Duration::from_millis(50), Duration::from_secs(300))
            .unwrap_or_else(|e| panic!("job {id} (seed {seed}) after the churn: {e}"));
        assert_eq!(
            doc.get("status").and_then(Value::as_str),
            Some("done"),
            "job {id}: {doc}"
        );
        assert_eq!(doc.get("job").and_then(Value::as_u64), Some(*id));
        results.push((
            *seed,
            normalized(doc.get("result").expect("done carries result")),
        ));
    }

    // The background traffic lost nothing either: every job loadgen got
    // a 202 for reached a terminal state through the churn.
    let report = loadgen_thread.join().expect("loadgen thread");
    assert_eq!(
        report.unfinished,
        Vec::<u64>::new(),
        "loadgen-acked jobs went unfinished: {:?}",
        report.rejected
    );
    assert_eq!(report.completed + report.failed, report.acked.len());

    // The router's own account: one failover (the killed donor), one
    // handoff (the join) — and the roster is the two survivors.
    let health = client.healthz().unwrap();
    let router_section = health.get("router").expect("router section");
    assert_eq!(
        router_section.get("failovers").and_then(Value::as_u64),
        Some(1),
        "exactly the donor failed over: {health}"
    );
    assert_eq!(
        router_section.get("handoffs").and_then(Value::as_u64),
        Some(1),
        "exactly the join cut over: {health}"
    );
    drop(client);

    // Byte-identical to a single-node baseline.
    let baseline = Server::start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_capacity: 64,
        ..Default::default()
    })
    .unwrap();
    let mut single = Client::new(baseline.addr().to_string());
    for (seed, recovered) in results {
        let id = single.submit(&job_body(seed)).unwrap();
        let doc = single
            .wait_for(id, Duration::from_millis(50), Duration::from_secs(300))
            .unwrap();
        let expected = normalized(doc.get("result").expect("baseline result"));
        assert_eq!(
            recovered, expected,
            "seed {seed}: handed-off result drifted from the single-node baseline"
        );
    }
    drop(single);
    baseline.shutdown();
    router.sigkill();
    shard0.sigkill();
    joiner.sigkill();
    let _ = std::fs::remove_dir_all(&spool);
}
