//! The three subcommands: `generate`, `cluster`, `evaluate`.

use crate::args::Flags;
use sspc::{Sspc, SspcParams, Supervision, ThresholdScheme};
use sspc_common::io::{read_delimited, write_delimited};
use sspc_common::rng::derive_seed;
use sspc_common::{ClusterId, DimId, Error, ObjectId, Result};
use sspc_datagen::{generate, GeneratorConfig};
use sspc_metrics::info::{normalized_mutual_information, purity};
use sspc_metrics::{adjusted_rand_index, OutlierPolicy};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

const HELP: &str = "\
sspc-cli — Semi-Supervised Projected Clustering (ICDE 2005 reproduction)

subcommands:
  generate  --out FILE --truth FILE [--n 1000] [--d 100] [--k 5]
            [--dims 10] [--outliers 0.0] [--seed 1]
      Write a synthetic dataset (TSV) and its true labels (one per line,
      `-` for outliers).

  cluster   --input FILE --k K [--m 0.5 | --p 0.05] [--labels FILE]
            [--runs 10] [--seed 1] [--out FILE] [--dims-out FILE]
      Cluster a delimited matrix; best-of-N by objective score. Optional
      supervision file: lines `o <object-id> <class>` and
      `d <dim-id> <class>`. Writes one cluster label per line (`-` for
      outliers) to --out (default stdout) and selected dimensions per
      cluster to --dims-out.

  evaluate  --truth FILE --produced FILE
      Print ARI, NMI and purity of produced labels against true labels.

  help
      This message.";

/// Dispatches a full argv (without the program name).
///
/// # Errors
///
/// Any parse, I/O, or clustering failure, with a message suitable for
/// printing.
pub fn dispatch(argv: &[String]) -> Result<()> {
    let Some(command) = argv.first() else {
        println!("{HELP}");
        return Ok(());
    };
    let flags = Flags::parse(&argv[1..])?;
    match command.as_str() {
        "generate" => cmd_generate(&flags),
        "cluster" => cmd_cluster(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        other => Err(Error::InvalidParameter(format!(
            "unknown subcommand `{other}`"
        ))),
    }
}

fn cmd_generate(flags: &Flags) -> Result<()> {
    flags.reject_unknown(&["out", "truth", "n", "d", "k", "dims", "outliers", "seed"])?;
    let out = flags.required("out")?;
    let truth_path = flags.required("truth")?;
    let config = GeneratorConfig {
        n: flags.parsed_or("n", 1000)?,
        d: flags.parsed_or("d", 100)?,
        k: flags.parsed_or("k", 5)?,
        avg_cluster_dims: flags.parsed_or("dims", 10)?,
        outlier_fraction: flags.parsed_or("outliers", 0.0)?,
        ..Default::default()
    };
    let seed = flags.parsed_or("seed", 1u64)?;
    let data = generate(&config, seed)?;

    let mut writer = buf_writer(out)?;
    write_delimited(&data.dataset, &mut writer, '\t')?;
    flush(writer, out)?;

    let mut writer = buf_writer(truth_path)?;
    write_labels(&mut writer, data.truth.assignment())?;
    flush(writer, truth_path)?;
    eprintln!(
        "wrote {}×{} dataset to {out}, labels to {truth_path}",
        config.n, config.d
    );
    Ok(())
}

fn cmd_cluster(flags: &Flags) -> Result<()> {
    flags.reject_unknown(&[
        "input", "k", "m", "p", "labels", "runs", "seed", "out", "dims-out",
    ])?;
    let input = flags.required("input")?;
    let k: usize = flags.parsed("k")?;
    let dataset = read_delimited(BufReader::new(open(input)?), '\t')?;

    let threshold = match (flags.optional("m"), flags.optional("p")) {
        (Some(_), Some(_)) => {
            return Err(Error::InvalidParameter(
                "give either --m or --p, not both".into(),
            ))
        }
        (None, Some(p)) => ThresholdScheme::PValue(
            p.parse()
                .map_err(|_| Error::InvalidParameter(format!("--p: cannot parse `{p}`")))?,
        ),
        (Some(m), None) => ThresholdScheme::MFraction(
            m.parse()
                .map_err(|_| Error::InvalidParameter(format!("--m: cannot parse `{m}`")))?,
        ),
        (None, None) => ThresholdScheme::MFraction(0.5),
    };
    let supervision = match flags.optional("labels") {
        Some(path) => read_supervision(path)?,
        None => Supervision::none(),
    };
    let runs: usize = flags.parsed_or("runs", 10)?;
    let seed: u64 = flags.parsed_or("seed", 1)?;

    let sspc = Sspc::new(SspcParams::new(k).with_threshold(threshold))?;
    let mut best: Option<sspc::SspcResult> = None;
    for r in 0..runs.max(1) {
        let result = sspc.run(&dataset, &supervision, derive_seed(seed, r as u64))?;
        if best
            .as_ref()
            .is_none_or(|b| result.objective() > b.objective())
        {
            best = Some(result);
        }
    }
    let best = best.expect("runs >= 1");

    match flags.optional("out") {
        Some(path) => {
            let mut writer = buf_writer(path)?;
            write_labels(&mut writer, best.assignment())?;
            flush(writer, path)?;
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            write_labels(&mut lock, best.assignment())
                .map_err(|e| Error::InvalidParameter(format!("stdout: {e}")))?;
        }
    }
    if let Some(path) = flags.optional("dims-out") {
        let mut writer = buf_writer(path)?;
        for c in 0..best.n_clusters() {
            let dims: Vec<String> = best
                .selected_dims(ClusterId(c))
                .iter()
                .map(|j| j.index().to_string())
                .collect();
            writeln!(writer, "{}", dims.join("\t"))
                .map_err(|e| Error::InvalidParameter(format!("{path}: {e}")))?;
        }
        flush(writer, path)?;
    }
    eprintln!(
        "objective {:.6}, {} outliers, {} iterations",
        best.objective(),
        best.n_outliers(),
        best.iterations()
    );
    Ok(())
}

fn cmd_evaluate(flags: &Flags) -> Result<()> {
    flags.reject_unknown(&["truth", "produced"])?;
    let truth = read_labels(flags.required("truth")?)?;
    let produced = read_labels(flags.required("produced")?)?;
    let ari = adjusted_rand_index(&truth, &produced, OutlierPolicy::AsCluster)?;
    let nmi = normalized_mutual_information(&truth, &produced, OutlierPolicy::AsCluster)?;
    let pur = purity(&truth, &produced, OutlierPolicy::AsCluster)?;
    println!("ARI    {ari:.4}");
    println!("NMI    {nmi:.4}");
    println!("purity {pur:.4}");
    Ok(())
}

// ---- label and supervision file formats -----------------------------------

/// Writes one label per line: the cluster index or `-`.
fn write_labels<W: Write>(writer: &mut W, labels: &[Option<ClusterId>]) -> Result<()> {
    for label in labels {
        let line = match label {
            Some(c) => format!("{}\n", c.index()),
            None => "-\n".to_string(),
        };
        writer
            .write_all(line.as_bytes())
            .map_err(|e| Error::InvalidParameter(format!("write: {e}")))?;
    }
    Ok(())
}

fn read_labels(path: &str) -> Result<Vec<Option<ClusterId>>> {
    let reader = BufReader::new(open(path)?);
    let mut labels = Vec::new();
    for (no, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| Error::InvalidParameter(format!("{path}: {e}")))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if t == "-" {
            labels.push(None);
        } else {
            let c: usize = t.parse().map_err(|_| {
                Error::InvalidParameter(format!("{path}:{}: bad label `{t}`", no + 1))
            })?;
            labels.push(Some(ClusterId(c)));
        }
    }
    if labels.is_empty() {
        return Err(Error::InvalidShape(format!("{path}: no labels")));
    }
    Ok(labels)
}

/// Supervision file: lines `o <object-id> <class>` / `d <dim-id> <class>`.
fn read_supervision(path: &str) -> Result<Supervision> {
    let reader = BufReader::new(open(path)?);
    let mut supervision = Supervision::none();
    for (no, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| Error::InvalidParameter(format!("{path}: {e}")))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = t.split_whitespace().collect();
        let bad = || {
            Error::InvalidSupervision(format!(
                "{path}:{}: expected `o|d <id> <class>`, got `{t}`",
                no + 1
            ))
        };
        if fields.len() != 3 {
            return Err(bad());
        }
        let id: usize = fields[1].parse().map_err(|_| bad())?;
        let class: usize = fields[2].parse().map_err(|_| bad())?;
        supervision = match fields[0] {
            "o" => supervision.label_object(ObjectId(id), ClusterId(class)),
            "d" => supervision.label_dim(DimId(id), ClusterId(class)),
            _ => return Err(bad()),
        };
    }
    Ok(supervision)
}

// ---- small I/O helpers -----------------------------------------------------

fn open(path: &str) -> Result<File> {
    File::open(Path::new(path))
        .map_err(|e| Error::InvalidParameter(format!("cannot open {path}: {e}")))
}

fn buf_writer(path: &str) -> Result<BufWriter<File>> {
    File::create(Path::new(path))
        .map(BufWriter::new)
        .map_err(|e| Error::InvalidParameter(format!("cannot create {path}: {e}")))
}

fn flush(mut writer: BufWriter<File>, path: &str) -> Result<()> {
    writer
        .flush()
        .map_err(|e| Error::InvalidParameter(format!("cannot flush {path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> String {
        let mut p: PathBuf = std::env::temp_dir();
        p.push(format!("sspc_cli_test_{}_{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_commands() {
        dispatch(&[]).unwrap();
        dispatch(&["help".into()]).unwrap();
        assert!(dispatch(&["frobnicate".into()]).is_err());
    }

    #[test]
    fn generate_cluster_evaluate_roundtrip() {
        let data = temp_path("data.tsv");
        let truth = temp_path("truth.tsv");
        let out = temp_path("out.tsv");
        let dims = temp_path("dims.tsv");

        let argv = |s: &[&str]| -> Vec<String> { s.iter().map(|x| x.to_string()).collect() };
        dispatch(&argv(&[
            "generate", "--out", &data, "--truth", &truth, "--n", "120", "--d", "20", "--k", "3",
            "--dims", "6", "--seed", "7",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "cluster",
            "--input",
            &data,
            "--k",
            "3",
            "--m",
            "0.5",
            "--runs",
            "3",
            "--seed",
            "2",
            "--out",
            &out,
            "--dims-out",
            &dims,
        ]))
        .unwrap();
        dispatch(&argv(&["evaluate", "--truth", &truth, "--produced", &out])).unwrap();

        // The produced labels parse and cover all objects.
        let labels = read_labels(&out).unwrap();
        assert_eq!(labels.len(), 120);
        // A dims line per cluster.
        let dim_lines = std::fs::read_to_string(&dims).unwrap();
        assert_eq!(dim_lines.lines().count(), 3);

        for p in [data, truth, out, dims] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn cluster_rejects_conflicting_thresholds() {
        let data = temp_path("conflict.tsv");
        std::fs::write(&data, "1\t2\n3\t4\n5\t6\n7\t8\n").unwrap();
        let argv: Vec<String> = [
            "cluster", "--input", &data, "--k", "2", "--m", "0.5", "--p", "0.05",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(dispatch(&argv).is_err());
        let _ = std::fs::remove_file(data);
    }

    #[test]
    fn supervision_file_parsing() {
        let path = temp_path("labels.txt");
        std::fs::write(&path, "# comment\no 3 0\nd 7 1\n\n").unwrap();
        let s = read_supervision(&path).unwrap();
        assert_eq!(s.labeled_objects(), &[(ObjectId(3), ClusterId(0))]);
        assert_eq!(s.labeled_dims(), &[(DimId(7), ClusterId(1))]);

        std::fs::write(&path, "x 1 2\n").unwrap();
        assert!(read_supervision(&path).is_err());
        std::fs::write(&path, "o 1\n").unwrap();
        assert!(read_supervision(&path).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn label_file_parsing() {
        let path = temp_path("lab.txt");
        std::fs::write(&path, "0\n-\n2\n").unwrap();
        let labels = read_labels(&path).unwrap();
        assert_eq!(labels, vec![Some(ClusterId(0)), None, Some(ClusterId(2))]);
        std::fs::write(&path, "abc\n").unwrap();
        assert!(read_labels(&path).is_err());
        std::fs::write(&path, "").unwrap();
        assert!(read_labels(&path).is_err());
        let _ = std::fs::remove_file(path);
    }
}
