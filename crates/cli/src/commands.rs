//! The subcommands: `generate`, `cluster`, `compare`, `evaluate` run
//! locally; `serve`, `route`, `submit`, `poll`, `health`, `loadgen` run
//! (or talk to) the batch service.
//!
//! `cluster` and `compare` are thin shells over the `sspc-api` layer:
//! algorithms are constructed by name through the [`AnyClusterer`]
//! registry and driven through the workspace-wide
//! [`ProjectedClusterer`](sspc_common::ProjectedClusterer) contract, so
//! every algorithm the workspace knows (SSPC and the six baselines) is
//! reachable from the shell with one flag. The service commands speak the
//! same protocol through `sspc-server` — a job submitted over the wire
//! returns exactly what the in-process call would.

use crate::args::Flags;
use sspc_api::registry::{AnyClusterer, ParamMap};
use sspc_api::{best_of, compare_algorithms, AlgorithmReport};
use sspc_common::io::{read_delimited, write_delimited};
use sspc_common::json::Value;
use sspc_common::{ClusterId, DimId, Error, ObjectId, ObjectiveSense, Result, Supervision};
use sspc_datagen::{generate, GeneratorConfig};
use sspc_metrics::{evaluate_partition, OutlierPolicy};
use sspc_server::{client, loadgen, Router, RouterConfig, Server, ServerConfig};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::time::Duration;

const HELP: &str = "\
sspc-cli — Semi-Supervised Projected Clustering (ICDE 2005 reproduction)

subcommands:
  generate  --out FILE --truth FILE [--n 1000] [--d 100] [--k 5]
            [--dims 10] [--outliers 0.0] [--seed 1]
      Write a synthetic dataset (TSV) and its true labels (one per line,
      `-` for outliers).

  cluster   --input FILE --k K [--algorithm sspc] [--m 0.5 | --p 0.05]
            [--params \"key=value,...\"] [--labels FILE] [--runs 10]
            [--seed 1] [--threads N] [--out FILE] [--dims-out FILE]
      Cluster a delimited matrix with any algorithm: sspc, proclus,
      clarans, harp, doc, orclus or clique; best-of-N restarts by the
      algorithm's own objective score. --params passes algorithm-specific
      overrides (e.g. `l=6` for proclus, `w=2.5` for doc); --m/--p are
      shorthand for SSPC's threshold. Optional supervision file (SSPC
      only): lines `o <object-id> <class>` and `d <dim-id> <class>`.
      Writes one cluster label per line (`-` for outliers) to --out
      (default stdout) and selected dimensions per cluster to --dims-out.

  compare   --input FILE --k K [--truth FILE]
            [--algorithms sspc,proclus,clarans,harp,doc] [--runs 5]
            [--seed 1] [--threads N] [--labels FILE]
            [--params \"algorithm.key=value,...\"] [--format text|json]
      Run several algorithms on one dataset (best-of-N restarts each, the
      paper's Sec. 5 protocol) and print one row per algorithm: internal
      objective, cluster/outlier counts, time, and — when --truth is given
      — ARI, NMI and purity. --params scopes overrides per algorithm,
      e.g. `proclus.l=6,doc.w=2.5`.

  evaluate  --truth FILE --produced FILE
      Print ARI, NMI and purity of produced labels against true labels.

  serve     [--addr 127.0.0.1:7878] [--workers 2] [--queue-cap 64]
            [--max-conns 256] [--max-backlog-seconds S]
            [--drain-timeout 30] [--state-dir DIR] [--result-ttl SECONDS]
            [--max-jobs N] [--threads N] [--shard-id N] [--spool-dir DIR]
      Run the batch experiment service: JSON job submissions over HTTP
      (POST /jobs), status/result polling (GET /jobs/<id>), and /healthz
      with queue depth, latency percentiles, and per-algorithm
      throughput. Jobs execute on a bounded multi-worker queue; every
      overload answers 503 + Retry-After with a machine-readable reason
      (full queue, connection cap via --max-conns, or — with
      --max-backlog-seconds — an estimated work backlog over budget).
      SIGTERM/SIGINT drains gracefully: /healthz turns \"draining\", new
      submissions are refused, running jobs get up to --drain-timeout
      seconds to finish, then the process exits 0. With --state-dir, jobs
      and results are journaled to DIR and survive restart (completed
      results bit-identically; interrupted jobs re-run). --result-ttl
      evicts finished jobs that long after completion; --max-jobs caps
      the store, evicting oldest-finished first. Connections are HTTP/1.1
      keep-alive, so pollers reuse one socket. Behind a router
      (`route`), run one process per shard with a distinct --shard-id
      (stamped into the top 16 bits of every job id) and the router's
      shared --spool-dir, so acked jobs can fail over if this shard dies.

  route     --shards \"0=HOST:PORT,1=HOST:PORT,...\" [--addr 127.0.0.1:7870]
            [--spool-dir DIR] [--probe-interval 1] [--fail-after 3]
            [--max-conns 256] [--drain-timeout 30]
      Run the consistent-hash router tier in front of N `serve --shard-id`
      processes. POST /jobs spreads submissions over live shards;
      GET /jobs/<id> routes by the id's shard prefix; /healthz fans in
      every shard (merged counters plus a per-shard section); GET /jobs
      scatter-gathers listings. Shards are health-probed every
      --probe-interval seconds and declared dead after --fail-after
      consecutive failures; with --spool-dir, a dead shard's
      acked-but-unfinished jobs are replayed onto survivors (finished
      ones are served from the spool), so every 202 still completes.
      Shard 503 reasons and Retry-After pass through unchanged; the
      router adds its own `no_shards_available` shed (and a momentary
      `rebalancing` shed during a membership cutover). SIGTERM/SIGINT
      drains like `serve`.

  route add-shard    --addr ROUTER --shard ID --shard-addr HOST:PORT
  route remove-shard --addr ROUTER --shard ID [--dead true]
      Change a running router's shard roster. add-shard health-checks
      the new shard, streams it the spool records of exactly the keys
      the ring delta moves (reads keep being served by the old owners),
      then flips routing atomically — the join summary (planned/moved
      counts, handoff seconds) prints as JSON. remove-shard is graceful
      by default: the departing shard's keys hand off to the survivors
      the same way before it leaves; --dead true skips the handoff for
      an unreachable shard and folds its spool through the failover path
      instead. Removing the last routable shard is refused.

  submit    --addr HOST:PORT --k K
            (--input FILE [--truth-path FILE] | --generate \"n=1000,d=100,...\")
            [--type compare|cluster] [--algorithms sspc,clarans,...]
            [--params \"algorithm.key=value,...\"] [--runs 5] [--seed 1]
            [--truth true] [--include-assignment true] [--timeout SECONDS]
            [--wait true] [--interval-ms 250] [--timeout-sec 600]
      Submit a job to a running service and print the job id — or, with
      --wait true, block until it finishes and print the full result JSON.
      --generate accepts n, d, k, dims, outliers, seed and evaluates the
      synthetic dataset server-side; --truth true scores against its
      planted labels. --input paths are resolved to absolute paths but
      must be readable by the *server* process. --timeout sets the job's
      server-side deadline (`timeout_secs`): a job still running that many
      seconds after it starts is cancelled and marked failed. (The
      separate --timeout-sec bounds only how long --wait polls.)

  poll      --addr HOST:PORT (--job ID | --list true) [--wait true]
            [--interval-ms 250] [--timeout-sec 600]
            [--status queued|running|done|failed] [--limit N]
      Print a submitted job's status/result JSON (optionally waiting for
      it to finish) — or, with --list true, a bounded job listing (newest
      first; --status filters, --limit caps, `total` reports the uncapped
      match count).

  health    --addr HOST:PORT
      Print the service's /healthz JSON (stdout) and a one-line summary —
      status (including draining), queue, connections, workers alive, job
      counters, latency percentiles, degraded flag — to stderr. Against a
      router, the summary covers the fleet and a per-shard table
      (membership state — joining/active/leaving/down — plus status,
      conns, queue depth, job p99) follows on stderr; stdout stays the
      raw merged JSON either way.

  loadgen   --addr HOST:PORT [--jobs 50] [--pattern poisson|burst]
            [--rate 20] [--burst-size 10] [--burst-every-ms 500]
            [--seed 1] [--wait-timeout-sec 60] [--out FILE]
      Replay an open-loop trace of mixed-size jobs against a running
      service (Poisson arrivals at --rate jobs/s, or bursts of
      --burst-size every --burst-every-ms) and print a report JSON —
      acks, an error taxonomy keyed by 503 reason, submit/e2e latency
      percentiles — to stdout plus a one-line summary to stderr. After
      the trace, acked jobs are polled to a terminal state for up to
      --wait-timeout-sec (0 skips the wait). --out appends the report as
      one JSON line to FILE (the BENCH_server.json shape). Deterministic
      in --seed.

  help
      This message.

`--threads N` (cluster, compare, serve) sets SSPC_NUM_THREADS for the run,
sizing the deterministic parallel assignment/refit phases without env
fiddling.";

/// Dispatches a full argv (without the program name).
///
/// # Errors
///
/// Any parse, I/O, or clustering failure, with a message suitable for
/// printing.
pub fn dispatch(argv: &[String]) -> Result<()> {
    let Some(command) = argv.first() else {
        println!("{HELP}");
        return Ok(());
    };
    // `route add-shard` / `route remove-shard` carry a bare verb before
    // the flags; peel it off before flag parsing (which rejects bare
    // words everywhere else).
    if command == "route" {
        match argv.get(1).map(String::as_str) {
            Some("add-shard") => return cmd_route_add_shard(&Flags::parse(&argv[2..])?),
            Some("remove-shard") => return cmd_route_remove_shard(&Flags::parse(&argv[2..])?),
            _ => {}
        }
    }
    let flags = Flags::parse(&argv[1..])?;
    match command.as_str() {
        "generate" => cmd_generate(&flags),
        "cluster" => cmd_cluster(&flags),
        "compare" => cmd_compare(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "serve" => cmd_serve(&flags),
        "route" => cmd_route(&flags),
        "submit" => cmd_submit(&flags),
        "poll" => cmd_poll(&flags),
        "health" => cmd_health(&flags),
        "loadgen" => cmd_loadgen(&flags),
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        other => Err(Error::InvalidParameter(format!(
            "unknown subcommand `{other}`"
        ))),
    }
}

fn cmd_generate(flags: &Flags) -> Result<()> {
    flags.reject_unknown(&["out", "truth", "n", "d", "k", "dims", "outliers", "seed"])?;
    let out = flags.required("out")?;
    let truth_path = flags.required("truth")?;
    let config = GeneratorConfig {
        n: flags.parsed_or("n", 1000)?,
        d: flags.parsed_or("d", 100)?,
        k: flags.parsed_or("k", 5)?,
        avg_cluster_dims: flags.parsed_or("dims", 10)?,
        outlier_fraction: flags.parsed_or("outliers", 0.0)?,
        ..Default::default()
    };
    let seed = flags.parsed_or("seed", 1u64)?;
    let data = generate(&config, seed)?;

    let mut writer = buf_writer(out)?;
    write_delimited(&data.dataset, &mut writer, '\t')?;
    flush(writer, out)?;

    let mut writer = buf_writer(truth_path)?;
    write_labels(&mut writer, data.truth.assignment())?;
    flush(writer, truth_path)?;
    eprintln!(
        "wrote {}×{} dataset to {out}, labels to {truth_path}",
        config.n, config.d
    );
    Ok(())
}

fn cmd_cluster(flags: &Flags) -> Result<()> {
    flags.reject_unknown(&[
        "input",
        "algorithm",
        "k",
        "m",
        "p",
        "params",
        "labels",
        "runs",
        "seed",
        "threads",
        "out",
        "dims-out",
    ])?;
    apply_threads(flags)?;
    let input = flags.required("input")?;
    let k: usize = flags.parsed("k")?;
    let dataset = read_delimited(BufReader::new(open(input)?), '\t')?;

    let algorithm = flags.optional("algorithm").unwrap_or("sspc");
    let mut params = match flags.optional("params") {
        Some(spec) => ParamMap::parse(spec)?,
        None => ParamMap::default(),
    };
    // --m / --p are first-class shorthands for SSPC's threshold knob; the
    // registry rejects them for other algorithms and enforces exclusivity,
    // and `set_new` rejects the same key arriving via --params too.
    if let Some(m) = flags.optional("m") {
        params = params.set_new("m", m)?;
    }
    if let Some(p) = flags.optional("p") {
        params = params.set_new("p", p)?;
    }
    let clusterer = AnyClusterer::from_spec(algorithm, k, &params)?;

    let supervision = match flags.optional("labels") {
        Some(path) => read_supervision(path)?,
        None => Supervision::none(),
    };
    let runs: usize = flags.parsed_or("runs", 10)?;
    let seed: u64 = flags.parsed_or("seed", 1)?;

    let outcome = best_of(&clusterer, &dataset, &supervision, runs, seed)?;
    let best = outcome.best;

    match flags.optional("out") {
        Some(path) => {
            let mut writer = buf_writer(path)?;
            write_labels(&mut writer, best.assignment())?;
            flush(writer, path)?;
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            write_labels(&mut lock, best.assignment())
                .map_err(|e| Error::InvalidParameter(format!("stdout: {e}")))?;
        }
    }
    if let Some(path) = flags.optional("dims-out") {
        let mut writer = buf_writer(path)?;
        for c in 0..best.n_clusters() {
            let dims: Vec<String> = best
                .selected_dims(ClusterId(c))
                .iter()
                .map(|j| j.index().to_string())
                .collect();
            writeln!(writer, "{}", dims.join("\t"))
                .map_err(|e| Error::InvalidParameter(format!("{path}: {e}")))?;
        }
        flush(writer, path)?;
    }
    let iterations = match best.iterations() {
        Some(it) => format!(", {it} iterations"),
        None => String::new(),
    };
    eprintln!(
        "{algorithm}: objective {:.6} ({}), {} clusters, {} outliers{iterations}, \
         best of {} run(s) in {:.2}s",
        best.objective(),
        sense_label(best.sense()),
        best.n_clusters(),
        best.n_outliers(),
        outcome.runs_executed,
        outcome.total_seconds,
    );
    Ok(())
}

fn cmd_compare(flags: &Flags) -> Result<()> {
    flags.reject_unknown(&[
        "input",
        "truth",
        "k",
        "algorithms",
        "runs",
        "seed",
        "threads",
        "labels",
        "params",
        "format",
    ])?;
    apply_threads(flags)?;
    let input = flags.required("input")?;
    let k: usize = flags.parsed("k")?;
    let dataset = read_delimited(BufReader::new(open(input)?), '\t')?;
    let truth = match flags.optional("truth") {
        Some(path) => Some(read_labels(path)?),
        None => None,
    };
    let supervision = match flags.optional("labels") {
        Some(path) => read_supervision(path)?,
        None => Supervision::none(),
    };

    let names: Vec<&str> = flags
        .optional("algorithms")
        .unwrap_or("sspc,proclus,clarans,harp,doc")
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let scoped = match flags.optional("params") {
        Some(spec) => ParamMap::parse_scoped(spec)?,
        None => Default::default(),
    };
    // The shared roster builder (also used by the batch server and the
    // bench harness) validates names and rejects stray parameter scopes.
    let roster = AnyClusterer::roster(&names, k, &scoped)?;

    let runs: usize = flags.parsed_or("runs", 5)?;
    let seed: u64 = flags.parsed_or("seed", 1)?;
    let reports = compare_algorithms(
        &roster,
        &dataset,
        &supervision,
        truth.as_deref(),
        runs,
        seed,
    )?;

    match flags.optional("format").unwrap_or("text") {
        "text" => print_comparison_text(&reports, truth.is_some()),
        "json" => print_comparison_json(&reports),
        other => {
            return Err(Error::InvalidParameter(format!(
                "--format must be text or json, got `{other}`"
            )))
        }
    }
    Ok(())
}

fn cmd_evaluate(flags: &Flags) -> Result<()> {
    flags.reject_unknown(&["truth", "produced"])?;
    let truth = read_labels(flags.required("truth")?)?;
    let produced = read_labels(flags.required("produced")?)?;
    let e = evaluate_partition(&truth, &produced, OutlierPolicy::AsCluster)?;
    println!("ARI    {:.4}", e.ari);
    println!("NMI    {:.4}", e.nmi);
    println!("purity {:.4}", e.purity);
    Ok(())
}

// ---- the batch service -----------------------------------------------------

fn cmd_serve(flags: &Flags) -> Result<()> {
    flags.reject_unknown(&[
        "addr",
        "workers",
        "queue-cap",
        "max-conns",
        "max-backlog-seconds",
        "drain-timeout",
        "state-dir",
        "result-ttl",
        "max-jobs",
        "threads",
        "shard-id",
        "spool-dir",
    ])?;
    apply_threads(flags)?;
    let workers = flags.parsed_or("workers", 2usize)?;
    if workers == 0 {
        return Err(Error::InvalidParameter(
            "--workers must be at least 1".into(),
        ));
    }
    let max_connections = flags.parsed_or("max-conns", 256usize)?;
    if max_connections == 0 {
        return Err(Error::InvalidParameter(
            "--max-conns must be at least 1".into(),
        ));
    }
    let max_backlog_seconds = match flags.optional("max-backlog-seconds") {
        None => None,
        Some(_) => {
            let seconds: f64 = flags.parsed("max-backlog-seconds")?;
            if !seconds.is_finite() || seconds <= 0.0 {
                return Err(Error::InvalidParameter(
                    "--max-backlog-seconds must be a positive number".into(),
                ));
            }
            Some(seconds)
        }
    };
    let drain_timeout = {
        let seconds: f64 = flags.parsed_or("drain-timeout", 30.0f64)?;
        if !seconds.is_finite() || seconds < 0.0 {
            return Err(Error::InvalidParameter(
                "--drain-timeout must be a non-negative number of seconds".into(),
            ));
        }
        Duration::try_from_secs_f64(seconds)
            .map_err(|e| Error::InvalidParameter(format!("--drain-timeout {seconds}: {e}")))?
    };
    let result_ttl = match flags.optional("result-ttl") {
        None => None,
        Some(_) => {
            let seconds: f64 = flags.parsed("result-ttl")?;
            if !seconds.is_finite() || seconds <= 0.0 {
                return Err(Error::InvalidParameter(
                    "--result-ttl must be a positive number of seconds".into(),
                ));
            }
            // try_from: an absurdly large value overflows Duration and
            // must be a clean CLI error, not a panic.
            Some(
                Duration::try_from_secs_f64(seconds)
                    .map_err(|e| Error::InvalidParameter(format!("--result-ttl {seconds}: {e}")))?,
            )
        }
    };
    let max_jobs = match flags.optional("max-jobs") {
        None => None,
        Some(_) => {
            let n: usize = flags.parsed("max-jobs")?;
            if n == 0 {
                return Err(Error::InvalidParameter(
                    "--max-jobs must be at least 1".into(),
                ));
            }
            Some(n)
        }
    };
    let shard_id = flags.parsed_or("shard-id", 0u16)?;
    let spool_dir = flags.optional("spool-dir").map(std::path::PathBuf::from);
    let config = ServerConfig {
        addr: flags
            .optional("addr")
            .unwrap_or("127.0.0.1:7878")
            .to_string(),
        workers,
        queue_capacity: flags.parsed_or("queue-cap", 64usize)?,
        max_connections,
        max_backlog_seconds,
        state_dir: flags.optional("state-dir").map(std::path::PathBuf::from),
        result_ttl,
        max_jobs,
        shard_id,
        spool_dir,
    };
    // Arm the SIGTERM/SIGINT latch before the listener exists so there is
    // no window where a signal kills us without a drain.
    crate::signal::install();
    let server = Server::start(&config)?;
    let mut store = match &config.state_dir {
        Some(dir) => format!("disk store at {}", dir.display()),
        None => "memory store".to_string(),
    };
    if config.shard_id != 0 || config.spool_dir.is_some() {
        store.push_str(&format!(", shard {}", config.shard_id));
    }
    eprintln!(
        "sspc-server listening on {} ({} workers, queue capacity {}, {store})",
        server.addr(),
        config.workers,
        config.queue_capacity
    );
    // Supervision loop: a signal flips the latch; everything else keeps
    // running inside the server's own threads.
    while !crate::signal::triggered() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!(
        "sspc-server caught a termination signal; draining (up to {:.0}s)",
        drain_timeout.as_secs_f64()
    );
    if server.drain(drain_timeout) {
        eprintln!("sspc-server drained cleanly");
        Ok(())
    } else {
        Err(Error::InvalidParameter(format!(
            "drain did not finish within {:.0}s; exiting with jobs still running \
             (a --state-dir journal will re-run them on the next start)",
            drain_timeout.as_secs_f64()
        )))
    }
}

/// Parses the `--shards` roster: comma-separated `id=host:port` pairs.
fn parse_shards(spec: &str) -> Result<Vec<(u16, String)>> {
    let mut shards = Vec::new();
    for pair in spec.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let Some((id, addr)) = pair.split_once('=') else {
            return Err(Error::InvalidParameter(format!(
                "--shards: expected `id=host:port`, got `{pair}`"
            )));
        };
        let id: u16 = id.trim().parse().map_err(|_| {
            Error::InvalidParameter(format!(
                "--shards: shard id `{}` must be an integer in 0..=65535",
                id.trim()
            ))
        })?;
        let addr = addr.trim();
        if addr.is_empty() {
            return Err(Error::InvalidParameter(format!(
                "--shards: shard {id} has an empty address"
            )));
        }
        if shards.iter().any(|(seen, _)| *seen == id) {
            return Err(Error::InvalidParameter(format!(
                "--shards: shard id {id} appears twice"
            )));
        }
        shards.push((id, addr.to_string()));
    }
    if shards.is_empty() {
        return Err(Error::InvalidParameter(
            "--shards needs at least one `id=host:port` pair".into(),
        ));
    }
    Ok(shards)
}

fn cmd_route(flags: &Flags) -> Result<()> {
    flags.reject_unknown(&[
        "addr",
        "shards",
        "spool-dir",
        "probe-interval",
        "fail-after",
        "max-conns",
        "drain-timeout",
    ])?;
    let shards = parse_shards(flags.required("shards")?)?;
    let fail_after = flags.parsed_or("fail-after", 3u32)?;
    if fail_after == 0 {
        return Err(Error::InvalidParameter(
            "--fail-after must be at least 1".into(),
        ));
    }
    let max_connections = flags.parsed_or("max-conns", 256usize)?;
    if max_connections == 0 {
        return Err(Error::InvalidParameter(
            "--max-conns must be at least 1".into(),
        ));
    }
    let probe_interval = {
        let seconds: f64 = flags.parsed_or("probe-interval", 1.0f64)?;
        if !seconds.is_finite() || seconds <= 0.0 {
            return Err(Error::InvalidParameter(
                "--probe-interval must be a positive number of seconds".into(),
            ));
        }
        Duration::try_from_secs_f64(seconds)
            .map_err(|e| Error::InvalidParameter(format!("--probe-interval {seconds}: {e}")))?
    };
    let drain_timeout = {
        let seconds: f64 = flags.parsed_or("drain-timeout", 30.0f64)?;
        if !seconds.is_finite() || seconds < 0.0 {
            return Err(Error::InvalidParameter(
                "--drain-timeout must be a non-negative number of seconds".into(),
            ));
        }
        Duration::try_from_secs_f64(seconds)
            .map_err(|e| Error::InvalidParameter(format!("--drain-timeout {seconds}: {e}")))?
    };
    let config = RouterConfig {
        addr: flags
            .optional("addr")
            .unwrap_or("127.0.0.1:7870")
            .to_string(),
        shards,
        spool_dir: flags.optional("spool-dir").map(std::path::PathBuf::from),
        probe_interval,
        fail_after,
        max_connections,
        ..RouterConfig::default()
    };
    // Same drain discipline as `serve`: latch the signal before binding.
    crate::signal::install();
    let router = Router::start(&config)?;
    let failover = match &config.spool_dir {
        Some(dir) => format!("spool at {}", dir.display()),
        None => "no spool (failover disabled)".to_string(),
    };
    eprintln!(
        "sspc-router listening on {} ({} shards, {failover})",
        router.addr(),
        config.shards.len()
    );
    while !crate::signal::triggered() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!(
        "sspc-router caught a termination signal; draining (up to {:.0}s)",
        drain_timeout.as_secs_f64()
    );
    if router.drain(drain_timeout) {
        eprintln!("sspc-router drained cleanly");
        Ok(())
    } else {
        Err(Error::InvalidParameter(format!(
            "drain did not finish within {:.0}s; exiting with clients still \
             connected (shards keep executing whatever was admitted)",
            drain_timeout.as_secs_f64()
        )))
    }
}

/// `route add-shard`: join a shard to a running router at runtime. The
/// router's join summary (planned/moved counts, handoff duration) goes
/// to stdout as JSON; a one-line confirmation goes to stderr.
fn cmd_route_add_shard(flags: &Flags) -> Result<()> {
    flags.reject_unknown(&["addr", "shard", "shard-addr"])?;
    let router = flags.required("addr")?;
    let shard: u16 = flags.parsed("shard")?;
    let shard_addr = flags.required("shard-addr")?;
    let summary = client::Client::new(router).add_shard(shard, shard_addr)?;
    println!("{summary}");
    eprintln!(
        "shard {shard} at {shard_addr} joined: {} of {} planned keys handed off in {:.3}s",
        summary.get("moved").and_then(Value::as_u64).unwrap_or(0),
        summary.get("planned").and_then(Value::as_u64).unwrap_or(0),
        summary
            .get("handoff_seconds")
            .and_then(Value::as_f64)
            .unwrap_or(0.0),
    );
    Ok(())
}

/// `route remove-shard`: remove a shard from a running router —
/// gracefully (keys handed off first) unless `--dead true`.
fn cmd_route_remove_shard(flags: &Flags) -> Result<()> {
    flags.reject_unknown(&["addr", "shard", "dead"])?;
    let router = flags.required("addr")?;
    let shard: u16 = flags.parsed("shard")?;
    let dead = flags.parsed_or("dead", false)?;
    let summary = client::Client::new(router).remove_shard(shard, dead)?;
    println!("{summary}");
    if dead {
        eprintln!("shard {shard} removed dead: its spool was folded through failover");
    } else {
        eprintln!(
            "shard {shard} left gracefully: {} of {} planned keys handed off in {:.3}s",
            summary.get("moved").and_then(Value::as_u64).unwrap_or(0),
            summary.get("planned").and_then(Value::as_u64).unwrap_or(0),
            summary
                .get("handoff_seconds")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
        );
    }
    Ok(())
}

fn cmd_loadgen(flags: &Flags) -> Result<()> {
    flags.reject_unknown(&[
        "addr",
        "jobs",
        "pattern",
        "rate",
        "burst-size",
        "burst-every-ms",
        "seed",
        "wait-timeout-sec",
        "out",
    ])?;
    let pattern = match flags.optional("pattern").unwrap_or("poisson") {
        "poisson" => loadgen::Pattern::Poisson {
            rate: flags.parsed_or("rate", 20.0f64)?,
        },
        "burst" => loadgen::Pattern::Burst {
            size: flags.parsed_or("burst-size", 10usize)?,
            every: Duration::from_millis(flags.parsed_or("burst-every-ms", 500u64)?),
        },
        other => {
            return Err(Error::InvalidParameter(format!(
                "--pattern must be poisson or burst, got `{other}`"
            )));
        }
    };
    let config = loadgen::LoadgenConfig {
        addr: flags.required("addr")?.to_string(),
        jobs: flags.parsed_or("jobs", 50usize)?,
        pattern,
        seed: flags.parsed_or("seed", 1u64)?,
        wait_timeout: Duration::from_secs(flags.parsed_or("wait-timeout-sec", 60u64)?),
        poll_every: Duration::from_millis(25),
    };
    let report = loadgen::run(&config)?;
    let record = report.to_value();
    println!("{record}");
    eprintln!(
        "loadgen: {}/{} acked ({:.1}/s), {} rejected, {} completed, {} failed, {} unfinished",
        report.acked.len(),
        report.attempted,
        report.acked_per_second,
        report.rejected_total(),
        report.completed,
        report.failed,
        report.unfinished.len(),
    );
    if let Some(path) = flags.optional("out") {
        use std::io::Write;
        let line = record
            .to_string_checked()
            .map_err(|e| Error::InvalidParameter(format!("serializing report: {e}")))?;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| Error::InvalidParameter(format!("--out {path}: {e}")))?;
        writeln!(file, "{line}")
            .map_err(|e| Error::InvalidParameter(format!("--out {path}: {e}")))?;
    }
    Ok(())
}

/// Builds the `dataset` member of a job from `--input` or `--generate`.
fn submit_dataset(flags: &Flags) -> Result<Value> {
    match (flags.optional("input"), flags.optional("generate")) {
        (Some(path), None) => {
            // Resolve to an absolute path so the job does not depend on the
            // server process's working directory (it still must be readable
            // from the server's filesystem).
            let absolute = std::fs::canonicalize(path)
                .map_err(|e| Error::InvalidParameter(format!("--input {path}: {e}")))?;
            Ok(Value::object().with("path", absolute.to_string_lossy().into_owned()))
        }
        (None, Some(spec)) => {
            let params = ParamMap::parse(spec)?;
            const KNOWN: [&str; 6] = ["n", "d", "k", "dims", "outliers", "seed"];
            if let Some(unknown) = params.keys().find(|key| !KNOWN.contains(key)) {
                return Err(Error::InvalidParameter(format!(
                    "--generate does not accept `{unknown}` (accepted: {})",
                    KNOWN.join(", ")
                )));
            }
            let mut generate = Value::object();
            for key in ["n", "d", "k", "dims", "seed"] {
                if let Some(v) = params.parsed_opt::<u64>(key)? {
                    generate = generate.with(key, v);
                }
            }
            if let Some(v) = params.parsed_opt::<f64>("outliers")? {
                generate = generate.with("outliers", v);
            }
            Ok(Value::object().with("generate", generate))
        }
        _ => Err(Error::InvalidParameter(
            "give exactly one of --input FILE or --generate \"n=...,d=...\"".into(),
        )),
    }
}

fn cmd_submit(flags: &Flags) -> Result<()> {
    flags.reject_unknown(&[
        "addr",
        "input",
        "generate",
        "type",
        "k",
        "algorithms",
        "params",
        "runs",
        "seed",
        "truth",
        "truth-path",
        "include-assignment",
        "timeout",
        "wait",
        "interval-ms",
        "timeout-sec",
    ])?;
    let addr = flags.required("addr")?;
    let k: u64 = flags.parsed("k")?;

    let mut job = Value::object()
        .with("k", k)
        .with("dataset", submit_dataset(flags)?)
        .with("runs", flags.parsed_or("runs", 5u64)?)
        .with("seed", flags.parsed_or("seed", 1u64)?);
    if flags.optional("timeout").is_some() {
        // Validation (positive, finite, Duration-representable) happens
        // server-side in JobSpec::from_json; the flag just ships the
        // number.
        job = job.with("timeout_secs", flags.parsed::<f64>("timeout")?);
    }
    let kind = flags.optional("type");
    if let Some(kind) = kind {
        job = job.with("type", kind);
    }
    // The compare default is the paper's roster; a cluster job takes
    // exactly one algorithm, so its default is SSPC alone.
    let default_algorithms = if kind == Some("cluster") {
        "sspc"
    } else {
        "sspc,proclus,clarans,harp,doc"
    };
    job = job.with(
        "algorithms",
        flags.optional("algorithms").unwrap_or(default_algorithms),
    );
    if let Some(params) = flags.optional("params") {
        job = job.with("params", params);
    }
    if flags.parsed_or("truth", false)? {
        job = job.with("truth", true);
    }
    if let Some(path) = flags.optional("truth-path") {
        let absolute = std::fs::canonicalize(path)
            .map_err(|e| Error::InvalidParameter(format!("--truth-path {path}: {e}")))?;
        job = job.with("truth_path", absolute.to_string_lossy().into_owned());
    }
    if flags.optional("include-assignment").is_some() {
        job = job.with(
            "include_assignment",
            flags.parsed::<bool>("include-assignment")?,
        );
    }

    // One keep-alive client carries the submission AND the whole polling
    // loop — one TCP connect for the entire `submit --wait`.
    let mut client = client::Client::new(addr);
    let id = client.submit(&job)?;
    eprintln!("job {id} submitted to {addr}");
    if flags.parsed_or("wait", false)? {
        print_job(wait_flags(flags, &mut client, id)?)
    } else {
        println!("{id}");
        Ok(())
    }
}

fn cmd_poll(flags: &Flags) -> Result<()> {
    flags.reject_unknown(&[
        "addr",
        "job",
        "list",
        "status",
        "limit",
        "wait",
        "interval-ms",
        "timeout-sec",
    ])?;
    let addr = flags.required("addr")?;
    let mut client = client::Client::new(addr);
    if flags.parsed_or("list", false)? {
        if flags.optional("job").is_some() {
            return Err(Error::InvalidParameter(
                "give either --job ID or --list true, not both".into(),
            ));
        }
        let limit = match flags.optional("limit") {
            None => None,
            Some(_) => Some(flags.parsed::<usize>("limit")?),
        };
        println!("{}", client.list_jobs(flags.optional("status"), limit)?);
        return Ok(());
    }
    let id: u64 = flags.parsed("job")?;
    let status = if flags.parsed_or("wait", false)? {
        wait_flags(flags, &mut client, id)?
    } else {
        client.job_status(id)?
    };
    print_job(status)
}

fn cmd_health(flags: &Flags) -> Result<()> {
    flags.reject_unknown(&["addr"])?;
    let health = client::healthz(flags.required("addr")?)?;
    // Raw JSON on stdout (scripts and CI grep it); the summary goes to
    // stderr like every other human-facing line. A router answer gets a
    // per-shard table after the fleet summary — still stderr-only.
    println!("{health}");
    eprintln!("{}", health_summary(&health));
    if let Some(table) = shard_table(&health) {
        eprintln!("{table}");
    }
    Ok(())
}

/// One human-readable line from the `/healthz` document: overall status
/// (draining included), queue pressure, connection occupancy, worker
/// liveness, job outcomes, the failure-domain counters, and the latency
/// percentiles added for overload observability. A router document (it
/// carries a `router` section) summarizes the fleet instead.
fn health_summary(health: &Value) -> String {
    if health.get("router").is_some() {
        return router_summary(health);
    }
    single_node_summary(health)
}

fn single_node_summary(health: &Value) -> String {
    let str_at = |keys: &[&str]| -> &str {
        let mut v = Some(health);
        for k in keys {
            v = v.and_then(|v| v.get(k));
        }
        v.and_then(Value::as_str).unwrap_or("?")
    };
    let num_at = |keys: &[&str]| -> u64 {
        let mut v = Some(health);
        for k in keys {
            v = v.and_then(|v| v.get(k));
        }
        v.and_then(Value::as_u64).unwrap_or(0)
    };
    let ms_at = |keys: &[&str]| -> f64 {
        let mut v = Some(health);
        for k in keys {
            v = v.and_then(|v| v.get(k));
        }
        v.and_then(Value::as_f64).unwrap_or(0.0)
    };
    let mut line = format!(
        "status {}: queue {}/{}, conns {}/{}, workers {}/{} alive, \
         {} completed, {} failed ({} panicked, {} past deadline), \
         queue-wait p50/p99 {:.1}/{:.1}ms, job p50/p99 {:.1}/{:.1}ms",
        str_at(&["status"]),
        num_at(&["queue", "depth"]),
        num_at(&["queue", "capacity"]),
        num_at(&["connections_active"]),
        num_at(&["connections_limit"]),
        num_at(&["workers_alive"]),
        num_at(&["workers"]),
        num_at(&["jobs", "completed"]),
        num_at(&["jobs", "failed"]),
        num_at(&["jobs_panicked"]),
        num_at(&["jobs_deadline_exceeded"]),
        ms_at(&["latency", "queue_wait", "p50_ms"]),
        ms_at(&["latency", "queue_wait", "p99_ms"]),
        ms_at(&["latency", "job", "p50_ms"]),
        ms_at(&["latency", "job", "p99_ms"]),
    );
    if str_at(&["status"]) == "draining" {
        line.push_str("; DRAINING (refusing new jobs, finishing admitted ones)");
    }
    if health.get("store_degraded").and_then(Value::as_bool) == Some(true) {
        line.push_str("; STORE DEGRADED (read-only; restart to recover)");
    }
    line
}

/// The fleet-level summary line for a router `/healthz` document.
fn router_summary(health: &Value) -> String {
    let num = |keys: &[&str]| -> u64 {
        let mut v = Some(health);
        for k in keys {
            v = v.and_then(|v| v.get(k));
        }
        v.and_then(Value::as_u64).unwrap_or(0)
    };
    let ms = |keys: &[&str]| -> f64 {
        let mut v = Some(health);
        for k in keys {
            v = v.and_then(|v| v.get(k));
        }
        v.and_then(Value::as_f64).unwrap_or(0.0)
    };
    let status = health.get("status").and_then(Value::as_str).unwrap_or("?");
    let mut line = format!(
        "status {status}: {}/{} shards alive, queue {}/{}, \
         {} completed, {} failed, routed {}, shed {}, \
         {} failovers ({} jobs replayed, {} owed), \
         job p50/p99 {:.1}/{:.1}ms",
        num(&["router", "shards_alive"]),
        num(&["router", "shards"]),
        num(&["queue", "depth"]),
        num(&["queue", "capacity"]),
        num(&["jobs", "completed"]),
        num(&["jobs", "failed"]),
        num(&["router", "routed"]),
        num(&["router", "shed"]),
        num(&["router", "failovers"]),
        num(&["router", "replayed_jobs"]),
        num(&["router", "owed_jobs"]),
        ms(&["latency", "job", "p50_ms"]),
        ms(&["latency", "job", "p99_ms"]),
    );
    if status == "draining" {
        line.push_str("; DRAINING (refusing new jobs, finishing admitted ones)");
    }
    line
}

/// The per-shard table for a router `/healthz` document — `None` for a
/// single-node answer (no `router`/`shards` sections). One row per
/// shard: membership state (`joining`/`active`/`leaving`/`down`),
/// status, connection occupancy, queue depth, job p99.
fn shard_table(health: &Value) -> Option<String> {
    health.get("router")?;
    let shards = health.get("shards").and_then(Value::as_object)?;
    let mut rows: Vec<(u16, &Value)> = shards
        .iter()
        .filter_map(|(id, doc)| Some((id.parse::<u16>().ok()?, doc)))
        .collect();
    rows.sort_unstable_by_key(|(id, _)| *id);
    let mut table = vec![vec![
        "shard".to_string(),
        "membership".to_string(),
        "status".to_string(),
        "conns".to_string(),
        "queue".to_string(),
        "job p99".to_string(),
    ]];
    for (id, doc) in rows {
        let num = |keys: &[&str]| -> Option<u64> {
            let mut v = Some(doc);
            for k in keys {
                v = v.and_then(|v| v.get(k));
            }
            v.and_then(Value::as_u64)
        };
        let status = doc.get("status").and_then(Value::as_str).unwrap_or("?");
        let membership = doc.get("membership").and_then(Value::as_str).unwrap_or("?");
        // An unreachable shard has no gauges; dash its columns rather
        // than rendering misleading zeros.
        let reachable = doc.get("reachable").and_then(Value::as_bool) != Some(false);
        let (conns, queue, p99) = if reachable {
            (
                format!(
                    "{}/{}",
                    num(&["connections_active"]).unwrap_or(0),
                    num(&["connections_limit"]).unwrap_or(0)
                ),
                format!(
                    "{}/{}",
                    num(&["queue", "depth"]).unwrap_or(0),
                    num(&["queue", "capacity"]).unwrap_or(0)
                ),
                format!(
                    "{:.1}ms",
                    doc.get("latency")
                        .and_then(|l| l.get("job"))
                        .and_then(|j| j.get("p99_ms"))
                        .and_then(Value::as_f64)
                        .unwrap_or(0.0)
                ),
            )
        } else {
            ("-".to_string(), "-".to_string(), "-".to_string())
        };
        table.push(vec![
            id.to_string(),
            membership.to_string(),
            status.to_string(),
            conns,
            queue,
            p99,
        ]);
    }
    let widths: Vec<usize> = (0..table[0].len())
        .map(|c| table.iter().map(|r| r[c].len()).max().unwrap_or(0))
        .collect();
    let lines: Vec<String> = table
        .iter()
        .map(|row| {
            row.iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        })
        .collect();
    Some(lines.join("\n"))
}

/// Polls the job per the `--interval-ms`/`--timeout-sec` flags, reusing
/// the given keep-alive client.
fn wait_flags(flags: &Flags, client: &mut client::Client, id: u64) -> Result<Value> {
    client.wait_for(
        id,
        Duration::from_millis(flags.parsed_or("interval-ms", 250u64)?),
        Duration::from_secs(flags.parsed_or("timeout-sec", 600u64)?),
    )
}

/// Prints the job document; a failed job becomes this process's error.
fn print_job(status: Value) -> Result<()> {
    if status.get("status").and_then(Value::as_str) == Some("failed") {
        return Err(Error::InvalidParameter(format!(
            "job {} failed: {}",
            status.get("job").and_then(Value::as_u64).unwrap_or(0),
            status.get("error").and_then(Value::as_str).unwrap_or("?")
        )));
    }
    println!("{status}");
    Ok(())
}

// ---- comparison rendering --------------------------------------------------

fn sense_label(sense: ObjectiveSense) -> &'static str {
    match sense {
        ObjectiveSense::HigherIsBetter => "max",
        ObjectiveSense::LowerIsBetter => "min",
    }
}

/// Prints one aligned row per algorithm; metric columns appear only when a
/// ground truth was supplied.
fn print_comparison_text(reports: &[AlgorithmReport], with_truth: bool) {
    let mut header = vec![
        "algorithm".to_string(),
        "objective".to_string(),
        "clusters".to_string(),
        "outliers".to_string(),
        "runs".to_string(),
        "seconds".to_string(),
    ];
    if with_truth {
        header.extend(["ARI".to_string(), "NMI".to_string(), "purity".to_string()]);
    }
    let mut rows = vec![header];
    for r in reports {
        let mut row = vec![
            r.algorithm.clone(),
            format!(
                "{:.4} ({})",
                r.best.objective(),
                sense_label(r.best.sense())
            ),
            r.best.n_clusters().to_string(),
            r.best.n_outliers().to_string(),
            r.runs_executed.to_string(),
            format!("{:.2}", r.total_seconds),
        ];
        if with_truth {
            match r.evaluation {
                Some(e) => row.extend([
                    format!("{:.4}", e.ari),
                    format!("{:.4}", e.nmi),
                    format!("{:.4}", e.purity),
                ]),
                None => row.extend(["-".into(), "-".into(), "-".into()]),
            }
        }
        rows.push(row);
    }
    let n_cols = rows[0].len();
    let widths: Vec<usize> = (0..n_cols)
        .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
        .collect();
    for row in &rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .enumerate()
            .map(|(c, (cell, w))| {
                // Left-align the name column, right-align the numbers.
                if c == 0 {
                    format!("{cell:<w$}")
                } else {
                    format!("{cell:>w$}")
                }
            })
            .collect();
        println!("{}", line.join("  ").trim_end());
    }
}

/// A JSON number (or `null` for non-finite values, which bare JSON cannot
/// represent).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn print_comparison_json(reports: &[AlgorithmReport]) {
    let entries: Vec<String> = reports
        .iter()
        .map(|r| {
            let mut fields = vec![
                format!("\"algorithm\":{:?}", r.algorithm),
                format!("\"objective\":{}", json_num(r.best.objective())),
                format!(
                    "\"sense\":\"{}\"",
                    match r.best.sense() {
                        ObjectiveSense::HigherIsBetter => "higher_is_better",
                        ObjectiveSense::LowerIsBetter => "lower_is_better",
                    }
                ),
                format!("\"clusters\":{}", r.best.n_clusters()),
                format!("\"outliers\":{}", r.best.n_outliers()),
                format!("\"runs\":{}", r.runs_executed),
                format!("\"seconds\":{}", json_num(r.total_seconds)),
            ];
            if let Some(it) = r.best.iterations() {
                fields.push(format!("\"iterations\":{it}"));
            }
            if let Some(e) = r.evaluation {
                fields.push(format!("\"ari\":{}", json_num(e.ari)));
                fields.push(format!("\"nmi\":{}", json_num(e.nmi)));
                fields.push(format!("\"purity\":{}", json_num(e.purity)));
            }
            format!("{{{}}}", fields.join(","))
        })
        .collect();
    println!("[{}]", entries.join(","));
}

// ---- flags shared by cluster and compare -----------------------------------

/// Maps `--threads N` onto `SSPC_NUM_THREADS`, the knob the deterministic
/// parallel helpers in `sspc_common::parallel` resolve their worker count
/// from. Results are bit-identical at any thread count, so this is purely
/// a speed dial.
fn apply_threads(flags: &Flags) -> Result<()> {
    if let Some(raw) = flags.optional("threads") {
        let n: usize = raw
            .parse()
            .map_err(|_| Error::InvalidParameter(format!("--threads: cannot parse `{raw}`")))?;
        if n == 0 {
            return Err(Error::InvalidParameter(
                "--threads must be at least 1".into(),
            ));
        }
        std::env::set_var("SSPC_NUM_THREADS", n.to_string());
    }
    Ok(())
}

// ---- label and supervision file formats -----------------------------------

/// Writes one label per line: the cluster index or `-` (the shared
/// workspace format from `sspc_common::io`).
fn write_labels<W: Write>(writer: &mut W, labels: &[Option<ClusterId>]) -> Result<()> {
    sspc_common::io::write_labels(writer, labels)
}

fn read_labels(path: &str) -> Result<Vec<Option<ClusterId>>> {
    sspc_common::io::read_labels(BufReader::new(open(path)?), path)
}

/// Supervision file: lines `o <object-id> <class>` / `d <dim-id> <class>`.
fn read_supervision(path: &str) -> Result<Supervision> {
    let reader = BufReader::new(open(path)?);
    let mut supervision = Supervision::none();
    for (no, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| Error::InvalidParameter(format!("{path}: {e}")))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = t.split_whitespace().collect();
        let bad = || {
            Error::InvalidSupervision(format!(
                "{path}:{}: expected `o|d <id> <class>`, got `{t}`",
                no + 1
            ))
        };
        if fields.len() != 3 {
            return Err(bad());
        }
        let id: usize = fields[1].parse().map_err(|_| bad())?;
        let class: usize = fields[2].parse().map_err(|_| bad())?;
        supervision = match fields[0] {
            "o" => supervision.label_object(ObjectId(id), ClusterId(class)),
            "d" => supervision.label_dim(DimId(id), ClusterId(class)),
            _ => return Err(bad()),
        };
    }
    Ok(supervision)
}

// ---- small I/O helpers -----------------------------------------------------

fn open(path: &str) -> Result<File> {
    File::open(Path::new(path))
        .map_err(|e| Error::InvalidParameter(format!("cannot open {path}: {e}")))
}

fn buf_writer(path: &str) -> Result<BufWriter<File>> {
    File::create(Path::new(path))
        .map(BufWriter::new)
        .map_err(|e| Error::InvalidParameter(format!("cannot create {path}: {e}")))
}

fn flush(mut writer: BufWriter<File>, path: &str) -> Result<()> {
    writer
        .flush()
        .map_err(|e| Error::InvalidParameter(format!("cannot flush {path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sspc_api::registry::ALGORITHMS;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> String {
        let mut p: PathBuf = std::env::temp_dir();
        p.push(format!("sspc_cli_test_{}_{name}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn help_and_unknown_commands() {
        dispatch(&[]).unwrap();
        dispatch(&["help".into()]).unwrap();
        assert!(dispatch(&["frobnicate".into()]).is_err());
    }

    /// `generate → cluster --algorithm X → evaluate` for SSPC and two
    /// baselines, all through the registry path.
    #[test]
    fn generate_cluster_evaluate_roundtrip_per_algorithm() {
        let data = temp_path("data.tsv");
        let truth = temp_path("truth.tsv");

        dispatch(&argv(&[
            "generate", "--out", &data, "--truth", &truth, "--n", "120", "--d", "20", "--k", "3",
            "--dims", "6", "--seed", "7",
        ]))
        .unwrap();

        for (algorithm, extra) in [
            ("sspc", &["--m", "0.5"][..]),
            ("proclus", &["--params", "l=6"][..]),
            ("clarans", &[][..]),
        ] {
            let out = temp_path(&format!("{algorithm}_out.tsv"));
            let dims = temp_path(&format!("{algorithm}_dims.tsv"));
            let mut args = argv(&[
                "cluster",
                "--input",
                &data,
                "--algorithm",
                algorithm,
                "--k",
                "3",
                "--runs",
                "2",
                "--seed",
                "2",
                "--out",
                &out,
                "--dims-out",
                &dims,
            ]);
            args.extend(extra.iter().map(|s| s.to_string()));
            dispatch(&args).unwrap();
            dispatch(&argv(&["evaluate", "--truth", &truth, "--produced", &out])).unwrap();

            let labels = read_labels(&out).unwrap();
            assert_eq!(labels.len(), 120, "{algorithm} label count");
            let dim_lines = std::fs::read_to_string(&dims).unwrap();
            assert_eq!(dim_lines.lines().count(), 3, "{algorithm} dims lines");
            for p in [out, dims] {
                let _ = std::fs::remove_file(p);
            }
        }
        for p in [data, truth] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn cluster_rejects_unknown_algorithm_naming_the_options() {
        let data = temp_path("unknown_alg.tsv");
        std::fs::write(&data, "1\t2\n3\t4\n5\t6\n7\t8\n").unwrap();
        let err = dispatch(&argv(&[
            "cluster",
            "--input",
            &data,
            "--k",
            "2",
            "--algorithm",
            "kmeans",
        ]))
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown algorithm `kmeans`"), "{msg}");
        for name in ALGORITHMS {
            assert!(msg.contains(name), "{msg} should list {name}");
        }
        let _ = std::fs::remove_file(data);
    }

    #[test]
    fn cluster_rejects_conflicting_thresholds() {
        let data = temp_path("conflict.tsv");
        std::fs::write(&data, "1\t2\n3\t4\n5\t6\n7\t8\n").unwrap();
        assert!(dispatch(&argv(&[
            "cluster", "--input", &data, "--k", "2", "--m", "0.5", "--p", "0.05",
        ]))
        .is_err());
        // The same key arriving as a flag *and* inside --params is a
        // conflict, not a silent overwrite.
        assert!(dispatch(&argv(&[
            "cluster", "--input", &data, "--k", "2", "--m", "0.5", "--params", "m=0.3",
        ]))
        .is_err());
        let _ = std::fs::remove_file(data);
    }

    #[test]
    fn threads_flag_validates_and_sets_env() {
        let data = temp_path("threads.tsv");
        std::fs::write(&data, "1\t2\n3\t4\n5\t6\n7\t8\n").unwrap();
        // Invalid values fail before any clustering happens.
        for bad in ["0", "many"] {
            assert!(dispatch(&argv(&[
                "cluster",
                "--input",
                &data,
                "--k",
                "2",
                "--threads",
                bad,
            ]))
            .is_err());
        }
        let flags = Flags::parse(&argv(&["--threads", "2"])).unwrap();
        apply_threads(&flags).unwrap();
        assert_eq!(std::env::var("SSPC_NUM_THREADS").unwrap(), "2");
        std::env::remove_var("SSPC_NUM_THREADS");
        let _ = std::fs::remove_file(data);
    }

    #[test]
    fn compare_produces_rows_and_json() {
        let data = temp_path("cmp_data.tsv");
        let truth = temp_path("cmp_truth.tsv");
        dispatch(&argv(&[
            "generate", "--out", &data, "--truth", &truth, "--n", "90", "--d", "12", "--k", "2",
            "--dims", "4", "--seed", "5",
        ]))
        .unwrap();

        for format in ["text", "json"] {
            dispatch(&argv(&[
                "compare",
                "--input",
                &data,
                "--truth",
                &truth,
                "--k",
                "2",
                "--algorithms",
                "sspc,clarans,harp",
                "--runs",
                "2",
                "--seed",
                "3",
                "--params",
                "clarans.num-local=1",
                "--format",
                format,
            ]))
            .unwrap();
        }
        // Truth-free comparison and format validation.
        dispatch(&argv(&[
            "compare",
            "--input",
            &data,
            "--k",
            "2",
            "--algorithms",
            "clarans",
            "--runs",
            "1",
        ]))
        .unwrap();
        assert!(dispatch(&argv(&[
            "compare", "--input", &data, "--k", "2", "--format", "xml",
        ]))
        .is_err());
        // Scoped params must name algorithms that are actually in the run.
        assert!(dispatch(&argv(&[
            "compare",
            "--input",
            &data,
            "--k",
            "2",
            "--algorithms",
            "clarans",
            "--params",
            "doc.w=2.0",
        ]))
        .is_err());

        for p in [data, truth] {
            let _ = std::fs::remove_file(p);
        }
    }

    /// `submit --wait` / `poll` / `health` against a real in-process
    /// service; also the client-side validation paths.
    #[test]
    fn submit_poll_health_against_a_live_service() {
        let server = Server::start(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 8,
            ..Default::default()
        })
        .unwrap();
        let addr = server.addr().to_string();

        dispatch(&argv(&[
            "submit",
            "--addr",
            &addr,
            "--k",
            "2",
            "--generate",
            "n=60,d=8,dims=4,seed=3",
            "--algorithms",
            "clarans,harp",
            "--runs",
            "2",
            "--truth",
            "true",
            "--wait",
            "true",
            "--interval-ms",
            "20",
        ]))
        .unwrap();

        // The waited job is job 1; poll sees its final state.
        dispatch(&argv(&["poll", "--addr", &addr, "--job", "1"])).unwrap();
        dispatch(&argv(&["health", "--addr", &addr])).unwrap();

        // The listing mode: filtered, capped, and exclusive with --job.
        dispatch(&argv(&["poll", "--addr", &addr, "--list", "true"])).unwrap();
        dispatch(&argv(&[
            "poll", "--addr", &addr, "--list", "true", "--status", "done", "--limit", "1",
        ]))
        .unwrap();
        assert!(dispatch(&argv(&[
            "poll", "--addr", &addr, "--list", "true", "--job", "1",
        ]))
        .is_err());
        assert!(dispatch(&argv(&[
            "poll", "--addr", &addr, "--list", "true", "--status", "bogus",
        ]))
        .is_err());

        // Unknown job ids and client-side validation failures error out.
        assert!(dispatch(&argv(&["poll", "--addr", &addr, "--job", "99"])).is_err());
        assert!(dispatch(&argv(&[
            "submit",
            "--addr",
            &addr,
            "--k",
            "2",
            "--generate",
            "n=60,bogus=1",
        ]))
        .is_err());
        assert!(dispatch(&argv(&["submit", "--addr", &addr, "--k", "2"])).is_err());
        assert!(dispatch(&argv(&[
            "submit",
            "--addr",
            &addr,
            "--k",
            "2",
            "--generate",
            "n=60,d=8,dims=4",
            "--input",
            "also-a-file.tsv",
        ]))
        .is_err());

        // A cluster job without --algorithms defaults to SSPC alone (the
        // 5-name compare default would be rejected server-side).
        dispatch(&argv(&[
            "submit",
            "--addr",
            &addr,
            "--k",
            "2",
            "--generate",
            "n=60,d=8,dims=4,seed=3",
            "--type",
            "cluster",
            "--runs",
            "1",
            "--wait",
            "true",
            "--interval-ms",
            "20",
        ]))
        .unwrap();

        // A job that fails server-side surfaces as a CLI error on --wait.
        assert!(dispatch(&argv(&[
            "submit",
            "--addr",
            &addr,
            "--k",
            "2",
            "--generate",
            "n=60,d=8,dims=4",
            "--algorithms",
            "kmeans",
            "--wait",
            "true",
            "--interval-ms",
            "20",
        ]))
        .is_err());
        server.shutdown();
    }

    #[test]
    fn health_summary_renders_counters_and_degraded_flag() {
        let health = Value::object()
            .with("status", "degraded")
            .with("workers", 2u64)
            .with("workers_alive", 1u64)
            .with(
                "queue",
                Value::object().with("depth", 3u64).with("capacity", 64u64),
            )
            .with(
                "jobs",
                Value::object().with("completed", 5u64).with("failed", 2u64),
            )
            .with("jobs_panicked", 1u64)
            .with("jobs_deadline_exceeded", 1u64)
            .with("connections_active", 4u64)
            .with("connections_limit", 256u64)
            .with(
                "latency",
                Value::object()
                    .with(
                        "queue_wait",
                        Value::object().with("p50_ms", 1.5).with("p99_ms", 9.0),
                    )
                    .with(
                        "job",
                        Value::object().with("p50_ms", 20.0).with("p99_ms", 80.5),
                    ),
            )
            .with("store_degraded", true);
        let line = health_summary(&health);
        assert!(line.contains("status degraded"), "{line}");
        assert!(line.contains("queue 3/64"), "{line}");
        assert!(line.contains("conns 4/256"), "{line}");
        assert!(line.contains("workers 1/2 alive"), "{line}");
        assert!(line.contains("5 completed"), "{line}");
        assert!(
            line.contains("2 failed (1 panicked, 1 past deadline)"),
            "{line}"
        );
        assert!(line.contains("queue-wait p50/p99 1.5/9.0ms"), "{line}");
        assert!(line.contains("job p50/p99 20.0/80.5ms"), "{line}");
        assert!(line.contains("STORE DEGRADED"), "{line}");
        // A healthy doc omits the degraded and draining suffixes.
        let ok = health_summary(&Value::object().with("status", "ok"));
        assert!(!ok.contains("DEGRADED"), "{ok}");
        assert!(!ok.contains("DRAINING"), "{ok}");
        // A draining doc announces it loudly.
        let draining = health_summary(&Value::object().with("status", "draining"));
        assert!(draining.contains("DRAINING"), "{draining}");
    }

    /// A router /healthz document flips the summary to fleet form and
    /// grows a per-shard table; a single-node document gets no table.
    #[test]
    fn router_health_renders_fleet_summary_and_shard_table() {
        let shard_ok = Value::object()
            .with("status", "ok")
            .with("membership", "active")
            .with("connections_active", 1u64)
            .with("connections_limit", 256u64)
            .with(
                "queue",
                Value::object().with("depth", 2u64).with("capacity", 64u64),
            )
            .with(
                "latency",
                Value::object().with("job", Value::object().with("p99_ms", 42.5)),
            );
        let shard_down = Value::object()
            .with("status", "down")
            .with("membership", "down")
            .with("reachable", false)
            .with("addr", "127.0.0.1:9999");
        let health = Value::object()
            .with("status", "degraded")
            .with(
                "router",
                Value::object()
                    .with("shards", 2u64)
                    .with("shards_alive", 1u64)
                    .with("routed", 9u64)
                    .with("shed", 1u64)
                    .with("failovers", 1u64)
                    .with("replayed_jobs", 3u64)
                    .with("owed_jobs", 2u64),
            )
            .with(
                "shards",
                Value::object().with("0", shard_ok).with("1", shard_down),
            )
            .with(
                "jobs",
                Value::object().with("completed", 7u64).with("failed", 1u64),
            )
            .with(
                "queue",
                Value::object().with("depth", 2u64).with("capacity", 64u64),
            )
            .with(
                "latency",
                Value::object().with(
                    "job",
                    Value::object().with("p50_ms", 10.0).with("p99_ms", 42.5),
                ),
            );
        let line = health_summary(&health);
        assert!(line.contains("status degraded"), "{line}");
        assert!(line.contains("1/2 shards alive"), "{line}");
        assert!(line.contains("routed 9"), "{line}");
        assert!(line.contains("shed 1"), "{line}");
        assert!(
            line.contains("1 failovers (3 jobs replayed, 2 owed)"),
            "{line}"
        );
        assert!(line.contains("job p50/p99 10.0/42.5ms"), "{line}");

        let table = shard_table(&health).unwrap();
        let rows: Vec<&str> = table.lines().collect();
        assert_eq!(rows.len(), 3, "{table}");
        assert!(
            rows[0].starts_with("shard") && rows[0].contains("membership"),
            "{table}"
        );
        assert!(
            rows[1].contains("active") && rows[1].contains("ok") && rows[1].contains("1/256"),
            "{table}"
        );
        assert!(
            rows[1].contains("2/64") && rows[1].contains("42.5ms"),
            "{table}"
        );
        assert!(rows[2].contains("down") && rows[2].contains('-'), "{table}");

        // Single-node documents keep the old summary and get no table.
        let single = Value::object().with("status", "ok");
        assert!(health_summary(&single).contains("workers"), "no fleet form");
        assert!(shard_table(&single).is_none());
    }

    /// `route` flag validation fails before any socket binds.
    #[test]
    fn route_validates_flags() {
        for bad in [
            &["route"][..], // --shards is required
            &["route", "--shards", ""][..],
            &["route", "--shards", "0"][..],
            &["route", "--shards", "zero=127.0.0.1:7878"][..],
            &["route", "--shards", "0="][..],
            &["route", "--shards", "0=a,0=b", "--addr", "127.0.0.1:0"][..],
            &["route", "--shards", "0=127.0.0.1:1", "--fail-after", "0"][..],
            &["route", "--shards", "0=127.0.0.1:1", "--max-conns", "0"][..],
            &[
                "route",
                "--shards",
                "0=127.0.0.1:1",
                "--probe-interval",
                "0",
            ][..],
            &[
                "route",
                "--shards",
                "0=127.0.0.1:1",
                "--probe-interval",
                "-1",
            ][..],
            &[
                "route",
                "--shards",
                "0=127.0.0.1:1",
                "--drain-timeout",
                "-5",
            ][..],
            // The admin verbs validate their flags before any socket work.
            &["route", "add-shard", "--addr", "127.0.0.1:1"][..],
            &["route", "add-shard", "--shard", "2", "--shard-addr", "a:1"][..],
            &[
                "route",
                "add-shard",
                "--addr",
                "127.0.0.1:1",
                "--shard",
                "two",
                "--shard-addr",
                "a:1",
            ][..],
            &["route", "remove-shard", "--addr", "127.0.0.1:1"][..],
            &[
                "route",
                "remove-shard",
                "--addr",
                "127.0.0.1:1",
                "--shard",
                "1",
                "--mode",
                "dead",
            ][..],
        ] {
            assert!(dispatch(&argv(bad)).is_err(), "{bad:?} should be rejected");
        }
        let roster = parse_shards(" 0 = 127.0.0.1:7871 , 1=127.0.0.1:7872 ,").unwrap();
        assert_eq!(
            roster,
            vec![(0, "127.0.0.1:7871".into()), (1, "127.0.0.1:7872".into())]
        );
    }

    /// `submit`/`poll`/`health` through a live router over two shards:
    /// the CLI is oblivious to sharding (same flags, same outputs).
    #[test]
    fn cli_commands_work_through_a_router() {
        let a = Server::start(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 8,
            shard_id: 0,
            ..Default::default()
        })
        .unwrap();
        let b = Server::start(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 8,
            shard_id: 1,
            ..Default::default()
        })
        .unwrap();
        let router = Router::start(&RouterConfig {
            addr: "127.0.0.1:0".into(),
            shards: vec![(0, a.addr().to_string()), (1, b.addr().to_string())],
            ..Default::default()
        })
        .unwrap();
        let addr = router.addr().to_string();

        dispatch(&argv(&[
            "submit",
            "--addr",
            &addr,
            "--k",
            "2",
            "--generate",
            "n=40,d=6,dims=3,seed=2",
            "--algorithms",
            "harp",
            "--runs",
            "1",
            "--wait",
            "true",
            "--interval-ms",
            "20",
        ]))
        .unwrap();
        dispatch(&argv(&["poll", "--addr", &addr, "--list", "true"])).unwrap();
        dispatch(&argv(&["health", "--addr", &addr])).unwrap();

        // Membership from the shell: join a third shard at runtime, then
        // remove it again (dead mode — this roster has no spool).
        let c = Server::start(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 8,
            shard_id: 2,
            ..Default::default()
        })
        .unwrap();
        dispatch(&argv(&[
            "route",
            "add-shard",
            "--addr",
            &addr,
            "--shard",
            "2",
            "--shard-addr",
            &c.addr().to_string(),
        ]))
        .unwrap();
        let health = client::healthz(&addr).unwrap();
        assert_eq!(
            health
                .get("shards")
                .and_then(Value::as_object)
                .map(std::collections::BTreeMap::len),
            Some(3),
            "the joiner shows up in /healthz: {health}"
        );
        dispatch(&argv(&[
            "route",
            "remove-shard",
            "--addr",
            &addr,
            "--shard",
            "2",
            "--dead",
            "true",
        ]))
        .unwrap();
        c.shutdown();
        router.shutdown();
        a.shutdown();
        b.shutdown();
    }

    /// The new serve overload flags validate before anything binds.
    #[test]
    fn serve_validates_overload_flags() {
        for bad in [
            &["serve", "--max-conns", "0"][..],
            &["serve", "--max-conns", "lots"][..],
            &["serve", "--max-backlog-seconds", "0"][..],
            &["serve", "--max-backlog-seconds", "-1"][..],
            &["serve", "--drain-timeout", "-5"][..],
            &["serve", "--drain-timeout", "soon"][..],
        ] {
            assert!(dispatch(&argv(bad)).is_err(), "{bad:?} should be rejected");
        }
    }

    /// `loadgen` flag validation: bad patterns and rates fail before any
    /// socket work.
    #[test]
    fn loadgen_validates_flags() {
        for bad in [
            &["loadgen", "--addr", "127.0.0.1:1", "--pattern", "steady"][..],
            &["loadgen", "--addr", "127.0.0.1:1", "--rate", "0"][..],
            &[
                "loadgen",
                "--addr",
                "127.0.0.1:1",
                "--pattern",
                "burst",
                "--burst-size",
                "0",
            ][..],
        ] {
            assert!(dispatch(&argv(bad)).is_err(), "{bad:?} should be rejected");
        }
    }

    /// `loadgen` against a live service: the report JSON lands on stdout
    /// is exercised by `run` directly here (stdout capture in-process),
    /// and `--out` appends exactly one JSON line per run.
    #[test]
    fn loadgen_runs_against_a_live_service_and_appends_records() {
        let server = Server::start(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 8,
            ..Default::default()
        })
        .unwrap();
        let out = temp_path("loadgen_out.json");
        let _ = std::fs::remove_file(&out);
        for seed in [1, 2] {
            dispatch(&argv(&[
                "loadgen",
                "--addr",
                &server.addr().to_string(),
                "--jobs",
                "4",
                "--pattern",
                "burst",
                "--burst-size",
                "4",
                "--burst-every-ms",
                "10",
                "--seed",
                &seed.to_string(),
                "--wait-timeout-sec",
                "60",
                "--out",
                &out,
            ]))
            .unwrap();
        }
        let recorded = std::fs::read_to_string(&out).unwrap();
        let lines: Vec<&str> = recorded.lines().collect();
        assert_eq!(lines.len(), 2, "one record per run");
        for line in lines {
            let record = Value::parse(line).unwrap();
            assert_eq!(record.get("attempted").and_then(Value::as_u64), Some(4));
            assert!(record.get("e2e_latency").is_some());
        }
        let _ = std::fs::remove_file(&out);
        server.shutdown();
    }

    #[test]
    fn serve_rejects_zero_workers() {
        assert!(dispatch(&argv(&["serve", "--workers", "0"])).is_err());
    }

    /// The store flags validate before anything binds.
    #[test]
    fn serve_validates_store_flags() {
        for bad in [
            &["serve", "--result-ttl", "0"][..],
            &["serve", "--result-ttl", "-3"][..],
            &["serve", "--result-ttl", "soon"][..],
            &["serve", "--result-ttl", "1e30"][..], // Duration overflow: error, not panic
            &["serve", "--max-jobs", "0"][..],
            &["serve", "--max-jobs", "many"][..],
            &["serve", "--shard-id", "70000"][..], // u16 overflow
            &["serve", "--shard-id", "one"][..],
        ] {
            assert!(dispatch(&argv(bad)).is_err(), "{bad:?} should be rejected");
        }
    }

    /// `serve --state-dir` end to end *through the CLI config path*:
    /// results survive a stop/start cycle on the same directory.
    #[test]
    fn state_dir_flag_survives_a_restart() {
        let dir = temp_path("state_dir");
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_capacity: 8,
            state_dir: Some(std::path::PathBuf::from(&dir)),
            ..Default::default()
        };
        let server = Server::start(&config).unwrap();
        let addr = server.addr().to_string();
        dispatch(&argv(&[
            "submit",
            "--addr",
            &addr,
            "--k",
            "2",
            "--generate",
            "n=40,d=6,dims=3,seed=2",
            "--algorithms",
            "harp",
            "--runs",
            "1",
            "--wait",
            "true",
            "--interval-ms",
            "20",
        ]))
        .unwrap();
        server.shutdown();

        let server = Server::start(&config).unwrap();
        let addr = server.addr().to_string();
        dispatch(&argv(&["poll", "--addr", &addr, "--job", "1"])).unwrap();
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn supervision_file_parsing() {
        let path = temp_path("labels.txt");
        std::fs::write(&path, "# comment\no 3 0\nd 7 1\n\n").unwrap();
        let s = read_supervision(&path).unwrap();
        assert_eq!(s.labeled_objects(), &[(ObjectId(3), ClusterId(0))]);
        assert_eq!(s.labeled_dims(), &[(DimId(7), ClusterId(1))]);

        std::fs::write(&path, "x 1 2\n").unwrap();
        assert!(read_supervision(&path).is_err());
        std::fs::write(&path, "o 1\n").unwrap();
        assert!(read_supervision(&path).is_err());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn label_file_parsing() {
        let path = temp_path("lab.txt");
        std::fs::write(&path, "0\n-\n2\n").unwrap();
        let labels = read_labels(&path).unwrap();
        assert_eq!(labels, vec![Some(ClusterId(0)), None, Some(ClusterId(2))]);
        std::fs::write(&path, "abc\n").unwrap();
        assert!(read_labels(&path).is_err());
        std::fs::write(&path, "").unwrap();
        assert!(read_labels(&path).is_err());
        let _ = std::fs::remove_file(path);
    }
}
