//! `sspc-cli` — cluster delimited numeric matrices from the shell, with
//! any algorithm in the workspace (SSPC plus the six baselines).
//!
//! ```text
//! sspc-cli generate --out data.tsv --truth truth.tsv --n 300 --d 50 --k 4 --dims 8
//! sspc-cli cluster  --input data.tsv --k 4 --algorithm proclus --params l=8 --out clusters.tsv
//! sspc-cli compare  --input data.tsv --truth truth.tsv --k 4 --runs 5
//! sspc-cli evaluate --truth truth.tsv --produced clusters.tsv
//! sspc-cli serve    --addr 127.0.0.1:7878 --workers 4          # batch service
//! sspc-cli route    --addr 127.0.0.1:7870 \
//!                   --shards "0=127.0.0.1:7871,1=127.0.0.1:7872" \
//!                   --spool-dir /tmp/spool                     # shard router tier
//! sspc-cli submit   --addr 127.0.0.1:7878 --k 4 --generate "n=500,d=50,dims=8" \
//!                   --truth true --wait true                   # job over the wire
//! sspc-cli poll     --addr 127.0.0.1:7878 --job 1
//! sspc-cli health   --addr 127.0.0.1:7878
//! ```
//!
//! See `sspc-cli help` for every flag. Label files are one line per
//! object: the cluster index, or `-` for outliers.

use std::process::ExitCode;

mod args;
mod commands;
mod signal;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `sspc-cli help` for usage");
            ExitCode::FAILURE
        }
    }
}
