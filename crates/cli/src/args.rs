//! Minimal `--flag value` argument parsing (no external dependency).

use sspc_common::{Error, Result};
use std::collections::BTreeMap;

/// Parsed flags: `--name value` pairs after the subcommand.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
}

impl Flags {
    /// Parses `--name value` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on stray tokens, repeated flags,
    /// or a flag without a value.
    pub fn parse(args: &[String]) -> Result<Self> {
        let mut values = BTreeMap::new();
        let mut iter = args.iter();
        while let Some(token) = iter.next() {
            let Some(name) = token.strip_prefix("--") else {
                return Err(Error::InvalidParameter(format!(
                    "unexpected argument `{token}` (flags are --name value)"
                )));
            };
            let Some(value) = iter.next() else {
                return Err(Error::InvalidParameter(format!(
                    "flag --{name} needs a value"
                )));
            };
            if values.insert(name.to_string(), value.clone()).is_some() {
                return Err(Error::InvalidParameter(format!(
                    "flag --{name} given twice"
                )));
            }
        }
        Ok(Flags { values })
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when missing.
    pub fn required(&self, name: &str) -> Result<&str> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| Error::InvalidParameter(format!("missing required flag --{name}")))
    }

    /// An optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A parsed flag with a default.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] on parse failure.
    pub fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                Error::InvalidParameter(format!("flag --{name}: cannot parse `{raw}`"))
            }),
        }
    }

    /// A required parsed flag.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidParameter`] when missing or unparseable.
    pub fn parsed<T: std::str::FromStr>(&self, name: &str) -> Result<T> {
        let raw = self.required(name)?;
        raw.parse()
            .map_err(|_| Error::InvalidParameter(format!("flag --{name}: cannot parse `{raw}`")))
    }

    /// Names of flags that were provided but not consumed by the command —
    /// used to reject typos.
    pub fn reject_unknown(&self, known: &[&str]) -> Result<()> {
        for name in self.values.keys() {
            if !known.contains(&name.as_str()) {
                return Err(Error::InvalidParameter(format!("unknown flag --{name}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let f = Flags::parse(&argv(&["--n", "100", "--out", "x.tsv"])).unwrap();
        assert_eq!(f.required("n").unwrap(), "100");
        assert_eq!(f.optional("out"), Some("x.tsv"));
        assert_eq!(f.optional("missing"), None);
        assert_eq!(f.parsed::<usize>("n").unwrap(), 100);
        assert_eq!(f.parsed_or("k", 5usize).unwrap(), 5);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Flags::parse(&argv(&["n", "100"])).is_err());
        assert!(Flags::parse(&argv(&["--n"])).is_err());
        assert!(Flags::parse(&argv(&["--n", "1", "--n", "2"])).is_err());
    }

    #[test]
    fn rejects_unparseable_and_missing() {
        let f = Flags::parse(&argv(&["--n", "abc"])).unwrap();
        assert!(f.parsed::<usize>("n").is_err());
        assert!(f.required("k").is_err());
        assert!(f.parsed_or::<f64>("n", 1.0).is_err());
    }

    #[test]
    fn rejects_unknown_flags() {
        let f = Flags::parse(&argv(&["--typo", "1"])).unwrap();
        assert!(f.reject_unknown(&["n", "k"]).is_err());
        let f = Flags::parse(&argv(&["--n", "1"])).unwrap();
        assert!(f.reject_unknown(&["n"]).is_ok());
    }
}
