//! Minimal SIGTERM/SIGINT latch for graceful drain — no signal crate in
//! the offline workspace, so this speaks to libc's `signal(2)` directly.
//!
//! The handler does the only thing that is async-signal-safe here: set a
//! [`AtomicBool`]. `serve`'s supervision loop polls [`triggered`] and
//! runs the actual drain on a normal thread. A **second** signal restores
//! the default disposition first, so a stuck drain can always be
//! interrupted by pressing Ctrl-C again.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::SIGNALLED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    /// `SIG_DFL` — the default disposition, restored on the first hit so
    /// a repeated signal kills a wedged process the normal way.
    const SIG_DFL: usize = 0;

    unsafe extern "C" {
        /// POSIX `signal(2)`: identical signature on every libc this
        /// workspace targets; the returned previous handler is unused.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
        unsafe {
            signal(signum, SIG_DFL);
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No-op off unix: `serve` still works, it just cannot drain on a
    /// signal (the process dies the platform's default way).
    pub fn install() {}
}

/// Arms the SIGINT/SIGTERM latch. Idempotent; call before the serve loop.
pub fn install() {
    imp::install();
}

/// True once a termination signal arrived (never resets).
pub fn triggered() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}
