//! Fuzzy (confidence-weighted) supervision — the second future extension
//! named in the paper's Sec. 6: *"It is also possible to study fuzzy
//! inputs, each of which contains a confidence level that indicates its
//! chance of belonging to a cluster."*
//!
//! [`FuzzySupervision`] carries a confidence in `[0, 1]` with every label.
//! Two consumption strategies are provided:
//!
//! * [`FuzzySupervision::harden`] — keep labels at or above a confidence
//!   threshold, drop the rest. Simple, conservative, and composes with
//!   [`crate::validation`] (validate first, then harden, or vice versa).
//! * [`FuzzySupervision::sample`] — draw each label independently with
//!   probability equal to its confidence. Over repeated runs (SSPC is
//!   best-of-N anyway) low-confidence labels contribute proportionally to
//!   their reliability, which is the natural Monte-Carlo reading of
//!   "chance of belonging".

use crate::Supervision;
use rand::Rng;
use sspc_common::rng::seeded_rng;
use sspc_common::{ClusterId, DimId, Error, ObjectId, Result};

/// Supervision where every label carries a confidence level.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FuzzySupervision {
    objects: Vec<(ObjectId, ClusterId, f64)>,
    dims: Vec<(DimId, ClusterId, f64)>,
}

impl FuzzySupervision {
    /// No labels.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a labeled object with a confidence level.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSupervision`] for confidence outside `[0, 1]`.
    pub fn label_object(
        mut self,
        object: ObjectId,
        class: ClusterId,
        confidence: f64,
    ) -> Result<Self> {
        check_confidence(confidence)?;
        self.objects.push((object, class, confidence));
        Ok(self)
    }

    /// Adds a labeled dimension with a confidence level.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSupervision`] for confidence outside `[0, 1]`.
    pub fn label_dim(mut self, dim: DimId, class: ClusterId, confidence: f64) -> Result<Self> {
        check_confidence(confidence)?;
        self.dims.push((dim, class, confidence));
        Ok(self)
    }

    /// All labeled objects with confidences.
    pub fn objects(&self) -> &[(ObjectId, ClusterId, f64)] {
        &self.objects
    }

    /// All labeled dimensions with confidences.
    pub fn dims(&self) -> &[(DimId, ClusterId, f64)] {
        &self.dims
    }

    /// True if no labels are present.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty() && self.dims.is_empty()
    }

    /// Hard supervision containing exactly the labels with confidence
    /// `>= min_confidence`.
    pub fn harden(&self, min_confidence: f64) -> Supervision {
        let objects = self
            .objects
            .iter()
            .filter(|&&(_, _, c)| c >= min_confidence)
            .map(|&(o, cl, _)| (o, cl))
            .collect();
        let dims = self
            .dims
            .iter()
            .filter(|&&(_, _, c)| c >= min_confidence)
            .map(|&(j, cl, _)| (j, cl))
            .collect();
        Supervision::new(objects, dims)
    }

    /// Hard supervision where each label is included independently with
    /// probability equal to its confidence. Deterministic in `seed`; use a
    /// fresh seed per repetition so repeated runs integrate over the
    /// label distribution.
    pub fn sample(&self, seed: u64) -> Supervision {
        let mut rng = seeded_rng(seed);
        let objects = self
            .objects
            .iter()
            .filter(|&&(_, _, c)| rng.gen::<f64>() < c)
            .map(|&(o, cl, _)| (o, cl))
            .collect();
        let dims = self
            .dims
            .iter()
            .filter(|&&(_, _, c)| rng.gen::<f64>() < c)
            .map(|&(j, cl, _)| (j, cl))
            .collect();
        Supervision::new(objects, dims)
    }
}

fn check_confidence(c: f64) -> Result<()> {
    if !(0.0..=1.0).contains(&c) {
        return Err(Error::InvalidSupervision(format!(
            "confidence must be in [0, 1], got {c}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fuzzy() -> FuzzySupervision {
        FuzzySupervision::none()
            .label_object(ObjectId(0), ClusterId(0), 0.9)
            .unwrap()
            .label_object(ObjectId(1), ClusterId(0), 0.4)
            .unwrap()
            .label_dim(DimId(2), ClusterId(1), 1.0)
            .unwrap()
            .label_dim(DimId(3), ClusterId(1), 0.1)
            .unwrap()
    }

    #[test]
    fn harden_thresholds_by_confidence() {
        let f = fuzzy();
        let hard = f.harden(0.5);
        assert_eq!(hard.labeled_objects(), &[(ObjectId(0), ClusterId(0))]);
        assert_eq!(hard.labeled_dims(), &[(DimId(2), ClusterId(1))]);
        // Threshold 0 keeps everything; above 1 keeps nothing.
        assert_eq!(f.harden(0.0).labeled_objects().len(), 2);
        assert!(f.harden(1.1).is_empty());
    }

    #[test]
    fn sample_respects_certainty_extremes() {
        let f = FuzzySupervision::none()
            .label_object(ObjectId(0), ClusterId(0), 1.0)
            .unwrap()
            .label_object(ObjectId(1), ClusterId(0), 0.0)
            .unwrap();
        for seed in 0..50 {
            let s = f.sample(seed);
            assert_eq!(s.labeled_objects(), &[(ObjectId(0), ClusterId(0))]);
        }
    }

    #[test]
    fn sample_frequency_tracks_confidence() {
        let f = FuzzySupervision::none()
            .label_dim(DimId(0), ClusterId(0), 0.3)
            .unwrap();
        let hits = (0..2000)
            .filter(|&seed| !f.sample(seed).labeled_dims().is_empty())
            .count();
        let frac = hits as f64 / 2000.0;
        assert!((frac - 0.3).abs() < 0.05, "got {frac}");
    }

    #[test]
    fn sample_is_deterministic_per_seed() {
        let f = fuzzy();
        assert_eq!(f.sample(7), f.sample(7));
    }

    #[test]
    fn rejects_out_of_range_confidence() {
        assert!(FuzzySupervision::none()
            .label_object(ObjectId(0), ClusterId(0), 1.5)
            .is_err());
        assert!(FuzzySupervision::none()
            .label_dim(DimId(0), ClusterId(0), -0.1)
            .is_err());
    }

    #[test]
    fn accessors_and_empty() {
        let f = fuzzy();
        assert_eq!(f.objects().len(), 2);
        assert_eq!(f.dims().len(), 2);
        assert!(!f.is_empty());
        assert!(FuzzySupervision::none().is_empty());
    }
}
