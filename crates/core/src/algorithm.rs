//! The SSPC main loop (paper Listing 2).
//!
//! ```text
//! 1  Initialization: determine the seeds and relevant dimensions of each cluster
//! 2  For each cluster, draw a medoid from the seeds
//! 3  Assign every object to the cluster (or outlier list) that gives the
//!    greatest improvement to the objective score
//! 4  Call SelectDim(Cᵢ) for each cluster, and calculate the overall score
//! 5  Record the clusters if they give the best score so far, restore the
//!    best clusters otherwise
//! 6  Replace the cluster representative of each cluster, then remove its
//!    members
//! 7  Repeat 3–6 until no score improvements are observed for a certain
//!    number of iterations
//! ```

use crate::cluster::{ClusterState, SeedSource, Snapshot};
use crate::objective::{
    assignment_argmax, assignment_gain, assignment_gain_row, assignment_gains_transposed,
    AssignCandidate, ClusterModel, FitScratch, IncrementalModel, ASSIGN_BLOCK,
};
use crate::seeds::{draw_seed, Initializer, SeedGroups};
use crate::{SspcParams, SspcResult, Supervision, Thresholds};
use rand::rngs::StdRng;
use rand::Rng;
use sspc_common::parallel;
use sspc_common::rng::seeded_rng;
use sspc_common::{ClusterId, Dataset, Error, ObjectId, Result};
use std::sync::Arc;
use std::time::Instant;

/// A membership delta at least this fraction of the cluster (1 / this
/// divisor) routes to a full batch refit instead of the incremental
/// update: shifting that many values through the order-statistics
/// structures costs more than re-gathering the columns outright. The
/// divisor encodes the measured cost model (`benches/kernels.rs`,
/// `incremental_refit` group): one order-statistics update costs ~50× one
/// streamed gather-and-accumulate element, so the crossover sits near
/// `|Δ| ≈ nᵢ / 48`.
const DELTA_CUTOVER_DIV: usize = 48;

/// Clusters smaller than this skip the incremental machinery entirely —
/// a batch refit of a handful of members is already cheap and the
/// structures would be pure overhead.
const MIN_INCREMENTAL_MEMBERS: usize = 8;

/// Consecutive small-delta refits a structure-less cluster must show
/// before the engine invests in building its order-statistics structures.
const REBUILD_STREAK: u32 = 2;

/// Routing policy of the delta engine, resolved once per run.
///
/// The defaults encode the measured cost model; the environment overrides
/// (`SSPC_DELTA_CUTOVER_DIV`, `SSPC_INCR_STREAK`) exist so the equivalence
/// tests can force the incremental paths to run on workloads whose natural
/// deltas would route to batch refits, and so the cutover can be re-tuned
/// on new hardware without a rebuild. Any routing produces identical
/// results — the policy only moves work between equivalent paths.
struct DeltaPolicy {
    cutover_div: usize,
    rebuild_streak: u32,
}

impl DeltaPolicy {
    fn from_env() -> Self {
        let parse = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        };
        DeltaPolicy {
            cutover_div: parse("SSPC_DELTA_CUTOVER_DIV")
                .filter(|&v| v >= 1)
                .unwrap_or(DELTA_CUTOVER_DIV),
            rebuild_streak: parse("SSPC_INCR_STREAK").map_or(REBUILD_STREAK, |v| v as u32),
        }
    }
}

/// The `auto` routing threshold of the assignment phase: the transposed
/// kernel engages when clusters select at least this many dimensions on
/// average. The `assign_layout` group of `benches/kernels.rs` measured
/// transposed ahead at *every* tested width — 6.2× at 4 avg dims, still
/// 2.3× at 100 (see PERFORMANCE.md) — so the guard is set at the floor
/// where a per-cluster dimension even exists to scan contiguously; the
/// object-count guard ([`ASSIGN_BLOCK`]) is what actually excludes the
/// shapes too small for the stripe traffic to amortize.
const ASSIGN_TRANSPOSED_MIN_AVG_DIMS: usize = 2;

/// How the assignment phase (step 3) walks the data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AssignPath {
    /// Per-object scans of the row-major buffer ([`assignment_gain_row`]).
    Row,
    /// Per-(cluster, dimension) column scans accumulated into a blocked
    /// per-object gain buffer ([`assignment_gains_transposed`]).
    Transposed,
    /// Route by shape: transposed for few wide-dims clusters over enough
    /// objects to block, row-wise otherwise.
    Auto,
}

/// Assignment-phase routing, resolved once per run. Like [`DeltaPolicy`],
/// the environment override (`SSPC_ASSIGN_PATH` = `row` | `transposed` |
/// `auto`) exists for A/B runs and equivalence tests forcing each path;
/// both paths produce bit-identical decisions, so routing only moves work
/// between equivalent kernels.
struct AssignPolicy {
    path: AssignPath,
}

impl AssignPolicy {
    fn from_env() -> Self {
        let path = match std::env::var("SSPC_ASSIGN_PATH")
            .ok()
            .as_deref()
            .map(str::trim)
        {
            Some("row") => AssignPath::Row,
            Some("transposed") => AssignPath::Transposed,
            _ => AssignPath::Auto,
        };
        AssignPolicy { path }
    }

    /// Whether this pass takes the transposed kernel. The `auto` heuristic
    /// wants (a) enough objects for at least one full block — below that
    /// the stripe setup is pure overhead — and (b) wide average dimension
    /// selections, where the row path's scattered `row[j]` probes touch
    /// one cache line each while the transposed path streams columns.
    fn use_transposed(&self, clusters: &[ClusterState], n: usize) -> bool {
        match self.path {
            AssignPath::Row => false,
            AssignPath::Transposed => true,
            AssignPath::Auto => {
                let total_dims: usize = clusters.iter().map(|cl| cl.dims.len()).sum();
                n >= ASSIGN_BLOCK && total_dims >= clusters.len() * ASSIGN_TRANSPOSED_MIN_AVG_DIMS
            }
        }
    }
}

/// Per-cluster working state of the delta-driven refit engine.
struct ClusterEngine {
    model: IncrementalModel,
    /// Whether `model` currently mirrors the tracked assignment's members
    /// of this cluster (false = cleared; the next refit is a batch one).
    valid: bool,
    /// Upper bound on this cluster's score drift from the last refit
    /// phase; `0` for scores with canonical (batch-identical) bits.
    margin: f64,
    /// Consecutive refit phases whose delta was small while no structures
    /// existed — two in a row signal a stabilized membership worth the
    /// structure-building investment.
    small_streak: u32,
    adds: Vec<ObjectId>,
    removes: Vec<ObjectId>,
}

/// The delta-driven refit engine (fast path only).
///
/// `tracked` is the assignment as of the last refit phase; a cluster's
/// [`IncrementalModel`] with `valid` set summarizes exactly the members
/// `tracked` gives that cluster, so the per-iteration membership delta is
/// one `O(n)` scan of `tracked` against the new assignment. The engine is
/// deliberately independent of snapshot record/restore: restoring rewinds
/// the *cluster outputs* (dims, score, medians, representatives) but not
/// the engine, whose structures keep mirroring the most recent assignment
/// and absorb the next delta from there.
struct DeltaEngine {
    tracked: Vec<Option<ClusterId>>,
    per: Vec<ClusterEngine>,
}

impl DeltaEngine {
    fn new(n_objects: usize, n_dims: usize, k: usize) -> Self {
        DeltaEngine {
            tracked: vec![None; n_objects],
            per: (0..k)
                .map(|_| ClusterEngine {
                    model: IncrementalModel::new(n_dims),
                    valid: false,
                    margin: 0.0,
                    small_streak: 0,
                    adds: Vec::new(),
                    removes: Vec::new(),
                })
                .collect(),
        }
    }

    /// Scans the new assignment against `tracked`, filling each cluster's
    /// add/remove lists (ascending object order — deterministic), then
    /// adopts the new assignment as tracked.
    fn compute_deltas(&mut self, assignment: &[Option<ClusterId>]) {
        for eng in &mut self.per {
            eng.adds.clear();
            eng.removes.clear();
        }
        for (o, (&old, &new)) in self.tracked.iter().zip(assignment).enumerate() {
            if old != new {
                if let Some(c) = old {
                    self.per[c.index()].removes.push(ObjectId(o));
                }
                if let Some(c) = new {
                    self.per[c.index()].adds.push(ObjectId(o));
                }
            }
        }
        self.tracked.clone_from_slice(assignment);
    }

    /// Summed score-drift margin of the refit phase, in objective units
    /// (`Σ margins / nd`); `0` when every cluster score is canonical.
    fn total_margin(&self, n: usize, d: usize) -> f64 {
        let sum: f64 = self.per.iter().map(|e| e.margin).sum();
        if sum == 0.0 {
            0.0
        } else {
            sum / (n as f64 * d as f64)
        }
    }

    /// Re-canonicalizes every cluster whose score carries drift (batch
    /// moment pass + exact re-selection), zeroing all margins, and returns
    /// the exact total objective — bit-identical to what a batch refit
    /// phase would have produced. Called before any snapshot record and
    /// whenever a record/restore comparison falls inside the margin.
    fn canonicalize_scores(
        &mut self,
        dataset: &Dataset,
        thresholds: &Thresholds,
        clusters: &mut [ClusterState],
        scratch: &mut FitScratch,
    ) -> f64 {
        for (cl, eng) in clusters.iter_mut().zip(&mut self.per) {
            if eng.margin > 0.0 {
                select_canonical(dataset, thresholds, cl, &mut eng.model, scratch, true);
                eng.margin = 0.0;
            }
        }
        let score_sum: f64 = clusters.iter().map(|c| c.score).sum();
        score_sum / (dataset.n_objects() as f64 * dataset.n_dims() as f64)
    }
}

/// Canonical re-selection of one cluster from its incremental model:
/// optionally re-canonicalizes the moments first (a batch gather + Welford
/// pass over the current members), then installs dims / score / medians —
/// all with exact, batch-bit-identical values. The moments must be
/// canonical by the time selection runs; canonical moments never report
/// uncertainty.
fn select_canonical(
    dataset: &Dataset,
    thresholds: &Thresholds,
    cl: &mut ClusterState,
    model: &mut IncrementalModel,
    scratch: &mut FitScratch,
    canonicalize_first: bool,
) {
    if canonicalize_first {
        model.canonicalize_moments(dataset, &cl.members, scratch);
    }
    let t_row = thresholds.row(cl.members.len());
    let out = model
        .select_and_score_row(&t_row, &mut cl.dims, &mut cl.medians)
        .expect("canonical moments never report uncertainty");
    cl.score = out.score;
}

/// Step 4 for one cluster on the delta-driven fast path. Routes by delta
/// size: unchanged clusters return immediately, small deltas update the
/// incremental structures in `O(|Δ|·d)` and re-derive dims/score/medians
/// from them (medians exactly, moments under the drift budget — any
/// uncertain comparison re-canonicalizes on the spot), large deltas fall
/// back to the batch refit. The third consecutive small delta without
/// structures rebuilds them (the bulk-load investment that makes later
/// deltas cheap — one or two small deltas alone don't prove the membership
/// has stabilized, and a wasted rebuild costs about two extra batch
/// refits).
fn refit_cluster_delta(
    dataset: &Dataset,
    thresholds: &Thresholds,
    policy: &DeltaPolicy,
    cl: &mut ClusterState,
    eng: &mut ClusterEngine,
    scratch: &mut FitScratch,
) {
    eng.margin = 0.0;
    if cl.members.is_empty() {
        cl.reset_empty_fit();
        if eng.valid {
            eng.model.clear();
            eng.valid = false;
        }
        eng.small_streak = 0;
        return;
    }
    let changed = cl.fitted_members != cl.members;
    let delta = eng.adds.len() + eng.removes.len();
    if !changed && delta == 0 {
        // Frozen membership: outputs and model are both current.
        return;
    }
    let small = delta * policy.cutover_div <= cl.members.len()
        && cl.members.len() >= MIN_INCREMENTAL_MEMBERS;

    // Keep the model mirroring the new assignment (cheap when the delta is
    // small, cleared when syncing would cost more than it saves).
    if eng.valid {
        if small {
            eng.model.apply_delta(dataset, &eng.removes, &eng.adds);
        } else {
            eng.model.clear();
            eng.valid = false;
            eng.small_streak = 0;
        }
    }
    if !changed {
        // Post-restore repeat: the outputs (restored from the snapshot)
        // are already canonical for these members; only the model needed
        // syncing.
        return;
    }

    if eng.valid {
        let t_row = thresholds.row(cl.members.len());
        if eng.model.wants_recanonicalization() {
            eng.model
                .canonicalize_moments(dataset, &cl.members, scratch);
        }
        match eng
            .model
            .select_and_score_row(&t_row, &mut cl.dims, &mut cl.medians)
        {
            Some(out) => {
                cl.score = out.score;
                eng.margin = out.margin;
            }
            None => {
                // A selection comparison fell inside the drift budget:
                // recompute the moments exactly and redo the pass.
                select_canonical(dataset, thresholds, cl, &mut eng.model, scratch, true);
            }
        }
        cl.fitted_members.clone_from(&cl.members);
    } else if small && eng.small_streak >= policy.rebuild_streak {
        // Stabilization confirmed (third consecutive small delta, no
        // structures yet): batch-refit through the incremental model,
        // building the order-statistics structures as we go. The
        // investment premium is roughly two batch refits, so two prior
        // small deltas are the evidence it takes for the expected
        // delta-dominated stretch to repay it.
        eng.model
            .rebuild_with_scratch(dataset, &cl.members, scratch)
            .expect("non-empty members rebuild");
        eng.valid = true;
        eng.small_streak = 0;
        select_canonical(dataset, thresholds, cl, &mut eng.model, scratch, false);
        cl.fitted_members.clone_from(&cl.members);
    } else {
        eng.small_streak = if small { eng.small_streak + 1 } else { 0 };
        refit_cluster(dataset, thresholds, cl, scratch);
    }
}

/// Step 4 for one cluster on the fast path: `SelectDim` + scoring from a
/// columnar fit, with the per-dimension medians cached for the
/// median-representative step and the whole fit skipped when the member
/// list is unchanged since the last fit (the fit is a pure function of the
/// members, so the cached `dims` / `score` / `medians` are exactly what a
/// refit would produce — stall iterations repeat most memberships).
fn refit_cluster(
    dataset: &Dataset,
    thresholds: &Thresholds,
    cl: &mut ClusterState,
    scratch: &mut FitScratch,
) {
    if cl.members.is_empty() {
        cl.reset_empty_fit();
        return;
    }
    if cl.fitted_members == cl.members {
        return;
    }
    let model = ClusterModel::fit_with_scratch(dataset, &cl.members, scratch)
        .expect("non-empty members fit");
    let t_row = thresholds.row(model.size());
    cl.dims = model.select_dims_row(&t_row);
    cl.score = model.cluster_score_row(&cl.dims, &t_row);
    cl.medians.clear();
    cl.medians
        .extend(dataset.dim_ids().map(|j| model.summary(j).median));
    cl.fitted_members.clone_from(&cl.members);
}

/// Wall-clock breakdown of one run, filled by
/// [`Sspc::run_with_timings`] / [`Sspc::run_naive_with_timings`]: where
/// the iterations actually spend their time, so assignment-phase wins are
/// attributable instead of inferred from whole-run deltas. The default
/// entry points pass no collector and pay no `Instant` reads.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Step 3 (assignment) total, seconds.
    pub assign_secs: f64,
    /// Step 4 (SelectDim + scoring refits) total, seconds.
    pub refit_secs: f64,
    /// Everything else — initialization, snapshot record/restore,
    /// representative replacement — seconds.
    pub other_secs: f64,
}

/// The Semi-Supervised Projected Clustering algorithm.
///
/// Construct with [`Sspc::new`], then call [`Sspc::run`] — the instance is
/// reusable across datasets and seeds. See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct Sspc {
    params: SspcParams,
}

/// The unified workspace contract: wraps [`Sspc::run`] with wall-clock
/// timing and converts the rich [`SspcResult`] into the canonical
/// [`Clustering`](sspc_common::Clustering).
impl sspc_common::ProjectedClusterer for Sspc {
    fn name(&self) -> &str {
        "sspc"
    }

    fn cluster(
        &self,
        dataset: &Dataset,
        supervision: &Supervision,
        seed: u64,
    ) -> Result<sspc_common::Clustering> {
        sspc_common::clusterer::timed_cluster(|| Ok(self.run(dataset, supervision, seed)?.into()))
    }
}

impl Sspc {
    /// Validates the parameters and builds the algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for out-of-domain parameters.
    pub fn new(params: SspcParams) -> Result<Self> {
        params.validate()?;
        Ok(Sspc { params })
    }

    /// The parameters in force.
    pub fn params(&self) -> &SspcParams {
        &self.params
    }

    /// Runs SSPC on a dataset. Deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidShape`] — fewer objects than clusters.
    /// * [`Error::InvalidSupervision`] — labels referencing non-existent
    ///   objects/dimensions/classes, or contradictory object labels.
    ///   (A class with exactly one labeled object is handled by treating
    ///   the object as a known anchor — an extension beyond the paper's
    ///   `|Iᵒᵢ| ≥ 2` requirement.)
    /// * [`Error::InsufficientData`] — the dataset is too small to build
    ///   the required seed groups.
    pub fn run(
        &self,
        dataset: &Dataset,
        supervision: &Supervision,
        seed: u64,
    ) -> Result<SspcResult> {
        // The `naive` feature routes the default entry point through the
        // reference scalar path for whole-binary A/B runs.
        self.run_impl(dataset, supervision, seed, cfg!(feature = "naive"), None)
    }

    /// [`Sspc::run`] with a per-phase wall-clock breakdown. Identical
    /// computation and result — the only difference is two `Instant` reads
    /// per outer iteration, amortized over whole assignment/refit phases.
    ///
    /// # Errors
    ///
    /// As [`Sspc::run`].
    pub fn run_with_timings(
        &self,
        dataset: &Dataset,
        supervision: &Supervision,
        seed: u64,
    ) -> Result<(SspcResult, PhaseTimings)> {
        let mut timings = PhaseTimings::default();
        let result = self.run_impl(
            dataset,
            supervision,
            seed,
            cfg!(feature = "naive"),
            Some(&mut timings),
        )?;
        Ok((result, timings))
    }

    /// [`Sspc::run_naive`] with a per-phase wall-clock breakdown, for
    /// attributing the A/B benchmarks' whole-run deltas to phases.
    ///
    /// # Errors
    ///
    /// As [`Sspc::run`].
    pub fn run_naive_with_timings(
        &self,
        dataset: &Dataset,
        supervision: &Supervision,
        seed: u64,
    ) -> Result<(SspcResult, PhaseTimings)> {
        let mut timings = PhaseTimings::default();
        let result = self.run_impl(dataset, supervision, seed, true, Some(&mut timings))?;
        Ok((result, timings))
    }

    /// [`Sspc::run`] through the pre-columnar, serial reference
    /// implementation of every hot kernel. Produces **bit-identical**
    /// results to [`Sspc::run`] — only memory-access patterns and
    /// parallelism differ — and exists for A/B benchmarking
    /// (`benches/hotloop.rs`) and the equivalence tests.
    ///
    /// # Errors
    ///
    /// As [`Sspc::run`].
    pub fn run_naive(
        &self,
        dataset: &Dataset,
        supervision: &Supervision,
        seed: u64,
    ) -> Result<SspcResult> {
        self.run_impl(dataset, supervision, seed, true, None)
    }

    /// [`Sspc::run_naive`] through the unified contract: identical to
    /// [`ProjectedClusterer::cluster`](sspc_common::ProjectedClusterer)
    /// except every hot kernel takes the serial reference path. Exists so
    /// the perf-equivalence suite can assert fast == naive through the new
    /// API as well.
    ///
    /// # Errors
    ///
    /// As [`Sspc::run`].
    pub fn cluster_naive(
        &self,
        dataset: &Dataset,
        supervision: &Supervision,
        seed: u64,
    ) -> Result<sspc_common::Clustering> {
        sspc_common::clusterer::timed_cluster(|| {
            Ok(self.run_naive(dataset, supervision, seed)?.into())
        })
    }

    fn run_impl(
        &self,
        dataset: &Dataset,
        supervision: &Supervision,
        seed: u64,
        naive: bool,
        mut timings: Option<&mut PhaseTimings>,
    ) -> Result<SspcResult> {
        let run_start = timings.is_some().then(Instant::now);
        let k = self.params.k;
        if dataset.n_objects() < 2 * k {
            return Err(Error::InvalidShape(format!(
                "need at least 2 objects per cluster: n = {}, k = {k}",
                dataset.n_objects()
            )));
        }
        supervision.validate(dataset, k)?;
        let thresholds = Thresholds::new(self.params.threshold, dataset)?;
        // Seed-group construction uses its own (usually stricter) threshold
        // scheme; see `SspcParams::init_p`.
        let init_thresholds = match self.params.init_p {
            Some(p) => Thresholds::new(crate::ThresholdScheme::PValue(p), dataset)?,
            None => thresholds.clone(),
        };
        let mut rng = seeded_rng(seed);

        // Step 1: seed groups.
        let groups = Initializer::new(dataset, &self.params, &init_thresholds, supervision)
            .build(&mut rng)?;

        // Step 2: one medoid per cluster.
        let mut clusters = self.initial_clusters(dataset, &groups, &mut rng)?;
        let mut public_in_use: Vec<bool> = vec![false; groups.public.len()];
        for cl in &clusters {
            if let SeedSource::Public(g) = cl.source {
                public_in_use[g] = true;
            }
        }

        let n = dataset.n_objects();
        let d = dataset.n_dims();
        let mut best: Option<Snapshot> = None;
        let mut stall = 0usize;
        let mut iterations = 0usize;

        // Scratch reused across iterations: the assignment vector, the
        // pinned-object mask, the fit gather buffer, and the median gather
        // buffer. The main loop allocates nothing per iteration once the
        // first iteration has sized these — except the multi-threaded
        // fan-out paths, whose per-iteration zip/spawn bookkeeping (a
        // k-element Vec, one thread per worker) is inherent to scoped
        // threads and dwarfed by the spawns themselves.
        let mut assignment: Vec<Option<ClusterId>> = vec![None; n];
        let mut pinned = vec![false; n];
        let mut fit_scratch = FitScratch::new();
        let mut median_scratch: Vec<f64> = Vec::new();
        // The delta-driven refit engine (fast path, unless disabled for
        // A/B runs): per-(cluster, dimension) order statistics and moment
        // accumulators maintained from the per-iteration assignment delta.
        let mut engine = (!naive && self.params.incremental).then(|| DeltaEngine::new(n, d, k));
        let policy = DeltaPolicy::from_env();
        let assign_policy = AssignPolicy::from_env();

        while iterations < self.params.max_iterations {
            iterations += 1;
            // Cooperative cancellation point: one thread-local read per
            // outer iteration, free unless a deadline is installed (the
            // batch server's job timeouts; see sspc_common::cancel).
            sspc_common::cancel::check()?;

            // Step 3: assignment.
            let phase_start = timings.is_some().then(Instant::now);
            self.assign(
                dataset,
                &mut clusters,
                supervision,
                &thresholds,
                naive,
                &assign_policy,
                &mut assignment,
                &mut pinned,
            );
            if let Some(t) = timings.as_deref_mut() {
                t.assign_secs += phase_start.expect("timed run").elapsed().as_secs_f64();
            }
            let phase_start = timings.is_some().then(Instant::now);

            // Step 4: SelectDim + scoring with actual medians. Each
            // cluster's refit is independent; the fast path fans the `k`
            // fits out across threads.
            if naive {
                for cl in clusters.iter_mut() {
                    if cl.members.is_empty() {
                        cl.score = 0.0;
                        continue;
                    }
                    let model = ClusterModel::fit_naive(dataset, &cl.members)?;
                    cl.dims = model.select_dims(&thresholds);
                    cl.score = model.cluster_score(&cl.dims, &thresholds);
                }
            } else {
                // Fan the fits out only when there is enough gather work
                // to amortize thread spawns (each element here is a whole
                // cluster fit, so the gate is on total members, not
                // element count).
                let total_members: usize = clusters.iter().map(|cl| cl.members.len()).sum();
                let serial = parallel::num_threads() == 1 || total_members < parallel::MIN_CHUNK;
                if !serial {
                    // Pre-warm the per-size threshold rows serially so
                    // the worker threads only read the cache.
                    for cl in clusters.iter() {
                        if !cl.members.is_empty() {
                            thresholds.row(cl.members.len());
                        }
                    }
                }
                if let Some(engine) = &mut engine {
                    engine.compute_deltas(&assignment);
                    if serial {
                        for (cl, eng) in clusters.iter_mut().zip(&mut engine.per) {
                            refit_cluster_delta(
                                dataset,
                                &thresholds,
                                &policy,
                                cl,
                                eng,
                                &mut fit_scratch,
                            );
                        }
                    } else {
                        let mut work: Vec<_> =
                            clusters.iter_mut().zip(engine.per.iter_mut()).collect();
                        parallel::for_each_mut_with(
                            &mut work,
                            FitScratch::new,
                            |_, (cl, eng), scratch| {
                                refit_cluster_delta(
                                    dataset,
                                    &thresholds,
                                    &policy,
                                    cl,
                                    eng,
                                    scratch,
                                );
                            },
                        );
                    }
                } else if serial {
                    // Serial fast path: columnar fits sharing one gather
                    // buffer across clusters and iterations.
                    for cl in clusters.iter_mut() {
                        refit_cluster(dataset, &thresholds, cl, &mut fit_scratch);
                    }
                } else {
                    parallel::for_each_mut_with(
                        &mut clusters,
                        FitScratch::new,
                        |_, cl, scratch| refit_cluster(dataset, &thresholds, cl, scratch),
                    );
                }
            }
            if let Some(t) = timings.as_deref_mut() {
                t.refit_secs += phase_start.expect("timed run").elapsed().as_secs_f64();
            }
            let score_sum: f64 = clusters.iter().map(|c| c.score).sum();
            let mut total = score_sum / (n as f64 * d as f64);

            // Step 5: record / restore, copying in place after the first
            // iteration. Incrementally-maintained scores carry an explicit
            // drift margin; a snapshot must only ever store canonical
            // (batch-identical) bits, so any *potential* record first
            // re-canonicalizes the drifted clusters and recomputes the
            // exact total — a comparison decided strictly outside the
            // margin needs no such pass (restores bring back canonical
            // state wholesale).
            let total_margin = engine
                .as_ref()
                .map_or(0.0, |engine| engine.total_margin(n, d));
            match &mut best {
                Some(snap) => {
                    if total_margin > 0.0 && total > snap.total_score - total_margin {
                        let engine = engine.as_mut().expect("margin implies engine");
                        total = engine.canonicalize_scores(
                            dataset,
                            &thresholds,
                            &mut clusters,
                            &mut fit_scratch,
                        );
                    }
                    if total <= snap.total_score {
                        snap.restore_clusters_into(&mut clusters);
                        stall += 1;
                    } else {
                        snap.record(&assignment, &clusters, total);
                        stall = 0;
                    }
                }
                None => {
                    if total_margin > 0.0 {
                        let engine = engine.as_mut().expect("margin implies engine");
                        total = engine.canonicalize_scores(
                            dataset,
                            &thresholds,
                            &mut clusters,
                            &mut fit_scratch,
                        );
                    }
                    best = Some(Snapshot {
                        assignment: assignment.clone(),
                        clusters: clusters.clone(),
                        total_score: total,
                    });
                    stall = 0;
                }
            }
            if stall >= self.params.max_stall {
                break;
            }

            // Step 6: replace representatives, clear members.
            let bad = self.find_bad_cluster(dataset, &clusters, &thresholds);
            for (i, cl) in clusters.iter_mut().enumerate() {
                if i == bad {
                    self.redraw_medoid(dataset, cl, &groups, &mut public_in_use, &mut rng);
                } else if self.params.median_representatives {
                    cl.replace_rep_with_median_with(dataset, &mut median_scratch, naive);
                }
                cl.refresh_ref_size();
                cl.members.clear();
            }
        }

        if let Some(t) = timings {
            let total = run_start.expect("timed run").elapsed().as_secs_f64();
            t.other_secs = (total - t.assign_secs - t.refit_secs).max(0.0);
        }
        let snap = best.expect("at least one iteration ran");
        Ok(SspcResult::new(
            snap.assignment,
            snap.clusters.iter().map(|c| c.dims.clone()).collect(),
            snap.clusters.iter().map(|c| c.score).collect(),
            snap.clusters.iter().map(|c| c.rep.clone()).collect(),
            snap.total_score,
            iterations,
        ))
    }

    /// Step 2: every cluster draws its first medoid — from its private seed
    /// group when the class received input, otherwise from an unclaimed
    /// public group.
    fn initial_clusters(
        &self,
        dataset: &Dataset,
        groups: &SeedGroups,
        rng: &mut StdRng,
    ) -> Result<Vec<ClusterState>> {
        let k = self.params.k;
        let expected_size = (dataset.n_objects() / k).max(2);
        let mut clusters = Vec::with_capacity(k);
        let mut next_public = 0usize;
        for class_idx in 0..k {
            let (group, source) = match &groups.private[class_idx] {
                Some(g) => (g, SeedSource::Private(ClusterId(class_idx))),
                None => {
                    let g_idx = next_public;
                    next_public += 1;
                    let g = groups.public.get(g_idx).ok_or_else(|| {
                        Error::InsufficientData(format!(
                            "ran out of public seed groups at cluster {class_idx}"
                        ))
                    })?;
                    (g, SeedSource::Public(g_idx))
                }
            };
            let medoid = draw_seed(group, rng);
            clusters.push(ClusterState {
                rep: dataset.row(medoid).to_vec(),
                dims: group.dims.clone(),
                members: Vec::new(),
                score: 0.0,
                source,
                ref_size: expected_size,
                medians: Vec::new(),
                fitted_members: Vec::new(),
            });
        }
        Ok(clusters)
    }

    /// Step 3: each object goes to the cluster whose objective score it
    /// improves the most (representative projection substituted for the
    /// median); objects improving nothing go to the outlier list. Labeled
    /// objects are pinned to their class's cluster when
    /// [`SspcParams::pin_labeled_objects`] is set.
    ///
    /// The per-object decision is a pure function of the (frozen) cluster
    /// representatives, dimensions, and threshold rows, so the fast path
    /// computes all decisions into `assignment` in parallel over disjoint
    /// object ranges and then builds the member lists serially in object
    /// order — bit-identical to the serial scan at any thread count.
    #[allow(clippy::too_many_arguments)]
    fn assign(
        &self,
        dataset: &Dataset,
        clusters: &mut [ClusterState],
        supervision: &Supervision,
        thresholds: &Thresholds,
        naive: bool,
        assign_policy: &AssignPolicy,
        assignment: &mut Vec<Option<ClusterId>>,
        pinned: &mut Vec<bool>,
    ) {
        let n = dataset.n_objects();
        assignment.clear();
        assignment.resize(n, None);
        pinned.clear();
        pinned.resize(n, false);
        if self.params.pin_labeled_objects {
            for &(o, class) in supervision.labeled_objects() {
                assignment[o.index()] = Some(class);
                clusters[class.index()].members.push(o);
                pinned[o.index()] = true;
            }
        }
        if naive {
            for o in dataset.object_ids() {
                if pinned[o.index()] {
                    continue;
                }
                let mut best_gain = 0.0f64;
                let mut best_cluster: Option<usize> = None;
                for (i, cl) in clusters.iter().enumerate() {
                    let gain =
                        assignment_gain(dataset, o, &cl.rep, &cl.dims, thresholds, cl.ref_size);
                    if gain > best_gain {
                        best_gain = gain;
                        best_cluster = Some(i);
                    }
                }
                if let Some(i) = best_cluster {
                    assignment[o.index()] = Some(ClusterId(i));
                    clusters[i].members.push(o);
                }
            }
            return;
        }

        // Fast path: one threshold row per cluster for the whole pass
        // (fetched once, not once per (object, dimension)), decisions in
        // parallel, membership built serially in object order.
        let rows: Vec<Arc<[f64]>> = clusters
            .iter()
            .map(|cl| thresholds.row(cl.ref_size))
            .collect();
        let frozen: &[ClusterState] = clusters;
        let pinned_ref: &[bool] = pinned;
        if assign_policy.use_transposed(frozen, n) {
            // Transposed path: per candidate, walk its selected dimensions
            // in order over a cache-resident block of the columnar mirror,
            // accumulating into a per-worker gain buffer, then reduce each
            // object to its argmax. Produces the same sequence of adds per
            // object as the row kernel — bit-identical decisions — and
            // parallelizes over the same disjoint chunks.
            let candidates: Vec<AssignCandidate<'_>> = frozen
                .iter()
                .zip(&rows)
                .map(|(cl, row)| AssignCandidate {
                    rep: &cl.rep,
                    dims: &cl.dims,
                    threshold_row: row,
                })
                .collect();
            let candidates = &candidates;
            parallel::for_each_chunk_mut_with(assignment, Vec::new, |offset, chunk, gains| {
                let mut start = 0;
                while start < chunk.len() {
                    let block_len = (chunk.len() - start).min(ASSIGN_BLOCK);
                    let block_start = offset + start;
                    assignment_gains_transposed(dataset, block_start, block_len, candidates, gains);
                    for i in 0..block_len {
                        if pinned_ref[block_start + i] {
                            continue;
                        }
                        chunk[start + i] = assignment_argmax(gains, block_len, i).map(ClusterId);
                    }
                    start += block_len;
                }
            });
        } else {
            parallel::for_each_chunk_mut(assignment, |offset, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let o = sspc_common::ObjectId(offset + i);
                    if pinned_ref[o.index()] {
                        continue;
                    }
                    let row = dataset.row(o);
                    let mut best_gain = 0.0f64;
                    let mut best_cluster: Option<usize> = None;
                    for (c, cl) in frozen.iter().enumerate() {
                        let gain = assignment_gain_row(row, &cl.rep, &cl.dims, &rows[c]);
                        if gain > best_gain {
                            best_gain = gain;
                            best_cluster = Some(c);
                        }
                    }
                    *slot = best_cluster.map(ClusterId);
                }
            });
        }
        for o in dataset.object_ids() {
            if pinned[o.index()] {
                continue;
            }
            if let Some(c) = assignment[o.index()] {
                clusters[c.index()].members.push(o);
            }
        }
    }

    /// Step 6's diagnosis: the bad cluster is (in priority order) an empty
    /// cluster, the loser of a pair of near-duplicate clusters, or the
    /// cluster with the lowest φᵢ score. Near-duplicates arise when two
    /// medoids come from the same real cluster (Sec. 4.3): their selected
    /// subspaces overlap and their representatives are close within the
    /// shared dimensions.
    fn find_bad_cluster(
        &self,
        _dataset: &Dataset,
        clusters: &[ClusterState],
        thresholds: &Thresholds,
    ) -> usize {
        if let Some(i) = clusters.iter().position(|c| c.members.is_empty()) {
            return i;
        }
        // Near-duplicate detection.
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                if let Some(loser) = self.duplicate_loser(&clusters[i], &clusters[j], thresholds) {
                    return if loser == 0 { i } else { j };
                }
            }
        }
        // Lowest score.
        clusters
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.score.partial_cmp(&b.score).expect("finite scores"))
            .map(|(i, _)| i)
            .expect("k >= 1")
    }

    /// If `a` and `b` look like the same real cluster, returns which of the
    /// two (0 or 1) has the lower score; `None` otherwise. "Same" means
    /// their selected subspaces overlap by more than half (of the smaller)
    /// and their representatives sit within an average of one threshold
    /// unit per shared dimension.
    fn duplicate_loser(
        &self,
        a: &ClusterState,
        b: &ClusterState,
        thresholds: &Thresholds,
    ) -> Option<usize> {
        if a.dims.is_empty() || b.dims.is_empty() {
            return None;
        }
        let shared: Vec<_> = a.dims.iter().filter(|j| b.dims.contains(j)).collect();
        if shared.len() * 2 <= a.dims.len().min(b.dims.len()) {
            return None;
        }
        let mut normalized = 0.0;
        let t_row = thresholds.row(a.ref_size.min(b.ref_size));
        for &&j in &shared {
            let t = t_row[j.index()].max(f64::MIN_POSITIVE);
            let diff = a.rep[j.index()] - b.rep[j.index()];
            normalized += diff * diff / t;
        }
        if normalized / shared.len() as f64 >= 1.0 {
            return None;
        }
        Some(if a.score <= b.score { 0 } else { 1 })
    }

    /// Draws a fresh medoid for a bad cluster. Private clusters redraw from
    /// their own group; public-sourced clusters release their group and
    /// claim a random unclaimed one. The group's estimated dimensions
    /// replace the cluster's selected dimensions.
    fn redraw_medoid(
        &self,
        dataset: &Dataset,
        cluster: &mut ClusterState,
        groups: &SeedGroups,
        public_in_use: &mut [bool],
        rng: &mut StdRng,
    ) {
        let group = match cluster.source {
            SeedSource::Private(class) => groups.private[class.index()]
                .as_ref()
                .expect("private source implies a private group"),
            SeedSource::Public(current) => {
                public_in_use[current] = false;
                let free: Vec<usize> = (0..groups.public.len())
                    .filter(|&g| !public_in_use[g])
                    .collect();
                let g_idx = free[rng.gen_range(0..free.len())];
                public_in_use[g_idx] = true;
                cluster.source = SeedSource::Public(g_idx);
                &groups.public[g_idx]
            }
        };
        let medoid = draw_seed(group, rng);
        cluster.rep.clear();
        cluster.rep.extend_from_slice(dataset.row(medoid));
        cluster.dims.clone_from(&group.dims);
        cluster.score = 0.0;
        // `dims`/`score` no longer come from a fit of any member list;
        // invalidate the refit memoization and the median cache.
        cluster.medians.clear();
        cluster.fitted_members.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThresholdScheme;

    /// 40 objects × 8 dims: class 0 = objects 0..20 compact on dims 0,1;
    /// class 1 = objects 20..40 compact on dims 2,3. Other entries spread
    /// uniformly over [0, 100].
    fn planted() -> (Dataset, Vec<ClusterId>) {
        let mut rng = seeded_rng(777);
        let n = 40;
        let d = 8;
        let mut values = vec![0.0; n * d];
        for v in values.iter_mut() {
            *v = rng.gen_range(0.0..100.0);
        }
        for o in 0..20 {
            values[o * d] = 25.0 + rng.gen_range(-1.5..1.5);
            values[o * d + 1] = 60.0 + rng.gen_range(-1.5..1.5);
        }
        for o in 20..40 {
            values[o * d + 2] = 80.0 + rng.gen_range(-1.5..1.5);
            values[o * d + 3] = 15.0 + rng.gen_range(-1.5..1.5);
        }
        let truth = (0..n).map(|o| ClusterId(usize::from(o >= 20))).collect();
        (Dataset::from_rows(n, d, values).unwrap(), truth)
    }

    fn accuracy(result: &SspcResult, truth: &[ClusterId]) -> f64 {
        // Fraction of pairs the clustering gets right (same/different).
        let n = truth.len();
        let mut correct = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                total += 1;
                let same_truth = truth[i] == truth[j];
                let same_result = result.cluster_of(ObjectId(i)).is_some()
                    && result.cluster_of(ObjectId(i)) == result.cluster_of(ObjectId(j));
                if same_truth == same_result {
                    correct += 1;
                }
            }
        }
        correct as f64 / total as f64
    }

    fn default_params() -> SspcParams {
        SspcParams::new(2)
            .with_threshold(ThresholdScheme::MFraction(0.5))
            .with_grid(2, 5)
    }

    #[test]
    fn recovers_planted_clusters_unsupervised() {
        let (ds, truth) = planted();
        let sspc = Sspc::new(default_params()).unwrap();
        // Best-of-3 over seeds by objective, the paper's protocol in miniature.
        let best = (0..3)
            .map(|s| sspc.run(&ds, &Supervision::none(), s).unwrap())
            .max_by(|a, b| a.objective().partial_cmp(&b.objective()).unwrap())
            .unwrap();
        let acc = accuracy(&best, &truth);
        assert!(acc > 0.9, "pairwise accuracy {acc} too low");
    }

    #[test]
    fn selected_dims_match_planted_subspaces() {
        let (ds, _) = planted();
        let sspc = Sspc::new(default_params()).unwrap();
        let best = (0..3)
            .map(|s| sspc.run(&ds, &Supervision::none(), s).unwrap())
            .max_by(|a, b| a.objective().partial_cmp(&b.objective()).unwrap())
            .unwrap();
        // Each cluster's selected dims should be a planted pair.
        let mut found_01 = false;
        let mut found_23 = false;
        for c in 0..2 {
            let dims = best.selected_dims(ClusterId(c));
            if dims.contains(&sspc_common::DimId(0)) && dims.contains(&sspc_common::DimId(1)) {
                found_01 = true;
            }
            if dims.contains(&sspc_common::DimId(2)) && dims.contains(&sspc_common::DimId(3)) {
                found_23 = true;
            }
        }
        assert!(
            found_01 && found_23,
            "planted subspaces not recovered: {:?}",
            best.all_selected_dims()
        );
    }

    #[test]
    fn supervision_pins_labeled_objects() {
        let (ds, _) = planted();
        let sup = Supervision::none()
            .label_object(ObjectId(0), ClusterId(0))
            .label_object(ObjectId(1), ClusterId(0))
            .label_object(ObjectId(20), ClusterId(1))
            .label_object(ObjectId(21), ClusterId(1));
        let sspc = Sspc::new(default_params()).unwrap();
        let result = sspc.run(&ds, &sup, 5).unwrap();
        assert_eq!(result.cluster_of(ObjectId(0)), Some(ClusterId(0)));
        assert_eq!(result.cluster_of(ObjectId(1)), Some(ClusterId(0)));
        assert_eq!(result.cluster_of(ObjectId(20)), Some(ClusterId(1)));
        assert_eq!(result.cluster_of(ObjectId(21)), Some(ClusterId(1)));
    }

    #[test]
    fn supervision_aligns_cluster_ids_with_classes() {
        let (ds, truth) = planted();
        let sup = Supervision::none()
            .label_object(ObjectId(0), ClusterId(0))
            .label_object(ObjectId(1), ClusterId(0))
            .label_object(ObjectId(2), ClusterId(0))
            .label_object(ObjectId(20), ClusterId(1))
            .label_object(ObjectId(21), ClusterId(1))
            .label_object(ObjectId(22), ClusterId(1));
        let sspc = Sspc::new(default_params()).unwrap();
        let result = sspc.run(&ds, &sup, 6).unwrap();
        // With supervision the cluster indices are meaningful: count direct
        // label agreement on unlabeled objects.
        let hits = (0..40)
            .filter(|&o| result.cluster_of(ObjectId(o)) == Some(truth[o]))
            .count();
        assert!(hits >= 32, "only {hits}/40 objects labeled correctly");
    }

    #[test]
    fn deterministic_in_seed() {
        let (ds, _) = planted();
        let sspc = Sspc::new(default_params()).unwrap();
        let a = sspc.run(&ds, &Supervision::none(), 11).unwrap();
        let b = sspc.run(&ds, &Supervision::none(), 11).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_tiny_datasets() {
        let ds = Dataset::from_rows(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let sspc = Sspc::new(default_params()).unwrap();
        assert!(matches!(
            sspc.run(&ds, &Supervision::none(), 0),
            Err(Error::InvalidShape(_))
        ));
    }

    #[test]
    fn rejects_invalid_supervision() {
        let (ds, _) = planted();
        let sspc = Sspc::new(default_params()).unwrap();
        let sup = Supervision::none().label_object(ObjectId(999), ClusterId(0));
        assert!(sspc.run(&ds, &sup, 0).is_err());
    }

    #[test]
    fn iterations_respect_hard_cap() {
        let (ds, _) = planted();
        let params = default_params().with_termination(100, 4);
        let sspc = Sspc::new(params).unwrap();
        let result = sspc.run(&ds, &Supervision::none(), 1).unwrap();
        assert!(result.iterations() <= 4);
    }

    #[test]
    fn objective_is_positive_for_structured_data() {
        let (ds, _) = planted();
        let sspc = Sspc::new(default_params()).unwrap();
        let result = sspc.run(&ds, &Supervision::none(), 2).unwrap();
        assert!(result.objective() > 0.0);
    }

    use rand::Rng;
    use sspc_common::rng::seeded_rng;
    use sspc_common::ObjectId;
}
