use sspc_common::stats::ChiSquared;
use sspc_common::{Dataset, DimId, Error, Result};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// The two schemes from paper Sec. 4.1 for setting the selection threshold
/// `ŝ²ᵢⱼ` — the variance level below which a dimension counts as relevant
/// to a cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdScheme {
    /// `ŝ²ᵢⱼ = m · s²ⱼ` for a user parameter `m ∈ (0, 1]`. Generic: makes
    /// no assumption about the global population. Smaller `m` tightens the
    /// selection criterion.
    MFraction(f64),
    /// Probabilistic scheme: the user bounds by `p ∈ (0, 1)` the chance
    /// that a dimension **irrelevant** to a cluster is selected. Assuming
    /// Gaussian global populations, `(nᵢ−1)·s²ᵢⱼ/σ²ⱼ ~ χ²(nᵢ−1)`, so
    ///
    /// ```text
    /// ŝ²ᵢⱼ = s²ⱼ · χ²⁻¹(p; nᵢ−1) / (nᵢ−1)
    /// ```
    ///
    /// The threshold now depends on the cluster size `nᵢ`, so it adapts:
    /// small clusters (whose sample variances scatter widely) get stricter
    /// thresholds for the same `p`.
    PValue(f64),
}

impl ThresholdScheme {
    /// Validates the scheme's parameter domain.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for `m ∉ (0, 1]` or `p ∉ (0, 1)`.
    pub fn validate(&self) -> Result<()> {
        match *self {
            ThresholdScheme::MFraction(m) => {
                if !(m > 0.0 && m <= 1.0) {
                    return Err(Error::InvalidParameter(format!(
                        "m must be in (0, 1], got {m}"
                    )));
                }
            }
            ThresholdScheme::PValue(p) => {
                if !(p > 0.0 && p < 1.0) {
                    return Err(Error::InvalidParameter(format!(
                        "p must be in (0, 1), got {p}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Precomputed threshold provider for one dataset.
///
/// Caches the global variances `s²ⱼ` and memoizes whole **threshold rows**
/// — the vector `[ŝ²ᵢ₀, …, ŝ²ᵢ(d−1)]` for one cluster size — because the
/// hot loop (assignment gains, `SelectDim`, cluster scoring) reads
/// thresholds for every dimension at a handful of reference sizes that
/// repeat across iterations. For the `m`-scheme there is exactly one row
/// (size-independent), built at construction; for the `p`-scheme rows are
/// built on demand, one chi-square quantile per distinct cluster size.
///
/// Rows are shared as `Arc<[f64]>` behind an `RwLock`, so a `Thresholds`
/// can be read from the parallel assignment and refit phases (`Sync`)
/// **without serializing the readers**: a memoized row costs one shared
/// read lock (uncontended even when every worker fetches rows
/// concurrently) plus one `Arc` clone; only the first computation of a row
/// for a new cluster size takes the write lock.
#[derive(Debug)]
pub struct Thresholds {
    scheme: ThresholdScheme,
    global_var: Vec<f64>,
    /// The single size-independent row for the `m`-scheme (`None` for the
    /// `p`-scheme).
    m_row: Option<Arc<[f64]>>,
    /// Memoized `p`-scheme rows keyed by clamped cluster size.
    rows: RwLock<HashMap<usize, Arc<[f64]>>>,
}

impl Clone for Thresholds {
    fn clone(&self) -> Self {
        Thresholds {
            scheme: self.scheme,
            global_var: self.global_var.clone(),
            m_row: self.m_row.clone(),
            rows: RwLock::new(self.rows.read().expect("threshold cache poisoned").clone()),
        }
    }
}

impl Thresholds {
    /// Builds the provider for a dataset.
    ///
    /// # Errors
    ///
    /// Propagates [`ThresholdScheme::validate`] failures.
    pub fn new(scheme: ThresholdScheme, dataset: &Dataset) -> Result<Self> {
        scheme.validate()?;
        let global_var: Vec<f64> = dataset
            .dim_ids()
            .map(|j| dataset.global_variance(j))
            .collect();
        let m_row = match scheme {
            ThresholdScheme::MFraction(m) => Some(global_var.iter().map(|&s2j| m * s2j).collect()),
            ThresholdScheme::PValue(_) => None,
        };
        Ok(Thresholds {
            scheme,
            global_var,
            m_row,
            rows: RwLock::new(HashMap::new()),
        })
    }

    /// The scheme in force.
    pub fn scheme(&self) -> ThresholdScheme {
        self.scheme
    }

    /// The full threshold row `[ŝ²ᵢ₀, …, ŝ²ᵢ(d−1)]` for a cluster of
    /// `cluster_size` objects: `row(s)[j.index()] == threshold(s, j)`.
    ///
    /// Memoized per cluster size; the hot loop fetches one row per cluster
    /// per iteration and then indexes it with no locking.
    pub fn row(&self, cluster_size: usize) -> Arc<[f64]> {
        if let Some(row) = &self.m_row {
            return Arc::clone(row);
        }
        let ThresholdScheme::PValue(p) = self.scheme else {
            unreachable!("m-scheme always has m_row");
        };
        let size = cluster_size.max(2);
        // Hot path: a shared read lock — parallel workers never serialize
        // on memoized rows.
        if let Some(row) = self
            .rows
            .read()
            .expect("threshold cache poisoned")
            .get(&size)
        {
            return Arc::clone(row);
        }
        // Miss: compute the quantile outside any lock, then publish under
        // the write lock (keeping whichever row won a computation race, so
        // shared `Arc`s stay unique per size).
        let factor = chi_factor(size, p);
        let fresh: Arc<[f64]> = self.global_var.iter().map(|&s2j| s2j * factor).collect();
        let mut rows = self.rows.write().expect("threshold cache poisoned");
        Arc::clone(rows.entry(size).or_insert(fresh))
    }

    /// The selection threshold `ŝ²ᵢⱼ` for a cluster of `cluster_size`
    /// objects on dimension `j`.
    ///
    /// For the `m`-scheme the size is ignored. For the `p`-scheme,
    /// `cluster_size < 2` falls back to the factor at size 2 (one degree of
    /// freedom) — the strictest well-defined setting.
    ///
    /// One row fetch per call; fetch [`Thresholds::row`] once when reading
    /// many dimensions at the same size.
    pub fn threshold(&self, cluster_size: usize, j: DimId) -> f64 {
        self.row(cluster_size)[j.index()]
    }
}

/// The `p`-scheme factor `χ²⁻¹(p; n−1)/(n−1)` for one cluster size.
fn chi_factor(size: usize, p: f64) -> f64 {
    let dof = (size - 1) as f64;
    // ChiSquared::new / quantile can only fail on invalid parameters,
    // which `validate` has excluded; fall back to the m=1 behaviour on
    // a numeric failure rather than aborting a long experiment.
    ChiSquared::new(dof)
        .and_then(|chi| chi.quantile(p))
        .map(|q| q / dof)
        .unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sspc_common::Dataset;

    fn dataset() -> Dataset {
        // dim 0 variance: values 0,2,4,6 → var = 20/3; dim 1 constant.
        Dataset::from_rows(4, 2, vec![0.0, 5.0, 2.0, 5.0, 4.0, 5.0, 6.0, 5.0]).unwrap()
    }

    #[test]
    fn m_scheme_scales_global_variance() {
        let ds = dataset();
        let th = Thresholds::new(ThresholdScheme::MFraction(0.5), &ds).unwrap();
        let s2 = ds.global_variance(DimId(0));
        assert!((th.threshold(10, DimId(0)) - 0.5 * s2).abs() < 1e-12);
        // Cluster size must not matter for the m-scheme.
        assert_eq!(th.threshold(2, DimId(0)), th.threshold(100, DimId(0)));
        // Constant dimension → zero threshold.
        assert_eq!(th.threshold(10, DimId(1)), 0.0);
    }

    #[test]
    fn p_scheme_threshold_is_below_global_variance_for_small_p() {
        let ds = dataset();
        let th = Thresholds::new(ThresholdScheme::PValue(0.01), &ds).unwrap();
        let s2 = ds.global_variance(DimId(0));
        for size in [3, 10, 50] {
            let t = th.threshold(size, DimId(0));
            assert!(t > 0.0 && t < s2, "size {size}: threshold {t} vs s² {s2}");
        }
    }

    #[test]
    fn p_scheme_threshold_grows_with_cluster_size() {
        // χ²(ν)/ν concentrates around 1 as ν grows, so for fixed small p the
        // factor increases towards 1 with cluster size.
        let ds = dataset();
        let th = Thresholds::new(ThresholdScheme::PValue(0.05), &ds).unwrap();
        let t_small = th.threshold(3, DimId(0));
        let t_big = th.threshold(200, DimId(0));
        assert!(t_big > t_small);
    }

    #[test]
    fn p_scheme_memoization_is_consistent() {
        let ds = dataset();
        let th = Thresholds::new(ThresholdScheme::PValue(0.1), &ds).unwrap();
        let first = th.threshold(17, DimId(0));
        let second = th.threshold(17, DimId(0));
        assert_eq!(first, second);
    }

    #[test]
    fn tiny_clusters_fall_back_to_dof_one() {
        let ds = dataset();
        let th = Thresholds::new(ThresholdScheme::PValue(0.05), &ds).unwrap();
        assert_eq!(th.threshold(0, DimId(0)), th.threshold(2, DimId(0)));
        assert_eq!(th.threshold(1, DimId(0)), th.threshold(2, DimId(0)));
    }

    #[test]
    fn rows_agree_with_scalar_lookups() {
        let ds = dataset();
        for scheme in [
            ThresholdScheme::MFraction(0.4),
            ThresholdScheme::PValue(0.05),
        ] {
            let th = Thresholds::new(scheme, &ds).unwrap();
            for size in [2, 5, 40] {
                let row = th.row(size);
                assert_eq!(row.len(), ds.n_dims());
                for j in ds.dim_ids() {
                    assert_eq!(row[j.index()], th.threshold(size, j));
                }
            }
        }
    }

    #[test]
    fn p_scheme_rows_are_memoized_and_shared() {
        let ds = dataset();
        let th = Thresholds::new(ThresholdScheme::PValue(0.1), &ds).unwrap();
        let a = th.row(17);
        let b = th.row(17);
        assert!(std::sync::Arc::ptr_eq(&a, &b), "same size must share a row");
        // A clone carries the memoized rows along.
        let cloned = th.clone();
        assert_eq!(&*cloned.row(17), &*a);
    }

    #[test]
    fn thresholds_are_usable_across_threads() {
        let ds = dataset();
        let th = Thresholds::new(ThresholdScheme::PValue(0.05), &ds).unwrap();
        let reference = th.threshold(7, DimId(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    assert_eq!(th.threshold(7, DimId(0)), reference);
                });
            }
        });
    }

    #[test]
    fn concurrent_row_misses_converge_to_one_shared_row() {
        // Several threads racing the first computation of the same row must
        // all end up sharing a single allocation (the publish step keeps
        // whichever row won).
        let ds = dataset();
        let th = Thresholds::new(ThresholdScheme::PValue(0.07), &ds).unwrap();
        let rows: Vec<std::sync::Arc<[f64]>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8).map(|_| scope.spawn(|| th.row(23))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &rows[1..] {
            assert!(
                std::sync::Arc::ptr_eq(&rows[0], r),
                "racing fetches must share one row"
            );
        }
        assert!(std::sync::Arc::ptr_eq(&rows[0], &th.row(23)));
    }

    #[test]
    fn rejects_bad_parameters() {
        let ds = dataset();
        assert!(Thresholds::new(ThresholdScheme::MFraction(0.0), &ds).is_err());
        assert!(Thresholds::new(ThresholdScheme::MFraction(1.5), &ds).is_err());
        assert!(Thresholds::new(ThresholdScheme::PValue(0.0), &ds).is_err());
        assert!(Thresholds::new(ThresholdScheme::PValue(1.0), &ds).is_err());
        assert!(ThresholdScheme::MFraction(1.0).validate().is_ok());
    }
}
