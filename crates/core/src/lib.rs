//! SSPC — Semi-Supervised Projected Clustering.
//!
//! A faithful reproduction of *"On Discovery of Extremely Low-Dimensional
//! Clusters using Semi-Supervised Projected Clustering"* (Yip, Cheung & Ng,
//! ICDE 2005).
//!
//! # What SSPC does
//!
//! A **projected cluster** is a set of objects together with a set of
//! *relevant dimensions* such that the members are close to each other in
//! the subspace those dimensions span, but not elsewhere. In
//! high-dimensional data (gene-expression matrices are the motivating
//! example) the relevant dimensions can be fewer than 5 % — even 1 % — of
//! all dimensions, which defeats both full-space clustering algorithms and
//! earlier projected-clustering algorithms whose dimension selection relies
//! on full-space distances.
//!
//! SSPC contributes:
//!
//! 1. A robust objective function ([`objective`]) that folds dimension
//!    selection into a single maximization and normalizes each dimension's
//!    contribution by a per-(cluster, dimension) *selection threshold*
//!    ([`ThresholdScheme`]) instead of by the number of selected dimensions.
//! 2. Optional **semi-supervision** ([`Supervision`]): labeled objects
//!    ("these samples belong to class 2") and labeled dimensions ("this
//!    gene is relevant to class 2") guide the construction of seed groups,
//!    from which cluster medoids are drawn.
//! 3. A k-medoid-style iterative algorithm ([`Sspc`]) with an outlier list,
//!    best-state bookkeeping, and bad-cluster medoid replacement.
//!
//! # Quick start
//!
//! Build parameters with the builder API, finish into an [`Sspc`]
//! clusterer, and run it through the workspace-wide
//! [`ProjectedClusterer`] trait — every algorithm in the workspace
//! (`sspc-baselines`, the `sspc-api` registry) speaks the same contract
//! and returns the same canonical [`Clustering`] result:
//!
//! ```
//! use sspc::{ProjectedClusterer, Sspc, SspcParams, Supervision, ThresholdScheme};
//! use sspc_common::Dataset;
//!
//! // Six objects in 4-D: two clusters, each compact in two dimensions.
//! let dataset = Dataset::from_rows(6, 4, vec![
//!     1.0, 1.1, 50.0, 90.0,
//!     1.1, 0.9, 10.0, 30.0,
//!     0.9, 1.0, 80.0, 60.0,
//!     9.0, 9.1, 20.0, 70.0,
//!     9.1, 8.9, 60.0, 20.0,
//!     8.9, 9.0, 40.0, 50.0,
//! ]).unwrap();
//!
//! let clusterer = Sspc::new(
//!     SspcParams::new(2).with_threshold(ThresholdScheme::MFraction(0.5)),
//! ).unwrap();
//! let clustering = clusterer
//!     .cluster(&dataset, &Supervision::none(), 7)
//!     .unwrap();
//! assert_eq!(clustering.algorithm(), "sspc");
//! assert_eq!(clustering.n_clusters(), 2);
//! ```
//!
//! [`Sspc::run`] remains available for the richer [`SspcResult`]
//! (per-cluster φᵢ scores *and* representative points).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod algorithm;
mod cluster;
pub mod fuzzy;
mod grid;
pub mod objective;
mod params;
mod result;
mod seeds;
mod threshold;
pub mod validation;

pub use algorithm::{PhaseTimings, Sspc};
pub use fuzzy::FuzzySupervision;
pub use params::SspcParams;
pub use result::SspcResult;
// The supervision input type and the unified clustering contract live in
// `sspc_common::clusterer`; re-exported here so `sspc::Supervision` (and
// friends) remain the natural paths for core users.
pub use sspc_common::{Clustering, ObjectiveSense, ProjectedClusterer, Supervision};
pub use threshold::{ThresholdScheme, Thresholds};
