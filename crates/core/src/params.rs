use crate::ThresholdScheme;
use sspc_common::{Error, Result};

/// Tunable parameters of [`crate::Sspc`].
///
/// Only `k` (the target number of clusters) and the [`ThresholdScheme`]
/// correspond to user-facing knobs in the paper; the paper stresses that the
/// threshold parameter is *not critical* (Sec. 4.1 recommends
/// `0.3 ≤ m ≤ 0.7` or `0.01 ≤ p ≤ 0.2`). Everything else is an internal
/// constant of the published algorithm, defaulted to the values the paper
/// uses (`c = 3` grid-building dimensions, `g = 20` grids per seed group)
/// and exposed for the ablation studies in the bench crate.
#[derive(Debug, Clone, PartialEq)]
pub struct SspcParams {
    /// Target number of clusters `k`.
    pub k: usize,
    /// Selection-threshold scheme for `ŝ²ᵢⱼ` (paper Sec. 4.1).
    pub threshold: ThresholdScheme,
    /// Number of dimensions used to build each grid (`c` in the paper;
    /// "normally a three-dimensional grid serves the purpose quite well").
    pub grid_dims: usize,
    /// Number of grids built per seed group (`g` in the paper's analysis;
    /// 20 in the Sec. 4.5 figures).
    pub grids_per_group: usize,
    /// Histogram bins per grid dimension. The paper leaves the cell size
    /// unspecified; 5 bins per dimension keeps expected cell occupancy
    /// sensible for the paper's dataset sizes.
    pub bins_per_dim: usize,
    /// Number of *public* seed groups shared by clusters without input
    /// knowledge. `None` (default) means `2k`, mirroring the "some large
    /// number" of the paper while bounding initialization cost.
    pub public_groups: Option<usize>,
    /// Terminate after this many consecutive iterations without an
    /// improvement of the best objective score.
    pub max_stall: usize,
    /// Hard cap on iterations, as a defense against pathological cycling.
    pub max_iterations: usize,
    /// If true (default), each labeled object is pre-assigned to its
    /// class's cluster before the free assignment pass. The paper uses
    /// labels for initialization only; pinning additionally keeps the
    /// labeled objects from migrating, which matches the semantics of a
    /// hard label. The ablation bench flips this off.
    pub pin_labeled_objects: bool,
    /// Minimum number of seeds a seed group should contain; peak cells with
    /// fewer objects are widened by absorbing neighboring cells.
    pub min_seeds: usize,
    /// Maximum number of seeds kept per group (the first `max_seeds` found,
    /// center cell first). Peak cells grow linearly with `n`, and unbounded
    /// seed lists would make the max-min anchor scan quadratic in `n` —
    /// the cap preserves the paper's O(knd) complexity claim (Sec. 4.4).
    pub max_seeds: usize,
    /// If true (default, the published behaviour), non-bad clusters replace
    /// their representative by the member-wise median each iteration
    /// (Sec. 4.3). `false` keeps the previous representative — an ablation
    /// knob for quantifying what the median replacement buys.
    pub median_representatives: bool,
    /// If true (default, the published behaviour), seed-group search
    /// hill-climbs from its starting cell. `false` uses the starting cell
    /// as-is — an ablation knob for the localized search of Sec. 4.2.1.
    pub hill_climbing: bool,
    /// If true (default), the fast path maintains per-(cluster, dimension)
    /// order-statistics structures and incremental moment accumulators,
    /// updating them from the per-iteration assignment delta instead of
    /// refitting every cluster from scratch (see PERFORMANCE.md,
    /// "Incremental refits"). Results are identical either way — `false`
    /// forces the batch refit path, kept as the A/B baseline for
    /// `benches/hotloop.rs` and the equivalence tests.
    pub incremental: bool,
    /// Threshold scheme used during **seed-group construction** (the
    /// `SelectDim(Cᵢ′)` candidate filter and the seed groups' estimated
    /// dimensions). `Some(p)` uses the probabilistic scheme with that bound
    /// — the default `Some(0.01)` matches the value the paper's Sec. 4.5
    /// analysis (Fig. 1) is computed with. `None` reuses the run's
    /// [`SspcParams::threshold`].
    ///
    /// Why this exists: with the `m`-scheme, a temporary cluster of 5
    /// labeled objects lets ~15 % of irrelevant dimensions through by
    /// chance (the sample variance of 5 points scatters widely), flooding
    /// the grid-candidate set; the `p`-scheme's chi-square threshold adapts
    /// to the tiny sample and keeps the false-candidate rate at `p`. This
    /// is exactly the regime the paper's own analysis assumes.
    pub init_p: Option<f64>,
}

impl SspcParams {
    /// Parameters with the paper's defaults for a given `k`
    /// (threshold `m = 0.5`).
    pub fn new(k: usize) -> Self {
        SspcParams {
            k,
            threshold: ThresholdScheme::MFraction(0.5),
            grid_dims: 3,
            grids_per_group: 20,
            bins_per_dim: 5,
            public_groups: None,
            max_stall: 5,
            max_iterations: 60,
            pin_labeled_objects: true,
            min_seeds: 3,
            max_seeds: 32,
            median_representatives: true,
            hill_climbing: true,
            incremental: true,
            init_p: Some(0.01),
        }
    }

    /// Enables or disables the delta-driven incremental refit engine
    /// (default `true`; `false` forces batch refits — the PR-1 fast path —
    /// for A/B benchmarking). Either setting produces identical results.
    pub fn with_incremental(mut self, enabled: bool) -> Self {
        self.incremental = enabled;
        self
    }

    /// Sets the seed-group construction threshold: `Some(p)` for the
    /// probabilistic scheme (default `Some(0.01)`), `None` to reuse the
    /// run's threshold scheme.
    pub fn with_init_p(mut self, init_p: Option<f64>) -> Self {
        self.init_p = init_p;
        self
    }

    /// Enables or disables the median-representative replacement
    /// (ablation knob; the paper's algorithm uses `true`).
    pub fn with_median_representatives(mut self, enabled: bool) -> Self {
        self.median_representatives = enabled;
        self
    }

    /// Enables or disables localized hill-climbing during seed-group search
    /// (ablation knob; the paper's algorithm uses `true`).
    pub fn with_hill_climbing(mut self, enabled: bool) -> Self {
        self.hill_climbing = enabled;
        self
    }

    /// Replaces the threshold scheme.
    pub fn with_threshold(mut self, threshold: ThresholdScheme) -> Self {
        self.threshold = threshold;
        self
    }

    /// Replaces the grid shape (`c` building dimensions, bins per
    /// dimension).
    pub fn with_grid(mut self, grid_dims: usize, bins_per_dim: usize) -> Self {
        self.grid_dims = grid_dims;
        self.bins_per_dim = bins_per_dim;
        self
    }

    /// Replaces the number of grids built per seed group.
    pub fn with_grids_per_group(mut self, g: usize) -> Self {
        self.grids_per_group = g;
        self
    }

    /// Replaces the number of public seed groups.
    pub fn with_public_groups(mut self, groups: usize) -> Self {
        self.public_groups = Some(groups);
        self
    }

    /// Replaces the termination controls.
    pub fn with_termination(mut self, max_stall: usize, max_iterations: usize) -> Self {
        self.max_stall = max_stall;
        self.max_iterations = max_iterations;
        self
    }

    /// Enables or disables pinning of labeled objects.
    pub fn with_pinning(mut self, pin: bool) -> Self {
        self.pin_labeled_objects = pin;
        self
    }

    /// Effective number of public seed groups.
    pub fn effective_public_groups(&self) -> usize {
        self.public_groups.unwrap_or(2 * self.k).max(1)
    }

    /// Validates the parameters against their documented domains.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on any violation.
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(Error::InvalidParameter("k must be positive".into()));
        }
        self.threshold.validate()?;
        if self.grid_dims == 0 {
            return Err(Error::InvalidParameter("grid_dims must be positive".into()));
        }
        if self.grids_per_group == 0 {
            return Err(Error::InvalidParameter(
                "grids_per_group must be positive".into(),
            ));
        }
        if self.bins_per_dim < 2 {
            return Err(Error::InvalidParameter(
                "bins_per_dim must be at least 2".into(),
            ));
        }
        if self.bins_per_dim > u16::MAX as usize + 1 {
            // Bound chosen so the initializer's per-dimension bin cache can
            // store indices in u16; no meaningful histogram needs more.
            return Err(Error::InvalidParameter(format!(
                "bins_per_dim must be at most 65536, got {}",
                self.bins_per_dim
            )));
        }
        if self.max_stall == 0 || self.max_iterations == 0 {
            return Err(Error::InvalidParameter(
                "max_stall and max_iterations must be positive".into(),
            ));
        }
        if self.min_seeds == 0 {
            return Err(Error::InvalidParameter("min_seeds must be positive".into()));
        }
        if self.max_seeds < self.min_seeds {
            return Err(Error::InvalidParameter(format!(
                "max_seeds ({}) must be at least min_seeds ({})",
                self.max_seeds, self.min_seeds
            )));
        }
        if let Some(p) = self.init_p {
            if !(p > 0.0 && p < 1.0) {
                return Err(Error::InvalidParameter(format!(
                    "init_p must be in (0, 1), got {p}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_match_paper() {
        let p = SspcParams::new(5);
        p.validate().unwrap();
        assert_eq!(p.grid_dims, 3);
        assert_eq!(p.grids_per_group, 20);
        assert_eq!(p.effective_public_groups(), 10);
    }

    #[test]
    fn builder_methods_compose() {
        let p = SspcParams::new(3)
            .with_threshold(ThresholdScheme::PValue(0.05))
            .with_grid(2, 8)
            .with_grids_per_group(10)
            .with_public_groups(7)
            .with_termination(2, 30)
            .with_pinning(false);
        p.validate().unwrap();
        assert_eq!(p.threshold, ThresholdScheme::PValue(0.05));
        assert_eq!(p.grid_dims, 2);
        assert_eq!(p.bins_per_dim, 8);
        assert_eq!(p.grids_per_group, 10);
        assert_eq!(p.effective_public_groups(), 7);
        assert_eq!(p.max_stall, 2);
        assert!(!p.pin_labeled_objects);
    }

    #[test]
    fn rejects_out_of_domain_values() {
        assert!(SspcParams::new(0).validate().is_err());
        assert!(SspcParams::new(2).with_grid(0, 5).validate().is_err());
        assert!(SspcParams::new(2).with_grid(3, 1).validate().is_err());
        assert!(SspcParams::new(2)
            .with_grids_per_group(0)
            .validate()
            .is_err());
        assert!(SspcParams::new(2)
            .with_termination(0, 10)
            .validate()
            .is_err());
        assert!(SspcParams::new(2)
            .with_termination(3, 0)
            .validate()
            .is_err());
        let mut p = SspcParams::new(2);
        p.min_seeds = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn invalid_threshold_fails_validation() {
        let p = SspcParams::new(2).with_threshold(ThresholdScheme::MFraction(0.0));
        assert!(p.validate().is_err());
    }
}
