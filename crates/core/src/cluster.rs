//! Mutable per-cluster state carried across SSPC iterations.

use sspc_common::stats::{median_in_place, median_of};
use sspc_common::{ClusterId, Dataset, DimId, ObjectId};

/// Where a cluster's medoids come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SeedSource {
    /// The private seed group of this class.
    Private(ClusterId),
    /// The public seed group with this index is currently claimed.
    Public(usize),
}

/// One cluster's working state: representative point, selected dimensions,
/// members, and the score of the last evaluation.
#[derive(Debug)]
pub(crate) struct ClusterState {
    /// The cluster representative — a full-length point. Either an actual
    /// medoid's row or the member-wise median ("virtual object").
    pub rep: Vec<f64>,
    /// Selected dimensions, ascending.
    pub dims: Vec<DimId>,
    /// Current members (rebuilt every iteration).
    pub members: Vec<ObjectId>,
    /// The cluster score φᵢ from the last `SelectDim` + scoring pass.
    pub score: f64,
    /// Which seed group this cluster draws medoids from.
    pub source: SeedSource,
    /// Cluster size used for threshold lookups during assignment — the
    /// size from the previous iteration, or the expected size `n/k` before
    /// the first assignment.
    pub ref_size: usize,
    /// Per-dimension member medians cached by the last model fit (fast
    /// path only; empty when unknown). Valid exactly when
    /// `fitted_members == members` — the median-representative step then
    /// reuses them instead of re-gathering and re-selecting every
    /// dimension.
    pub medians: Vec<f64>,
    /// The member list `medians` / `dims` / `score` were last fitted
    /// against (fast path only; empty when never fitted). Lets the refit
    /// step skip clusters whose membership did not change — the fit is a
    /// pure function of the members.
    pub fitted_members: Vec<ObjectId>,
}

/// Manual `Clone` so that `clone_from` reuses the existing `rep` / `dims` /
/// `members` allocations — snapshot record/restore runs every iteration of
/// the main loop, and the derived `clone_from` would reallocate all three
/// vectors per cluster each time.
impl Clone for ClusterState {
    fn clone(&self) -> Self {
        ClusterState {
            rep: self.rep.clone(),
            dims: self.dims.clone(),
            members: self.members.clone(),
            score: self.score,
            source: self.source,
            ref_size: self.ref_size,
            medians: self.medians.clone(),
            fitted_members: self.fitted_members.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.rep.clone_from(&source.rep);
        self.dims.clone_from(&source.dims);
        self.members.clone_from(&source.members);
        self.score = source.score;
        self.source = source.source;
        self.ref_size = source.ref_size;
        self.medians.clone_from(&source.medians);
        self.fitted_members.clone_from(&source.fitted_members);
    }
}

impl ClusterState {
    /// Resets the fit-derived fields for an empty member set: zero score,
    /// no cached medians, no fitted member list. The selected dimensions
    /// are deliberately kept — the reference path leaves the last selection
    /// in place for empty clusters, and the bad-cluster redraw will replace
    /// them.
    pub fn reset_empty_fit(&mut self) {
        self.score = 0.0;
        self.medians.clear();
        self.fitted_members.clear();
    }

    /// Replaces the representative by the member-wise median (paper step 6:
    /// "the medoid of each other cluster is replaced by the cluster
    /// median"). No-op for empty clusters.
    ///
    /// Convenience wrapper over
    /// [`ClusterState::replace_rep_with_median_with`]; the main loop calls
    /// the scratch-reusing form directly.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn replace_rep_with_median(&mut self, dataset: &Dataset) {
        let mut scratch = Vec::new();
        self.replace_rep_with_median_with(dataset, &mut scratch, false);
    }

    /// [`ClusterState::replace_rep_with_median`] with a caller-owned gather
    /// buffer. `naive` selects the row-major gather (one strided read per
    /// member per dimension) over the columnar one; the resulting medians
    /// are identical either way — only the memory traffic differs.
    ///
    /// When the medians cached by the last fit are still valid
    /// (`fitted_members == members`, fast path), the representative is
    /// copied straight from the cache — the fit already selected the
    /// median of every dimension over exactly these members.
    pub fn replace_rep_with_median_with(
        &mut self,
        dataset: &Dataset,
        scratch: &mut Vec<f64>,
        naive: bool,
    ) {
        if self.members.is_empty() {
            return;
        }
        debug_assert_eq!(self.rep.len(), dataset.n_dims());
        if !naive && self.medians.len() == dataset.n_dims() && self.fitted_members == self.members {
            self.rep.copy_from_slice(&self.medians);
            return;
        }
        if naive {
            // The pre-optimization path, verbatim: a fresh gather
            // allocation per dimension, striding the row-major buffer.
            self.rep = dataset
                .dim_ids()
                .map(|j| {
                    median_of(self.members.iter().map(|&o| dataset.value(o, j)))
                        .expect("members is non-empty")
                })
                .collect();
            return;
        }
        scratch.resize(self.members.len(), 0.0);
        let buf = &mut scratch[..self.members.len()];
        for j in dataset.dim_ids() {
            let col = dataset.column_slice(j);
            for (slot, &o) in buf.iter_mut().zip(self.members.iter()) {
                *slot = col[o.index()];
            }
            self.rep[j.index()] = median_in_place(buf);
        }
    }

    /// Updates `ref_size` from the current member count, holding the
    /// previous value when the cluster came out empty.
    pub fn refresh_ref_size(&mut self) {
        if !self.members.is_empty() {
            self.ref_size = self.members.len();
        }
    }
}

/// An immutable snapshot of all clusters plus the assignment they imply —
/// what "record the clusters if they give the best objective score so far"
/// stores and "restore the best clusters otherwise" brings back.
#[derive(Debug, Clone)]
pub(crate) struct Snapshot {
    pub assignment: Vec<Option<ClusterId>>,
    pub clusters: Vec<ClusterState>,
    pub total_score: f64,
}

impl Snapshot {
    /// Overwrites this snapshot from the current working state, reusing the
    /// existing allocations (the per-iteration "record" step).
    pub fn record(
        &mut self,
        assignment: &[Option<ClusterId>],
        clusters: &[ClusterState],
        total_score: f64,
    ) {
        self.assignment.clear();
        self.assignment.extend_from_slice(assignment);
        clone_clusters_into(&mut self.clusters, clusters);
        self.total_score = total_score;
    }

    /// Copies the snapshot's clusters back into the working state in place
    /// (the per-iteration "restore" step).
    pub fn restore_clusters_into(&self, clusters: &mut Vec<ClusterState>) {
        clone_clusters_into(clusters, &self.clusters);
    }
}

/// Element-wise `clone_from` between cluster vectors, reusing every nested
/// allocation when lengths match (they always do — `k` is fixed per run).
fn clone_clusters_into(dst: &mut Vec<ClusterState>, src: &[ClusterState]) {
    dst.truncate(src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        d.clone_from(s);
    }
    for s in &src[dst.len()..] {
        dst.push(s.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sspc_common::Dataset;

    fn dataset() -> Dataset {
        Dataset::from_rows(
            4,
            2,
            vec![
                1.0, 10.0, //
                3.0, 20.0, //
                5.0, 30.0, //
                100.0, 40.0,
            ],
        )
        .unwrap()
    }

    fn state(members: &[usize]) -> ClusterState {
        ClusterState {
            rep: vec![0.0, 0.0],
            dims: vec![DimId(0)],
            members: members.iter().map(|&i| ObjectId(i)).collect(),
            score: 0.0,
            source: SeedSource::Public(0),
            ref_size: 2,
            medians: Vec::new(),
            fitted_members: Vec::new(),
        }
    }

    #[test]
    fn median_representative_uses_member_medians() {
        let ds = dataset();
        let mut st = state(&[0, 1, 2]);
        st.replace_rep_with_median(&ds);
        assert_eq!(st.rep, vec![3.0, 20.0]);
    }

    #[test]
    fn empty_cluster_keeps_representative() {
        let ds = dataset();
        let mut st = state(&[]);
        st.rep = vec![7.0, 8.0];
        st.replace_rep_with_median(&ds);
        assert_eq!(st.rep, vec![7.0, 8.0]);
    }

    #[test]
    fn median_replacement_matches_naive_gather() {
        let ds = dataset();
        let mut fast = state(&[0, 1, 2]);
        let mut naive = state(&[0, 1, 2]);
        let mut scratch = Vec::new();
        fast.replace_rep_with_median_with(&ds, &mut scratch, false);
        naive.replace_rep_with_median_with(&ds, &mut scratch, true);
        assert_eq!(fast.rep, naive.rep);
    }

    #[test]
    fn snapshot_record_and_restore_roundtrip() {
        let ds = dataset();
        let mut working = vec![state(&[0, 1]), state(&[2, 3])];
        working[0].score = 4.5;
        let mut snap = Snapshot {
            assignment: Vec::new(),
            clusters: Vec::new(),
            total_score: 0.0,
        };
        let assignment = vec![
            Some(ClusterId(0)),
            Some(ClusterId(0)),
            Some(ClusterId(1)),
            None,
        ];
        snap.record(&assignment, &working, 4.5);
        // Mutate the working state, then restore.
        working[0].score = -1.0;
        working[0].members.clear();
        working[1].replace_rep_with_median(&ds);
        snap.restore_clusters_into(&mut working);
        assert_eq!(working[0].score, 4.5);
        assert_eq!(working[0].members, vec![ObjectId(0), ObjectId(1)]);
        assert_eq!(snap.assignment, assignment);
        assert_eq!(snap.total_score, 4.5);
    }

    #[test]
    fn ref_size_tracks_membership() {
        let mut st = state(&[0, 1, 2]);
        st.refresh_ref_size();
        assert_eq!(st.ref_size, 3);
        st.members.clear();
        st.refresh_ref_size();
        assert_eq!(st.ref_size, 3, "empty cluster keeps previous ref size");
    }
}
