//! Mutable per-cluster state carried across SSPC iterations.

use sspc_common::stats::median_of;
use sspc_common::{ClusterId, Dataset, DimId, ObjectId};

/// Where a cluster's medoids come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SeedSource {
    /// The private seed group of this class.
    Private(ClusterId),
    /// The public seed group with this index is currently claimed.
    Public(usize),
}

/// One cluster's working state: representative point, selected dimensions,
/// members, and the score of the last evaluation.
#[derive(Debug, Clone)]
pub(crate) struct ClusterState {
    /// The cluster representative — a full-length point. Either an actual
    /// medoid's row or the member-wise median ("virtual object").
    pub rep: Vec<f64>,
    /// Selected dimensions, ascending.
    pub dims: Vec<DimId>,
    /// Current members (rebuilt every iteration).
    pub members: Vec<ObjectId>,
    /// The cluster score φᵢ from the last `SelectDim` + scoring pass.
    pub score: f64,
    /// Which seed group this cluster draws medoids from.
    pub source: SeedSource,
    /// Cluster size used for threshold lookups during assignment — the
    /// size from the previous iteration, or the expected size `n/k` before
    /// the first assignment.
    pub ref_size: usize,
}

impl ClusterState {
    /// Replaces the representative by the member-wise median (paper step 6:
    /// "the medoid of each other cluster is replaced by the cluster
    /// median"). No-op for empty clusters.
    pub fn replace_rep_with_median(&mut self, dataset: &Dataset) {
        if self.members.is_empty() {
            return;
        }
        self.rep = dataset
            .dim_ids()
            .map(|j| {
                median_of(self.members.iter().map(|&o| dataset.value(o, j)))
                    .expect("members is non-empty")
            })
            .collect();
    }

    /// Updates `ref_size` from the current member count, holding the
    /// previous value when the cluster came out empty.
    pub fn refresh_ref_size(&mut self) {
        if !self.members.is_empty() {
            self.ref_size = self.members.len();
        }
    }
}

/// An immutable snapshot of all clusters plus the assignment they imply —
/// what "record the clusters if they give the best objective score so far"
/// stores and "restore the best clusters otherwise" brings back.
#[derive(Debug, Clone)]
pub(crate) struct Snapshot {
    pub assignment: Vec<Option<ClusterId>>,
    pub clusters: Vec<ClusterState>,
    pub total_score: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sspc_common::Dataset;

    fn dataset() -> Dataset {
        Dataset::from_rows(
            4,
            2,
            vec![
                1.0, 10.0, //
                3.0, 20.0, //
                5.0, 30.0, //
                100.0, 40.0,
            ],
        )
        .unwrap()
    }

    fn state(members: &[usize]) -> ClusterState {
        ClusterState {
            rep: vec![0.0, 0.0],
            dims: vec![DimId(0)],
            members: members.iter().map(|&i| ObjectId(i)).collect(),
            score: 0.0,
            source: SeedSource::Public(0),
            ref_size: 2,
        }
    }

    #[test]
    fn median_representative_uses_member_medians() {
        let ds = dataset();
        let mut st = state(&[0, 1, 2]);
        st.replace_rep_with_median(&ds);
        assert_eq!(st.rep, vec![3.0, 20.0]);
    }

    #[test]
    fn empty_cluster_keeps_representative() {
        let ds = dataset();
        let mut st = state(&[]);
        st.rep = vec![7.0, 8.0];
        st.replace_rep_with_median(&ds);
        assert_eq!(st.rep, vec![7.0, 8.0]);
    }

    #[test]
    fn ref_size_tracks_membership() {
        let mut st = state(&[0, 1, 2]);
        st.refresh_ref_size();
        assert_eq!(st.ref_size, 3);
        st.members.clear();
        st.refresh_ref_size();
        assert_eq!(st.ref_size, 3, "empty cluster keeps previous ref size");
    }
}
