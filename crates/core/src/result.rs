use sspc_common::{ClusterId, Clustering, DimId, ObjectId, ObjectiveSense};

/// The output of one SSPC run: `k` clusters with selected dimensions, an
/// outlier list, and the achieved objective score.
#[derive(Debug, Clone, PartialEq)]
pub struct SspcResult {
    assignment: Vec<Option<ClusterId>>,
    selected_dims: Vec<Vec<DimId>>,
    cluster_scores: Vec<f64>,
    representatives: Vec<Vec<f64>>,
    objective: f64,
    iterations: usize,
}

impl SspcResult {
    pub(crate) fn new(
        assignment: Vec<Option<ClusterId>>,
        selected_dims: Vec<Vec<DimId>>,
        cluster_scores: Vec<f64>,
        representatives: Vec<Vec<f64>>,
        objective: f64,
        iterations: usize,
    ) -> Self {
        SspcResult {
            assignment,
            selected_dims,
            cluster_scores,
            representatives,
            objective,
            iterations,
        }
    }

    /// Per-object cluster assignment; `None` marks an outlier.
    pub fn assignment(&self) -> &[Option<ClusterId>] {
        &self.assignment
    }

    /// The cluster of one object (`None` = outlier).
    pub fn cluster_of(&self, o: ObjectId) -> Option<ClusterId> {
        self.assignment[o.index()]
    }

    /// Number of clusters `k`.
    pub fn n_clusters(&self) -> usize {
        self.selected_dims.len()
    }

    /// Selected dimensions of a cluster, ascending.
    pub fn selected_dims(&self, c: ClusterId) -> &[DimId] {
        &self.selected_dims[c.index()]
    }

    /// All selected-dimension lists, indexed by cluster.
    pub fn all_selected_dims(&self) -> &[Vec<DimId>] {
        &self.selected_dims
    }

    /// The φᵢ score of a cluster at the best iteration.
    pub fn cluster_score(&self, c: ClusterId) -> f64 {
        self.cluster_scores[c.index()]
    }

    /// The representative point of a cluster (medoid row or member-wise
    /// median, whichever the best iteration used).
    pub fn representative(&self, c: ClusterId) -> &[f64] {
        &self.representatives[c.index()]
    }

    /// Members of a cluster, ascending by object id.
    pub fn members_of(&self, c: ClusterId) -> Vec<ObjectId> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(o, cl)| (*cl == Some(c)).then_some(ObjectId(o)))
            .collect()
    }

    /// Objects on the outlier list, ascending.
    pub fn outliers(&self) -> Vec<ObjectId> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(o, cl)| cl.is_none().then_some(ObjectId(o)))
            .collect()
    }

    /// Number of outliers.
    pub fn n_outliers(&self) -> usize {
        self.assignment.iter().filter(|c| c.is_none()).count()
    }

    /// The best overall objective score `φ` (Eq. 1) reached.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Number of iterations executed before termination.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

/// Adapter into the workspace-wide canonical result. The representative
/// points have no slot in [`Clustering`]; use [`SspcResult`] directly when
/// they matter. Timing is attached by the [`crate::ProjectedClusterer`]
/// impl, which measures the run it wraps.
impl From<SspcResult> for Clustering {
    fn from(r: SspcResult) -> Clustering {
        Clustering::new(
            "sspc",
            r.assignment,
            r.selected_dims,
            r.objective,
            ObjectiveSense::HigherIsBetter,
        )
        .with_iterations(r.iterations)
        .with_cluster_scores(r.cluster_scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> SspcResult {
        SspcResult::new(
            vec![
                Some(ClusterId(0)),
                None,
                Some(ClusterId(1)),
                Some(ClusterId(0)),
            ],
            vec![vec![DimId(0), DimId(2)], vec![DimId(1)]],
            vec![3.5, 1.25],
            vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
            0.42,
            9,
        )
    }

    #[test]
    fn accessors_roundtrip() {
        let r = result();
        assert_eq!(r.n_clusters(), 2);
        assert_eq!(r.cluster_of(ObjectId(0)), Some(ClusterId(0)));
        assert_eq!(r.cluster_of(ObjectId(1)), None);
        assert_eq!(r.selected_dims(ClusterId(0)), &[DimId(0), DimId(2)]);
        assert_eq!(r.cluster_score(ClusterId(1)), 1.25);
        assert_eq!(r.representative(ClusterId(1)), &[4.0, 5.0, 6.0]);
        assert_eq!(r.objective(), 0.42);
        assert_eq!(r.iterations(), 9);
    }

    #[test]
    fn converts_into_canonical_clustering() {
        let r = result();
        let c = Clustering::from(r.clone());
        assert_eq!(c.algorithm(), "sspc");
        assert_eq!(c.sense(), ObjectiveSense::HigherIsBetter);
        assert_eq!(c.assignment(), r.assignment());
        assert_eq!(c.all_selected_dims(), r.all_selected_dims());
        assert_eq!(c.objective(), r.objective());
        assert_eq!(c.iterations(), Some(r.iterations()));
        assert_eq!(c.cluster_scores(), Some(&[3.5, 1.25][..]));
    }

    #[test]
    fn membership_queries() {
        let r = result();
        assert_eq!(r.members_of(ClusterId(0)), vec![ObjectId(0), ObjectId(3)]);
        assert_eq!(r.members_of(ClusterId(1)), vec![ObjectId(2)]);
        assert_eq!(r.outliers(), vec![ObjectId(1)]);
        assert_eq!(r.n_outliers(), 1);
    }
}
